"""Ablation: exp-LUT size in the projection unit's alpha filters.

Paper claim: a 64-entry LUT suffices to maintain accuracy."""

from repro.bench import figures, print_table


def test_ablation_lut(benchmark, bundle):
    rows = benchmark.pedantic(figures.ablation_lut,
                              kwargs={"bundle": bundle}, rounds=1,
                              iterations=1)
    print_table("Ablation - exp LUT size", rows)
    by = {r["entries"]: r for r in rows}
    assert by[64]["render_psnr_db"] > 40.0, "64 entries must be transparent"
    assert by[64]["render_psnr_db"] > by[8]["render_psnr_db"]
