"""Fig. 26: mapping accuracy sensitivity to the mapping tile size.

Paper shape: 4x4 is the knee — smaller tiles barely help accuracy, larger
tiles cost reconstruction quality."""

from repro.bench import figures, print_table


def test_fig26_accuracy_sensitivity(benchmark):
    rows = benchmark.pedantic(figures.fig26_accuracy_sensitivity, rounds=1,
                              iterations=1)
    print_table("Fig. 26 - accuracy vs mapping tile size", rows)
    by = {r["mapping_tile"]: r for r in rows}
    assert by[4]["psnr_db"] > by[16]["psnr_db"] - 0.5, (
        "4x4 should not lose clearly to 16x16")
