"""Ablation: the scoreboard aggregation unit vs naive off-chip RMW.

The unit's merge + scoreboard + Gaussian cache must hide most DRAM
latency and cut gradient traffic."""

from repro.bench import figures, print_table


def test_ablation_aggregation(benchmark, bundle):
    rows = benchmark.pedantic(figures.ablation_aggregation_unit,
                              kwargs={"bundle": bundle}, rounds=1,
                              iterations=1)
    print_table("Ablation - aggregation unit", rows)
    speed = [r for r in rows if r["variant"] == "speedup"][0]
    assert speed["cycles"] > 2.0, "scoreboard must clearly beat naive RMW"
