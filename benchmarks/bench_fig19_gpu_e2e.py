"""Fig. 19: end-to-end tracking speedup and energy savings on the mobile
GPU, per algorithm.

Paper shape: ~14.6x mean speedup and 86.1 % energy savings for the full
SPLATONIC-SW; Org.+S reaches only ~3.4x / 55.5 %."""

from repro.bench import figures, print_table


def test_fig19_gpu_e2e(benchmark):
    rows = benchmark.pedantic(figures.fig19_gpu_e2e, rounds=1, iterations=1)
    print_table("Fig. 19 - GPU end-to-end speedup & energy", rows)
    mean = [r for r in rows if r["algorithm"] == "mean"][0]
    assert mean["ours_speedup"] > mean["orgs_speedup"]
    assert mean["ours_speedup"] > 5.0
    assert mean["ours_energy_saving"] > 0.5
