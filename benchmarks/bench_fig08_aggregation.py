"""Fig. 8: aggregation share of reverse rasterization on the dense GPU.

Paper shape: over 63.5 % of reverse rasterization is spent aggregating
gradients through atomicAdd."""

from repro.bench import figures, print_table


def test_fig08_aggregation(benchmark):
    rows = benchmark.pedantic(figures.fig08_aggregation, rounds=1,
                              iterations=1)
    print_table("Fig. 8 - aggregation share of reverse rasterization", rows)
    mean = [r for r in rows if r["scene"] == "mean"][0]
    assert mean["aggregation_share"] > 0.5
