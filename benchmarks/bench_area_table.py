"""Sec. VI area: SPLATONIC's component breakdown vs GSCore / GSArch.

Paper shape: ~1.07 mm^2 total at 16 nm (smaller than GSCore's 1.77 and
GSArch's 3.42), rasterization engines ~28 %, SRAM ~15 %."""

from repro.bench import figures, print_table


def test_area_table(benchmark):
    rows = benchmark.pedantic(figures.area_table, rounds=1, iterations=1)
    print_table("Area (Sec. VI)", rows)
    total = [r for r in rows if r["component"] == "TOTAL (16nm)"][0]
    assert 0.8 < total["area_mm2"] < 1.4
    raster = [r for r in rows if r["component"] == "raster_engines"][0]
    assert 0.15 < raster["share"] < 0.45
