"""Ablation: direct bbox indexing in the projection unit (Sec. V-C) vs
scanning the whole sampled-pixel list per Gaussian."""

from repro.bench import figures, print_table


def test_ablation_bbox_index(benchmark, bundle):
    rows = benchmark.pedantic(figures.ablation_bbox_indexing,
                              kwargs={"bundle": bundle}, rounds=1,
                              iterations=1)
    print_table("Ablation - direct bbox indexing", rows)
    slow = [r for r in rows if r["variant"] == "slowdown"][0]
    assert slow["total_us"] > 1.0, "removing direct indexing must cost cycles"
