"""Shared fixtures for the figure-reproduction benchmarks.

The expensive artifacts (a proxy SLAM run and its measured workloads) are
built once per session; individual benches only evaluate their models and
print the figure's rows.
"""

import pytest

from repro.bench import build_bundle


@pytest.fixture(scope="session")
def bundle():
    """The default proxy scenario (room0, 96x64, SplaTAM sparse run)."""
    return build_bundle()
