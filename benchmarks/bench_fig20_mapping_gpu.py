"""Fig. 20: mapping speedup and energy savings on the mobile GPU.

Paper shape: mapping gains are modest (~3.2x, 60 % energy) because
mapping renders many more pixels (one per 4x4 tile plus unseen pixels)."""

from repro.bench import figures, print_table


def test_fig20_mapping_gpu(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig20_mapping_gpu, args=(bundle,),
                              rounds=1, iterations=1)
    print_table("Fig. 20 - GPU mapping speedup & energy", rows)
    ours = [r for r in rows if r["variant"] == "Ours"][0]
    assert 1.0 < ours["speedup"] < 60.0, "mapping gains are modest"
