"""Fig. 21: tracking speedups on the two bottleneck stages.

Paper shape: sparse sampling alone gives ~4.1x / 4.3x; the pixel-based
pipeline reaches ~64.4x / 77.2x."""

from repro.bench import figures, print_table


def test_fig21_stage_speedup(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig21_stage_speedup, args=(bundle,),
                              rounds=1, iterations=1)
    print_table("Fig. 21 - bottleneck-stage speedups", rows)
    orgs = [r for r in rows if r["variant"] == "Org.+S"][0]
    ours = [r for r in rows if r["variant"] == "Ours"][0]
    assert ours["raster_speedup"] > orgs["raster_speedup"]
    assert ours["reverse_raster_speedup"] > orgs["reverse_raster_speedup"]
