"""Fig. 23: mapping speedups across architectures.

Paper shape: same ordering as tracking — SPLATONIC-HW still leads."""

from repro.bench import figures, print_table


def test_fig23_accel_mapping(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig23_accel_mapping, args=(bundle,),
                              rounds=1, iterations=1)
    print_table("Fig. 23 - accelerator mapping comparison", rows)
    hw = [r for r in rows if r["design"] == "SPLATONIC-HW"][0]
    others = [r["speedup"] for r in rows
              if r["design"] not in ("SPLATONIC-HW", "SPLATONIC-SW")]
    assert hw["speedup"] > max(others)
