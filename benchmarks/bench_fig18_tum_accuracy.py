"""Fig. 18: TUM-like tracking ATE and reconstruction PSNR.

Paper shape: same parity as Fig. 17, with larger absolute ATEs than
Replica (faster motion, sensor noise)."""

import numpy as np

from repro.bench import figures, print_table


def test_fig18_tum_accuracy(benchmark):
    rows = benchmark.pedantic(figures.fig18_tum_accuracy, rounds=1,
                              iterations=1)
    print_table("Fig. 18 - TUM accuracy (baseline vs ours)", rows)
    base = np.mean([r["baseline_ate_cm"] for r in rows])
    ours = np.mean([r["ours_ate_cm"] for r in rows])
    assert ours < 2.0 * base + 1.0
