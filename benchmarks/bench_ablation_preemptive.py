"""Ablation: preemptive alpha-checking (Sec. IV-B / V-B).

Moving alpha-checking into projection must speed up the accelerator's
render path (which otherwise idles on rejected pairs)."""

from repro.bench import figures, print_table


def test_ablation_preemptive(benchmark, bundle):
    rows = benchmark.pedantic(figures.ablation_preemptive_alpha,
                              kwargs={"bundle": bundle}, rounds=1,
                              iterations=1)
    print_table("Ablation - preemptive alpha-checking", rows)
    by = {r["variant"]: r for r in rows}
    assert by["hw_raster_slowdown_without"]["value"] > 1.2, (
        "render units must pay for in-raster alpha-checking")
    assert by["sw_alpha_share_without_preemption"]["value"] > 0.2
