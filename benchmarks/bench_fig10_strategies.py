"""Fig. 10: tracking error vs sampling strategy and tile size.

Paper shape: strategies with global coverage (random / harris, one pixel
per tile) beat strategies without it (low-res lattice, GauSPU loss-tiles),
and random matches or beats the feature-based pick."""

import numpy as np

from repro.bench import figures, print_table


def test_fig10_strategies(benchmark):
    rows = benchmark.pedantic(figures.fig10_strategies, rounds=1,
                              iterations=1)
    print_table("Fig. 10 - sampling strategy vs tracking error", rows)

    def mean_err(strategy):
        return float(np.mean([r["pose_error_cm"] for r in rows
                              if r["strategy"] == strategy]))

    assert mean_err("random") <= mean_err("loss_tile") * 1.5, (
        "random (global coverage) should not lose badly to loss-tiles")
