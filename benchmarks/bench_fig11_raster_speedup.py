"""Fig. 11: rasterization / reverse-rasterization latency for Org.,
Org.+S, and the pixel-based pipeline during tracking.

Paper shape: Org.+S yields only ~4x on rasterization (far below the 256x
pixel reduction); the pixel-based pipeline reaches ~103x / ~95x."""

from repro.bench import figures, print_table


def test_fig11_raster_speedup(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig11_raster_speedup, args=(bundle,),
                              rounds=1, iterations=1)
    print_table("Fig. 11 - bottleneck-stage latency", rows)
    orgs = [r for r in rows if r["variant"] == "Org.+S"][0]
    ours = [r for r in rows if r["variant"] == "Ours"][0]
    assert orgs["raster_speedup"] < 32, "Org.+S must fall far short of 256x"
    assert ours["raster_speedup"] > 10 * orgs["raster_speedup"]
