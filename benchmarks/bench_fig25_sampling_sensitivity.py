"""Fig. 25: speedup sensitivity to the sampling tile size.

Paper shape: pixel-based SPLATONIC-HW wins at sparse sampling but loses
to the tile-based GSArch at (or near) dense sampling (1x1 tiles), because
dense pixels share data the pixel pipeline cannot amortize."""

from repro.bench import figures, print_table


def test_fig25_sampling_sensitivity(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig25_sampling_sensitivity,
                              kwargs={"bundle": bundle}, rounds=1,
                              iterations=1)
    print_table("Fig. 25 - sensitivity to sampling rate", rows)
    sparse = [r for r in rows if r["tile"] == 16][0]
    dense = [r for r in rows if r["tile"] == 1][0]
    assert sparse["splatonic_hw_speedup"] > sparse["gsarch_s_speedup"] * 0.9
    ratio_sparse = sparse["splatonic_hw_speedup"] / sparse["gsarch_s_speedup"]
    ratio_dense = dense["splatonic_hw_speedup"] / dense["gsarch_s_speedup"]
    assert ratio_dense < ratio_sparse, (
        "tile-based rendering must close the gap as sampling densifies")
