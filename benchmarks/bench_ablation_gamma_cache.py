"""Ablation: caching Gamma/C in the rasterization engine's double buffer
(Sec. V-B) vs recomputing the reduction in the reverse render units."""

from repro.bench import figures, print_table


def test_ablation_gamma_cache(benchmark, bundle):
    rows = benchmark.pedantic(figures.ablation_gamma_cache,
                              kwargs={"bundle": bundle}, rounds=1,
                              iterations=1)
    print_table("Ablation - Gamma/C cache", rows)
    slow = [r for r in rows if r["variant"] == "slowdown"][0]
    assert slow["stage_us"] > 1.5, "reverse stage must pay for the missing cache"
    assert slow["total_us"] >= 1.0
