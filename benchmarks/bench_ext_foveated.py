"""Extension bench (Sec. IX discussion): foveated rendering on the
pixel-based pipeline.

The paper argues its pipeline accelerates sparse workloads beyond SLAM —
foveated VR rendering in particular.  This bench samples a gaze-contingent
pattern, measures one forward iteration's workload, and compares the
pixel-based pipeline (SW and SPLATONIC-HW) against the dense tile baseline
on the hardware models.
"""

import numpy as np

from repro.bench import print_table
from repro.core import sample_foveated_pixels
from repro.hw import GpuModel, SplatonicAccelerator, measure_iteration


def run_foveated(bundle):
    gaze = (bundle.width / 2, bundle.height / 2)
    pixels = sample_foveated_pixels(bundle.width, bundle.height, gaze,
                                    np.random.default_rng(0))
    f_p, f_g = bundle.pixel_factor, bundle.gaussian_factor
    frame = bundle.frame
    dense = measure_iteration(bundle.cloud, bundle.camera, frame.color,
                              frame.depth, "tile").upscale(f_p, f_g)
    fov = measure_iteration(bundle.cloud, bundle.camera, frame.color,
                            frame.depth, "pixel", pixels).upscale(f_p, f_g)
    gpu = GpuModel()
    t_dense = gpu.iteration_times(dense).total
    t_fov = gpu.iteration_times(fov).total
    hw = SplatonicAccelerator().iteration_report(fov)
    return [
        {"variant": "dense GPU", "pixels": dense.fwd.num_pixels,
         "speedup": 1.0},
        {"variant": "foveated SW", "pixels": fov.fwd.num_pixels,
         "speedup": t_dense / t_fov},
        {"variant": "foveated SPLATONIC-HW", "pixels": fov.fwd.num_pixels,
         "speedup": t_dense / hw.total_s},
    ]


def test_ext_foveated(benchmark, bundle):
    rows = benchmark.pedantic(run_foveated, args=(bundle,), rounds=1,
                              iterations=1)
    print_table("Extension - foveated rendering on the pixel pipeline", rows)
    sw = [r for r in rows if r["variant"] == "foveated SW"][0]
    hw = [r for r in rows if r["variant"] == "foveated SPLATONIC-HW"][0]
    assert sw["speedup"] > 1.0
    assert hw["speedup"] > sw["speedup"]
