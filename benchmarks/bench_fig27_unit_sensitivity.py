"""Fig. 27: performance sensitivity to projection-unit and render-unit
counts of the SPLATONIC accelerator.

Paper shape: performance is projection-unit-bound at small counts; once
projection stops being the bottleneck, render units take over."""

from repro.bench import figures, print_table


def test_fig27_unit_sensitivity(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig27_unit_sensitivity,
                              kwargs={"bundle": bundle}, rounds=1,
                              iterations=1)
    print_table("Fig. 27 - unit-count sensitivity", rows)
    def perf(pu, ru):
        return [r for r in rows if r["projection_units"] == pu
                and r["render_engines"] == ru][0]["relative_performance"]
    assert perf(8, 4) >= perf(2, 4), "more projection units cannot hurt"
    assert perf(16, 8) >= perf(2, 2)
