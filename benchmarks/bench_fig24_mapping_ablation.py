"""Fig. 24: ablation of the mapping sampling strategy on SplaTAM.

Paper shape: combining weighted texture sampling with unseen pixels
("Comb") yields the best accuracy among the sparse variants."""

from repro.bench import figures, print_table


def test_fig24_mapping_ablation(benchmark):
    rows = benchmark.pedantic(figures.fig24_mapping_ablation, rounds=1,
                              iterations=1)
    print_table("Fig. 24 - mapping sampling ablation", rows)
    by = {r["variant"]: r for r in rows}
    assert by["comb"]["psnr_db"] >= by["unseen"]["psnr_db"] - 1.0
    assert by["comb"]["psnr_db"] >= by["weighted"]["psnr_db"] - 1.0
