"""Fig. 14: the bottleneck shift introduced by pixel-based rendering.

Paper shape: projection's share of the forward pass grows from ~2 % to
~64 %; reverse rasterization's share of the backward pass falls from
~99 % but remains the majority."""

from repro.bench import figures, print_table


def test_fig14_bottleneck_shift(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig14_bottleneck_shift, args=(bundle,),
                              rounds=1, iterations=1)
    print_table("Fig. 14 - bottleneck shift", rows)
    org = [r for r in rows if r["variant"] == "Org."][0]
    ours = [r for r in rows if r["variant"] == "Ours"][0]
    assert ours["projection_share_fwd"] > 5 * org["projection_share_fwd"]
    assert ours["reverse_raster_share_bwd"] < org["reverse_raster_share_bwd"]
