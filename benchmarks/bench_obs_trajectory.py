"""Perf-trajectory bench: observability cost in the canonical format.

Runs the ``obs_overhead`` scenario of the perf-trajectory suite (proxy
SLAM with every observability feature off vs tracer + metrics + flight
recorder + sparsity atlas + health monitors all on, plus the
telemetry-bus legs with zero and one subscriber) and writes the result
as a schema-versioned ``BENCH_obs_trajectory.json`` at the repo root —
the same payload layout as ``repro bench run``, so it can be diffed
with ``repro bench compare`` like any other trajectory.  See README
"Benchmark artifacts" for which ``BENCH_*.json`` files are committed
baselines vs regenerated artifacts.
"""

import json
from pathlib import Path

from repro.obs.bench import SCHEMA_VERSION, SuiteConfig, run_suite
from repro.obs.bench import write_trajectory

BENCH_OUT = Path(__file__).resolve().parents[1] / "BENCH_obs_trajectory.json"

# Hard ceiling for this artifact-producing run (the committed-baseline
# gate in CI uses the tighter TolerancePolicy budget); generous because
# the tiny scenario amplifies fixed per-frame costs.
MAX_OVERHEAD_RATIO = 3.0


def test_obs_overhead_trajectory():
    payload = run_suite(SuiteConfig(size="tiny", repetitions=2),
                        scenarios=["obs_overhead"])
    assert payload["schema_version"] == SCHEMA_VERSION
    scn = payload["scenarios"]["obs_overhead"]

    # Observability must be passive: identical trajectory, map, and
    # counters with everything on.
    assert scn["counters"]["obs_passive"] == 1
    assert scn["counters"]["obs_passive_bus"] == 1
    # Every obs channel actually collected something.
    assert scn["counters"]["flight.records"] > 0
    assert scn["counters"]["atlas.frames"] > 0
    assert scn["counters"]["atlas.candidates"] > 0
    assert scn["counters"]["spans"] > 0
    # The bus legs published the deterministic run stream, nothing was
    # lost to the subscriber's ring, and listening changes no counts.
    assert scn["counters"]["telemetry.published"] > 0
    assert (scn["counters"]["telemetry.published_sub"]
            == scn["counters"]["telemetry.published"])
    assert (scn["counters"]["telemetry.delivered"]
            == scn["counters"]["telemetry.published"])
    assert scn["counters"]["telemetry.dropped"] == 0

    extras = scn["overhead"].get("extra") or {}
    ratios = {"ratio": scn["overhead"]["ratio"],
              "bus_ratio": extras["bus_ratio"]["ratio"],
              "bus_sub_ratio": extras["bus_sub_ratio"]["ratio"]}
    for key, ratio in ratios.items():
        assert ratio < MAX_OVERHEAD_RATIO, (
            f"{key}: observability costs {ratio:.2f}x the uninstrumented "
            f"run (ceiling {MAX_OVERHEAD_RATIO}x)")
    ratio = scn["overhead"]["ratio"]

    write_trajectory(payload, str(BENCH_OUT))
    # Round-trip: the artifact is valid canonical JSON.
    on_disk = json.loads(BENCH_OUT.read_text())
    assert on_disk["scenarios"]["obs_overhead"]["overhead"]["ratio"] == ratio
