"""Perf-trajectory bench: observability cost in the canonical format.

Runs the ``obs_overhead`` scenario of the perf-trajectory suite (proxy
SLAM with every observability feature off vs tracer + metrics + flight
recorder + sparsity atlas + health monitors all on, plus the
telemetry-bus legs with zero and one subscriber) and appends the result
to the schema-versioned ``BENCH_obs_trajectory.json`` at the repo root.

The committed file is a **bench-history** document — a bounded list of
suite payloads, newest last::

    {"format": "bench-history", "schema_version": 1,
     "max_entries": 20, "entries": [<suite payload>, ...]}

so successive invocations accumulate an actual perf trajectory instead
of overwriting each other.  Each entry keeps the payload layout of
``repro bench run``; ``repro bench compare`` and ``repro runs ingest
--bench`` read the newest entry transparently (see
``repro.obs.regress.load_trajectory``), and a pre-history single-payload
file is migrated into a one-entry history on first append.  See README
"Benchmark artifacts" for which ``BENCH_*.json`` files are committed
baselines vs regenerated artifacts.
"""

import json
from pathlib import Path

from repro.obs.bench import SCHEMA_VERSION, SuiteConfig, run_suite

BENCH_OUT = Path(__file__).resolve().parents[1] / "BENCH_obs_trajectory.json"

# Hard ceiling for this artifact-producing run (the committed-baseline
# gate in CI uses the tighter TolerancePolicy budget); generous because
# the tiny scenario amplifies fixed per-frame costs.
MAX_OVERHEAD_RATIO = 3.0

# Bounded history: keep this many most-recent payload entries.
HISTORY_LIMIT = 20


def load_history(path: Path) -> dict:
    """The on-disk history document (empty, legacy, or native layout)."""
    if not path.exists():
        return {"format": "bench-history",
                "schema_version": SCHEMA_VERSION,
                "max_entries": HISTORY_LIMIT, "entries": []}
    doc = json.loads(path.read_text())
    if doc.get("format") == "bench-history":
        doc.setdefault("entries", [])
        return doc
    # Legacy single-payload artifact: migrate it into entry zero.
    return {"format": "bench-history",
            "schema_version": doc.get("schema_version", SCHEMA_VERSION),
            "max_entries": HISTORY_LIMIT, "entries": [doc]}


def append_history(path: Path, payload: dict,
                   limit: int = HISTORY_LIMIT) -> dict:
    """Append one suite payload to the bounded history and rewrite it."""
    doc = load_history(path)
    doc["schema_version"] = payload.get("schema_version", SCHEMA_VERSION)
    doc["max_entries"] = limit
    doc["entries"] = (doc["entries"] + [payload])[-limit:]
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return doc


def test_obs_overhead_trajectory():
    payload = run_suite(SuiteConfig(size="tiny", repetitions=2),
                        scenarios=["obs_overhead"])
    assert payload["schema_version"] == SCHEMA_VERSION
    scn = payload["scenarios"]["obs_overhead"]

    # Observability must be passive: identical trajectory, map, and
    # counters with everything on.
    assert scn["counters"]["obs_passive"] == 1
    assert scn["counters"]["obs_passive_bus"] == 1
    # Every obs channel actually collected something.
    assert scn["counters"]["flight.records"] > 0
    assert scn["counters"]["atlas.frames"] > 0
    assert scn["counters"]["atlas.candidates"] > 0
    assert scn["counters"]["spans"] > 0
    # The bus legs published the deterministic run stream, nothing was
    # lost to the subscriber's ring, and listening changes no counts.
    assert scn["counters"]["telemetry.published"] > 0
    assert (scn["counters"]["telemetry.published_sub"]
            == scn["counters"]["telemetry.published"])
    assert (scn["counters"]["telemetry.delivered"]
            == scn["counters"]["telemetry.published"])
    assert scn["counters"]["telemetry.dropped"] == 0

    extras = scn["overhead"].get("extra") or {}
    ratios = {"ratio": scn["overhead"]["ratio"],
              "bus_ratio": extras["bus_ratio"]["ratio"],
              "bus_sub_ratio": extras["bus_sub_ratio"]["ratio"]}
    for key, ratio in ratios.items():
        assert ratio < MAX_OVERHEAD_RATIO, (
            f"{key}: observability costs {ratio:.2f}x the uninstrumented "
            f"run (ceiling {MAX_OVERHEAD_RATIO}x)")
    ratio = scn["overhead"]["ratio"]

    doc = append_history(BENCH_OUT, payload)
    assert 0 < len(doc["entries"]) <= HISTORY_LIMIT
    # Round-trip: the artifact is valid JSON and the newest entry is
    # this run's payload (also what load_trajectory resolves).
    on_disk = json.loads(BENCH_OUT.read_text())
    assert on_disk["format"] == "bench-history"
    latest = on_disk["entries"][-1]
    assert latest["scenarios"]["obs_overhead"]["overhead"]["ratio"] == ratio
