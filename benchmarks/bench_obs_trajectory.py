"""Perf-trajectory bench: per-stage wall time + headline workload counters.

Runs the default bundle scenario twice — once untraced (the wall-clock
baseline), once under the span tracer — and writes ``BENCH_obs.json`` at
the repo root: per-stage wall times (self/total), the four SLAM stages'
headline ``PipelineStats`` counters and derived rates, and the measured
tracing overhead.  Subsequent PRs diff this file to track the python
implementation's perf trajectory.
"""

import json
import time
from pathlib import Path

from repro.bench.scenarios import build_bundle
from repro.obs import trace
from repro.slam import SLAMSystem

BENCH_OUT = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
# Tracing must not tax the hot path: the traced re-run has to stay within
# a few percent of the untraced one (generous margin for machine noise).
MAX_TRACING_OVERHEAD = 1.25


def _run(sequence):
    start = time.perf_counter()
    result = SLAMSystem("splatam", mode="sparse", seed=0).run(sequence)
    return result, time.perf_counter() - start


def test_obs_perf_trajectory(bundle, benchmark):
    sequence = bundle.sequence

    result, untraced_s = benchmark.pedantic(
        lambda: _run(sequence), rounds=1, iterations=1)

    trace.enable(reset=True)
    try:
        traced_result, traced_s = _run(sequence)
    finally:
        trace.disable()

    stage_rows = {row["span"]: {"count": row["count"],
                                "total_s": row["total_s"],
                                "self_s": row["self_s"]}
                  for row in trace.stage_table()}
    for stage in SLAMSystem.STAGES:
        assert stage in stage_rows, f"missing span for stage {stage}"

    counters = {}
    for stage, stats in result.stage_stats.items():
        counters[stage] = dict(stats.as_dict(), **stats.summary())

    overhead = traced_s / untraced_s if untraced_s > 0 else 1.0

    # Disabled-mode cost: the untraced run above already pays the real
    # instrumentation cost (every span() site executes, disabled).  Bound
    # it directly: per-call cost of a disabled span() times the number of
    # span events the traced run produced, as a fraction of the wall time.
    n_calls = 200_000
    t0 = time.perf_counter()
    for _ in range(n_calls):
        trace.span("hot")
    per_call_s = (time.perf_counter() - t0) / n_calls
    n_sites_hit = len(trace.records)
    disabled_overhead = (n_sites_hit * per_call_s) / untraced_s
    assert disabled_overhead < 0.03, (
        f"disabled tracing costs {disabled_overhead * 100:.2f}% of the run")

    payload = {
        "scenario": {
            "sequence": "room0",
            "width": bundle.width,
            "height": bundle.height,
            "frames": result.num_frames,
            "algorithm": result.algorithm,
            "mode": result.mode,
        },
        "wall": {
            "untraced_s": untraced_s,
            "traced_s": traced_s,
            "tracing_overhead": overhead,
            "disabled_span_call_ns": per_call_s * 1e9,
            "disabled_overhead_fraction": disabled_overhead,
        },
        "stages": stage_rows,
        "counters": counters,
        "map_gaussians": len(result.cloud),
        "mapping_invocations": result.mapping_invocations,
    }
    BENCH_OUT.write_text(json.dumps(payload, indent=1, sort_keys=True))

    # The traced run must produce the same workload (tracing is passive).
    assert (traced_result.stage_stats["tracking_fwd"].num_pixels
            == result.stage_stats["tracking_fwd"].num_pixels)
    assert overhead < MAX_TRACING_OVERHEAD, (
        f"tracing overhead {overhead:.2f}x exceeds {MAX_TRACING_OVERHEAD}x")
