"""Fig. 5: normalized execution breakdown of the dense pipeline.

Paper shape: rasterization + reverse rasterization account for ~94.7 % of
the execution time across algorithms."""

from repro.bench import figures, print_table


def test_fig05_breakdown(benchmark):
    rows = benchmark.pedantic(figures.fig05_breakdown, rounds=1, iterations=1)
    print_table("Fig. 5 - dense-pipeline stage breakdown", rows)
    for row in rows:
        assert row["raster_stages_share"] > 0.85, (
            f"raster stages should dominate for {row['algorithm']}")
