"""Fig. 7: GPU thread utilization of dense rasterization per Replica-like
scene.

Paper shape: utilization is well below 1 (paper mean 28.3 %; the exact
value is scene-statistics dependent)."""

from repro.bench import figures, print_table


def test_fig07_utilization(benchmark):
    rows = benchmark.pedantic(figures.fig07_utilization, rounds=1,
                              iterations=1)
    print_table("Fig. 7 - rasterization thread utilization", rows)
    mean = [r for r in rows if r["scene"] == "mean"][0]
    assert 0.0 < mean["thread_utilization"] < 1.0
