"""Extension bench: anisotropic (full-covariance) Gaussians through the
pixel-based pipeline.

The paper's pipeline is representation-agnostic; this bench fits a
perturbed anisotropic cloud back to its target views with the analytic
EWA gradients and reports the convergence, demonstrating that the sparse
pixel pipeline trains full 3DGS covariances, not just SplaTAM-style
isotropic splats.
"""

import numpy as np

from repro.bench import print_table
from repro.datasets.trajectory import look_at
from repro.fit import FitConfig, SceneFitter
from repro.gaussians import Camera, Intrinsics
from repro.render import AnisotropicCloud, render_sparse_anisotropic


def run_fit():
    rng = np.random.default_rng(7)
    n = 30
    target = AnisotropicCloud.create(
        means=np.stack([rng.uniform(-0.8, 0.8, n), rng.uniform(-0.6, 0.6, n),
                        rng.uniform(1.5, 3.0, n)], axis=-1),
        scales=rng.uniform(0.05, 0.3, (n, 3)),
        quaternions=rng.normal(size=(n, 4)),
        opacities=rng.uniform(0.4, 0.9, n),
        colors=rng.uniform(0.1, 0.9, (n, 3)))
    intr = Intrinsics.from_fov(48, 36, 70.0)
    views = []
    for a in np.linspace(-0.3, 0.3, 3):
        cam = Camera(intr, look_at(np.array([a, -0.05, -0.1]),
                                   np.array([0.0, 0.0, 2.2])))
        uu, vv = np.meshgrid(np.arange(48), np.arange(36))
        px = np.stack([uu.ravel(), vv.ravel()], axis=-1)
        out = render_sparse_anisotropic(target, cam, px, np.full(3, 0.05))
        views.append((cam, out.color.reshape(36, 48, 3),
                      out.depth.reshape(36, 48)))

    start = target.unpack(target.pack()
                          + rng.normal(0, 0.05, target.pack().shape))
    result = SceneFitter(start, views, FitConfig(iterations=90)).fit()
    losses = result.losses
    return [
        {"checkpoint": "start", "loss": float(np.mean(losses[:3]))},
        {"checkpoint": "mid", "loss": float(np.mean(
            losses[len(losses) // 2 - 1:len(losses) // 2 + 2]))},
        {"checkpoint": "end", "loss": float(np.mean(losses[-3:]))},
    ]


def test_ext_anisotropic_fit(benchmark):
    rows = benchmark.pedantic(run_fit, rounds=1, iterations=1)
    print_table("Extension - anisotropic fitting convergence", rows)
    by = {r["checkpoint"]: r["loss"] for r in rows}
    assert by["end"] < 0.5 * by["start"], "EWA gradients must converge"
