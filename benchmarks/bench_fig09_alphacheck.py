"""Fig. 9: alpha-checking share of rasterization / reverse rasterization.

Paper shape: ~43.4 % of rasterization and ~33.6 % of reverse rasterization
is spent on alpha-checking (SFU-bound exp)."""

from repro.bench import figures, print_table


def test_fig09_alpha_share(benchmark):
    rows = benchmark.pedantic(figures.fig09_alpha_share, rounds=1,
                              iterations=1)
    print_table("Fig. 9 - alpha-checking share", rows)
    mean = [r for r in rows if r["scene"] == "mean"][0]
    assert 0.2 < mean["alpha_share_raster"] < 0.8
    assert 0.2 < mean["alpha_share_reverse"] < 0.8
