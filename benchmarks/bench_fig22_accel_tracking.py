"""Fig. 22: tracking performance and energy across architectures.

Paper shape: SPLATONIC-HW is fastest and most efficient; the +S variants
of GauSPU / GSArch trail it; SPLATONIC-SW beats the *dense* prior
accelerators."""

from repro.bench import figures, print_table


def _get(rows, design):
    return [r for r in rows if r["design"] == design][0]


def test_fig22_accel_tracking(benchmark, bundle):
    rows = benchmark.pedantic(figures.fig22_accel_tracking, args=(bundle,),
                              rounds=1, iterations=1)
    print_table("Fig. 22 - accelerator tracking comparison", rows)
    hw = _get(rows, "SPLATONIC-HW")
    assert hw["speedup"] >= max(r["speedup"] for r in rows)
    assert hw["energy_saving"] >= max(r["energy_saving"] for r in rows)
    sw = _get(rows, "SPLATONIC-SW")
    assert sw["speedup"] > _get(rows, "GauSPU")["speedup"]
    assert sw["speedup"] > _get(rows, "GSArch")["speedup"]
