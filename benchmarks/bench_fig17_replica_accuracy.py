"""Fig. 17: Replica-like tracking ATE and reconstruction PSNR, baseline
(dense) vs SPLATONIC's sparse sampling, across the four algorithms.

Paper shape: the sparse variant matches the baseline (paper: slightly
better on average). At proxy scale we assert it stays within 2x ATE and
within 3 dB PSNR on average."""

import numpy as np

from repro.bench import figures, print_table


def test_fig17_replica_accuracy(benchmark):
    rows = benchmark.pedantic(figures.fig17_replica_accuracy, rounds=1,
                              iterations=1)
    print_table("Fig. 17 - Replica accuracy (baseline vs ours)", rows)
    base = np.mean([r["baseline_ate_cm"] for r in rows])
    ours = np.mean([r["ours_ate_cm"] for r in rows])
    assert ours < 2.0 * base + 1.0
    psnr_gap = np.mean([r["baseline_psnr_db"] - r["ours_psnr_db"]
                        for r in rows])
    assert psnr_gap < 4.5
