"""Fig. 4: amortized per-frame tracking vs mapping latency across the four
3DGS-SLAM algorithms on the modeled mobile GPU.

Paper shape: tracking dominates (its per-frame latency exceeds mapping's
amortized latency for every algorithm, roughly 4:1)."""

from repro.bench import figures, print_table


def test_fig04_latency(benchmark):
    rows = benchmark.pedantic(figures.fig04_latency, rounds=1, iterations=1)
    print_table("Fig. 4 - tracking vs mapping amortized latency", rows)
    for row in rows:
        assert row["tracking_ms_per_frame"] > row["mapping_ms_per_frame"], (
            f"tracking should dominate for {row['algorithm']}")
