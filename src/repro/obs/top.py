"""``repro top``: a live terminal dashboard over the telemetry stream.

Renders the :meth:`~repro.obs.telemetry.RunAggregator.snapshot` document
— the same JSON the HTTP exporter serves at ``/runz`` — as a compact
ANSI dashboard: run header and progress, frame rate, running pose RMSE,
loss/Gaussian-count sparklines, the mapper's sampling composition,
kernel workload counters, and a health-alert ticker.

Three snapshot sources cover the three ways to watch a run:

- :class:`LiveSource` — subscribe to the in-process bus (used when the
  dashboard shares the process with the run);
- :class:`HttpSource` — poll a ``repro slam --serve-telemetry``
  endpoint's ``/runz`` (remote / cross-process);
- :class:`FlightSource` — replay a recorded flight-record JSONL (static;
  the ``repro top --once --from-flight run.jsonl`` snapshot render).

Headline parity: the finished-run footer formats ATE, final map size,
and total tracking iterations with exactly the strings
``repro report`` prints, so the live view and the post-hoc report never
disagree about a run's outcome.
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Any, Dict, List, Optional
from urllib.request import urlopen

from .report import sparkline
from .telemetry import RunAggregator, TelemetryBus, bus as default_bus

__all__ = [
    "LiveSource",
    "HttpSource",
    "FlightSource",
    "render_dashboard",
    "run_top",
]

#: Sparkline rows: (label, snapshot series key).
_SPARK_ROWS = (
    ("pose err (m)", "pose_error_m"),
    ("track loss", "tracking_loss"),
    ("map loss", "mapping_loss"),
    ("gaussians", "gaussians"),
    ("cache hit rate", "cache_hit_rate"),
    ("frame wall (s)", "wall_time_s"),
)

_CLEAR = "\x1b[2J\x1b[H"
_BOLD, _DIM, _RED, _RESET = "\x1b[1m", "\x1b[2m", "\x1b[31m", "\x1b[0m"


# ---------------------------------------------------------------------------
# Snapshot sources
# ---------------------------------------------------------------------------

class LiveSource:
    """Snapshots from the in-process telemetry bus."""

    def __init__(self, bus_: Optional[TelemetryBus] = None,
                 series_len: int = 120):
        self.bus = bus_ if bus_ is not None else default_bus
        self.aggregator = RunAggregator(series_len=series_len)
        self._sub = self.bus.subscribe(
            kinds=("header", "frame", "summary", "alert", "registry"),
            name="top:live")

    def snapshot(self) -> Dict[str, Any]:
        self._sub.drain_into(self.aggregator.consume_event)
        return self.aggregator.snapshot()

    def close(self) -> None:
        self.bus.unsubscribe(self._sub)


class HttpSource:
    """Snapshots polled from a telemetry exporter's ``/runz``."""

    def __init__(self, endpoint: str, timeout: float = 5.0):
        endpoint = endpoint.strip().rstrip("/")
        if not endpoint.startswith(("http://", "https://")):
            endpoint = "http://" + endpoint
        if endpoint.endswith("/runz"):
            endpoint = endpoint[: -len("/runz")]
        self.endpoint = endpoint
        self.timeout = float(timeout)

    def snapshot(self) -> Dict[str, Any]:
        with urlopen(f"{self.endpoint}/runz", timeout=self.timeout) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def close(self) -> None:
        pass


class FlightSource:
    """Static snapshot replayed from a flight-record JSONL file."""

    def __init__(self, path: str, series_len: int = 120):
        from .flight import read_flight_record

        self.path = path
        log = read_flight_record(path)
        agg = RunAggregator(series_len=series_len)
        agg.consume("header", log.header)
        for frame in log.frames:
            agg.consume("frame", frame)
        if log.summary is not None:
            agg.consume("summary", log.summary)
        self.aggregator = agg

    def snapshot(self) -> Dict[str, Any]:
        return self.aggregator.snapshot()

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _num(value: Any, digits: int = 4) -> str:
    if value is None:
        return "—"
    try:
        f = float(value)
    except (TypeError, ValueError):
        return str(value)
    if not math.isfinite(f):
        return str(f)
    if f.is_integer() and abs(f) < 1e15:
        return f"{int(f):,}"
    return f"{f:.{digits}g}"


def _cm(metres: Any) -> str:
    """Metres → the report's centimetre formatting (``1.23 cm``)."""
    if metres is None:
        return "—"
    return f"{float(metres) * 100:.2f} cm"


def _progress_bar(current: Optional[int], total: Optional[int],
                  width: int = 24) -> str:
    if current is None or not total:
        return ""
    frac = min(1.0, (current + 1) / float(total))
    filled = int(round(frac * width))
    return f"[{'#' * filled}{'.' * (width - filled)}] {current + 1}/{total}"


def _kernel_label(header: Dict[str, Any]) -> str:
    """``backend`` or ``backend x<workers>`` from the flight header config.

    Surfaces the run's execution backend so wall-time deltas between
    registry runs can be attributed to backend/worker-count changes
    straight from the dashboard.  Empty for pre-backend flight records.
    """
    config = header.get("config") or {}
    backend = config.get("kernel_backend")
    if not backend:
        return ""
    workers = config.get("kernel_workers")
    label = str(backend)
    if workers and int(workers) > 1:
        label = f"{backend} x{int(workers)}"
    if config.get("render_cache"):
        label += "+cache"
    return label


def _spark_range(values: List[float]) -> str:
    finite = [v for v in values if isinstance(v, (int, float))
              and math.isfinite(float(v))]
    if not finite:
        return ""
    return f"{_num(min(finite))} .. {_num(max(finite))}"


def render_dashboard(snapshot: Dict[str, Any], width: int = 100,
                     color: bool = True) -> str:
    """Render one ``/runz`` snapshot as a multi-line ANSI dashboard."""
    bold, dim, red, reset = ((_BOLD, _DIM, _RED, _RESET) if color
                             else ("", "", "", ""))
    header = snapshot.get("header") or {}
    summary = snapshot.get("summary") or {}
    series = snapshot.get("series") or {}
    sampling = snapshot.get("sampling") or {}
    tracking = snapshot.get("tracking") or {}
    keyframe = snapshot.get("keyframe") or {}
    spark_width = max(16, min(60, width - 36))

    lines: List[str] = []
    title = (f"{bold}repro top{reset} — "
             f"{header.get('algorithm', '?')}/{header.get('mode', '?')}")
    sequence = header.get("sequence")
    if sequence:
        title += f" · {sequence}"
    bar = _progress_bar(snapshot.get("frame"), snapshot.get("frames_total"))
    if bar:
        title += f" · {bar}"
    if snapshot.get("done"):
        title += f" · {bold}done{reset}"
    lines.append(title)

    walls = series.get("wall_time_s") or []
    status = (
        f"  fps {_num(snapshot.get('fps'))}"
        f" · frame wall {_num(walls[-1] if walls else None)} s"
        f" · gaussians {_num(snapshot.get('gaussians'))}"
        f" · keyframes {_num(keyframe.get('buffer_size'))}")
    kern = _kernel_label(header)
    if kern:
        status += f" · kernel {kern}"
    lines.append(status)
    pose_line = (
        f"  pose rmse so far {_cm(snapshot.get('pose_rmse_so_far_m'))}"
        f" · last err {_cm(snapshot.get('pose_error_m'))}")
    if tracking:
        pose_line += (f" · track iters {_num(tracking.get('iterations'))}"
                      f" ({'conv' if tracking.get('converged') else 'div'},"
                      f" loss {_num(tracking.get('final_loss'))})")
    lines.append(pose_line)

    if sampling:
        total = sampling.get("total") or 0
        parts = [f"  sampling:"]
        for key in ("unseen", "weighted"):
            count = sampling.get(key)
            if count is not None and total:
                parts.append(f"{key} {100.0 * count / total:.0f}%")
            elif count is not None:
                parts.append(f"{key} {_num(count)}")
        if sampling.get("unseen_coverage") is not None:
            parts.append(f"coverage {_num(sampling['unseen_coverage'])}")
        if sampling.get("full_frame"):
            parts.append("full-frame")
        lines.append(" · ".join(parts))

    for label, key in _SPARK_ROWS:
        values = series.get(key) or []
        if not values:
            continue
        lines.append(f"  {label:<15}{dim}{sparkline(values, spark_width)}"
                     f"{reset}  {dim}{_spark_range(values)}{reset}")

    counters = snapshot.get("counters") or {}
    counter_bits = []
    for stage in ("tracking_fwd", "mapping_fwd"):
        headline = counters.get(stage) or {}
        pairs = headline.get("num_contrib_pairs")
        if pairs is not None:
            counter_bits.append(f"{stage} contrib {_num(pairs)}")
    if counter_bits:
        lines.append(f"  {dim}counters: {' · '.join(counter_bits)}{reset}")

    cache = snapshot.get("cache") or {}
    if (cache.get("hits") or 0) + (cache.get("misses") or 0):
        lines.append(
            f"  {dim}render cache: hit rate "
            f"{100.0 * (cache.get('hit_rate') or 0.0):.0f}%"
            f" · hits {_num(cache.get('hits'))}"
            f" · misses {_num(cache.get('misses'))}"
            f" · rebuilds {_num(cache.get('rebuilds'))}{reset}")

    alerts = snapshot.get("alerts") or []
    count = snapshot.get("alert_count") or 0
    if count:
        lines.append(f"  {red}alerts ({_num(count)}):{reset}")
        for alert in list(alerts)[-4:]:
            frame = alert.get("frame")
            where = f"[frame {frame}] " if frame is not None else ""
            lines.append(f"    {red}{where}{alert.get('monitor', '?')}: "
                         f"{alert.get('message', '')}{reset}")
    else:
        lines.append(f"  {dim}alerts: none{reset}")

    if summary:
        ate = summary.get("ate") or {}
        # Same strings as `repro report` — headline parity.
        final_lines = [f"  {bold}final:{reset}"]
        if ate:
            final_lines.append(
                f"    ATE rmse {ate.get('rmse', 0) * 100:.2f} cm "
                f"(median {ate.get('median', 0) * 100:.2f} cm, "
                f"max {ate.get('max', 0) * 100:.2f} cm)")
        if "final_gaussians" in summary:
            final_lines.append(
                f"    {summary['final_gaussians']} Gaussians after "
                f"{summary.get('mapping_invocations', '?')} mapping "
                f"invocations")
        if "tracking_iterations" in summary:
            final_lines.append(
                f"    {summary['tracking_iterations']} iterations total")
        kern = _kernel_label(header)
        if kern:
            final_lines.append(f"    kernel backend {kern}")
        lines.extend(final_lines)

    registry = snapshot.get("registry") or {}
    if registry.get("run_id"):
        lines.append(
            f"  {dim}registered:{reset} run {bold}{registry['run_id']}{reset}"
            f" · registry {registry.get('root', '?')}"
            f" ({_num(registry.get('runs_total'))} runs) — "
            f"repro runs show {registry['run_id']}")

    return "\n".join(line[: width + 24] if not color else line
                     for line in lines) + "\n"


# ---------------------------------------------------------------------------
# The top loop
# ---------------------------------------------------------------------------

def run_top(source, interval: float = 0.5, once: bool = False,
            width: int = 100, color: bool = True, out=None,
            max_iterations: Optional[int] = None) -> Dict[str, Any]:
    """Render snapshots from ``source`` until the run finishes.

    ``once`` renders a single snapshot without clearing the screen (the
    scriptable mode the tests and CI use).  Returns the last snapshot.
    ``max_iterations`` bounds the loop for tests.
    """
    stream = out if out is not None else sys.stdout
    snapshot: Dict[str, Any] = {}
    iterations = 0
    try:
        while True:
            snapshot = source.snapshot()
            text = render_dashboard(snapshot, width=width, color=color)
            if once:
                stream.write(text)
                break
            stream.write(_CLEAR if color else "\n")
            stream.write(text)
            stream.flush()
            iterations += 1
            if snapshot.get("done"):
                break
            if max_iterations is not None and iterations >= max_iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:   # pragma: no cover - interactive
        pass
    finally:
        source.close()
    return snapshot
