"""Run registry: an append-only, schema-versioned record of every run.

The rest of :mod:`repro.obs` is single-run: flight logs, bench
trajectories, and atlas artifacts are written, compared once, and
forgotten.  The registry makes them longitudinal — every registered run
becomes one JSON line in an append-only index plus a set of
content-addressed artifact blobs, so "when did mapping get slower and
which unit caused it" is a query (``repro runs trend`` /
``repro runs triage``) instead of archaeology.

Layout under the registry root (default ``.repro/runs/``)::

    index.jsonl              # one key-sorted JSON record per run
    objects/<aa>/<sha256>    # content-addressed artifact blobs

Each index record carries:

- ``run_id`` / ``seq`` / ``created`` — identity and ordering;
- ``key`` — the reproducibility key: environment fingerprint
  (:func:`repro.obs.bench.environment_fingerprint`), git SHA, config
  hash, and dataset, so trend lines can be segmented by "what actually
  changed";
- ``metrics`` — a flat ``{name: number}`` extraction of the run's
  headline quantities (wall sections, modeled cycles/DRAM bytes,
  ATE/RMSE, sparsity ratios, workload counters);
- ``artifacts`` — named references (``{"sha256": ..., "bytes": ...}``)
  into the object store: flight JSONL, bench payloads, atlas archives,
  attribution reports, regress reports.

Design rules, matching the rest of the stack:

- **Append-only.**  Registration appends one line; nothing rewrites
  history except an explicit :meth:`RunRegistry.prune`.
- **Content-addressed.**  Identical artifacts (two runs of the same
  deterministic workload) are stored once.
- **Disabled == free.**  The registry only exists when a caller
  constructs one; ``SLAMSystem.run(registry=None)`` (the default) adds
  a single ``is not None`` branch after the run, nothing per frame.
- **Stdlib-only module imports.**  Sibling ``repro.obs`` modules are
  imported at module level only where they are themselves stdlib-only
  (bench/flight/telemetry); everything else is lazy.

Registration publishes one ``"registry"`` event onto the telemetry bus
(:data:`repro.obs.telemetry.bus`) carrying the run id and registry
counters, so ``repro top`` can print the finished-run footer and the
stream/HTTP exporters see the registration.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional

from .bench import environment_fingerprint
from .flight import FlightLog, parse_flight_records, to_plain
from .telemetry import bus

__all__ = [
    "REGISTRY_SCHEMA_VERSION",
    "DEFAULT_REGISTRY_ROOT",
    "RunRegistry",
    "git_revision",
    "config_hash",
    "flight_metrics",
    "bench_metrics",
    "ingest_slam_run",
    "ingest_bench_payload",
]

#: Version of the index-record layout this module reads and writes.
REGISTRY_SCHEMA_VERSION = 1

#: Default registry root, relative to the working directory.
DEFAULT_REGISTRY_ROOT = os.path.join(".repro", "runs")


# ---------------------------------------------------------------------------
# Keying helpers
# ---------------------------------------------------------------------------

def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git HEAD SHA, or None outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def _canonical(value: Any) -> str:
    return json.dumps(to_plain(value), sort_keys=True, separators=(",", ":"))


def config_hash(config: Any) -> Optional[str]:
    """Short stable hash of a JSON-able config (None for no config)."""
    if config is None:
        return None
    return hashlib.sha256(_canonical(config).encode()).hexdigest()[:16]


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _as_bytes(artifact: Any) -> bytes:
    """Artifact payloads may be bytes, a str path, or a JSON-able object."""
    if isinstance(artifact, bytes):
        return artifact
    if isinstance(artifact, str):
        with open(artifact, "rb") as f:
            return f.read()
    return (_canonical(artifact) + "\n").encode()


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

class RunRegistry:
    """Append-only JSONL run index + content-addressed artifact store."""

    def __init__(self, root: str = DEFAULT_REGISTRY_ROOT):
        self.root = str(root)

    # ---- paths ----

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _object_path(self, sha: str) -> str:
        return os.path.join(self.objects_dir, sha[:2], sha)

    # ---- writing ----

    def _store_object(self, data: bytes) -> Dict[str, Any]:
        sha = _sha256(data)
        path = self._object_path(sha)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path))
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(data)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        return {"sha256": sha, "bytes": len(data)}

    def register(self, kind: str, *,
                 metrics: Optional[Dict[str, Any]] = None,
                 meta: Optional[Dict[str, Any]] = None,
                 config: Optional[Dict[str, Any]] = None,
                 sequence: Optional[str] = None,
                 artifacts: Optional[Dict[str, Any]] = None,
                 environment: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
        """Append one run record; returns the record (with ``run_id``).

        ``artifacts`` maps names to bytes, file paths, or JSON-able
        objects; each is stored content-addressed.  ``environment``
        defaults to the live fingerprint (pass a recorded one when
        ingesting a payload produced elsewhere).
        """
        refs = {name: self._store_object(_as_bytes(data))
                for name, data in sorted((artifacts or {}).items())}
        seq = len(self.runs(strict=False)) + 1
        record = {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "seq": seq,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "created_ts": round(time.time(), 3),
            "kind": str(kind),
            "key": {
                "environment": dict(environment if environment is not None
                                    else environment_fingerprint()),
                "git_sha": git_revision(),
                "config_hash": config_hash(config),
                "dataset": sequence,
            },
            "config": to_plain(config) if config is not None else None,
            "meta": to_plain(meta) if meta else {},
            "metrics": {k: float(v)
                        for k, v in sorted((metrics or {}).items())
                        if v is not None},
            "artifacts": refs,
        }
        record["run_id"] = "r" + _sha256(_canonical(record).encode())[:12]
        os.makedirs(self.root, exist_ok=True)
        with open(self.index_path, "a", encoding="utf-8") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
        stats = self.stats()
        bus.publish("registry", {
            "run_id": record["run_id"],
            "seq": seq,
            "kind": record["kind"],
            "root": self.root,
            "runs_total": stats["runs"],
            "objects_total": stats["objects"],
            "bytes_total": stats["bytes"],
        })
        return record

    # ---- reading ----

    def runs(self, kind: Optional[str] = None,
             strict: bool = True) -> List[Dict[str, Any]]:
        """Every index record in registration order.

        ``strict`` raises on malformed lines or unsupported schema
        versions; ``strict=False`` skips them (used internally while
        assigning sequence numbers so one bad line cannot brick
        registration).
        """
        records: List[Dict[str, Any]] = []
        if not os.path.exists(self.index_path):
            return records
        with open(self.index_path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    if strict:
                        raise ValueError(
                            f"{self.index_path}:{lineno}: malformed "
                            f"registry record ({exc})") from exc
                    continue
                version = record.get("schema_version")
                if version != REGISTRY_SCHEMA_VERSION:
                    if strict:
                        raise ValueError(
                            f"{self.index_path}:{lineno}: registry schema "
                            f"v{version} != supported "
                            f"v{REGISTRY_SCHEMA_VERSION}")
                    continue
                records.append(record)
        if kind is not None:
            records = [r for r in records if r.get("kind") == kind]
        return records

    def get(self, ref: str) -> Dict[str, Any]:
        """Resolve a run by id, unique id prefix, or sequence number.

        Integer-like refs address by position (``-1`` is the latest run,
        ``1`` the first).  Raises KeyError when nothing (or more than
        one run) matches.
        """
        records = self.runs()
        try:
            seq = int(ref)
        except (TypeError, ValueError):
            seq = None
        if seq is not None:
            if seq < 0:
                if -seq <= len(records):
                    return records[seq]
            else:
                for record in records:
                    if record.get("seq") == seq:
                        return record
            raise KeyError(f"no run with sequence number {ref}")
        matches = [r for r in records
                   if str(r.get("run_id", "")).startswith(ref)]
        if not matches:
            raise KeyError(f"no run matching {ref!r}")
        exact = [r for r in matches if r.get("run_id") == ref]
        if exact:
            return exact[-1]
        if len(matches) > 1:
            ids = ", ".join(r["run_id"] for r in matches[:5])
            raise KeyError(f"ambiguous run ref {ref!r} (matches {ids})")
        return matches[0]

    def artifact_path(self, record: Dict[str, Any], name: str) -> str:
        """Filesystem path of one of the record's artifact blobs."""
        refs = record.get("artifacts") or {}
        if name not in refs:
            raise KeyError(f"run {record.get('run_id')} has no "
                           f"artifact {name!r}")
        path = self._object_path(refs[name]["sha256"])
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"artifact object missing: {path} (pruned?)")
        return path

    def read_artifact(self, record: Dict[str, Any], name: str) -> bytes:
        with open(self.artifact_path(record, name), "rb") as f:
            return f.read()

    def load_artifact_json(self, record: Dict[str, Any], name: str) -> Any:
        return json.loads(self.read_artifact(record, name).decode())

    def load_flight(self, record: Dict[str, Any]) -> FlightLog:
        """Parse the record's ``flight`` artifact into a FlightLog."""
        lines = self.read_artifact(record, "flight").decode().splitlines()
        return parse_flight_records(
            [json.loads(line) for line in lines if line.strip()],
            path=f"{record.get('run_id')}:flight")

    def stats(self) -> Dict[str, Any]:
        """Registry totals: run count, object count, stored bytes."""
        objects = 0
        total = 0
        if os.path.isdir(self.objects_dir):
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for name in filenames:
                    objects += 1
                    total += os.path.getsize(os.path.join(dirpath, name))
        return {"root": self.root, "runs": len(self.runs(strict=False)),
                "objects": objects, "bytes": total}

    # ---- maintenance ----

    def prune(self, keep: int) -> Dict[str, int]:
        """Keep the most recent ``keep`` runs; drop unreferenced objects.

        The one operation that rewrites the index (atomically, via a
        temp file + rename).  Returns removal counts.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        records = self.runs()
        kept = records[len(records) - keep:] if keep else []
        removed_runs = len(records) - len(kept)
        live = {ref["sha256"] for record in kept
                for ref in (record.get("artifacts") or {}).values()}
        removed_objects = 0
        freed = 0
        if os.path.isdir(self.objects_dir):
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for name in filenames:
                    if name in live:
                        continue
                    path = os.path.join(dirpath, name)
                    freed += os.path.getsize(path)
                    os.unlink(path)
                    removed_objects += 1
        if os.path.exists(self.index_path) or kept:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root)
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                for record in kept:
                    f.write(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, self.index_path)
        return {"removed_runs": removed_runs,
                "removed_objects": removed_objects,
                "freed_bytes": freed,
                "kept_runs": len(kept)}


# ---------------------------------------------------------------------------
# Metric extraction: artifacts -> the flat trendable {name: number} dict
# ---------------------------------------------------------------------------

def _mean(values: Iterable[Any]) -> Optional[float]:
    xs = [float(v) for v in values if v is not None]
    return (sum(xs) / len(xs)) if xs else None


def flight_metrics(log: FlightLog) -> Dict[str, float]:
    """Flat headline metrics of one SLAM flight log.

    ATE sections, final map size, mean frame wall time, the mean alpha
    rejection rate (the run's sparsity ratio), and the per-stage
    workload counters summed over every frame — the quantities ``repro
    runs trend`` draws time series of.
    """
    out: Dict[str, float] = {}
    summary = log.summary or {}
    for key, value in (summary.get("ate") or {}).items():
        if isinstance(value, (int, float)):
            out[f"slam.ate.{key}_m"] = float(value)
    for key in ("final_gaussians", "mapping_invocations",
                "tracking_iterations"):
        if summary.get(key) is not None:
            out[f"slam.{key}"] = float(summary[key])
    out["slam.frames"] = float(log.num_frames)
    wall_mean = _mean(log.series("wall_time_s"))
    if wall_mean is not None:
        out["slam.wall.mean_s"] = wall_mean
    rejection = _mean(log.series("alpha.rejection_rate"))
    if rejection is not None:
        out["slam.alpha.rejection_mean"] = rejection
    totals: Dict[str, float] = {}
    for frame in log.frames:
        for stage, counters in (frame.get("counters") or {}).items():
            for name, value in (counters or {}).items():
                key = f"slam.{stage}.{name}"
                totals[key] = totals.get(key, 0.0) + float(value)
    out.update(totals)
    return out


def bench_metrics(payload: Dict[str, Any]) -> Dict[str, float]:
    """Flat metrics of one ``repro bench run`` trajectory payload.

    Every scenario's exact counters, modeled cycles/bytes, info
    quantities, wall median, overhead ratios, and traced per-span
    self-times, namespaced ``bench.<scenario>.<section>.<metric>``.
    """
    out: Dict[str, float] = {}
    for name, scn in sorted((payload.get("scenarios") or {}).items()):
        prefix = f"bench.{name}"
        for section in ("counters", "model", "info"):
            for key, value in sorted((scn.get(section) or {}).items()):
                if isinstance(value, (int, float)):
                    out[f"{prefix}.{section}.{key}"] = float(value)
        wall = scn.get("wall") or {}
        if "median_s" in wall:
            out[f"{prefix}.wall.median_s"] = float(wall["median_s"])
        overhead = scn.get("overhead") or {}
        if "ratio" in overhead:
            out[f"{prefix}.overhead.ratio"] = float(overhead["ratio"])
        for key, extra in sorted((overhead.get("extra") or {}).items()):
            if isinstance(extra, dict) and "ratio" in extra:
                out[f"{prefix}.overhead.{key}"] = float(extra["ratio"])
        for row in scn.get("trace_stages") or []:
            span = row.get("span")
            if span and row.get("self_s") is not None:
                out[f"{prefix}.trace.{span}.self_s"] = float(row["self_s"])
    return out


# ---------------------------------------------------------------------------
# Ingestion entry points
# ---------------------------------------------------------------------------

def ingest_slam_run(registry: RunRegistry,
                    records: List[Dict[str, Any]], *,
                    config: Optional[Dict[str, Any]] = None,
                    sequence: Optional[str] = None,
                    extra_artifacts: Optional[Dict[str, Any]] = None,
                    extra_metrics: Optional[Dict[str, Any]] = None,
                    ) -> Dict[str, Any]:
    """Register one finished SLAM run from its flight-record stream.

    ``records`` is the flight recorder's in-memory record list (header +
    frames + summary); it becomes the run's ``flight`` artifact and the
    source of the registered metrics.  ``SLAMSystem.run(registry=...)``
    and ``repro runs ingest --flight`` both land here.
    """
    plain = [to_plain(r) for r in records]
    log = parse_flight_records(plain)
    metrics = flight_metrics(log)
    if extra_metrics:
        metrics.update(extra_metrics)
    header = log.header
    meta = {key: header.get(key)
            for key in ("algorithm", "mode", "frames", "width", "height")
            if header.get(key) is not None}
    if config is None:
        config = header.get("config")
    artifacts: Dict[str, Any] = {
        "flight": "".join(json.dumps(r, sort_keys=True) + "\n"
                          for r in plain).encode(),
    }
    if extra_artifacts:
        artifacts.update(extra_artifacts)
    return registry.register(
        "slam", metrics=metrics, meta=meta, config=config,
        sequence=sequence if sequence is not None
        else header.get("sequence"),
        artifacts=artifacts)


def ingest_bench_payload(registry: RunRegistry,
                         payload: Dict[str, Any], *,
                         extra_artifacts: Optional[Dict[str, Any]] = None,
                         ) -> Dict[str, Any]:
    """Register one ``repro bench run`` trajectory payload."""
    config = {
        "suite": payload.get("suite"),
        "repetitions": payload.get("repetitions"),
        "sequence": payload.get("sequence"),
        "scenarios": sorted((payload.get("scenarios") or {})),
    }
    meta = {"suite": payload.get("suite"),
            "repetitions": payload.get("repetitions")}
    artifacts: Dict[str, Any] = {"bench": payload}
    if extra_artifacts:
        artifacts.update(extra_artifacts)
    return registry.register(
        "bench", metrics=bench_metrics(payload), meta=meta, config=config,
        sequence=payload.get("sequence"),
        environment=payload.get("environment"),
        artifacts=artifacts)
