"""Continuous-profiler front end over the span tracer.

The tracer (``repro.obs.tracing``) records wall *and* CPU time per span,
and — behind the opt-in memory flag — tracemalloc allocation/peak deltas.
This module turns those records into the profiler deliverables:

- :func:`profile` — capture context manager with memory profiling opt-in;
- :func:`top_spans` — the top-N spans by any aggregate column
  (``self_s`` by default, ``alloc_bytes`` for the allocation view);
- :func:`format_top_table` — the markdown top-N self-time/alloc table;
- :func:`write_profile` — schema-versioned, key-sorted JSON export.

Everything operates on the module tracer by default but accepts an
explicit :class:`~repro.obs.tracing.Tracer` for isolated captures.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from .tracing import Tracer, trace

__all__ = ["PROFILE_SCHEMA_VERSION", "profile", "top_spans",
           "format_top_table", "write_profile"]

PROFILE_SCHEMA_VERSION = 1

#: Columns a top-N table may be ranked by.
_SORT_KEYS = ("self_s", "total_s", "cpu_self_s", "cpu_total_s",
              "alloc_bytes", "peak_bytes", "count")


@contextmanager
def profile(memory: bool = False, tracer: Optional[Tracer] = None):
    """Capture spans (with CPU time, optionally allocations) in a block."""
    t = tracer if tracer is not None else trace
    with t.capture(memory=memory or None):
        yield t


def top_spans(tracer: Optional[Tracer] = None, n: int = 10,
              by: str = "self_s") -> List[Dict[str, Any]]:
    """The ``n`` heaviest aggregate rows, ranked by column ``by``."""
    if by not in _SORT_KEYS:
        raise ValueError(f"unknown sort column {by!r}; one of {_SORT_KEYS}")
    t = tracer if tracer is not None else trace
    rows = t.stage_table()
    rows.sort(key=lambda row: -(row.get(by) or 0))
    return rows[:n]


def _fmt_bytes(value: Optional[int]) -> str:
    if value is None:
        return "—"
    sign = "-" if value < 0 else ""
    mag = abs(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if mag < 1024 or unit == "GiB":
            return f"{sign}{mag:.1f} {unit}" if unit != "B" \
                else f"{sign}{mag:d} B"
        mag /= 1024
    return f"{sign}{mag:.1f} GiB"  # pragma: no cover - loop always returns


def format_top_table(tracer: Optional[Tracer] = None, n: int = 10,
                     by: str = "self_s",
                     title: Optional[str] = None) -> str:
    """Markdown top-N table: wall + CPU self time and (if on) allocs."""
    t = tracer if tracer is not None else trace
    rows = top_spans(t, n=n, by=by)
    has_mem = any("alloc_bytes" in row for row in rows)
    lines = []
    if title:
        lines.append(f"### {title}")
    header = "| span | count | self ms | cpu self ms |"
    rule = "|---|---:|---:|---:|"
    if has_mem:
        header += " alloc | peak |"
        rule += "---:|---:|"
    lines += [header, rule]
    for row in rows:
        line = (f"| {row['span']} | {row['count']} "
                f"| {row['self_s'] * 1e3:.2f} "
                f"| {row['cpu_self_s'] * 1e3:.2f} |")
        if has_mem:
            line += (f" {_fmt_bytes(row.get('alloc_bytes'))} "
                     f"| {_fmt_bytes(row.get('peak_bytes'))} |")
        lines.append(line)
    if not rows:
        empty = "| (no spans recorded) | 0 | 0.00 | 0.00 |"
        if has_mem:
            empty += " — | — |"
        lines.append(empty)
    return "\n".join(lines)


def write_profile(path: str, tracer: Optional[Tracer] = None,
                  n: int = 50, by: str = "self_s") -> int:
    """Write the top-N aggregate rows as key-sorted JSON; returns count."""
    t = tracer if tracer is not None else trace
    rows = top_spans(t, n=n, by=by)
    payload = {
        "schema_version": PROFILE_SCHEMA_VERSION,
        "sorted_by": by,
        "memory_profiled": any("alloc_bytes" in row for row in rows),
        "spans": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(rows)
