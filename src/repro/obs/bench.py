"""Benchmark orchestration: the curated perf-trajectory suite.

``run_suite`` executes a registry of scenarios — tracking / mapping
iteration workloads, a proxy SLAM end-to-end run, and hardware-unit
replays — under the span tracer, repeating each one ``repetitions``
times, and emits a canonical, schema-versioned ``BENCH_trajectory.json``:

- **counters** — deterministic workload counters (pixel–Gaussian pairs,
  sort keys, atomic adds, ...).  Exact across runs on the same code; the
  regression gate (:mod:`repro.obs.regress`) diffs them bit-for-bit.
- **model**   — modeled latencies/cycles/bytes from the hardware models.
  Deterministic functions of the counters; compared with a tiny relative
  tolerance.  All model metrics are oriented so *smaller is better*.
- **info**    — contextual rates (hit rates, utilization, speedups) that
  are reported but never gated.
- **wall**    — median + MAD wall-clock seconds over the repetitions,
  compared with a noise-aware tolerance.

The file also carries an environment fingerprint (python/numpy versions,
platform, CPU count) so a trajectory can be interpreted — and wall-time
comparisons distrusted — across machines.

This module keeps its imports stdlib-only at module level; scenario
bodies import the rest of the package lazily, so ``repro.obs`` stays
cycle-free.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .log import get_logger
from .tracing import trace

__all__ = [
    "SCHEMA_VERSION",
    "SIZES",
    "SCENARIOS",
    "SizeSpec",
    "SuiteConfig",
    "Scenario",
    "scenario",
    "median_mad",
    "environment_fingerprint",
    "run_suite",
    "write_trajectory",
]

log = get_logger("obs.bench")

#: Version of the ``BENCH_trajectory.json`` layout.  Bump on any breaking
#: change to the payload structure; the comparator refuses mismatches.
SCHEMA_VERSION = 1

#: Headline PipelineStats counters recorded per pass.
_PASS_COUNTERS = (
    "num_projected",
    "num_pixels",
    "num_candidate_pairs",
    "num_contrib_pairs",
    "num_sort_keys",
    "num_alpha_checks",
    "num_atomic_adds",
)


@dataclass(frozen=True)
class SizeSpec:
    """Proxy-scenario dimensions for one suite size."""

    width: int
    height: int
    frames: int
    tracking_tile: int
    mapping_tile: int


#: Suite sizes.  ``small`` is the CI point; ``tiny`` exists for tests.
SIZES: Dict[str, SizeSpec] = {
    "tiny": SizeSpec(32, 24, 6, 8, 4),
    "small": SizeSpec(48, 36, 6, 8, 4),
    "default": SizeSpec(96, 64, 10, 16, 4),
}


@dataclass(frozen=True)
class SuiteConfig:
    """One suite invocation: scenario dimensions + repetition policy."""

    size: str = "small"
    repetitions: int = 3
    sequence: str = "room0"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size not in SIZES:
            raise ValueError(
                f"unknown size {self.size!r}; choose from {sorted(SIZES)}")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def spec(self) -> SizeSpec:
        return SIZES[self.size]


@dataclass(frozen=True)
class Scenario:
    """A named, repeatable measurement.

    ``run(config)`` returns the deterministic sections —
    ``{"counters": {...}, "model": {...}, "info": {...}}`` — while the
    suite runner adds wall-clock statistics around it.
    """

    name: str
    description: str
    run: Callable[[SuiteConfig], Dict[str, Dict[str, float]]]


#: Registry of curated scenarios, in registration (execution) order.
SCENARIOS: Dict[str, Scenario] = {}


def scenario(name: str, description: str):
    """Register a suite scenario (decorator)."""
    def deco(fn):
        SCENARIOS[name] = Scenario(name, description, fn)
        return fn
    return deco


# ---------------------------------------------------------------------------
# Statistics + fingerprint
# ---------------------------------------------------------------------------

def median_mad(samples: Iterable[float]) -> Tuple[float, float]:
    """Median and median absolute deviation of ``samples``."""
    xs = sorted(float(s) for s in samples)
    if not xs:
        return 0.0, 0.0

    def _median(values: List[float]) -> float:
        n = len(values)
        mid = n // 2
        if n % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    med = _median(xs)
    mad = _median(sorted(abs(x - med) for x in xs))
    return med, mad


def environment_fingerprint() -> Dict[str, Any]:
    """Identify the machine/toolchain a trajectory was recorded on."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


# ---------------------------------------------------------------------------
# Curated scenarios
# ---------------------------------------------------------------------------

def _bundle(cfg: SuiteConfig):
    from ..bench.scenarios import build_bundle

    spec = cfg.spec
    return build_bundle(cfg.sequence, width=spec.width, height=spec.height,
                        n_frames=spec.frames, seed=cfg.seed)


def _pass_counters(prefix: str, workloads) -> Dict[str, int]:
    counters: Dict[str, int] = {}
    for variant, workload in sorted(workloads.items()):
        for pass_name, stats in (("fwd", workload.fwd), ("bwd", workload.bwd)):
            for key in _PASS_COUNTERS:
                counters[f"{prefix}{variant}.{pass_name}.{key}"] = int(
                    getattr(stats, key))
    return counters


def _iteration_sections(workloads) -> Dict[str, Dict[str, float]]:
    """counters/model/info for one {dense, tile_sparse, pixel} workload set."""
    from ..hw import GpuModel, SplatonicAccelerator

    counters = _pass_counters("", workloads)
    model: Dict[str, float] = {}
    info: Dict[str, float] = {}

    gpu = GpuModel()
    gpu_total: Dict[str, float] = {}
    for variant, workload in sorted(workloads.items()):
        times = gpu.iteration_times(workload)
        gpu_total[variant] = times.total
        model[f"gpu.{variant}.forward_s"] = times.forward
        model[f"gpu.{variant}.backward_s"] = times.backward
        model[f"gpu.{variant}.total_s"] = times.total

    report = SplatonicAccelerator().iteration_report(workloads["pixel"])
    model["accel.forward_s"] = report.forward_s
    model["accel.backward_s"] = report.backward_s
    model["accel.total_s"] = report.total_s
    model["accel.energy_j"] = report.energy_j
    for stage, seconds in sorted(report.stage_seconds.items()):
        model[f"accel.stage.{stage}_s"] = seconds

    info["speedup.accel_over_dense_gpu"] = report.speedup_over(
        gpu_total["dense"])
    info["speedup.pixel_over_dense_gpu"] = (
        gpu_total["dense"] / gpu_total["pixel"] if gpu_total["pixel"] else 0.0)
    fwd = workloads["pixel"].fwd
    info["pixel.alpha_pass_rate"] = fwd.alpha_pass_rate
    info["pixel.warp_utilization"] = fwd.warp_utilization()
    return {"counters": counters, "model": model, "info": info}


#: Iterations of the temporal-coherence cache legs per scenario run —
#: matches the real mapping optimizer loop (~24 iters/keyframe) so the
#: cold-build cost amortizes the way it does in production; tracking
#: loops run even longer (~60 iters), so this understates that win.
_CACHE_ITERS = 24

#: Timing passes per leg; the wall clock is the best-of over passes (the
#: first pass doubles as the numpy warm-up), which keeps ``speedup.cache``
#: from being decided by a single noisy sample.
_CACHE_PASSES = 3

#: Backend the cache legs render with (the production fast path).
_CACHE_BACKEND = "vectorized"


def _cache_leg_sections(cfg: SuiteConfig, mode: str,
                        counters: Dict[str, float],
                        info: Dict[str, float]) -> None:
    """Measure the temporal-coherence render cache on one loop shape.

    Replays a deterministic optimizer-loop proxy — ``tracking``: fixed
    cloud, pose drifting by a constant twist per iteration (lattice
    candidate generation); ``mapping``: fixed camera/pixels, parameters
    drifting by a constant Adam-sized step (chunked candidate
    generation) — once uncached and once through a fresh
    :class:`repro.render.cache.RenderCache`.  Adds the bit-identity flag
    and hit/rebuild counts to ``counters`` (exact-gated: the drift is
    deterministic, so they are rep-stable) and the wall/speedup/hit-rate
    keys to ``info``.
    """
    import numpy as np

    from ..core.pixel_pipeline import backward_sparse, render_sparse
    from ..core.sampling import sample_tracking_pixels
    from ..gaussians.camera import Camera
    from ..gaussians.se3 import se3_exp
    from ..render.cache import RenderCache

    bundle = _bundle(cfg)
    spec = cfg.spec
    if mode == "tracking":
        tile = spec.tracking_tile
        lattice_tile = tile
        twist = np.array([2e-3, -1e-3, 1.5e-3, 1e-3, -5e-4, 8e-4])
        param_step = None
        pixel_seed = cfg.seed
    else:
        tile = spec.mapping_tile
        # The mapper's pixel sets are not the tracking lattice; route
        # through the chunked corner-test generator like mapping does.
        lattice_tile = None
        twist = None
        param_step = np.random.default_rng(cfg.seed + 1).normal(
            0.0, 1e-3, bundle.cloud.pack().size)
        pixel_seed = cfg.seed + 1
    pixels = sample_tracking_pixels(
        spec.width, spec.height, tile, "random",
        np.random.default_rng(pixel_seed))

    def run(make_cache):
        cache = make_cache()
        outs = []
        cloud = bundle.cloud
        pose = bundle.camera.pose_c2w
        wall = 0.0
        for _ in range(_CACHE_ITERS):
            camera = Camera(bundle.camera.intrinsics, pose)
            start = perf_counter()
            result = render_sparse(
                cloud, camera, pixels, backend=_CACHE_BACKEND,
                lattice_tile=lattice_tile, record_per_pixel=False,
                cache=cache)
            grads = backward_sparse(
                result, cloud, camera,
                np.ones_like(result.color), np.ones_like(result.depth),
                np.ones_like(result.silhouette))
            wall += perf_counter() - start
            outs.append((result, grads))
            if twist is not None:
                pose = pose @ se3_exp(twist)
            if param_step is not None:
                cloud = cloud.unpack(cloud.pack() + param_step)
        return outs, wall, cache

    # Each pass rebuilds its cache from cold, so every pass sees the same
    # deterministic hit/miss sequence; best-of-passes wall times keep one
    # noisy sample from flipping the reported speedup.
    off_outs = on_outs = cache = None
    wall_off = wall_on = float("inf")
    for _ in range(_CACHE_PASSES):
        off_outs, wall, _unused = run(lambda: None)
        wall_off = min(wall_off, wall)
    for _ in range(_CACHE_PASSES):
        on_outs, wall, cache = run(lambda: RenderCache(mode=mode))
        wall_on = min(wall_on, wall)

    identical = all(
        np.array_equal(a_r.color, b_r.color)
        and np.array_equal(a_r.depth, b_r.depth)
        and np.array_equal(a_r.silhouette, b_r.silhouette)
        and np.array_equal(a_g.d_means, b_g.d_means)
        and np.array_equal(a_g.d_colors, b_g.d_colors)
        and a_r.stats.as_dict() == b_r.stats.as_dict()
        and a_g.stats.as_dict() == b_g.stats.as_dict()
        for (a_r, a_g), (b_r, b_g) in zip(off_outs, on_outs))

    counters["cache.identical"] = int(identical)
    counters["cache.hits"] = int(cache.hits)
    counters["cache.misses"] = int(cache.misses)
    counters["cache.rebuilds"] = int(cache.rebuilds)
    info["wall.cache_off_s"] = wall_off / _CACHE_ITERS
    info["wall.cache_on_s"] = wall_on / _CACHE_ITERS
    info["speedup.cache"] = wall_off / wall_on if wall_on else 0.0
    info["cache.hit_rate"] = (cache.hits / (cache.hits + cache.misses)
                              if (cache.hits + cache.misses) else 0.0)
    info["cache.margin_px"] = float(cache.margin)


@scenario("tracking",
          "sparse tracking iteration: dense/Org.+S/pixel workload counters "
          "+ modeled GPU and SPLATONIC-HW latency + render-cache leg")
def _scn_tracking(cfg: SuiteConfig) -> Dict[str, Dict[str, float]]:
    from ..bench.scenarios import tracking_workloads

    bundle = _bundle(cfg)
    workloads = tracking_workloads(bundle, tile=cfg.spec.tracking_tile,
                                   seed=cfg.seed)
    sections = _iteration_sections(workloads)
    _cache_leg_sections(cfg, "tracking", sections["counters"],
                        sections["info"])
    return sections


@scenario("mapping",
          "mapping iteration: dense/Org.+S/pixel workload counters "
          "+ modeled GPU and SPLATONIC-HW latency + render-cache leg")
def _scn_mapping(cfg: SuiteConfig) -> Dict[str, Dict[str, float]]:
    from ..bench.scenarios import mapping_workloads

    bundle = _bundle(cfg)
    workloads = mapping_workloads(bundle, tile=cfg.spec.mapping_tile,
                                  seed=cfg.seed)
    sections = _iteration_sections(workloads)
    _cache_leg_sections(cfg, "mapping", sections["counters"],
                        sections["info"])
    return sections


@scenario("slam_e2e",
          "proxy SLAM end-to-end run: accumulated per-stage workload "
          "counters + wall time")
def _scn_slam_e2e(cfg: SuiteConfig) -> Dict[str, Dict[str, float]]:
    from ..slam import SLAMSystem

    bundle = _bundle(cfg)
    # Per-pixel record lists are benchmark dead weight (nothing here reads
    # them); scalar counters are unaffected by the flag.
    result = SLAMSystem("splatam", mode="sparse", seed=cfg.seed,
                        record_per_pixel=False).run(bundle.sequence)

    counters: Dict[str, float] = {
        "frames": int(result.num_frames),
        "map_gaussians": int(len(result.cloud)),
        "mapping_invocations": int(result.mapping_invocations),
        "tracking_iterations": int(sum(result.tracking_iterations)),
    }
    for stage in SLAMSystem.STAGES:
        stats = result.stage_stats[stage]
        for key in _PASS_COUNTERS:
            counters[f"{stage}.{key}"] = int(getattr(stats, key))
        counters[f"{stage}.image_width"] = int(stats.image_width)
        counters[f"{stage}.image_height"] = int(stats.image_height)

    info: Dict[str, float] = {
        "ate_rmse_m": float(result.ate().rmse),
    }
    return {"counters": counters, "model": {}, "info": info}


#: Tracking lattice tile for the kernel-backend scenario — denser than the
#: suite's tracking tile so the K-pixel batch is large enough to expose
#: the per-pixel loop's Python overhead (the quantity being measured).
_KERNEL_TILE = 4

#: Forward+backward repetitions per backend inside one scenario run.
_KERNEL_REPS = 3


#: Worker-pool size of the kernel scenario's ``parallel`` leg.
_KERNEL_BENCH_WORKERS = 4


def _span_self_times(records) -> Dict[str, float]:
    """Sum tracer span self-times by name over a record slice."""
    out: Dict[str, float] = {}
    for record in records:
        out[record.name] = out.get(record.name, 0.0) + record.self_time
    return out


@scenario("kernels",
          "sparse tracking render, reference vs vectorized vs parallel "
          "kernel backend: bit-identity check + wall-clock speedup")
def _scn_kernels(cfg: SuiteConfig) -> Dict[str, Dict[str, float]]:
    import numpy as np

    from ..core.pixel_pipeline import backward_sparse, render_sparse
    from ..core.sampling import sample_tracking_pixels

    bundle = _bundle(cfg)
    spec = cfg.spec
    pixels = sample_tracking_pixels(
        spec.width, spec.height, _KERNEL_TILE, "random",
        np.random.default_rng(cfg.seed))

    counters: Dict[str, float] = {}
    walls: Dict[str, float] = {}
    outputs: Dict[str, Any] = {}
    stage_self: Dict[str, Dict[str, float]] = {}
    for backend in ("reference", "vectorized", "parallel"):
        workers = _KERNEL_BENCH_WORKERS if backend == "parallel" else None

        def iteration(record: bool = False):
            result = render_sparse(
                bundle.cloud, bundle.camera, pixels,
                backend=backend, lattice_tile=_KERNEL_TILE,
                kernel_workers=workers,
                record_per_pixel=record)
            grads = backward_sparse(
                result, bundle.cloud, bundle.camera,
                np.ones_like(result.color), np.ones_like(result.depth),
                np.ones_like(result.silhouette))
            return result, grads

        result, grads = iteration()  # warm-up + counter capture
        for pass_name, stats in (("fwd", result.stats), ("bwd", grads.stats)):
            for key in _PASS_COUNTERS:
                counters[f"{backend}.{pass_name}.{key}"] = int(
                    getattr(stats, key))
        span_cursor = len(trace.records)
        start = perf_counter()
        for _ in range(_KERNEL_REPS):
            result, grads = iteration()
        walls[backend] = (perf_counter() - start) / _KERNEL_REPS
        outputs[backend] = (result, grads)
        stage_self[backend] = _span_self_times(trace.records[span_cursor:])

    def _identical(a, b) -> bool:
        a_r, a_g = a
        b_r, b_g = b
        return (
            np.array_equal(a_r.color, b_r.color)
            and np.array_equal(a_r.depth, b_r.depth)
            and np.array_equal(a_r.silhouette, b_r.silhouette)
            and np.array_equal(a_g.d_means, b_g.d_means)
            and np.array_equal(a_g.d_colors, b_g.d_colors)
            and a_r.stats.as_dict() == b_r.stats.as_dict()
            and a_g.stats.as_dict() == b_g.stats.as_dict())

    counters["backends_identical"] = int(
        _identical(outputs["reference"], outputs["vectorized"]))
    # The sharded backend's determinism contract: bit-identical to the
    # vectorized kernel it decomposes (outputs, gradients, and counters).
    counters["parallel_identical"] = int(
        _identical(outputs["vectorized"], outputs["parallel"]))

    info = {
        "wall.reference_s": walls["reference"],
        "wall.vectorized_s": walls["vectorized"],
        "wall.parallel_s": walls["parallel"],
        "speedup.vectorized_over_reference": (
            walls["reference"] / walls["vectorized"]
            if walls["vectorized"] else 0.0),
        # >1 needs real cores: thread shards only overlap where numpy
        # releases the GIL, so single-core hosts measure ~1x or below.
        "speedup.parallel_over_vectorized": (
            walls["vectorized"] / walls["parallel"]
            if walls["parallel"] else 0.0),
        "workers.parallel": _KERNEL_BENCH_WORKERS,
    }
    # Stage-split visibility: the candidate-generation share of the
    # forward pass (projection + candidate/α-check self-time vs
    # compositing) — the target the temporal-coherence render cache
    # attacks; tracked longitudinally per backend.
    for backend, selfs in sorted(stage_self.items()):
        candidate = (selfs.get("render.project", 0.0)
                     + selfs.get("render.alpha_check", 0.0))
        composite = selfs.get("render.composite", 0.0)
        total = candidate + composite
        info[f"candidate_stage_fraction.{backend}"] = (
            candidate / total if total else 0.0)
    return {"counters": counters, "model": {}, "info": info}


@scenario("obs_overhead",
          "observability cost: proxy SLAM with every obs feature off vs "
          "tracer+metrics+flight+atlas+health all on, plus telemetry-bus "
          "legs (publishing with zero and one subscriber) — gated ratios")
def _scn_obs_overhead(cfg: SuiteConfig) -> Dict[str, Dict[str, float]]:
    import numpy as np

    from ..slam import SLAMSystem
    from .atlas import AtlasCollector, AtlasLog
    from .flight import FlightRecorder
    from .health import HealthMonitor
    from .metrics import MetricsRegistry, ingest_pipeline_stats
    from .telemetry import bus as telemetry_bus

    bundle = _bundle(cfg)

    def run_slam(flight=None, health=None, atlas=None):
        system = SLAMSystem("splatam", mode="sparse", seed=cfg.seed,
                            record_per_pixel=False)
        return system.run(bundle.sequence, flight=flight, health=health,
                          atlas=atlas)

    # All-off leg.  The suite runner keeps the global tracer enabled
    # around scenario bodies, so it must be disabled explicitly here —
    # otherwise the "off" leg would already pay the span cost.
    was_enabled = trace.enabled
    trace.disable()
    try:
        # Untimed warm-up: the first run pays allocator/cache cold-start
        # costs that would otherwise inflate the all-off leg and bias
        # the ratio below 1.
        run_slam()
        start = perf_counter()
        result_off = run_slam()
        off_s = perf_counter() - start
    finally:
        if was_enabled:
            trace.enable(reset=False)

    # All-on leg: tracer + in-memory flight recorder + health monitor +
    # in-memory atlas collector, then a metrics ingest of the results.
    flight = FlightRecorder()
    flight.enable()
    health = HealthMonitor()
    collector = AtlasCollector(tile=cfg.spec.tracking_tile)
    collector.enable()
    trace.enable(reset=False)
    spans_before = len(trace.records)
    try:
        start = perf_counter()
        result_on = run_slam(flight=flight, health=health, atlas=collector)
        on_s = perf_counter() - start
    finally:
        spans = len(trace.records) - spans_before
        if not was_enabled:
            trace.disable()
        flight.disable()
        collector.disable()

    registry = MetricsRegistry()
    for stage in SLAMSystem.STAGES:
        ingest_pipeline_stats(stage, result_on.stage_stats[stage],
                              registry=registry)

    # Telemetry-bus legs: publishing on with nobody listening, then with
    # one (promexport-style) subscriber whose ring is large enough that
    # nothing drops — both must stay passive and inside the gated
    # overhead budget.  The tracer stays off so the published-event
    # count is the deterministic run stream (header + frames + per-frame
    # metrics snapshots + summary + alerts), not span noise.
    trace.disable()
    telemetry_bus.enable()
    # The wall-time spike monitor publishes alerts keyed to real frame
    # timings — nondeterministic — so the bus legs run with it off to
    # keep the published-event count an exact gated counter.
    from .health import HealthConfig as _HealthConfig

    def bus_health() -> HealthMonitor:
        return HealthMonitor(_HealthConfig(frame_time_factor=0))
    try:
        start = perf_counter()
        result_bus = run_slam(health=bus_health())
        bus_on_s = perf_counter() - start
        published_no_sub = telemetry_bus.published()

        sub = telemetry_bus.subscribe(maxlen=8192, name="bench:obs_overhead")
        telemetry_bus.reset()
        start = perf_counter()
        result_bus_sub = run_slam(health=bus_health())
        bus_sub_s = perf_counter() - start
        published_sub = telemetry_bus.published()
        delivered = int(sub.delivered)
        bus_dropped = telemetry_bus.dropped()
        telemetry_bus.unsubscribe(sub)
    finally:
        telemetry_bus.disable()
        if was_enabled:
            trace.enable(reset=False)

    # Observability must be passive: the instrumented runs have to
    # produce the bit-identical trajectory, map, and counters.
    def _same(result) -> bool:
        return bool(
            np.array_equal(result_off.est_trajectory, result.est_trajectory)
            and len(result_off.cloud) == len(result.cloud)
            and all(result_off.stage_stats[s].as_dict()
                    == result.stage_stats[s].as_dict()
                    for s in SLAMSystem.STAGES))

    passive = _same(result_on)
    bus_passive = _same(result_bus) and _same(result_bus_sub)

    alog = AtlasLog.from_collector(collector)
    observed = alog.observed_totals()
    export = registry.export()
    counters = {
        "frames": int(result_on.num_frames),
        "obs_passive": int(passive),
        "obs_passive_bus": int(bus_passive),
        "flight.records": int(len(flight.records)),
        "atlas.frames": int(alog.num_frames),
        "atlas.candidates": int(sum(v["candidates"]
                                    for v in observed.values())),
        "atlas.atomics": int(sum(v["atomics"] for v in observed.values())),
        "spans": int(spans),
        "metrics.counters": int(len(export["counters"])),
        "metrics.gauges": int(len(export["gauges"])),
        "telemetry.published": int(published_no_sub),
        "telemetry.published_sub": int(published_sub),
        "telemetry.delivered": int(delivered),
        "telemetry.dropped": int(bus_dropped),
    }
    info = {
        "wall.all_off_s": off_s,
        "wall.all_on_s": on_s,
        "wall.bus_on_s": bus_on_s,
        "wall.bus_sub_s": bus_sub_s,
        "overhead_ratio": (on_s / off_s) if off_s > 0 else 0.0,
    }
    overhead = {
        "ratio": (on_s / off_s) if off_s > 0 else 0.0,
        "bus_ratio": (bus_on_s / off_s) if off_s > 0 else 0.0,
        "bus_sub_ratio": (bus_sub_s / off_s) if off_s > 0 else 0.0,
    }
    return {"counters": counters, "model": {}, "info": info,
            "overhead": overhead}


@scenario("hw_units",
          "hardware-unit replays on the mapping pixel workload: "
          "aggregation scoreboard, hierarchical sorter, DRAM traffic")
def _scn_hw_units(cfg: SuiteConfig) -> Dict[str, Dict[str, float]]:
    from ..bench.scenarios import mapping_workloads
    from ..hw import AggregationUnit, HierarchicalSorter, SortingUnitConfig

    bundle = _bundle(cfg)
    workloads = mapping_workloads(bundle, tile=cfg.spec.mapping_tile,
                                  seed=cfg.seed)
    pixel = workloads["pixel"]

    agg = AggregationUnit().simulate(pixel.bwd.pixel_contrib_ids)
    counters = {
        "aggregation.tuples": int(agg.tuples),
        "aggregation.cache_hits": int(agg.cache_hits),
        "aggregation.cache_misses": int(agg.cache_misses),
        "aggregation.unique_accumulations": int(agg.unique_accumulations),
        "sorter.keys": int(pixel.fwd.num_sort_keys),
    }
    sorter = HierarchicalSorter(SortingUnitConfig())
    model = {
        "aggregation.cycles": float(agg.cycles),
        "aggregation.stall_cycles": float(agg.stall_cycles),
        "aggregation.dram_bytes": float(agg.dram_bytes),
        "sorter.cycles": float(
            sorter.total_cycles(pixel.fwd.pixel_list_lengths)),
    }
    info = {
        "aggregation.hit_rate": agg.hit_rate,
        "aggregation.cycles_per_tuple": agg.cycles_per_tuple,
    }
    return {"counters": counters, "model": model, "info": info}


# ---------------------------------------------------------------------------
# Suite runner
# ---------------------------------------------------------------------------

def _resolve_scenarios(names: Optional[Iterable[str]]) -> List[Scenario]:
    if names is None:
        return list(SCENARIOS.values())
    out = []
    for name in names:
        if isinstance(name, Scenario):
            out.append(name)
            continue
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
        out.append(SCENARIOS[name])
    return out


def _run_scenario(scn: Scenario, cfg: SuiteConfig) -> Dict[str, Any]:
    samples: List[float] = []
    overhead_samples: Dict[str, List[float]] = {}
    sections: Optional[Dict[str, Dict[str, float]]] = None
    stable = True
    with trace.capture():
        for _rep in range(cfg.repetitions):
            start = perf_counter()
            out = scn.run(cfg)
            samples.append(perf_counter() - start)
            if sections is not None and out["counters"] != sections["counters"]:
                stable = False
            sections = out
            for key, value in (out.get("overhead") or {}).items():
                overhead_samples.setdefault(key, []).append(float(value))
        stage_rows = trace.stage_table()
    assert sections is not None

    med, mad = median_mad(samples)
    if not stable:
        log.warning(f"{scn.name}: counters varied across repetitions — "
                    f"the scenario is not deterministic")
    result: Dict[str, Any] = {
        "description": scn.description,
        "counters": {k: int(v) for k, v in sorted(sections["counters"].items())},
        "model": {k: float(v) for k, v in sorted(sections["model"].items())},
        "info": {k: float(v) for k, v in sorted(sections["info"].items())},
        "wall": {
            "median_s": round(med, 6),
            "mad_s": round(mad, 6),
            "samples_s": [round(s, 6) for s in samples],
            "repetitions": cfg.repetitions,
        },
        "stable_counters": stable,
        "trace_stages": sorted(
            ({"span": r["span"], "count": r["count"],
              "total_s": round(r["total_s"], 6),
              "self_s": round(r["self_s"], 6)} for r in stage_rows),
            key=lambda row: row["span"]),
    }
    if overhead_samples:
        # Optional gated section: the observability-overhead ratios
        # (instrumented / all-off wall time).  Compared by
        # repro.obs.regress against a hard budget — median + MAD like
        # the wall section.  The headline "ratio" key keeps the original
        # flat layout; any further named ratios the scenario reports
        # (e.g. the telemetry-bus legs) land under "extra" so old
        # baselines stay comparable.
        omed, omad = median_mad(overhead_samples.get("ratio", [0.0]))
        result["overhead"] = {
            "ratio": round(omed, 4),
            "mad": round(omad, 4),
            "samples": [round(s, 4)
                        for s in overhead_samples.get("ratio", [])],
            "repetitions": cfg.repetitions,
        }
        extra = {}
        for key in sorted(overhead_samples):
            if key == "ratio":
                continue
            emed, emad = median_mad(overhead_samples[key])
            extra[key] = {
                "ratio": round(emed, 4),
                "mad": round(emad, 4),
                "samples": [round(s, 4) for s in overhead_samples[key]],
            }
        if extra:
            result["overhead"]["extra"] = extra
    return result


def run_suite(config: Optional[SuiteConfig] = None,
              scenarios: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    """Execute the suite and return the ``BENCH_trajectory`` payload."""
    cfg = config or SuiteConfig()
    selected = _resolve_scenarios(scenarios)
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "suite": cfg.size,
        "sequence": cfg.sequence,
        "repetitions": cfg.repetitions,
        "environment": environment_fingerprint(),
        "scenarios": {},
    }
    for scn in selected:
        log.info(f"scenario {scn.name} ({cfg.size}, "
                 f"{cfg.repetitions} repetitions) ...")
        result = _run_scenario(scn, cfg)
        payload["scenarios"][scn.name] = result
        wall = result["wall"]
        log.info(f"  {scn.name}: median {wall['median_s'] * 1e3:.1f} ms "
                 f"(MAD {wall['mad_s'] * 1e3:.1f} ms), "
                 f"{len(result['counters'])} counters")
    return payload


def write_trajectory(payload: Dict[str, Any], path: str) -> None:
    """Write a suite payload as canonical (key-sorted) JSON."""
    with open(path, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
