"""Per-frame SLAM flight recorder: structured JSONL run telemetry.

A SLAM run is a sequence of per-frame decisions — pose optimizations,
sampling draws, densifications, prunes — and the end-state ATE number
hides *which frame* went wrong.  The flight recorder turns a run into a
schema-versioned JSONL stream with exactly one record per frame:

- line 1 — a ``header`` record: schema version, run configuration, and
  the same environment fingerprint :mod:`repro.obs.bench` stamps on
  perf trajectories;
- lines 2..N+1 — one ``frame`` record per processed frame: estimated /
  ground-truth pose, per-frame pose error, tracking iteration counts and
  loss curves, mapping densify/prune events and sampling composition
  (unseen-by-transmittance vs texture-weighted pixel counts, coverage
  fractions), α-filter rejection rates, Gaussian-count growth, keyframe
  buffer events, and the headline :class:`~repro.render.stats.PipelineStats`
  workload counters of that frame's passes;
- last line — a ``summary`` record: final ATE statistics (including the
  Umeyama-aligned per-frame residuals, so the stream reproduces
  ``SLAMResult.ate()`` exactly), totals, and every health alert raised.

The recorder follows the tracer's no-op discipline: it is **disabled by
default**, and a disabled :meth:`FlightRecorder.emit` is one attribute
load + branch, so instrumentation hooks in the SLAM loop cost nothing
when recording is off.  Module-level imports are stdlib-only
(:mod:`repro.obs.telemetry` is itself stdlib-only); numpy is pulled in
lazily where records are normalized.

Live telemetry: every emitted record is also published onto the
process-wide :data:`repro.obs.telemetry.bus` under its record type
(``"header"`` / ``"frame"`` / ``"summary"``), so the HTTP exporter,
stream exporter, and ``repro top`` watch the same stream the JSONL file
receives — at zero extra cost while the bus is disabled (one branch; the
already-normalized record dict is reused, nothing is re-serialized).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .telemetry import bus as _bus

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "FlightLog",
    "recorder",
    "to_plain",
    "read_flight_record",
    "parse_flight_records",
    "aligned_frame_errors",
]

#: Version of the flight-record JSONL layout.  Bump on any breaking
#: change to the record structure; the reader refuses mismatches.
FLIGHT_SCHEMA_VERSION = 1


def to_plain(value: Any) -> Any:
    """Recursively coerce a record value into plain JSON-ready python.

    Handles numpy scalars/arrays via their ``item``/``tolist`` protocols
    without importing numpy, so the module stays stdlib-only.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): to_plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_plain(v) for v in value]
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return to_plain(tolist())
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return to_plain(item())
        except (TypeError, ValueError):
            pass
    return str(value)


class FlightRecorder:
    """Accumulates (and optionally streams) one run's flight records.

    Disabled by default; when enabled with a path every record is
    appended to the JSONL file immediately (flight-recorder style: the
    stream survives a crash mid-run), and is also kept in memory for
    direct inspection via :attr:`records`.
    """

    def __init__(self, enabled: bool = False):
        self._enabled = bool(enabled)
        self._records: List[Dict[str, Any]] = []
        self._path: Optional[str] = None
        self._fh = None

    # ---- lifecycle ----

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def path(self) -> Optional[str]:
        return self._path

    def enable(self, path: Optional[str] = None, reset: bool = True) -> None:
        """Start recording; with ``path``, stream records to a JSONL file."""
        if reset:
            self.reset()
        if path is not None:
            self._path = path
            self._fh = open(path, "w")
        self._enabled = True

    def disable(self) -> None:
        """Stop recording and close the stream file (if any)."""
        self._enabled = False
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def reset(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._records = []
        self._path = None

    @contextmanager
    def record_to(self, path: Optional[str] = None):
        """Enable recording for the duration of a ``with`` block."""
        was_enabled = self._enabled
        self.enable(path=path)
        try:
            yield self
        finally:
            self.disable()
            self._enabled = was_enabled

    # ---- recording ----

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one record (no-op while disabled).

        When the telemetry bus is enabled the normalized record is also
        published under its ``type`` so live consumers see the stream.
        """
        if not self._enabled:
            return
        plain = to_plain(record)
        self._records.append(plain)
        if self._fh is not None:
            json.dump(plain, self._fh, sort_keys=True)
            self._fh.write("\n")
            self._fh.flush()
        if _bus.enabled:
            _bus.publish(str(plain.get("type", "frame")), plain)

    def begin_run(self, **meta) -> None:
        """Emit the header record (schema version + env fingerprint)."""
        if not self._enabled:
            return
        from .bench import environment_fingerprint

        header = {
            "type": "header",
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "environment": environment_fingerprint(),
        }
        header.update(meta)
        self.emit(header)

    # ---- access / export ----

    @property
    def records(self) -> List[Dict[str, Any]]:
        """All emitted records, in emission order."""
        return list(self._records)

    def log(self) -> "FlightLog":
        """The accumulated records parsed into a :class:`FlightLog`."""
        return parse_flight_records(self._records, path=self._path)

    def write_jsonl(self, path: str) -> int:
        """Dump the accumulated records to ``path``; returns the count."""
        with open(path, "w") as f:
            for record in self._records:
                json.dump(record, f, sort_keys=True)
                f.write("\n")
        return len(self._records)


#: Process-wide default recorder; ``SLAMSystem.run`` uses this instance
#: unless handed an explicit one.  Disabled (and free) by default.
recorder = FlightRecorder()


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

def _get(record: Dict[str, Any], dotted: str) -> Any:
    """``_get({"a": {"b": 1}}, "a.b") == 1``; missing paths yield None."""
    current: Any = record
    for part in dotted.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


@dataclass
class FlightLog:
    """One parsed flight record: header + frame stream + summary."""

    header: Dict[str, Any]
    frames: List[Dict[str, Any]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None
    path: Optional[str] = None

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    def series(self, dotted: str) -> List[Any]:
        """Per-frame values of one dotted field (None where absent)."""
        return [_get(frame, dotted) for frame in self.frames]

    def alerts(self) -> List[Dict[str, Any]]:
        """Every alert in the stream: per-frame ones plus the summary's."""
        out: List[Dict[str, Any]] = []
        for frame in self.frames:
            out.extend(frame.get("alerts") or [])
        if self.summary:
            for alert in self.summary.get("alerts") or []:
                if alert not in out:
                    out.append(alert)
        return out


def parse_flight_records(records: List[Dict[str, Any]],
                         path: Optional[str] = None) -> FlightLog:
    """Assemble a :class:`FlightLog` from decoded record dicts."""
    if not records:
        raise ValueError("empty flight record")
    header = records[0]
    if header.get("type") != "header":
        raise ValueError("flight record does not start with a header record")
    version = header.get("schema_version")
    if version != FLIGHT_SCHEMA_VERSION:
        raise ValueError(
            f"flight-record schema v{version} != supported "
            f"v{FLIGHT_SCHEMA_VERSION}")
    frames = [r for r in records[1:] if r.get("type") == "frame"]
    summaries = [r for r in records[1:] if r.get("type") == "summary"]
    expected = [f["frame"] for f in frames]
    if expected != sorted(expected):
        raise ValueError("frame records out of order")
    return FlightLog(header=header, frames=frames,
                     summary=summaries[-1] if summaries else None,
                     path=path)


def read_flight_record(path: str) -> FlightLog:
    """Parse a flight-record JSONL file (validates the schema version)."""
    records: List[Dict[str, Any]] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed flight record "
                    f"({exc})") from exc
    return parse_flight_records(records, path=path)


# ---------------------------------------------------------------------------
# ATE helper (lazy numpy import; mirrors repro.metrics.ate exactly)
# ---------------------------------------------------------------------------

def aligned_frame_errors(est_trajectory, gt_trajectory) -> List[float]:
    """Umeyama-aligned per-frame translation residuals, in metres.

    Uses the exact alignment of :func:`repro.metrics.ate.ate_rmse`, so
    ``sqrt(mean(err**2))`` over the returned list equals
    ``SLAMResult.ate().rmse`` bit-for-bit.
    """
    import numpy as np

    from ..metrics.ate import umeyama_alignment

    est = np.asarray(est_trajectory, dtype=float)[:, :3, 3]
    gt = np.asarray(gt_trajectory, dtype=float)[:, :3, 3]
    R, t, s = umeyama_alignment(est, gt)
    aligned = s * est @ R.T + t
    return [float(e) for e in np.linalg.norm(aligned - gt, axis=1)]
