"""Cycle attribution: where did the modeled cycles (and wall time) go?

Maps the SPLATONIC accelerator's modeled busy cycles
(:meth:`repro.hw.SplatonicAccelerator.stage_model`) onto the paper's
pipeline stages *per hardware unit* — projection + α-filter units,
hierarchical sorters, raster engines (render/reverse), aggregation unit
— and renders:

- a per-unit bottleneck table (markdown), whose per-pass bottleneck
  agrees with :attr:`repro.hw.pipeline.CycleBreakdown.bottleneck` by
  construction;
- a Chrome-trace/flamegraph export (one synthetic thread per hardware
  unit, durations = modeled busy time at the accelerator clock) loadable
  in Perfetto / ``chrome://tracing``;
- optionally, a wall-time view that folds the span tracer's measured
  self-times onto the same paper stages so the python implementation and
  the modeled hardware can be read side by side.

Module-level imports stay stdlib-only; the hardware models are imported
lazily inside :func:`attribute_workload`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .tracing import Tracer, trace

__all__ = [
    "STAGE_UNITS",
    "SPAN_STAGES",
    "AttributionRow",
    "AttributionReport",
    "attribute_workload",
    "wall_stage_rows",
]

#: Paper pipeline stage -> hardware unit executing it (Sec. V, Fig. 15).
STAGE_UNITS: Dict[str, str] = {
    "projection": "projection + alpha-filter units",
    "sorting": "hierarchical sorting units",
    "rasterization": "raster engines (render units)",
    "reverse_rasterization": "raster engines (reverse units)",
    "aggregation": "aggregation unit",
    "reprojection": "projection + alpha-filter units",
}

#: Traced span name -> paper pipeline stage (for the wall-time view).
SPAN_STAGES: Dict[str, str] = {
    "render.project": "projection",
    "render.alpha_check": "projection",
    "render.tile_sort": "sorting",
    "render.composite": "rasterization",
    "render.pixel_bwd": "reverse_rasterization",
    "render.tile_bwd": "reverse_rasterization",
    "render.reproject": "reprojection",
}


@dataclass(frozen=True)
class AttributionRow:
    """Modeled cycles of one pipeline stage on its hardware unit."""

    pass_name: str          # "forward" | "backward"
    stage: str
    unit: str
    cycles: float
    share: float            # of the pass's summed stage busy cycles
    bottleneck: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "pass": self.pass_name,
            "stage": self.stage,
            "unit": self.unit,
            "cycles": float(self.cycles),
            "share": float(self.share),
            "bottleneck": self.bottleneck,
        }


@dataclass
class AttributionReport:
    """Per-unit cycle attribution of one workload on the accelerator."""

    scenario: str
    clock_hz: float
    rows: List[AttributionRow]
    #: Pass totals: pipelined cycles (incl. fill) and DRAM-roofline cycles.
    totals: Dict[str, float]
    wall_stages: List[Dict[str, Any]] = field(default_factory=list)

    # ---- queries ----

    def rows_for(self, pass_name: str) -> List[AttributionRow]:
        return [r for r in self.rows if r.pass_name == pass_name]

    def bottleneck(self, pass_name: str) -> str:
        """Stage with the most busy cycles in ``pass_name``."""
        rows = self.rows_for(pass_name)
        if not rows:
            return ""
        return max(rows, key=lambda r: r.cycles).stage

    # ---- renderings ----

    def format_table(self) -> str:
        """Markdown bottleneck table, one row per (pass, stage)."""
        lines = [
            f"### cycle attribution — {self.scenario} "
            f"(modeled @ {self.clock_hz / 1e6:.0f} MHz)",
            "| pass | stage | hardware unit | cycles | share % "
            "| bottleneck |",
            "|---|---|---|---:|---:|---|",
        ]
        for pass_name in ("forward", "backward"):
            for r in sorted(self.rows_for(pass_name),
                            key=lambda r: -r.cycles):
                mark = "<-- bottleneck" if r.bottleneck else ""
                lines.append(
                    f"| {pass_name} | {r.stage} | {r.unit} "
                    f"| {r.cycles:.0f} | {r.share * 100.0:.1f} | {mark} |")
        for pass_name in ("forward", "backward"):
            pipe = self.totals.get(f"{pass_name}_cycles", 0.0)
            dram = self.totals.get(f"{pass_name}_dram_cycles", 0.0)
            bound = "DRAM" if dram > pipe else "compute"
            lines.append(
                f"- {pass_name}: {pipe:.0f} pipelined cycles (incl. fill), "
                f"{dram:.0f} DRAM-roofline cycles -> {bound}-bound")
        if self.wall_stages:
            lines += [
                "",
                "### measured wall time by stage (traced python run)",
                "| stage | self s | share % |",
                "|---|---:|---:|",
            ]
            for row in self.wall_stages:
                lines.append(f"| {row['stage']} | {row['self_s']:.4f} "
                             f"| {row['share'] * 100.0:.1f} |")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "clock_hz": float(self.clock_hz),
            "rows": [r.as_dict() for r in self.rows],
            "totals": {k: float(v) for k, v in sorted(self.totals.items())},
            "bottlenecks": {p: self.bottleneck(p)
                            for p in ("forward", "backward")},
            "wall_stages": list(self.wall_stages),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=1, sort_keys=True)
            f.write("\n")

    def to_chrome_trace(self, pid: int = 0) -> List[Dict[str, Any]]:
        """Flamegraph view: one thread per hardware unit, µs = cycles/clock.

        Stages of a pass overlap in the pipelined hardware, so each is
        drawn from its pass's start on its own unit thread; the backward
        pass starts where the forward pipeline (incl. fill) ends.
        """
        us_per_cycle = 1e6 / self.clock_hz
        units = sorted({r.unit for r in self.rows})
        tids = {unit: i for i, unit in enumerate(units)}
        events: List[Dict[str, Any]] = [
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": unit}}
            for unit, tid in tids.items()
        ]
        offset = 0.0
        for pass_name in ("forward", "backward"):
            for r in sorted(self.rows_for(pass_name), key=lambda r: r.stage):
                events.append({
                    "name": f"{pass_name}.{r.stage}",
                    "ph": "X",
                    "ts": round(offset, 3),
                    "dur": round(r.cycles * us_per_cycle, 3),
                    "pid": pid,
                    "tid": tids[r.unit],
                    "args": {
                        "cycles": round(r.cycles, 1),
                        "share": round(r.share, 4),
                        "bottleneck": r.bottleneck,
                    },
                })
            offset += (self.totals.get(f"{pass_name}_cycles", 0.0)
                       * us_per_cycle)
        return events

    def write_chrome_trace(self, path: str, pid: int = 0) -> int:
        events = self.to_chrome_trace(pid=pid)
        with open(path, "w") as f:
            json.dump(events, f, indent=1, sort_keys=True)
            f.write("\n")
        return len(events)


def attribute_workload(workload, accel=None,
                       scenario: str = "workload",
                       tracer: Optional[Tracer] = None) -> AttributionReport:
    """Attribute one pixel-pipeline workload's modeled cycles per unit.

    ``accel`` defaults to a stock :class:`~repro.hw.SplatonicAccelerator`.
    Pass ``tracer`` (usually ``repro.obs.trace`` after a captured run) to
    fold measured wall self-times per paper stage into the report.
    """
    if accel is None:
        from ..hw.splatonic_accel import SplatonicAccelerator
        accel = SplatonicAccelerator()
    from ..hw.units import DRAM_BYTES_PER_CYCLE

    model = accel.stage_model(workload)
    rows: List[AttributionRow] = []
    for pass_name, breakdown in (("forward", model.forward),
                                 ("backward", model.backward)):
        hot = breakdown.bottleneck
        for stage, cycles in breakdown.stages.items():
            rows.append(AttributionRow(
                pass_name=pass_name,
                stage=stage,
                unit=STAGE_UNITS.get(stage, "(unmapped unit)"),
                cycles=float(cycles),
                share=breakdown.share(stage),
                bottleneck=(stage == hot),
            ))
    totals = {
        "forward_cycles": float(model.forward.total),
        "backward_cycles": float(model.backward.total),
        "forward_dram_cycles":
            model.forward_dram_bytes / DRAM_BYTES_PER_CYCLE,
        "backward_dram_cycles":
            model.backward_dram_bytes / DRAM_BYTES_PER_CYCLE,
    }
    wall = wall_stage_rows(tracer) if tracer is not None else []
    return AttributionReport(scenario=scenario,
                             clock_hz=accel.config.clock_hz,
                             rows=rows, totals=totals, wall_stages=wall)


def wall_stage_rows(tracer: Optional[Tracer] = None) -> List[Dict[str, Any]]:
    """Fold a tracer's measured span self-times onto the paper stages.

    Spans without a stage mapping land in ``(other)`` so the shares are
    honest about untracked time.  Returns rows sorted by self time.
    """
    t = tracer or trace
    per_stage: Dict[str, float] = {}
    for row in t.stage_table():
        stage = SPAN_STAGES.get(row["span"], "(other)")
        per_stage[stage] = per_stage.get(stage, 0.0) + row["self_s"]
    total = sum(per_stage.values())
    rows = [
        {"stage": stage, "self_s": round(seconds, 6),
         "share": (seconds / total) if total > 0 else 0.0}
        for stage, seconds in per_stage.items()
    ]
    rows.sort(key=lambda r: -r["self_s"])
    return rows
