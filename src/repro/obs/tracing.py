"""Hierarchical span tracer for the SLAM + hardware-model stack.

``trace.span("tracking_fwd", frame=i)`` opens a nested, wall-clock
(``perf_counter``) span with attached attributes.  The tracer is a small
explicit state machine — no threads, no globals beyond the module
singleton — and is **disabled by default**: a disabled ``span()`` call
returns one shared no-op context manager, so instrumented hot paths pay a
single attribute load + branch and allocate nothing persistent.

Captured traces export two ways:

- :meth:`Tracer.to_chrome_trace` / :meth:`Tracer.write_chrome_trace` —
  Chrome trace-event JSON ("X" complete events with ``name/ph/ts/dur/
  pid/tid``), loadable in Perfetto or ``chrome://tracing``;
- :meth:`Tracer.stage_table` / :meth:`Tracer.format_summary` — a per-span
  aggregate (count, total time, self time) rendered as a markdown table.

Self time is total time minus the time spent in child spans, which is what
the paper's stage breakdowns (Figs. 4/5/14) report per pipeline stage.

Continuous profiling: every span also records CPU time
(``process_time_ns``) with the same parent/child self-time accounting, so
wall-vs-CPU gaps expose blocking (I/O, page faults) per stage.  Per-span
allocation and peak-memory deltas (``tracemalloc``) are available behind
the opt-in ``memory`` flag of :meth:`Tracer.enable` /
:meth:`Tracer.capture` — tracemalloc multiplies allocation cost, so it is
never on by default.  ``repro.obs.prof`` renders the top-N
self-time/alloc tables from these fields.
"""

from __future__ import annotations

import json
import tracemalloc
from contextlib import contextmanager
from time import perf_counter, process_time_ns
from typing import Any, Dict, List, Optional

from .telemetry import bus as _bus

__all__ = ["SpanRecord", "Tracer", "trace"]


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class SpanRecord:
    """One finished span: timing, nesting depth, and attributes."""

    __slots__ = ("name", "start", "duration", "depth", "attrs", "self_time",
                 "cpu_time", "self_cpu", "alloc_bytes", "peak_bytes")

    def __init__(self, name: str, start: float, duration: float, depth: int,
                 attrs: Dict[str, Any], self_time: float,
                 cpu_time: float = 0.0, self_cpu: float = 0.0,
                 alloc_bytes: Optional[int] = None,
                 peak_bytes: Optional[int] = None):
        self.name = name
        self.start = start          # seconds since tracer epoch
        self.duration = duration    # seconds
        self.depth = depth          # 0 == root
        self.attrs = attrs
        self.self_time = self_time  # duration minus child-span time
        self.cpu_time = cpu_time    # process_time seconds
        self.self_cpu = self_cpu    # cpu_time minus child-span CPU time
        # tracemalloc deltas; None unless memory profiling was on.
        self.alloc_bytes = alloc_bytes  # net allocation delta over the span
        self.peak_bytes = peak_bytes    # peak traced memory above entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, depth={self.depth}, "
                f"dur={self.duration * 1e3:.3f}ms)")


class _LiveSpan:
    """An open span; created only while the tracer is enabled."""

    __slots__ = ("_tracer", "name", "attrs", "start", "depth", "child_time",
                 "cpu_start", "child_cpu", "mem_start", "peak_seen")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.depth = 0
        self.child_time = 0.0
        self.cpu_start = 0
        self.child_cpu = 0.0
        self.mem_start: Optional[int] = None
        self.peak_seen = 0

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes after the span opened."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack
        self.depth = len(stack)
        stack.append(self)
        if self._tracer._memory:
            self.mem_start = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        # Clocks are read last so setup cost stays outside the span.
        self.cpu_start = process_time_ns()
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = perf_counter()
        cpu_end = process_time_ns()
        tracer = self._tracer
        duration = end - self.start
        cpu_time = (cpu_end - self.cpu_start) * 1e-9
        alloc_bytes = peak_bytes = None
        if tracer._memory and self.mem_start is not None:
            current, peak = tracemalloc.get_traced_memory()
            # reset_peak() in nested children clips the absolute peak;
            # children propagate theirs upward through ``peak_seen``.
            peak = max(peak, self.peak_seen)
            alloc_bytes = current - self.mem_start
            peak_bytes = max(0, peak - self.mem_start)
            tracemalloc.reset_peak()
        stack = tracer._stack
        # Unwind defensively: a span abandoned by an exception deeper in
        # the stack must not corrupt the parent chain.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            parent = stack[-1]
            parent.child_time += duration
            parent.child_cpu += cpu_time
            if peak_bytes is not None and self.mem_start is not None:
                parent.peak_seen = max(parent.peak_seen,
                                       self.mem_start + peak_bytes)
        tracer._records.append(SpanRecord(
            self.name, self.start - tracer._epoch, duration, self.depth,
            self.attrs, duration - self.child_time,
            cpu_time, cpu_time - self.child_cpu,
            alloc_bytes, peak_bytes))
        if _bus.enabled:
            # Live telemetry: completed spans stream onto the bus.  The
            # payload is built only behind the enabled check, so tracing
            # with the bus off costs nothing extra.
            payload: Dict[str, Any] = {
                "name": self.name,
                "dur_s": duration,
                "self_s": duration - self.child_time,
                "cpu_s": cpu_time,
                "depth": self.depth,
            }
            if self.attrs:
                payload["attrs"] = {k: _jsonable(v)
                                    for k, v in self.attrs.items()}
            _bus.publish("span", payload)
        return False


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value into something ``json.dump`` accepts."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


class Tracer:
    """Records nested wall-clock spans; disabled (and free) by default."""

    def __init__(self, enabled: bool = False):
        self._enabled = bool(enabled)
        self._records: List[SpanRecord] = []
        self._stack: List[_LiveSpan] = []
        self._epoch = perf_counter()
        self._memory = False        # per-span tracemalloc deltas (opt-in)
        self._mem_started = False   # whether *we* started tracemalloc

    # ---- lifecycle ----

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def profile_memory(self) -> bool:
        """Whether per-span tracemalloc deltas are being collected."""
        return self._memory

    def enable(self, reset: bool = True,
               memory: Optional[bool] = None) -> None:
        if reset:
            self.reset()
        if memory is not None:
            self.set_memory_profiling(memory)
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def set_memory_profiling(self, on: bool) -> None:
        """Toggle per-span allocation/peak tracking (tracemalloc)."""
        on = bool(on)
        if on and not self._memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._mem_started = True
            self._memory = True
        elif not on and self._memory:
            self._memory = False
            if self._mem_started:
                tracemalloc.stop()
                self._mem_started = False

    def reset(self) -> None:
        self._records = []
        self._stack = []
        self._epoch = perf_counter()

    @contextmanager
    def capture(self, reset: bool = True, memory: Optional[bool] = None):
        """Enable tracing for the duration of a ``with`` block."""
        was_enabled = self._enabled
        was_memory = self._memory
        self.enable(reset=reset, memory=memory)
        try:
            yield self
        finally:
            self._enabled = was_enabled
            if memory is not None:
                self.set_memory_profiling(was_memory)

    # ---- recording ----

    def span(self, name: str, **attrs):
        """Open a span; a context manager (no-op while disabled)."""
        if not self._enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def add_external_span(self, name: str, start: float, duration: float,
                          cpu_time: float = 0.0, **attrs) -> None:
        """Insert a span that was timed outside the tracer's stack.

        Used by the parallel kernel backend: worker threads time their
        own shards (``perf_counter`` start + duration, per-thread CPU
        time) and the *parent* thread lands them in the trace afterwards
        — the span stack itself is single-threaded and never touched by
        workers.  Callers tag provenance via attrs (``worker=i``).

        External spans are leaf overlays: they nest under whatever span
        is currently open (depth-wise) but do **not** subtract from the
        parent's self time, because concurrent workers overlap in wall
        clock and their summed durations can exceed the parent span's.
        """
        if not self._enabled:
            return
        self._records.append(SpanRecord(
            name, start - self._epoch, duration, len(self._stack),
            attrs, duration, cpu_time, cpu_time))
        if _bus.enabled:
            payload: Dict[str, Any] = {
                "name": name,
                "dur_s": duration,
                "self_s": duration,
                "cpu_s": cpu_time,
                "depth": len(self._stack),
            }
            if attrs:
                payload["attrs"] = {k: _jsonable(v)
                                    for k, v in attrs.items()}
            _bus.publish("span", payload)

    @property
    def records(self) -> List[SpanRecord]:
        """Finished spans, in completion order."""
        return list(self._records)

    def span_names(self) -> List[str]:
        """Distinct span names, in first-completion order."""
        seen: Dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.name, None)
        return list(seen)

    # ---- export: Chrome trace-event JSON ----

    def to_chrome_trace(self, pid: int = 0, tid: int = 0) -> List[Dict]:
        """Complete ("X") trace events, start-ordered, times in µs."""
        events = []
        for r in sorted(self._records, key=lambda r: r.start):
            event: Dict[str, Any] = {
                "name": r.name,
                "ph": "X",
                "ts": round(r.start * 1e6, 3),
                "dur": round(r.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
            }
            if r.attrs:
                event["args"] = {k: _jsonable(v) for k, v in r.attrs.items()}
            events.append(event)
        return events

    def write_chrome_trace(self, path: str, pid: int = 0, tid: int = 0) -> int:
        """Write the event array to ``path``; returns the event count."""
        events = self.to_chrome_trace(pid=pid, tid=tid)
        with open(path, "w") as f:
            json.dump(events, f, indent=1, sort_keys=True)
            f.write("\n")
        return len(events)

    # ---- export: per-stage summary ----

    def stage_table(self) -> List[Dict[str, Any]]:
        """Aggregate spans by name: count, wall/CPU totals, self times.

        Rows always carry ``span/count/total_s/self_s`` (the original
        schema) plus ``cpu_total_s``/``cpu_self_s``; when memory
        profiling was on, also summed ``alloc_bytes`` and the maximum
        per-span ``peak_bytes``.
        """
        agg: Dict[str, Dict[str, Any]] = {}
        for r in self._records:
            row = agg.setdefault(r.name, {
                "span": r.name, "count": 0, "total_s": 0.0, "self_s": 0.0,
                "cpu_total_s": 0.0, "cpu_self_s": 0.0,
            })
            row["count"] += 1
            row["total_s"] += r.duration
            row["self_s"] += r.self_time
            row["cpu_total_s"] += r.cpu_time
            row["cpu_self_s"] += r.self_cpu
            if r.alloc_bytes is not None:
                row["alloc_bytes"] = row.get("alloc_bytes", 0) + r.alloc_bytes
                row["peak_bytes"] = max(row.get("peak_bytes", 0),
                                        r.peak_bytes or 0)
        return sorted(agg.values(), key=lambda row: -row["self_s"])

    def format_summary(self, title: Optional[str] = None) -> str:
        """Markdown table of the per-stage breakdown (self-time ordered)."""
        rows = self.stage_table()
        wall = sum(row["self_s"] for row in rows)
        lines = []
        if title:
            lines.append(f"### {title}")
        lines += [
            "| span | count | total ms | self ms | self % |",
            "|---|---:|---:|---:|---:|",
        ]
        for row in rows:
            share = row["self_s"] / wall if wall > 0 else 0.0
            lines.append(
                f"| {row['span']} | {row['count']} "
                f"| {row['total_s'] * 1e3:.2f} | {row['self_s'] * 1e3:.2f} "
                f"| {share * 100.0:.1f} |")
        if not rows:
            lines.append("| (no spans recorded) | 0 | 0.00 | 0.00 | 0.0 |")
        return "\n".join(lines)


#: Process-wide default tracer; instrumented modules share this instance.
trace = Tracer()
