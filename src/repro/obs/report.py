"""Run reports and run-to-run diffing over flight records.

Two consumers of :class:`~repro.obs.flight.FlightLog`:

- :func:`render_report` — a human-readable run report (markdown or a
  self-contained HTML page): headline statistics, unicode sparkline
  summaries of the per-frame series, a per-frame table, and every
  health alert the run raised.  This is what ``repro report run.jsonl``
  prints.
- :func:`diff_runs` — aligns two runs frame-by-frame and reports, per
  channel (pose, losses, iteration counts, sampling composition, map
  size, workload counters), the *first* frame where they diverge.  Two
  recordings of the same seed diff clean; differing seeds pinpoint
  where the trajectories forked (``repro report --diff a.jsonl
  b.jsonl``).

:func:`render_atlas_report` renders a sparsity-atlas artifact
(:class:`~repro.obs.atlas.AtlasLog`) through the same block renderers —
unicode heatmaps in markdown, shaded tables in HTML (``repro atlas``).

Everything here is purely functional over parsed logs.
"""

from __future__ import annotations

import html as _html
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import atlas as _atlas_mod
from .flight import FlightLog

__all__ = [
    "sparkline",
    "render_report",
    "render_atlas_report",
    "ChannelDiff",
    "RunDiff",
    "diff_runs",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[Any], width: Optional[int] = None) -> str:
    """Unicode block sparkline of a numeric series.

    ``None``/non-finite entries render as spaces; a constant series
    renders at mid-height.  ``width`` caps the length by striding.
    """
    series = []
    for v in values:
        try:
            f = float(v)
        except (TypeError, ValueError):
            f = math.nan
        series.append(f)
    if width is not None and width > 0 and len(series) > width:
        stride = len(series) / width
        series = [series[int(i * stride)] for i in range(width)]
    finite = [v for v in series if math.isfinite(v)]
    if not finite:
        return " " * len(series)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in series:
        if not math.isfinite(v):
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARK_CHARS[len(_SPARK_CHARS) // 2])
        else:
            idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[idx])
    return "".join(chars)


# ---------------------------------------------------------------------------
# Report blocks: a tiny structured intermediate with two renderers
# ---------------------------------------------------------------------------

def _fmt(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if not math.isfinite(value):
            return str(value)
        return f"{value:.4g}"
    return str(value)


def _build_blocks(log: FlightLog) -> List[Tuple[str, Any]]:
    """(kind, payload) blocks: heading / kv / table / text."""
    header = log.header
    summary = log.summary or {}
    env = header.get("environment") or {}
    ate = summary.get("ate") or {}
    alerts = log.alerts()

    blocks: List[Tuple[str, Any]] = []
    title = (f"flight report — {header.get('algorithm', '?')}/"
             f"{header.get('mode', '?')}, {log.num_frames} frames")
    blocks.append(("heading", title))

    blocks.append(("kv", [
        ("sequence", header.get("sequence")),
        ("frame size", f"{header.get('width', '?')}x"
                       f"{header.get('height', '?')}"),
        ("schema", f"v{header.get('schema_version')}"),
        ("environment", f"python {env.get('python', '?')}, "
                        f"numpy {env.get('numpy', '?')}, "
                        f"{env.get('platform', '?')}"),
        ("ATE rmse", None if not ate else f"{ate.get('rmse', 0) * 100:.2f} cm"
                     + f" (median {ate.get('median', 0) * 100:.2f} cm, "
                       f"max {ate.get('max', 0) * 100:.2f} cm)"),
        ("final map", None if "final_gaussians" not in summary else
            f"{summary['final_gaussians']} Gaussians after "
            f"{summary.get('mapping_invocations', '?')} mapping invocations"),
        ("tracking", None if "tracking_iterations" not in summary else
            f"{summary['tracking_iterations']} iterations total"),
        ("health alerts", str(len(alerts))),
    ]))

    # Sparkline summary of the headline per-frame series.
    spark_rows = []
    per_frame_ate = ate.get("per_frame")
    series_specs = [
        ("pose error (m)", log.series("pose_error_m")),
        ("aligned ATE (m)", per_frame_ate),
        ("tracking loss", log.series("tracking.final_loss")),
        ("tracking iters", log.series("tracking.iterations")),
        ("alpha rejection", log.series("alpha.rejection_rate")),
        ("gaussians", log.series("gaussians")),
        ("seeded", log.series("mapping.num_seeded")),
    ]
    for label, series in series_specs:
        if not series or all(v is None for v in series):
            continue
        finite = [float(v) for v in series
                  if v is not None and math.isfinite(float(v))]
        lo = min(finite) if finite else float("nan")
        hi = max(finite) if finite else float("nan")
        spark_rows.append([label, sparkline(series, width=60),
                           _fmt(lo), _fmt(hi)])
    if spark_rows:
        blocks.append(("heading2", "per-frame series"))
        blocks.append(("table",
                       (["series", "sparkline", "min", "max"], spark_rows)))

    # Per-frame table.
    rows = []
    for frame in log.frames:
        tracking = frame.get("tracking") or {}
        mapping = frame.get("mapping") or {}
        sampling = mapping.get("sampling") or {}
        keyframe = frame.get("keyframe") or {}
        alpha = frame.get("alpha") or {}
        rows.append([
            _fmt(frame.get("frame")),
            _fmt(None if frame.get("pose_error_m") is None
                 else frame["pose_error_m"] * 100),
            _fmt(tracking.get("iterations")),
            _fmt(tracking.get("final_loss")),
            _fmt(tracking.get("converged")),
            _fmt(mapping.get("invoked", False)),
            _fmt(mapping.get("num_seeded")),
            _fmt(mapping.get("num_pruned")),
            _fmt(sampling.get("unseen_coverage")),
            _fmt(frame.get("gaussians")),
            _fmt(alpha.get("rejection_rate")),
            _fmt(keyframe.get("added")),
            _fmt(len(frame.get("alerts") or [])),
        ])
    blocks.append(("heading2", "per-frame detail"))
    blocks.append(("table", ([
        "frame", "pose err (cm)", "trk iters", "trk loss", "conv",
        "map", "seeded", "pruned", "unseen cov", "gaussians",
        "α-reject", "kf", "alerts"], rows)))

    if alerts:
        blocks.append(("heading2", "health alerts"))
        alert_rows = [[_fmt(a.get("frame")), a.get("monitor", "?"),
                       a.get("message", "")] for a in alerts]
        blocks.append(("table", (["frame", "monitor", "message"], alert_rows)))
    return blocks


def _to_markdown(blocks: List[Tuple[str, Any]]) -> str:
    lines: List[str] = []
    for kind, payload in blocks:
        if kind == "heading":
            lines += [f"# {payload}", ""]
        elif kind == "heading2":
            lines += [f"## {payload}", ""]
        elif kind == "kv":
            for key, value in payload:
                if value is not None:
                    lines.append(f"- **{key}**: {value}")
            lines.append("")
        elif kind == "table":
            headers, rows = payload
            lines.append("| " + " | ".join(headers) + " |")
            lines.append("|" + "|".join("---" for _ in headers) + "|")
            for row in rows:
                lines.append("| " + " | ".join(str(c) for c in row) + " |")
            lines.append("")
        elif kind == "heatmap":
            label, grid = payload
            lines += [f"**{label}**", "", "```",
                      _atlas_mod.format_heatmap(grid), "```", ""]
        else:
            lines += [str(payload), ""]
    return "\n".join(lines).rstrip() + "\n"


def _to_html(blocks: List[Tuple[str, Any]]) -> str:
    out: List[str] = [
        "<!DOCTYPE html>", "<html><head><meta charset='utf-8'>",
        "<style>",
        "body{font-family:monospace;margin:2em;max-width:72em}",
        "table{border-collapse:collapse}",
        "td,th{border:1px solid #999;padding:2px 8px;text-align:right}",
        "th{background:#eee}",
        "td:first-child,th:first-child{text-align:left}",
        "</style></head><body>",
    ]
    for kind, payload in blocks:
        if kind == "heading":
            out.append(f"<h1>{_html.escape(str(payload))}</h1>")
        elif kind == "heading2":
            out.append(f"<h2>{_html.escape(str(payload))}</h2>")
        elif kind == "kv":
            out.append("<ul>")
            for key, value in payload:
                if value is not None:
                    out.append(f"<li><b>{_html.escape(str(key))}</b>: "
                               f"{_html.escape(str(value))}</li>")
            out.append("</ul>")
        elif kind == "table":
            headers, rows = payload
            out.append("<table><tr>" + "".join(
                f"<th>{_html.escape(str(h))}</th>" for h in headers) + "</tr>")
            for row in rows:
                out.append("<tr>" + "".join(
                    f"<td>{_html.escape(str(c))}</td>" for c in row) + "</tr>")
            out.append("</table>")
        elif kind == "heatmap":
            label, grid = payload
            out.append(_atlas_mod.heatmap_html(grid, label=str(label)))
        else:
            out.append(f"<p>{_html.escape(str(payload))}</p>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def render_report(log: FlightLog, fmt: str = "markdown") -> str:
    """Render one run's flight record as a report document."""
    if fmt not in ("markdown", "html"):
        raise ValueError("fmt must be 'markdown' or 'html'")
    blocks = _build_blocks(log)
    return _to_markdown(blocks) if fmt == "markdown" else _to_html(blocks)


# ---------------------------------------------------------------------------
# Sparsity-atlas reports
# ---------------------------------------------------------------------------

def _build_atlas_blocks(log: "_atlas_mod.AtlasLog",
                        channel: Optional[str] = None,
                        frame: Optional[int] = None) -> List[Tuple[str, Any]]:
    header = log.header
    meta = header.get("meta") or {}
    channels = ([channel] if channel is not None
                else list(header.get("channels") or _atlas_mod.CHANNELS))

    blocks: List[Tuple[str, Any]] = []
    title = (f"sparsity atlas — {meta.get('algorithm', '?')}/"
             f"{meta.get('mode', '?')}, {log.num_frames} frames")
    blocks.append(("heading", title))
    ty, tx = log.grid_shape
    blocks.append(("kv", [
        ("sequence", meta.get("sequence")),
        ("frame size", f"{meta.get('width', '?')}x{meta.get('height', '?')}"),
        ("atlas grid", f"{tx}x{ty} tiles of {log.tile}px"),
        ("schema", f"v{header.get('schema_version', '?')}"),
        ("stages", ", ".join(log.stages()) or None),
    ]))

    if log.num_frames == 0:
        blocks.append(("text", "(no frames recorded)"))
        return blocks

    if frame is not None:
        blocks.append(("heading2", f"frame {frame}"))
        for name in channels:
            blocks.append(("heatmap", (name, log.frame_grid(frame, name))))
    else:
        blocks.append(("heading2", f"run aggregate ({log.num_frames} frames)"))
        for name in channels:
            blocks.append(("heatmap",
                           (f"{name} (per-frame mean)", log.mean_atlas(name))))
            blocks.append(("heatmap",
                           (f"{name} (per-frame max)", log.max_atlas(name))))
        blocks.append(("heatmap",
                       ("α-pass rate (contribs/candidates, run total)",
                        log.alpha_pass_atlas())))

    # Tile-occupancy histogram + per-frame skew for the headline channel.
    hist_channel = channel or "candidates"
    counts, edges = log.occupancy_histogram(hist_channel)
    hist_rows = [[f"{edges[i]:.4g} – {edges[i + 1]:.4g}", str(counts[i])]
                 for i in range(len(counts))]
    blocks.append(("heading2", f"tile occupancy — {hist_channel}"))
    blocks.append(("table", (["per-tile count", "tiles"], hist_rows)))
    imb = log.imbalance(hist_channel)
    blocks.append(("kv", [
        ("tile skew (max/mean per frame)", sparkline(imb, width=60)),
        ("skew range", f"{min(imb):.3g} – {max(imb):.3g}" if imb else None),
    ]))

    # Measured (spatial observations) vs counters + hardware model.
    mvm = log.measured_vs_modeled()
    if mvm:
        blocks.append(("heading2", "measured vs modeled, per stage"))
        rows = []
        for stage, row in sorted(mvm.items()):
            rows.append([
                stage,
                _fmt(row["observed_candidates"]),
                _fmt(row["delta_candidates"]),
                _fmt(row["observed_contribs"]),
                _fmt(row["delta_contribs"]),
                _fmt(row["observed_atomics"]),
                _fmt(row["alpha_pass_rate"]),
                _fmt(row.get("modeled_dram_bytes")),
            ])
        blocks.append(("table", ([
            "stage", "candidates", "Δcounter", "contribs", "Δcounter",
            "atomics", "α-pass", "modeled DRAM B"], rows)))
    return blocks


def render_atlas_report(log: "_atlas_mod.AtlasLog", fmt: str = "markdown",
                        channel: Optional[str] = None,
                        frame: Optional[int] = None) -> str:
    """Render a sparsity-atlas artifact as a heatmap report document.

    ``channel`` restricts the heatmaps to one channel; ``frame`` renders
    that single frame's grids instead of the run aggregates.
    """
    if fmt not in ("markdown", "html"):
        raise ValueError("fmt must be 'markdown' or 'html'")
    blocks = _build_atlas_blocks(log, channel=channel, frame=frame)
    return _to_markdown(blocks) if fmt == "markdown" else _to_html(blocks)


# ---------------------------------------------------------------------------
# Run-to-run diffing
# ---------------------------------------------------------------------------

#: Per-frame channels the differ aligns, in report order.  Each entry is
#: (channel name, dotted record path).
DIFF_CHANNELS: List[Tuple[str, str]] = [
    ("pose", "pose_est"),
    ("pose_error", "pose_error_m"),
    ("tracking.loss", "tracking.final_loss"),
    ("tracking.iterations", "tracking.iterations"),
    ("tracking.sampled_pixels", "tracking.sampled_pixels"),
    ("mapping.sampling", "mapping.sampling"),
    ("mapping.seeded", "mapping.num_seeded"),
    ("gaussians", "gaussians"),
    ("counters", "counters"),
]


def _values_equal(a: Any, b: Any, rel_tol: float, abs_tol: float) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        fa, fb = float(a), float(b)
        if math.isnan(fa) and math.isnan(fb):
            return True
        return math.isclose(fa, fb, rel_tol=rel_tol, abs_tol=abs_tol)
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(_values_equal(a[k], b[k], rel_tol, abs_tol) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return False
        return all(_values_equal(x, y, rel_tol, abs_tol)
                   for x, y in zip(a, b))
    return a == b


def _preview(value: Any, limit: int = 60) -> str:
    text = _fmt(value) if not isinstance(value, (dict, list)) else repr(value)
    return text if len(text) <= limit else text[:limit - 1] + "…"


@dataclass
class ChannelDiff:
    """First divergence of one channel between two runs."""

    channel: str
    first_frame: Optional[int]
    a_value: Any = None
    b_value: Any = None
    frames_compared: int = 0

    @property
    def diverged(self) -> bool:
        return self.first_frame is not None


@dataclass
class RunDiff:
    """Frame-aligned comparison of two flight records."""

    a_path: Optional[str]
    b_path: Optional[str]
    channels: List[ChannelDiff] = field(default_factory=list)
    frames_compared: int = 0
    frame_counts: Tuple[int, int] = (0, 0)
    header_mismatches: List[str] = field(default_factory=list)

    @property
    def first_divergence_frame(self) -> Optional[int]:
        frames = [c.first_frame for c in self.channels if c.diverged]
        return min(frames) if frames else None

    @property
    def diverged(self) -> bool:
        return (self.first_divergence_frame is not None
                or self.frame_counts[0] != self.frame_counts[1]
                or bool(self.header_mismatches))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "diverged": self.diverged,
            "first_divergence_frame": self.first_divergence_frame,
            "frames_compared": self.frames_compared,
            "frame_counts": list(self.frame_counts),
            "header_mismatches": list(self.header_mismatches),
            "channels": [{
                "channel": c.channel,
                "first_frame": c.first_frame,
            } for c in self.channels],
        }

    def format_markdown(self) -> str:
        a = self.a_path or "run A"
        b = self.b_path or "run B"
        lines = [f"### flight diff — {a} vs {b}", ""]
        if self.header_mismatches:
            lines.append("**header mismatches:**")
            lines += [f"- {m}" for m in self.header_mismatches]
            lines.append("")
        if self.frame_counts[0] != self.frame_counts[1]:
            lines += [f"frame counts differ: {self.frame_counts[0]} vs "
                      f"{self.frame_counts[1]} (compared the common "
                      f"{self.frames_compared})", ""]
        if not self.diverged:
            lines.append(f"no divergence across {self.frames_compared} "
                         f"frames.")
            return "\n".join(lines) + "\n"
        lines.append(f"**first divergence at frame "
                     f"{self.first_divergence_frame}** "
                     f"({self.frames_compared} frames compared)")
        lines += ["", "| channel | first frame | A | B |", "|---|---:|---|---|"]
        for c in sorted(self.channels,
                        key=lambda c: (c.first_frame is None,
                                       c.first_frame or 0, c.channel)):
            if not c.diverged:
                continue
            lines.append(f"| {c.channel} | {c.first_frame} "
                         f"| {_preview(c.a_value)} | {_preview(c.b_value)} |")
        clean = [c.channel for c in self.channels if not c.diverged]
        if clean:
            lines += ["", f"channels in agreement: {', '.join(clean)}"]
        return "\n".join(lines) + "\n"


def diff_runs(a: FlightLog, b: FlightLog,
              rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> RunDiff:
    """Align two runs frame-by-frame and find where they first diverge."""
    diff = RunDiff(a_path=a.path, b_path=b.path,
                   frame_counts=(a.num_frames, b.num_frames))
    for key in ("algorithm", "mode", "sequence", "width", "height"):
        va, vb = a.header.get(key), b.header.get(key)
        if va != vb:
            diff.header_mismatches.append(f"{key}: {va!r} vs {vb!r}")
    n = min(a.num_frames, b.num_frames)
    diff.frames_compared = n
    for channel, dotted in DIFF_CHANNELS:
        series_a, series_b = a.series(dotted), b.series(dotted)
        channel_diff = ChannelDiff(channel=channel, first_frame=None,
                                   frames_compared=n)
        for i in range(n):
            if not _values_equal(series_a[i], series_b[i], rel_tol, abs_tol):
                channel_diff.first_frame = i
                channel_diff.a_value = series_a[i]
                channel_diff.b_value = series_b[i]
                break
        diff.channels.append(channel_diff)
    return diff
