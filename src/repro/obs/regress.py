"""Regression gate: diff a BENCH_trajectory run against a baseline.

The comparator walks the scenario sections of two
:mod:`repro.obs.bench` payloads and classifies every metric:

- ``counters`` — **exact**.  These are deterministic workload counters
  (pixel–Gaussian pairs, atomic adds, sort keys); any mismatch means the
  workload silently changed and fails the gate.
- ``model``    — modeled cycles/latency/bytes, deterministic functions
  of the counters; compared with a tiny relative tolerance (absolute
  floor for zero-valued baselines).  Oriented smaller-is-better: larger
  beyond tolerance regresses, smaller improves.
- ``wall``     — median wall seconds, noise-aware: a regression needs to
  exceed the baseline median by a relative margin *and* several MADs
  (whichever slack is largest, with an absolute floor for micro-scenarios).
- ``overhead`` — the observability-overhead budget: the ``obs_overhead``
  scenario's instrumented/all-off wall ratios (the all-on leg plus the
  telemetry-bus legs under ``extra``) must not exceed the committed
  baseline ratios beyond a hard slack.  Compared only when both payloads
  carry the section (like ``wall``), so old baselines keep working.

Missing scenarios/metrics in the current run fail (``removed``); new
ones pass with a note (``new``).  Schema-version or file problems are
reported as errors and also fail.  Before attributing pass/fail, the
comparator diffs the two payloads' environment fingerprints
(python/numpy/cpu_count/...) and reports mismatches as explicit
warnings — cross-machine comparisons should never be trusted silently,
but a mismatch by itself does not fail the gate (the counter/model
sections stay machine-portable).  Everything is stdlib-only.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .bench import SCHEMA_VERSION

__all__ = [
    "TolerancePolicy",
    "Finding",
    "RegressionReport",
    "load_trajectory",
    "compare_runs",
    "compare_files",
]

#: Sections of a scenario payload the gate inspects, in report order.
DEFAULT_SECTIONS = ("counters", "model", "wall", "overhead")


@dataclass(frozen=True)
class TolerancePolicy:
    """Per-kind comparison tolerances."""

    #: Allowed relative slowdown of the median wall time.
    wall_rel: float = 0.30
    #: ... which must also exceed this many MADs (max of both runs').
    wall_mad_factor: float = 4.0
    #: Absolute wall slack floor — micro-scenarios jitter by milliseconds.
    wall_abs_s: float = 0.02
    #: Relative tolerance for modeled (deterministic float) metrics.
    model_rel: float = 1e-6
    #: Absolute floor for modeled metrics with zero-valued baselines.
    model_abs: float = 1e-12
    #: Observability-overhead budget: the all-on/all-off wall ratio may
    #: exceed the committed baseline ratio by at most this relative slack...
    overhead_rel: float = 0.35
    #: ... with this absolute ratio floor (small scenarios jitter), and
    overhead_abs: float = 0.5
    #: the excess must also clear this many MADs (max of both runs').
    overhead_mad_factor: float = 4.0


@dataclass
class Finding:
    """Verdict for one metric of one scenario."""

    scenario: str
    metric: str
    kind: str                     # "counter" | "model" | "wall"
                                  # | "overhead" | "scenario"
    baseline: Optional[float]
    current: Optional[float]
    status: str                   # "ok" | "improved" | "regressed"
                                  # | "new" | "removed"
    detail: str = ""


@dataclass
class RegressionReport:
    """All findings of one comparison plus structural errors."""

    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    #: Environment-fingerprint differences between the payloads.  Warn
    #: only: they flag untrustworthy wall comparisons, not regressions.
    env_mismatches: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings
                if f.status in ("regressed", "removed")]

    @property
    def passed(self) -> bool:
        return not self.regressions and not self.errors

    @property
    def exit_code(self) -> int:
        """0 clean, 1 metric regressions, 2 structural errors."""
        if self.errors:
            return 2
        return 0 if self.passed else 1

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.status] = out.get(f.status, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "counts": {k: v for k, v in sorted(self.counts().items())},
            "errors": list(self.errors),
            "env_mismatches": list(self.env_mismatches),
            "findings": [asdict(f) for f in self.findings
                         if f.status != "ok"],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=1, sort_keys=True)
            f.write("\n")

    def format_markdown(self, max_rows: int = 50) -> str:
        counts = self.counts()
        summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"### bench compare — {verdict} ({summary or 'no metrics'})"]
        for mismatch in self.env_mismatches:
            lines.append(f"- WARNING: environment mismatch — {mismatch} "
                         f"(wall-time comparison untrustworthy across "
                         f"machines)")
        for err in self.errors:
            lines.append(f"- ERROR: {err}")
        notable = [f for f in self.findings if f.status != "ok"]
        # Failures first, then improvements/new, alphabetical within.
        order = {"removed": 0, "regressed": 1, "improved": 2, "new": 3}
        notable.sort(key=lambda f: (order.get(f.status, 9),
                                    f.scenario, f.metric))
        if notable:
            lines += [
                "",
                "| scenario | metric | kind | baseline | current "
                "| status | detail |",
                "|---|---|---|---:|---:|---|---|",
            ]
            for f in notable[:max_rows]:
                lines.append(
                    f"| {f.scenario} | {f.metric} | {f.kind} "
                    f"| {_fmt(f.baseline)} | {_fmt(f.current)} "
                    f"| {f.status} | {f.detail} |")
            if len(notable) > max_rows:
                lines.append(f"| ... | +{len(notable) - max_rows} more "
                             f"| | | | | |")
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return f"{f:.6g}"


# ---------------------------------------------------------------------------
# Comparison core
# ---------------------------------------------------------------------------

def _check_schema(doc: Any, label: str, errors: List[str]) -> bool:
    if not isinstance(doc, dict):
        errors.append(f"{label}: not a JSON object")
        return False
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        errors.append(f"{label}: schema_version {version!r} != "
                      f"supported {SCHEMA_VERSION}")
        return False
    if not isinstance(doc.get("scenarios"), dict):
        errors.append(f"{label}: missing 'scenarios' object")
        return False
    return True


def _compare_exact(name: str, metric: str, base: float, cur: float) -> Finding:
    if cur == base:
        return Finding(name, metric, "counter", base, cur, "ok")
    return Finding(name, metric, "counter", base, cur, "regressed",
                   f"exact counter changed {_fmt(base)} -> {_fmt(cur)}")


def _compare_model(name: str, metric: str, base: float, cur: float,
                   policy: TolerancePolicy) -> Finding:
    tol = max(policy.model_abs, policy.model_rel * abs(base))
    if cur > base + tol:
        return Finding(name, metric, "model", base, cur, "regressed",
                       f"exceeds baseline by {cur - base:.3g} "
                       f"(tolerance {tol:.3g})")
    if cur < base - tol:
        return Finding(name, metric, "model", base, cur, "improved",
                       f"below baseline by {base - cur:.3g}")
    return Finding(name, metric, "model", base, cur, "ok")


def _compare_wall(name: str, base_wall: Dict[str, Any],
                  cur_wall: Dict[str, Any],
                  policy: TolerancePolicy) -> Finding:
    base = float(base_wall.get("median_s", 0.0))
    cur = float(cur_wall.get("median_s", 0.0))
    mad = max(float(base_wall.get("mad_s", 0.0)),
              float(cur_wall.get("mad_s", 0.0)))
    slack = max(policy.wall_abs_s, base * policy.wall_rel,
                policy.wall_mad_factor * mad)
    metric = "wall.median_s"
    if cur > base + slack:
        return Finding(name, metric, "wall", base, cur, "regressed",
                       f"median slowed {base:.4f}s -> {cur:.4f}s "
                       f"(slack {slack:.4f}s)")
    if cur < base - slack:
        return Finding(name, metric, "wall", base, cur, "improved",
                       f"median improved {base:.4f}s -> {cur:.4f}s")
    return Finding(name, metric, "wall", base, cur, "ok")


def _compare_overhead_ratio(name: str, metric: str,
                            base_over: Dict[str, Any],
                            cur_over: Dict[str, Any],
                            policy: TolerancePolicy) -> Finding:
    base = float(base_over.get("ratio", 0.0))
    cur = float(cur_over.get("ratio", 0.0))
    mad = max(float(base_over.get("mad", 0.0)),
              float(cur_over.get("mad", 0.0)))
    slack = max(policy.overhead_abs, base * policy.overhead_rel,
                policy.overhead_mad_factor * mad)
    if cur > base + slack:
        return Finding(name, metric, "overhead", base, cur, "regressed",
                       f"obs overhead grew {base:.3f}x -> {cur:.3f}x "
                       f"(budget {base + slack:.3f}x)")
    if cur < base - slack:
        return Finding(name, metric, "overhead", base, cur, "improved",
                       f"obs overhead shrank {base:.3f}x -> {cur:.3f}x")
    return Finding(name, metric, "overhead", base, cur, "ok")


def _compare_overhead(name: str, base_over: Dict[str, Any],
                      cur_over: Dict[str, Any],
                      policy: TolerancePolicy) -> List[Finding]:
    """The headline ratio plus any named extra ratios (e.g. the
    telemetry-bus legs), each under the same budget rule.  Extras absent
    from the baseline pass as ``new``; extras the current run dropped
    fail as ``removed``."""
    findings = [_compare_overhead_ratio(name, "overhead.ratio",
                                        base_over, cur_over, policy)]
    base_extra = base_over.get("extra") or {}
    cur_extra = cur_over.get("extra") or {}
    for key in sorted(set(base_extra) | set(cur_extra)):
        metric = f"overhead.{key}"
        if key not in cur_extra:
            findings.append(Finding(
                name, metric, "overhead",
                float(base_extra[key].get("ratio", 0.0)), None, "removed",
                "overhead ratio missing from current run"))
        elif key not in base_extra:
            findings.append(Finding(
                name, metric, "overhead", None,
                float(cur_extra[key].get("ratio", 0.0)), "new",
                "overhead ratio absent from baseline"))
        else:
            findings.append(_compare_overhead_ratio(
                name, metric, base_extra[key], cur_extra[key], policy))
    return findings


def _compare_section(name: str, section: str, base: Dict[str, Any],
                     cur: Dict[str, Any],
                     policy: TolerancePolicy) -> List[Finding]:
    kind = "counter" if section == "counters" else "model"
    base_metrics = base.get(section) or {}
    cur_metrics = cur.get(section) or {}
    findings = []
    for key in sorted(base_metrics):
        metric = f"{section}.{key}"
        if key not in cur_metrics:
            findings.append(Finding(name, metric, kind,
                                    float(base_metrics[key]), None,
                                    "removed",
                                    "metric missing from current run"))
            continue
        base_v, cur_v = float(base_metrics[key]), float(cur_metrics[key])
        if section == "counters":
            findings.append(_compare_exact(name, metric, base_v, cur_v))
        else:
            findings.append(_compare_model(name, metric, base_v, cur_v,
                                           policy))
    for key in sorted(set(cur_metrics) - set(base_metrics)):
        findings.append(Finding(name, f"{section}.{key}", kind, None,
                                float(cur_metrics[key]), "new",
                                "metric absent from baseline"))
    return findings


def _env_mismatches(baseline: Dict[str, Any],
                    current: Dict[str, Any]) -> List[str]:
    """Fingerprint keys where the two payloads' environments differ."""
    base_env = baseline.get("environment") or {}
    cur_env = current.get("environment") or {}
    out = []
    for key in sorted(set(base_env) | set(cur_env)):
        base_v, cur_v = base_env.get(key), cur_env.get(key)
        if base_v != cur_v:
            out.append(f"{key}: baseline {base_v!r} vs current {cur_v!r}")
    return out


def compare_runs(current: Dict[str, Any], baseline: Dict[str, Any],
                 policy: Optional[TolerancePolicy] = None,
                 sections: Sequence[str] = DEFAULT_SECTIONS,
                 ) -> RegressionReport:
    """Diff two suite payloads; see the module docstring for semantics."""
    pol = policy or TolerancePolicy()
    report = RegressionReport()
    ok = _check_schema(baseline, "baseline", report.errors)
    ok = _check_schema(current, "current", report.errors) and ok
    if not ok:
        return report
    report.env_mismatches = _env_mismatches(baseline, current)

    base_scenarios = baseline["scenarios"]
    cur_scenarios = current["scenarios"]
    for name in sorted(base_scenarios):
        if name not in cur_scenarios:
            report.findings.append(Finding(
                name, "(scenario)", "scenario", None, None, "removed",
                "scenario missing from current run"))
            continue
        base, cur = base_scenarios[name], cur_scenarios[name]
        for section in sections:
            if section == "wall":
                if base.get("wall") and cur.get("wall"):
                    report.findings.append(
                        _compare_wall(name, base["wall"], cur["wall"], pol))
                continue
            if section == "overhead":
                if base.get("overhead") and cur.get("overhead"):
                    report.findings.extend(_compare_overhead(
                        name, base["overhead"], cur["overhead"], pol))
                continue
            report.findings.extend(
                _compare_section(name, section, base, cur, pol))
    for name in sorted(set(cur_scenarios) - set(base_scenarios)):
        report.findings.append(Finding(
            name, "(scenario)", "scenario", None, None, "new",
            "scenario absent from baseline"))
    return report


# ---------------------------------------------------------------------------
# File-level entry points
# ---------------------------------------------------------------------------

def load_trajectory(path: str) -> Dict[str, Any]:
    """Load one trajectory JSON; raises OSError / ValueError on problems.

    Accepts either a single suite payload or a bench-history document
    (``{"format": "bench-history", "entries": [...]}`` as written by
    ``benchmarks/bench_obs_trajectory.py``), in which case the newest
    entry is returned.
    """
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a JSON object")
    if doc.get("format") == "bench-history":
        entries = doc.get("entries")
        if not (isinstance(entries, list) and entries):
            raise ValueError(f"{path}: bench-history with no entries")
        latest = entries[-1]
        if not isinstance(latest, dict):
            raise ValueError(f"{path}: bench-history entry not an object")
        return latest
    return doc


def compare_files(current_path: str, baseline_path: str,
                  policy: Optional[TolerancePolicy] = None,
                  sections: Sequence[str] = DEFAULT_SECTIONS,
                  ) -> RegressionReport:
    """Load + diff two trajectory files; file problems become errors."""
    report = RegressionReport()
    docs = {}
    for label, path in (("baseline", baseline_path),
                        ("current", current_path)):
        try:
            docs[label] = load_trajectory(path)
        except FileNotFoundError:
            hint = (" — record one with `repro bench run --out "
                    f"{path}` and commit it" if label == "baseline" else "")
            report.errors.append(f"{label} file not found: {path}{hint}")
        except (OSError, ValueError) as exc:
            report.errors.append(f"{label} file unreadable: {exc}")
    if report.errors:
        return report
    return compare_runs(docs["current"], docs["baseline"], policy, sections)
