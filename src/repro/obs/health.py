"""Online health monitors over the SLAM flight-record stream.

Watches per-frame records as :meth:`repro.slam.SLAMSystem.run` emits
them and raises structured :class:`HealthAlert`\\ s when a run starts
going wrong *while it is still running*:

- ``non_finite``       — NaN/∞ in losses or poses (also reachable
  directly from the tracker/mapper iteration guards, which fire even
  when the flight recorder is off);
- ``pose_jump``        — a translation step far above the run's rolling
  median step (the constant-velocity prior says consecutive frames move
  by similar amounts);
- ``loss_divergence``  — the sliding window of tracking losses sits
  entirely above the best loss the run had already reached;
- ``coverage_collapse``— the unseen-by-transmittance fraction of a
  mapping pass stays above threshold after warm-up (the map stopped
  covering the view, Eqn. 2 territory);
- ``densify_runaway``  — the Gaussian count grows by more than a factor
  in one mapping invocation after warm-up;
- ``frame_time_spike`` — one frame's wall time is an outlier against the
  rolling median wall time of frames of its kind (mapping passes compare
  against mapping passes, tracking-only frames against tracking-only
  ones; rising-edge: a sustained slowdown alerts once, not every frame).

Every alert is routed through the metrics registry (a ``health.alerts.
<monitor>`` counter plus a logged warning) and published onto the
telemetry bus (an ``"alert"`` event, when the bus is enabled), and the
configurable ``on_alert`` policy escalates: ``"warn"`` records and
continues, ``"raise"`` aborts the run with :exc:`HealthError`.

Module-level imports are stdlib-only (``math.isfinite`` + duck typing
cover numpy scalars; :mod:`repro.obs.telemetry` is stdlib-only too),
keeping :mod:`repro.obs` cycle-free.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry, metrics
from .telemetry import bus as _bus

__all__ = [
    "HealthConfig",
    "HealthAlert",
    "HealthError",
    "HealthMonitor",
    "get_monitor",
    "set_monitor",
    "use_monitor",
]


class HealthError(RuntimeError):
    """Raised by a monitor whose policy is ``on_alert="raise"``."""

    def __init__(self, alert: "HealthAlert"):
        super().__init__(alert.message)
        self.alert = alert


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and escalation policy of the monitors.

    Defaults are loose enough that healthy proxy-scale runs never
    alert; see EXPERIMENTS.md "Flight recorder" for tuning guidance.
    """

    #: ``"warn"`` records alerts and continues; ``"raise"`` aborts the
    #: run with :exc:`HealthError` at the first alert.
    on_alert: str = "warn"
    #: A translation step alerts when it exceeds this multiple of the
    #: rolling median step ...
    pose_jump_factor: float = 10.0
    #: ... and this absolute floor (metres) — tiny scenes jitter.
    pose_jump_min_m: float = 0.05
    #: Number of recent steps the rolling median considers.
    pose_history: int = 8
    #: Sliding-window length for the loss-divergence monitor.
    loss_window: int = 5
    #: The window diverges when its *minimum* exceeds this multiple of
    #: the best loss observed before the window.
    loss_divergence_factor: float = 2.0
    #: Unseen-pixel fraction above which a mapping pass alerts ...
    coverage_collapse: float = 0.5
    #: ... once this many mapping passes have been observed (early
    #: frames legitimately see mostly-unseen pixels).
    coverage_warmup: int = 2
    #: Gaussian-count growth factor per mapping invocation that alerts ...
    densify_growth_factor: float = 1.75
    #: ... after this many invocations (bootstrap growth is expected).
    densify_warmup: int = 2
    #: A frame's wall time alerts when it exceeds this multiple of the
    #: rolling median wall time of frames of its kind (mapping frames
    #: compare against mapping frames); ``<= 0`` disables the monitor
    #: (wall time is nondeterministic — benches needing exact alert
    #: counts turn it off) ...
    frame_time_factor: float = 10.0
    #: ... and this absolute floor (seconds) — timer jitter on fast
    #: proxy frames is not a spike.
    frame_time_min_s: float = 0.05
    #: Number of recent frame wall times the rolling median considers.
    frame_time_history: int = 8

    def __post_init__(self) -> None:
        if self.on_alert not in ("warn", "raise"):
            raise ValueError("on_alert must be 'warn' or 'raise'")


@dataclass
class HealthAlert:
    """One structured warning from a monitor."""

    monitor: str
    message: str
    frame: Optional[int] = None
    value: Optional[float] = None
    threshold: Optional[float] = None
    context: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"monitor": self.monitor,
                               "message": self.message}
        if self.frame is not None:
            out["frame"] = int(self.frame)
        if self.value is not None:
            out["value"] = float(self.value)
        if self.threshold is not None:
            out["threshold"] = float(self.threshold)
        if self.context:
            out["context"] = dict(self.context)
        return out


def _is_finite(value: Any) -> bool:
    """Finite check over scalars and (possibly nested) sequences."""
    if value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_finite(v) for v in value)
    try:
        return math.isfinite(float(value))
    except TypeError:
        # numpy arrays and other array-likes expose tolist().
        tolist = getattr(value, "tolist", None)
        if callable(tolist):
            return _is_finite(tolist())
        return True
    except (ValueError, OverflowError):
        return False


def _median(values: List[float]) -> float:
    xs = sorted(values)
    n = len(xs)
    mid = n // 2
    if n % 2:
        return xs[mid]
    return 0.5 * (xs[mid - 1] + xs[mid])


class HealthMonitor:
    """Stream watcher: feed it frame records, collect structured alerts."""

    def __init__(self, config: Optional[HealthConfig] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config or HealthConfig()
        self.registry = registry or metrics
        self.alerts: List[HealthAlert] = []
        self.begin_run()

    # ---- run lifecycle ----

    def begin_run(self) -> None:
        """Reset per-run monitor state (alerts persist per instance)."""
        self.alerts = []
        self._last_position: Optional[List[float]] = None
        self._steps: List[float] = []
        self._losses: List[float] = []
        self._loss_diverged = False
        self._coverage_collapsed = False
        self._mapping_passes = 0
        self._densify_invocations = 0
        self._last_gaussians: Optional[int] = None
        self._frame_times: Dict[str, List[float]] = {}
        self._frame_time_spiking = False

    # ---- alert plumbing ----

    def _alert(self, monitor: str, message: str,
               frame: Optional[int] = None,
               value: Optional[float] = None,
               threshold: Optional[float] = None,
               **context) -> HealthAlert:
        alert = HealthAlert(monitor=monitor, message=message, frame=frame,
                            value=value, threshold=threshold,
                            context={k: v for k, v in context.items()
                                     if v is not None})
        self.alerts.append(alert)
        self.registry.inc(f"health.alerts.{monitor}")
        self.registry.warn(f"health[{monitor}]: {message}")
        if _bus.enabled:
            # Publish before a "raise" policy escalates, so live
            # consumers see the alert that aborted the run.
            _bus.publish("alert", alert.as_dict())
        if self.config.on_alert == "raise":
            raise HealthError(alert)
        return alert

    def non_finite(self, name: str, frame: Optional[int] = None,
                   **context) -> HealthAlert:
        """Record a NaN/∞ detection (used by the iteration guards)."""
        return self._alert(
            "non_finite",
            f"non-finite value in {name}"
            + (f" (frame {frame})" if frame is not None else ""),
            frame=frame, **context)

    def check_finite(self, name: str, value: Any,
                     frame: Optional[int] = None, **context) -> bool:
        """Alert (and return False) when ``value`` contains NaN/∞."""
        if _is_finite(value):
            return True
        self.non_finite(name, frame=frame, **context)
        return False

    # ---- the frame-stream monitors ----

    def observe_frame(self, record: Dict[str, Any]) -> List[HealthAlert]:
        """Run every monitor over one frame record; returns new alerts."""
        before = len(self.alerts)
        frame = record.get("frame")
        self._check_finiteness(record, frame)
        self._check_pose_jump(record, frame)
        self._check_loss_divergence(record, frame)
        self._check_coverage(record, frame)
        self._check_densification(record, frame)
        self._check_frame_time(record, frame)
        return self.alerts[before:]

    def _check_finiteness(self, record, frame) -> None:
        self.check_finite("pose_est", record.get("pose_est"), frame=frame)
        tracking = record.get("tracking") or {}
        self.check_finite("tracking.final_loss",
                          tracking.get("final_loss"), frame=frame)
        mapping = record.get("mapping") or {}
        self.check_finite("mapping.final_loss",
                          mapping.get("final_loss"), frame=frame)

    @staticmethod
    def _position(record) -> Optional[List[float]]:
        pose = record.get("pose_est")
        if not isinstance(pose, (list, tuple)) or len(pose) != 4:
            return None
        try:
            return [float(pose[i][3]) for i in range(3)]
        except (TypeError, IndexError, ValueError):
            return None

    def _check_pose_jump(self, record, frame) -> None:
        cfg = self.config
        position = self._position(record)
        if position is None:
            return
        if self._last_position is not None:
            step = math.sqrt(sum(
                (a - b) ** 2 for a, b in zip(position, self._last_position)))
            if _is_finite(step) and len(self._steps) >= 3:
                median_step = _median(self._steps)
                limit = max(cfg.pose_jump_min_m,
                            cfg.pose_jump_factor * median_step)
                if step > limit:
                    self._alert(
                        "pose_jump",
                        f"frame {frame}: translation step {step:.3f} m "
                        f"exceeds {limit:.3f} m "
                        f"({cfg.pose_jump_factor:g}x rolling median "
                        f"{median_step:.4f} m)",
                        frame=frame, value=step, threshold=limit)
            if _is_finite(step):
                self._steps.append(step)
                del self._steps[:-cfg.pose_history]
        self._last_position = position

    def _check_loss_divergence(self, record, frame) -> None:
        cfg = self.config
        tracking = record.get("tracking") or {}
        loss = tracking.get("final_loss")
        if loss is None or not _is_finite(loss):
            return
        self._losses.append(float(loss))
        window = cfg.loss_window
        if len(self._losses) <= window:
            return
        best_before = min(self._losses[:-window])
        window_min = min(self._losses[-window:])
        diverged = window_min > cfg.loss_divergence_factor * best_before + 1e-12
        if diverged and not self._loss_diverged:
            self._alert(
                "loss_divergence",
                f"frame {frame}: tracking loss window min {window_min:.5f} "
                f"is {cfg.loss_divergence_factor:g}x above the best "
                f"{best_before:.5f}",
                frame=frame, value=window_min,
                threshold=cfg.loss_divergence_factor * best_before)
        self._loss_diverged = diverged

    def _check_coverage(self, record, frame) -> None:
        cfg = self.config
        mapping = record.get("mapping") or {}
        sampling = mapping.get("sampling") or {}
        coverage = sampling.get("unseen_coverage")
        if coverage is None or not _is_finite(coverage):
            return
        self._mapping_passes += 1
        if self._mapping_passes <= cfg.coverage_warmup:
            return
        collapsed = float(coverage) > cfg.coverage_collapse
        if collapsed and not self._coverage_collapsed:
            self._alert(
                "coverage_collapse",
                f"frame {frame}: unseen-transmittance coverage "
                f"{float(coverage):.2f} exceeds {cfg.coverage_collapse:g} "
                f"after warm-up — the map no longer covers the view",
                frame=frame, value=float(coverage),
                threshold=cfg.coverage_collapse)
        self._coverage_collapsed = collapsed

    def _check_densification(self, record, frame) -> None:
        cfg = self.config
        mapping = record.get("mapping") or {}
        gaussians = record.get("gaussians")
        if gaussians is None or not mapping.get("invoked"):
            return
        self._densify_invocations += 1
        previous = self._last_gaussians
        self._last_gaussians = int(gaussians)
        if previous is None or previous <= 0:
            return
        if self._densify_invocations <= cfg.densify_warmup:
            return
        growth = int(gaussians) / previous
        if growth > cfg.densify_growth_factor:
            self._alert(
                "densify_runaway",
                f"frame {frame}: map grew {growth:.2f}x in one mapping "
                f"invocation ({previous} -> {int(gaussians)} Gaussians)",
                frame=frame, value=growth,
                threshold=cfg.densify_growth_factor)

    def _check_frame_time(self, record, frame) -> None:
        cfg = self.config
        if cfg.frame_time_factor <= 0:
            return
        wall = record.get("wall_time_s")
        if wall is None or not _is_finite(wall):
            return
        wall = float(wall)
        # Mapping frames legitimately cost many times a tracking-only
        # frame, so each frame compares only against the rolling median
        # of its own kind — a mapping pass is an outlier among mapping
        # passes, not among cheap tracking frames.  Each bucket needs
        # >=3 observations before the median is meaningful (the same
        # warm-up the pose-jump monitor uses).
        mapping = record.get("mapping") or {}
        bucket = "mapping" if mapping.get("invoked") else "tracking"
        history = self._frame_times.setdefault(bucket, [])
        if len(history) >= 3:
            median_wall = _median(history)
            limit = max(cfg.frame_time_min_s,
                        cfg.frame_time_factor * median_wall)
            spiking = wall > limit
            if spiking and not self._frame_time_spiking:
                self._alert(
                    "frame_time_spike",
                    f"frame {frame}: {bucket} wall time {wall:.3f} s "
                    f"exceeds {limit:.3f} s ({cfg.frame_time_factor:g}x "
                    f"rolling {bucket} median {median_wall:.4f} s)",
                    frame=frame, value=wall, threshold=limit)
            self._frame_time_spiking = spiking
        history.append(wall)
        del history[:-cfg.frame_time_history]


#: Process-wide default monitor.  The tracker/mapper iteration guards
#: route through this instance, so NaN detection works even when no
#: flight recorder (and no custom monitor) is attached to the run.
_monitor = HealthMonitor()


def get_monitor() -> HealthMonitor:
    """The process-wide default :class:`HealthMonitor`."""
    return _monitor


def set_monitor(monitor: HealthMonitor) -> HealthMonitor:
    """Swap the default monitor (returns the previous one)."""
    global _monitor
    previous = _monitor
    _monitor = monitor
    return previous


@contextmanager
def use_monitor(monitor: Optional[HealthMonitor]):
    """Temporarily install ``monitor`` as the process default.

    ``SLAMSystem.run`` wraps itself in this so the tracker/mapper
    iteration guards — which always call :func:`get_monitor` — route
    into a per-run monitor when one is supplied.  ``None`` is a no-op
    (the current default stays active).
    """
    if monitor is None:
        yield get_monitor()
        return
    previous = set_monitor(monitor)
    try:
        yield monitor
    finally:
        set_monitor(previous)
