"""HTTP telemetry exporter: ``/metrics``, ``/healthz``, and ``/runz``.

A stdlib-only (``http.server``) background endpoint that makes a running
process scrapeable:

- ``GET /metrics`` — the process-wide :data:`repro.obs.metrics.metrics`
  registry rendered in the Prometheus text exposition format (0.0.4),
  plus the telemetry bus's own health counters
  (``repro_telemetry_published_total`` / ``repro_telemetry_dropped_total``)
  so a scraper can alert on a consumer falling behind;
- ``GET /healthz`` — JSON liveness: run progress, health-alert ticker,
  and bus statistics (always HTTP 200 while the process serves;
  ``"status"`` flips from ``"ok"`` to ``"alerting"`` when health alerts
  fired);
- ``GET /runz`` — the live run snapshot a
  :class:`~repro.obs.telemetry.RunAggregator` folds from the bus (frame
  index, fps, running pose RMSE, loss/Gaussian series tails, sampling
  composition), i.e. the JSON document ``repro top --endpoint`` renders.

The server subscribes to the bus once and drains its ring into the
aggregator lazily, on each request — between scrapes events just queue
(bounded; oldest dropped), so serving costs the producing run nothing
beyond the bus publish itself.

:func:`render_prometheus` and :func:`parse_prometheus_text` are exposed
directly so tests (and the CI telemetry smoke job) can round-trip the
exposition without an HTTP client.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlparse

from .telemetry import (
    RunAggregator,
    TelemetryBus,
    TelemetryConfig,
    bus as default_bus,
)

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "PrometheusScrape",
    "parse_prometheus_text",
    "TelemetryHTTPServer",
    "serve_telemetry",
]

#: Prefix stamped on every exported metric name.
METRIC_PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$")


def sanitize_metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """Turn a registry key into a legal Prometheus metric name.

    Dots (the registry's namespacing convention) and any other illegal
    character become underscores; a leading digit gets an underscore
    prepended; the ``repro_`` prefix namespaces the exposition.

    >>> sanitize_metric_name("tracking_fwd.num_candidate_pairs")
    'repro_tracking_fwd_num_candidate_pairs'
    """
    cleaned = _NAME_BAD_CHARS.sub("_", str(name))
    if not cleaned:
        cleaned = "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    out = f"{prefix}{cleaned}"
    if not _NAME_OK.match(out):    # pragma: no cover - defensive
        raise ValueError(f"could not sanitize metric name {name!r}")
    return out


def _format_value(value: float) -> str:
    f = float(value)
    if f != f:
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f.is_integer() and abs(f) < 2 ** 53:
        return str(int(f))
    return repr(f)


def render_prometheus(export: Dict[str, Any],
                      bus_stats: Optional[Dict[str, Any]] = None) -> str:
    """Render a :meth:`MetricsRegistry.export` payload as exposition text.

    Counters export with ``_total`` appended (Prometheus convention),
    gauges verbatim, histograms as summaries (``_count`` / ``_sum``)
    plus ``_min`` / ``_max`` gauges.  ``bus_stats`` (the payload of
    :meth:`TelemetryBus.stats`) adds the bus's publish/drop counters.
    Output is deterministic: families sorted by exported name.
    """
    families: List[Tuple[str, str, List[Tuple[str, float]]]] = []
    for name, value in export.get("counters", {}).items():
        out = sanitize_metric_name(name)
        if not out.endswith("_total"):
            out += "_total"
        families.append((out, "counter", [(out, float(value))]))
    for name, value in export.get("gauges", {}).items():
        out = sanitize_metric_name(name)
        families.append((out, "gauge", [(out, float(value))]))
    for name, snap in export.get("histograms", {}).items():
        out = sanitize_metric_name(name)
        families.append((out, "summary", [
            (f"{out}_count", float(snap.get("count", 0))),
            (f"{out}_sum", float(snap.get("sum", 0.0))),
        ]))
        for stat in ("min", "max", "mean"):
            if stat in snap:
                families.append((f"{out}_{stat}", "gauge",
                                 [(f"{out}_{stat}", float(snap[stat]))]))
    if bus_stats is not None:
        families.append((f"{METRIC_PREFIX}telemetry_published_total",
                         "counter",
                         [(f"{METRIC_PREFIX}telemetry_published_total",
                           float(bus_stats.get("published", 0)))]))
        families.append((f"{METRIC_PREFIX}telemetry_dropped_total",
                         "counter",
                         [(f"{METRIC_PREFIX}telemetry_dropped_total",
                           float(bus_stats.get("dropped", 0)))]))
        families.append((f"{METRIC_PREFIX}telemetry_subscribers", "gauge",
                         [(f"{METRIC_PREFIX}telemetry_subscribers",
                           float(len(bus_stats.get("subscribers", []))))]))
    warnings = export.get("warnings") or []
    families.append((f"{METRIC_PREFIX}warnings", "gauge",
                     [(f"{METRIC_PREFIX}warnings", float(len(warnings)))]))

    lines: List[str] = []
    for family, kind, samples in sorted(families):
        lines.append(f"# TYPE {family} {kind}")
        for sample, value in samples:
            lines.append(f"{sample} {_format_value(value)}")
    return "\n".join(lines) + "\n"


@dataclass
class PrometheusScrape:
    """One parsed text-exposition payload (samples + declared types)."""

    samples: Dict[str, float] = field(default_factory=dict)
    types: Dict[str, str] = field(default_factory=dict)

    def __getitem__(self, name: str) -> float:
        return self.samples[name]

    def __contains__(self, name: str) -> bool:
        return name in self.samples

    def __len__(self) -> int:
        return len(self.samples)


def parse_prometheus_text(text: str) -> PrometheusScrape:
    """Parse Prometheus text exposition; raises ``ValueError`` on any
    malformed line (the round-trip check the tests and the CI smoke job
    run against ``/metrics``)."""
    scrape = PrometheusScrape()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {parts[3]!r}")
                scrape.types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {raw!r}") from exc
        scrape.samples[match.group("name")] = value
    return scrape


# ---------------------------------------------------------------------------
# The HTTP server
# ---------------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    """Routes the three endpoints; silences per-request stderr logging."""

    server: "TelemetryHTTPServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802  (http.server API)
        path = urlparse(self.path).path.rstrip("/") or "/"
        exporter = self.server
        try:
            if path == "/metrics":
                self._respond(
                    200, "text/plain; version=0.0.4; charset=utf-8",
                    exporter.render_metrics())
            elif path == "/healthz":
                self._respond(200, "application/json",
                              json.dumps(exporter.healthz(), sort_keys=True))
            elif path == "/runz":
                self._respond(200, "application/json",
                              json.dumps(exporter.runz(), sort_keys=True))
            elif path == "/":
                self._respond(
                    200, "text/plain; charset=utf-8",
                    "repro telemetry exporter\n"
                    "endpoints: /metrics /healthz /runz\n")
            else:
                self._respond(404, "text/plain; charset=utf-8",
                              f"unknown path {path}\n")
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(500, "text/plain; charset=utf-8",
                          f"internal error: {exc}\n")


class TelemetryHTTPServer(ThreadingHTTPServer):
    """Background ``/metrics``–``/healthz``–``/runz`` exporter.

    Subscribes to the bus once; each request drains the subscription
    into the run aggregator before rendering, so the snapshot is always
    current without a polling thread.  ``port=0`` binds an ephemeral
    port (tests); the bound address is :attr:`url`.
    """

    daemon_threads = True

    def __init__(self, config: Optional[TelemetryConfig] = None,
                 registry=None, bus_: Optional[TelemetryBus] = None):
        self.config = config or TelemetryConfig()
        if registry is None:
            from .metrics import metrics as registry
        self.registry = registry
        self.bus = bus_ if bus_ is not None else default_bus
        self.aggregator = RunAggregator(series_len=self.config.series_len)
        self._agg_lock = threading.Lock()
        self._sub = self.bus.subscribe(
            kinds=("header", "frame", "summary", "alert", "registry"),
            maxlen=self.config.ring, name="promexport")
        self._thread: Optional[threading.Thread] = None
        super().__init__((self.config.host, self.config.port), _Handler)

    # ---- views the handler serves ----

    def _drain(self) -> None:
        with self._agg_lock:
            self._sub.drain_into(self.aggregator.consume_event)

    def render_metrics(self) -> str:
        return render_prometheus(self.registry.export(),
                                 bus_stats=self.bus.stats())

    def healthz(self) -> Dict[str, Any]:
        self._drain()
        agg = self.aggregator
        return {
            "status": "alerting" if agg.alert_count else "ok",
            "done": agg.done,
            "frame": agg.frame,
            "frames_seen": agg.frames_seen,
            "alert_count": agg.alert_count,
            "alerts": list(agg.alerts),
            "bus": self.bus.stats(),
        }

    def runz(self) -> Dict[str, Any]:
        self._drain()
        with self._agg_lock:
            return self.aggregator.snapshot()

    # ---- lifecycle ----

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def start(self) -> "TelemetryHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-telemetry-http",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> Dict[str, Any]:
        """Shut the server down; returns final serve statistics."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.server_close()
        self.bus.unsubscribe(self._sub)
        return {"url": self.url, "dropped": self._sub.dropped,
                "delivered": self._sub.delivered}


def serve_telemetry(config: Optional[TelemetryConfig] = None,
                    registry=None,
                    bus_: Optional[TelemetryBus] = None) -> TelemetryHTTPServer:
    """Enable the bus (if needed), start the exporter, return the server.

    The one-call entry point ``repro slam --serve-telemetry`` uses:
    after this returns, ``GET <server.url>/metrics`` works and the run's
    flight stream feeds ``/runz``.
    """
    target_bus = bus_ if bus_ is not None else default_bus
    if not target_bus.enabled:
        target_bus.enable()
    return TelemetryHTTPServer(config=config, registry=registry,
                               bus_=target_bus).start()
