"""Sparsity atlas: per-frame spatial work heatmaps of the SLAM pipelines.

SPLATONIC's thesis is that 3DGS SLAM work is *spatially sparse* — sparse
pixel lattices, preemptive α-rejection, uneven tile occupancy — but scalar
counters cannot show *where* in the image the work concentrates.  The atlas
closes that gap: while a SLAM run executes, both kernel backends (and the
dense tile pipeline) report their per-pixel work to a module-level
:class:`AtlasCollector`, which bins it into a fixed tile grid per frame and
streams the grids — together with the per-stage workload counters and the
modeled accelerator cycles/DRAM bytes for the same frame — into a
schema-versioned, gzip-compressed JSONL artifact.

Channels (one ``tiles_y x tiles_x`` integer grid per frame):

``sampled``     rendered pixels per tile (the sparse sampling mask)
``candidates``  pixel-Gaussian pairs submitted to α-checking
``contribs``    pairs that passed α-checking and were integrated
``gaussians``   distinct (tile, Gaussian) incidences — the per-tile
                Gaussian-list skew that drives redundant sorting
``atomics``     backward-pass gradient accumulations (aggregation traffic)

Determinism: observations are integer counts of the exact same pair sets
whose totals feed :class:`~repro.render.stats.PipelineStats`, records are
serialized key-sorted, and the gzip stream is written with ``mtime=0`` —
so the artifact is bit-identical across kernel backends and across runs.

Overhead discipline: every hot-path hook is gated on the plain attribute
``atlas.active``, which is only ``True`` between :meth:`begin_frame` and
:meth:`end_frame` of an *enabled* collector — a disabled atlas costs one
attribute load per render call.  The ``obs_overhead`` bench scenario and
the regress budget gate keep it that way.
"""

from __future__ import annotations

import gzip
import io
import json
import math
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .flight import to_plain

__all__ = [
    "ATLAS_SCHEMA_VERSION", "CHANNELS", "DEFAULT_ATLAS_TILE",
    "AtlasCollector", "AtlasLog", "atlas", "use_collector", "set_stage",
    "read_atlas", "format_heatmap", "heatmap_html",
]

ATLAS_SCHEMA_VERSION = 1

#: Spatial channels collected per frame, in serialization order.
CHANNELS = ("sampled", "candidates", "contribs", "gaussians", "atomics")

#: Default binning tile (pixels per atlas cell side).
DEFAULT_ATLAS_TILE = 8


class AtlasCollector:
    """Collects per-frame spatial work grids and writes the atlas artifact.

    Lifecycle mirrors the flight recorder: :meth:`enable` (optionally with
    an output path), :meth:`begin_run` header, then per SLAM frame
    :meth:`begin_frame` ... observations ... :meth:`end_frame`, and finally
    :meth:`disable`, which writes the artifact if a path was given.  The
    :func:`record_to` context manager bundles the lifecycle for tests.
    """

    def __init__(self, tile: int = DEFAULT_ATLAS_TILE):
        self._enabled = False
        self._tile = int(tile)
        self._path: Optional[str] = None
        self._records: List[dict] = []
        self._frame: Optional[dict] = None
        self._stage = "other"
        #: Hot-path gate — plain attribute, True only inside an open frame.
        self.active = False

    # ---- lifecycle ----

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def tile(self) -> int:
        return self._tile

    @property
    def records(self) -> List[dict]:
        """The collected records (header + frames), JSON-plain."""
        return self._records

    def enable(self, path: Optional[str] = None,
               tile: Optional[int] = None, reset: bool = True) -> None:
        """Start collecting; ``path`` (if given) is written on disable."""
        if reset:
            self.reset()
        if tile is not None:
            self._tile = int(tile)
        self._path = str(path) if path is not None else None
        self._enabled = True

    def disable(self) -> Optional[str]:
        """Stop collecting; flush to the enable-time path, if any."""
        path = self._path
        if self._enabled and path is not None and self._records:
            self.write(path)
        self._enabled = False
        self._frame = None
        self.active = False
        self._stage = "other"
        return path

    def reset(self) -> None:
        self._records = []
        self._frame = None
        self.active = False
        self._stage = "other"

    @contextmanager
    def record_to(self, path: Optional[str] = None,
                  tile: Optional[int] = None):
        """Enable for the duration of the block, then disable (and write)."""
        was = self._enabled
        self.enable(path=path, tile=tile)
        try:
            yield self
        finally:
            self.disable()
            self._enabled = was

    # ---- run / frame structure ----

    def begin_run(self, **meta) -> None:
        """Emit the artifact header.

        ``meta`` must not contain anything machine- or backend-specific:
        the artifact is required to be bit-identical across kernel
        backends (and the parity tests enforce it).
        """
        if not self._enabled:
            return
        self._records.append(to_plain({
            "type": "header",
            "schema_version": ATLAS_SCHEMA_VERSION,
            "tile": self._tile,
            "channels": list(CHANNELS),
            "meta": dict(meta),
        }))

    def begin_frame(self, frame: int, width: int, height: int) -> None:
        """Open the per-frame grids; a no-op when the collector is off."""
        if not self._enabled:
            return
        t = self._tile
        tiles_x = max(1, math.ceil(width / t))
        tiles_y = max(1, math.ceil(height / t))
        self._frame = {
            "frame": int(frame),
            "tiles_x": tiles_x,
            "tiles_y": tiles_y,
            "channels": {name: np.zeros(tiles_y * tiles_x, dtype=np.int64)
                         for name in CHANNELS},
            "observed": {},
        }
        self._stage = "other"
        self.active = True

    def set_stage(self, name: str) -> None:
        """Attribute subsequent observations to a pipeline stage."""
        if self.active:
            self._stage = name

    @contextmanager
    def stage(self, name: str):
        """Scoped :meth:`set_stage` (restores the previous label)."""
        prev = self._stage
        self.set_stage(name)
        try:
            yield self
        finally:
            if self.active:
                self._stage = prev

    def end_frame(self, stage_stats: Optional[dict] = None) -> None:
        """Close the frame and append its record.

        ``stage_stats`` maps a stage name to its per-frame
        ``(forward_stats, backward_stats)`` :class:`PipelineStats` pair;
        when given, the record also carries the stage counter dicts and
        the modeled accelerator cycles / DRAM bytes for the same frame
        (via :meth:`SplatonicAccelerator.stage_model` with
        ``assume_pixel=True`` — per-frame SLAM stats are labeled with the
        run mode, not the pipeline the model maps them onto).
        """
        if not self.active:
            return
        fr = self._frame
        ty, tx = fr["tiles_y"], fr["tiles_x"]
        rec = {
            "type": "frame",
            "frame": fr["frame"],
            "grid": [ty, tx],
            "tile": self._tile,
            "channels": {name: grid.reshape(ty, tx).tolist()
                         for name, grid in fr["channels"].items()},
            "observed": fr["observed"],
        }
        if stage_stats:
            stages = {}
            model = {}
            for name in sorted(stage_stats):
                fwd, bwd = stage_stats[name]
                stages[name] = {
                    "fwd": fwd.as_dict(),
                    "bwd": bwd.as_dict() if bwd is not None else None,
                }
                model[name] = self._model_stage(name, fwd, bwd)
            rec["stages"] = stages
            rec["model"] = model
        self._records.append(to_plain(rec))
        self._frame = None
        self.active = False
        self._stage = "other"

    def _model_stage(self, name, fwd, bwd) -> dict:
        """Modeled cycles + DRAM bytes for one stage's frame counters."""
        from ..hw.splatonic_accel import SplatonicAccelerator
        from ..hw.workload import Workload
        from ..render.stats import PipelineStats

        if bwd is None:
            bwd = PipelineStats(pipeline=fwd.pipeline)
        wl = Workload(name=name, fwd=fwd, bwd=bwd)
        sm = SplatonicAccelerator().stage_model(wl, assume_pixel=True)
        out = {
            "fwd_cycles": float(sm.forward.total),
            "bwd_cycles": float(sm.backward.total),
            "fwd_dram_bytes": float(sm.forward_dram_bytes),
            "bwd_dram_bytes": float(sm.backward_dram_bytes),
        }
        # When the per-pixel replay stream is recorded, also replay the
        # aggregation fetch pattern through the bank/row DRAM model.
        if bwd is not None and bwd.pixel_contrib_ids:
            from ..hw.dram import DramModel

            ids = np.concatenate(
                [np.asarray(p, dtype=int).ravel()
                 for p in bwd.pixel_contrib_ids]) \
                if bwd.pixel_contrib_ids else np.zeros(0, dtype=int)
            if ids.size:
                tally = DramModel().replay_gaussian_fetches(ids)
                out["dram_row_hit_rate"] = float(tally.hit_rate)
        return out

    # ---- observations (hot path; callers gate on ``atlas.active``) ----

    def _tile_ids(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        fr = self._frame
        t = self._tile
        tu = np.minimum(u // t, fr["tiles_x"] - 1)
        tv = np.minimum(v // t, fr["tiles_y"] - 1)
        return (tv * fr["tiles_x"] + tu).astype(np.int64)

    def _observed(self, stage: str) -> dict:
        obs = self._frame["observed"]
        if stage not in obs:
            obs[stage] = {name: 0 for name in CHANNELS}
        return obs[stage]

    def observe_sparse_forward(self, pixels: np.ndarray,
                               pair_pix: np.ndarray,
                               pair_gss: np.ndarray,
                               contribs: np.ndarray) -> None:
        """One pixel-pipeline forward pass.

        ``pixels`` are the rendered ``(K, 2)`` integer coordinates,
        ``pair_pix``/``pair_gss`` the candidate pairs *before* preemptive
        α-filtering (so per-tile pass rates match ``alpha_pass_rate``),
        and ``contribs`` the per-pixel α-passing pair counts.
        """
        if not self.active:
            return
        px = np.atleast_2d(np.asarray(pixels, dtype=int))
        k = px.shape[0]
        ch = self._frame["channels"]
        obs = self._observed(self._stage)
        if k == 0:
            return
        tid = self._tile_ids(px[:, 0], px[:, 1])
        np.add.at(ch["sampled"], tid, 1)
        obs["sampled"] += k
        contribs = np.asarray(contribs, dtype=np.int64)
        if contribs.size:
            np.add.at(ch["contribs"], tid, contribs)
            obs["contribs"] += int(contribs.sum())
        if pair_pix is not None and np.asarray(pair_pix).size:
            pair_pix = np.asarray(pair_pix, dtype=np.int64)
            pair_gss = np.asarray(pair_gss, dtype=np.int64)
            per_pix = np.bincount(pair_pix, minlength=k)
            np.add.at(ch["candidates"], tid, per_pix)
            obs["candidates"] += int(pair_pix.size)
            # Distinct (atlas tile, Gaussian) incidences: the per-tile
            # Gaussian-list length a tile pipeline would have to sort.
            span = int(pair_gss.max()) + 1
            keys = np.unique(tid[pair_pix] * np.int64(span) + pair_gss)
            tiles = keys // span
            np.add.at(ch["gaussians"], tiles, 1)
            obs["gaussians"] += int(keys.size)

    def observe_sparse_backward(self, pixels: np.ndarray,
                                touched: np.ndarray) -> None:
        """One pixel-pipeline backward pass; ``touched`` is per pixel."""
        if not self.active:
            return
        px = np.atleast_2d(np.asarray(pixels, dtype=int))
        if px.shape[0] == 0:
            return
        touched = np.asarray(touched, dtype=np.int64)
        tid = self._tile_ids(px[:, 0], px[:, 1])
        np.add.at(self._frame["channels"]["atomics"], tid, touched)
        self._observed(self._stage)["atomics"] += int(touched.sum())

    def observe_tile_forward(self, px: np.ndarray, n_gaussians: int,
                             contribs: Optional[np.ndarray]) -> None:
        """One rasterized tile of the dense pipeline's forward pass.

        ``px`` are the tile's rendered pixels, ``n_gaussians`` the length
        of its sorted Gaussian list (every pixel α-checks the full list),
        ``contribs`` the per-pixel contributing counts (None for a tile
        with an empty list).
        """
        if not self.active:
            return
        px = np.atleast_2d(np.asarray(px, dtype=int))
        k = px.shape[0]
        if k == 0:
            return
        ch = self._frame["channels"]
        obs = self._observed(self._stage)
        tid = self._tile_ids(px[:, 0], px[:, 1])
        np.add.at(ch["sampled"], tid, 1)
        obs["sampled"] += k
        if n_gaussians:
            np.add.at(ch["candidates"], tid, int(n_gaussians))
            obs["candidates"] += k * int(n_gaussians)
            atlas_tiles = np.unique(tid)
            np.add.at(ch["gaussians"], atlas_tiles, int(n_gaussians))
            obs["gaussians"] += int(atlas_tiles.size) * int(n_gaussians)
        if contribs is not None:
            contribs = np.asarray(contribs, dtype=np.int64)
            np.add.at(ch["contribs"], tid, contribs)
            obs["contribs"] += int(contribs.sum())

    def observe_tile_backward(self, px: np.ndarray,
                              touched: np.ndarray) -> None:
        """One tile of the dense pipeline's backward pass."""
        if not self.active:
            return
        px = np.atleast_2d(np.asarray(px, dtype=int))
        if px.shape[0] == 0:
            return
        touched = np.asarray(touched, dtype=np.int64)
        tid = self._tile_ids(px[:, 0], px[:, 1])
        np.add.at(self._frame["channels"]["atomics"], tid, touched)
        self._observed(self._stage)["atomics"] += int(touched.sum())

    # ---- serialization ----

    def to_bytes(self) -> bytes:
        """The artifact bytes: gzip(mtime=0) over key-sorted JSONL."""
        body = "".join(json.dumps(rec, sort_keys=True) + "\n"
                       for rec in self._records).encode("utf-8")
        buf = io.BytesIO()
        with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as gz:
            gz.write(body)
        return buf.getvalue()

    def write(self, path: str) -> int:
        """Write the artifact; returns the number of records written."""
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())
        return len(self._records)


#: Module-level collector the pipelines report to (off by default).
atlas = AtlasCollector()

#: The collector the render pipelines currently observe into.  Defaults to
#: the module singleton; :func:`use_collector` rebinds it so a run can
#: supply its own collector (mirrors ``health.use_monitor``).  Hot paths
#: read ``atlas_module.current.active`` — two attribute loads when off.
current = atlas


@contextmanager
def use_collector(collector: Optional[AtlasCollector]):
    """Route pipeline observations into ``collector`` for the block.

    ``None`` keeps the current routing (handy for optional overrides).
    """
    global current
    if collector is None:
        yield current
        return
    previous = current
    current = collector
    try:
        yield collector
    finally:
        current = previous


def set_stage(name: str) -> None:
    """Tag subsequent observations of the current collector with ``name``."""
    current.set_stage(name)


# ---------------------------------------------------------------------------
# Reading + aggregation
# ---------------------------------------------------------------------------


def read_atlas(path: str) -> "AtlasLog":
    """Load an atlas artifact (gzip or plain JSONL)."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if blob[:2] == b"\x1f\x8b":
        blob = gzip.decompress(blob)
    records = [json.loads(line)
               for line in blob.decode("utf-8").splitlines() if line]
    return AtlasLog(records, path=path)


class AtlasLog:
    """Aggregation API over a recorded atlas (in memory or from disk)."""

    def __init__(self, records: Sequence[dict], path: Optional[str] = None):
        self.path = path
        self.header: dict = {}
        self.frames: List[dict] = []
        for rec in records:
            kind = rec.get("type")
            if kind == "header":
                if rec.get("schema_version") != ATLAS_SCHEMA_VERSION:
                    raise ValueError(
                        "atlas schema mismatch: artifact v%r, reader v%r"
                        % (rec.get("schema_version"), ATLAS_SCHEMA_VERSION))
                self.header = rec
            elif kind == "frame":
                self.frames.append(rec)

    @classmethod
    def from_collector(cls, collector: AtlasCollector) -> "AtlasLog":
        return cls(collector.records)

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def tile(self) -> int:
        if self.header:
            return int(self.header.get("tile", DEFAULT_ATLAS_TILE))
        if self.frames:
            return int(self.frames[0].get("tile", DEFAULT_ATLAS_TILE))
        return DEFAULT_ATLAS_TILE

    @property
    def grid_shape(self) -> Tuple[int, int]:
        if not self.frames:
            return (0, 0)
        ty, tx = self.frames[0]["grid"]
        return (int(ty), int(tx))

    def stages(self) -> List[str]:
        seen = []
        for fr in self.frames:
            for stage in fr.get("observed", {}):
                if stage not in seen:
                    seen.append(stage)
        return sorted(seen)

    # ---- per-frame and aggregate grids ----

    def frame_grid(self, index: int, channel: str) -> np.ndarray:
        return np.asarray(self.frames[index]["channels"][channel],
                          dtype=np.int64)

    def _stack(self, channel: str) -> np.ndarray:
        if not self.frames:
            return np.zeros((0,) + self.grid_shape, dtype=np.int64)
        return np.stack([self.frame_grid(i, channel)
                         for i in range(self.num_frames)])

    def sum_atlas(self, channel: str) -> np.ndarray:
        stack = self._stack(channel)
        if stack.shape[0] == 0:
            return np.zeros(self.grid_shape, dtype=np.int64)
        return stack.sum(axis=0)

    def mean_atlas(self, channel: str) -> np.ndarray:
        stack = self._stack(channel)
        if stack.shape[0] == 0:
            return np.zeros(self.grid_shape, dtype=float)
        return stack.mean(axis=0)

    def max_atlas(self, channel: str) -> np.ndarray:
        stack = self._stack(channel)
        if stack.shape[0] == 0:
            return np.zeros(self.grid_shape, dtype=np.int64)
        return stack.max(axis=0)

    def alpha_pass_atlas(self, index: Optional[int] = None) -> np.ndarray:
        """Per-tile α-pass rate (contribs / candidates; 0 where no work)."""
        if index is None:
            cand = self.sum_atlas("candidates").astype(float)
            contr = self.sum_atlas("contribs").astype(float)
        else:
            cand = self.frame_grid(index, "candidates").astype(float)
            contr = self.frame_grid(index, "contribs").astype(float)
        out = np.zeros_like(cand)
        np.divide(contr, cand, out=out, where=cand > 0)
        return out

    # ---- scalar aggregates ----

    def occupancy_histogram(self, channel: str,
                            bins: int = 8) -> Tuple[List[int], List[float]]:
        """Histogram of per-tile values across all frames."""
        stack = self._stack(channel)
        values = stack.ravel() if stack.size else np.zeros(1)
        counts, edges = np.histogram(values, bins=bins)
        return [int(c) for c in counts], [float(e) for e in edges]

    def imbalance(self, channel: str) -> List[float]:
        """Per-frame max/mean tile load — the workload-skew series."""
        out = []
        for i in range(self.num_frames):
            grid = self.frame_grid(i, channel).astype(float)
            mean = grid.mean() if grid.size else 0.0
            out.append(float(grid.max() / mean) if mean > 0 else 0.0)
        return out

    def observed_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-stage channel totals summed over the run."""
        totals: Dict[str, Dict[str, int]] = {}
        for fr in self.frames:
            for stage, counts in fr.get("observed", {}).items():
                dst = totals.setdefault(stage,
                                        {name: 0 for name in CHANNELS})
                for name, value in counts.items():
                    dst[name] = dst.get(name, 0) + int(value)
        return totals

    def model_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-stage modeled cycles/DRAM bytes summed over the run."""
        totals: Dict[str, Dict[str, float]] = {}
        for fr in self.frames:
            for stage, m in fr.get("model", {}).items():
                dst = totals.setdefault(stage, {})
                for key, value in m.items():
                    if key == "dram_row_hit_rate":
                        continue
                    dst[key] = dst.get(key, 0.0) + float(value)
        return totals

    def measured_vs_modeled(self) -> Dict[str, Dict[str, float]]:
        """Observed spatial totals vs the stage counters and hw model.

        The candidate/contrib deltas are a self-check (both sides count
        the same pair sets; nonzero deltas mean unobserved renders); the
        α-pass rate and modeled DRAM bytes are the sparsity headline.
        """
        observed = self.observed_totals()
        model = self.model_totals()
        counters: Dict[str, Dict[str, int]] = {}
        for fr in self.frames:
            for stage, ps in fr.get("stages", {}).items():
                dst = counters.setdefault(
                    stage, {"candidates": 0, "contribs": 0, "atomics": 0})
                fwd = ps.get("fwd") or {}
                bwd = ps.get("bwd") or {}
                dst["candidates"] += int(fwd.get("num_candidate_pairs", 0))
                dst["contribs"] += int(fwd.get("num_contrib_pairs", 0))
                dst["atomics"] += int(bwd.get("num_atomic_adds", 0))
        out: Dict[str, Dict[str, float]] = {}
        for stage in sorted(set(observed) | set(counters)):
            obs = observed.get(stage, {name: 0 for name in CHANNELS})
            cnt = counters.get(stage,
                               {"candidates": 0, "contribs": 0, "atomics": 0})
            row = {
                "observed_candidates": int(obs.get("candidates", 0)),
                "counter_candidates": int(cnt["candidates"]),
                "delta_candidates": int(obs.get("candidates", 0)
                                        - cnt["candidates"]),
                "observed_contribs": int(obs.get("contribs", 0)),
                "counter_contribs": int(cnt["contribs"]),
                "delta_contribs": int(obs.get("contribs", 0)
                                      - cnt["contribs"]),
                "observed_atomics": int(obs.get("atomics", 0)),
                "counter_atomics": int(cnt["atomics"]),
                "alpha_pass_rate": (obs.get("contribs", 0)
                                    / obs["candidates"]
                                    if obs.get("candidates") else 0.0),
            }
            m = model.get(stage)
            if m:
                row["modeled_dram_bytes"] = float(
                    m.get("fwd_dram_bytes", 0.0)
                    + m.get("bwd_dram_bytes", 0.0))
            out[stage] = row
        return out


# ---------------------------------------------------------------------------
# Heatmap rendering
# ---------------------------------------------------------------------------

#: Intensity ramp; index 0 (space) is reserved for exactly-zero cells.
HEAT_CHARS = " ▁▂▃▄▅▆▇█"


def format_heatmap(grid: np.ndarray, chars: str = HEAT_CHARS) -> str:
    """Render a 2D grid as unicode intensity rows (zero cells stay blank)."""
    grid = np.asarray(grid, dtype=float)
    if grid.size == 0:
        return "(empty grid)"
    peak = float(grid.max())
    lines = []
    for row in grid:
        if peak <= 0:
            lines.append(chars[0] * len(row))
            continue
        cells = []
        for value in row:
            if value <= 0:
                cells.append(chars[0])
            else:
                level = 1 + int(value / peak * (len(chars) - 2))
                cells.append(chars[min(level, len(chars) - 1)])
        lines.append("".join(cells))
    return "\n".join(lines)


def heatmap_html(grid: np.ndarray, label: str = "") -> str:
    """Render a 2D grid as an HTML table with intensity-shaded cells."""
    grid = np.asarray(grid, dtype=float)
    peak = float(grid.max()) if grid.size else 0.0
    rows = []
    for row in np.atleast_2d(grid):
        cells = []
        for value in row:
            frac = (value / peak) if peak > 0 else 0.0
            # dark blue -> yellow ramp on a fixed background
            r = int(30 + 225 * frac)
            g = int(30 + 190 * frac)
            b = int(80 * (1.0 - frac) + 40)
            cells.append(
                '<td title="%g" style="width:10px;height:10px;'
                'background:rgb(%d,%d,%d)"></td>' % (value, r, g, b))
        rows.append("<tr>%s</tr>" % "".join(cells))
    caption = ("<caption>%s</caption>" % label) if label else ""
    return ('<table class="heatmap" style="border-collapse:collapse">'
            "%s%s</table>" % (caption, "".join(rows)))
