"""Metrics registry: counters, gauges, histograms, and bridges.

One export path for both views of a run: the *algorithmic* view
(``PipelineStats`` workload counters, α-check pass rates, warp
utilization) and the *modeled-hardware* view (stage latencies, aggregation
cache hit rates, modeled cycles/energy).  Everything lands in a
:class:`MetricsRegistry` whose :meth:`~MetricsRegistry.export` is
deterministic (sorted keys, plain python scalars) so benches can diff
exported payloads (e.g. the ``BENCH_trajectory.json`` artifacts of
``repro bench``) across PRs.

The ``ingest_*`` bridge functions translate the existing result objects —
they duck-type their inputs, so this module imports nothing from the rest
of the package (only the stdlib-only :mod:`repro.obs.telemetry`) and
stays cycle-free.

Live telemetry: :meth:`MetricsRegistry.publish_snapshot` publishes the
deterministic :meth:`~MetricsRegistry.export` payload onto the telemetry
bus as a ``"metrics"`` event — the SLAM loop calls it once per frame
while the bus is enabled, so stream consumers and ``repro top`` see
counters move while a run executes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .telemetry import bus as _bus

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "ingest_pipeline_stats",
    "ingest_stage_times",
    "ingest_aggregation_trace",
    "ingest_dram_stats",
]


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0}
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """Named counters (monotonic), gauges (last value), and histograms."""

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._warnings: List[str] = []

    # ---- instruments ----

    def inc(self, name: str, value: float = 1) -> float:
        """Add ``value`` to counter ``name``; returns the new total."""
        total = self._counters.get(name, 0) + value
        self._counters[name] = total
        return total

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def warn(self, message: str) -> None:
        """Record a run warning (also logged at WARNING level)."""
        self._warnings.append(str(message))
        from .log import get_logger
        get_logger("metrics").warning(message)

    # ---- access ----

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    @property
    def warnings(self) -> List[str]:
        return list(self._warnings)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._warnings.clear()

    # ---- export ----

    @staticmethod
    def _scalar(value: float) -> Any:
        f = float(value)
        return int(f) if f.is_integer() else f

    def export(self) -> Dict[str, Any]:
        """Deterministic, JSON-ready snapshot of everything recorded."""
        return {
            "counters": {k: self._scalar(v)
                         for k, v in sorted(self._counters.items())},
            "gauges": {k: float(v)
                       for k, v in sorted(self._gauges.items())},
            "histograms": {k: h.snapshot()
                           for k, h in sorted(self._histograms.items())},
            "warnings": list(self._warnings),
        }

    def publish_snapshot(self, kind: str = "metrics") -> bool:
        """Publish :meth:`export` onto the telemetry bus.

        No-op (and allocation-free — the snapshot is only built when
        someone is listening) while the bus is disabled; returns whether
        an event was published.
        """
        if not _bus.enabled:
            return False
        _bus.publish(kind, self.export())
        return True

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.export(), f, indent=1, sort_keys=True)


#: Process-wide default registry; the bridges below default to it.
metrics = MetricsRegistry()


# ---------------------------------------------------------------------------
# Bridges from existing result objects (duck-typed, no package imports)
# ---------------------------------------------------------------------------

def ingest_pipeline_stats(stage: str, stats,
                          registry: Optional[MetricsRegistry] = None) -> None:
    """Feed one :class:`~repro.render.stats.PipelineStats` into the registry.

    Raw ``num_*`` workload counters accumulate as counters under
    ``<stage>.<counter>``; the derived rates from ``stats.summary()``
    (α pass rate, warp utilization, per-pixel averages) land as gauges.
    """
    reg = registry or metrics
    for key, value in stats.as_dict().items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if key.startswith("num_"):
                reg.inc(f"{stage}.{key}", value)
    for key, value in stats.summary().items():
        if value is None:
            # Record-gated rates (warp utilization, mean contribs) are
            # n/a when per-pixel records were off; don't fake a gauge.
            continue
        reg.set_gauge(f"{stage}.{key}", value)


def ingest_stage_times(name: str, times,
                       registry: Optional[MetricsRegistry] = None) -> None:
    """Feed a hw-model :class:`~repro.hw.gpu.StageTimes` as gauges."""
    reg = registry or metrics
    for key, value in times.as_dict().items():
        reg.set_gauge(f"{name}.{key}_s", value)
    reg.set_gauge(f"{name}.forward_s", times.forward)
    reg.set_gauge(f"{name}.backward_s", times.backward)
    reg.set_gauge(f"{name}.total_s", times.total)


def ingest_aggregation_trace(name: str, agg_trace,
                             registry: Optional[MetricsRegistry] = None) -> None:
    """Feed an :class:`~repro.hw.aggregation.AggregationTrace` replay."""
    reg = registry or metrics
    reg.inc(f"{name}.tuples", agg_trace.tuples)
    reg.inc(f"{name}.cache_hits", agg_trace.cache_hits)
    reg.inc(f"{name}.cache_misses", agg_trace.cache_misses)
    reg.set_gauge(f"{name}.cycles", agg_trace.cycles)
    reg.set_gauge(f"{name}.stall_cycles", agg_trace.stall_cycles)
    reg.set_gauge(f"{name}.hit_rate", agg_trace.hit_rate)
    reg.set_gauge(f"{name}.cycles_per_tuple", agg_trace.cycles_per_tuple)
    reg.set_gauge(f"{name}.dram_bytes", agg_trace.dram_bytes)


def ingest_dram_stats(name: str, dram_stats,
                      registry: Optional[MetricsRegistry] = None) -> None:
    """Feed a :class:`~repro.hw.dram.DramStats` access tally."""
    reg = registry or metrics
    reg.inc(f"{name}.hits", dram_stats.hits)
    reg.inc(f"{name}.misses", dram_stats.misses)
    reg.set_gauge(f"{name}.hit_rate", dram_stats.hit_rate)
    reg.set_gauge(f"{name}.cycles", dram_stats.cycles)
    reg.set_gauge(f"{name}.energy_pj", dram_stats.energy_pj)
