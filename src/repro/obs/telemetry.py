"""In-process telemetry bus: live pub/sub over the observability stream.

Every observability surface in :mod:`repro.obs` is post-hoc — the
tracer, flight recorder, atlas, and profiler all write artifacts after a
run finishes.  The telemetry bus makes the same producers *watchable
while the run executes*: the flight recorder, health monitors, metrics
registry, and span tracer publish onto the process-wide :data:`bus`,
and any number of consumers (the ``/metrics``–``/healthz``–``/runz``
HTTP exporter in :mod:`repro.obs.promexport`, the newline-JSON
:class:`TelemetryStreamer`, the ``repro top`` dashboard in
:mod:`repro.obs.top`) subscribe without ever blocking the producer.

Design rules, in order of importance:

- **Disabled == free.**  The bus follows the tracer's discipline: a
  disabled :meth:`TelemetryBus.publish` is one attribute load + branch
  and allocates nothing, so the publish hooks on the per-frame SLAM hot
  path cost nothing when live telemetry is off (enforced by the
  ``obs_overhead`` bench scenario and an allocation test).
- **Backpressure-safe.**  Each subscriber owns a bounded ring buffer
  (:class:`Subscription`); when a slow consumer falls behind, the
  *oldest* events are dropped (live-dashboard semantics: recent beats
  complete) and counted, never buffered without bound and never
  blocking the producing run.
- **Stdlib-only.**  No imports from the rest of the package, so every
  producer module may import this one without cycles.

Events are ``(seq, ts, kind, payload)`` tuples: a monotonically
increasing sequence number, a ``time.time()`` stamp, the event kind
(``"frame"``, ``"summary"``, ``"alert"``, ``"metrics"``, ``"span"``,
...), and the JSON-ready payload dict the producer published.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_RING",
    "DEFAULT_PORT",
    "STREAM_SCHEMA_VERSION",
    "Event",
    "TelemetryConfig",
    "Subscription",
    "TelemetryBus",
    "bus",
    "RunAggregator",
    "TelemetryStreamer",
]

#: Default per-subscriber ring-buffer capacity (events).
DEFAULT_RING = 1024

#: Default port of the ``repro slam --serve-telemetry`` HTTP exporter.
DEFAULT_PORT = 9464

#: Version of the newline-JSON stream-line layout the
#: :class:`TelemetryStreamer` writes (``{"seq", "ts", "kind", "data"}``).
STREAM_SCHEMA_VERSION = 1

#: One published event: (seq, ts, kind, payload).
Event = Tuple[int, float, str, Dict[str, Any]]


@dataclass(frozen=True)
class TelemetryConfig:
    """Settings shared by the live-telemetry consumers.

    One place for every knob the CLI surfaces: the HTTP exporter's bind
    address, the per-subscriber ring capacity, the newline-JSON stream
    target, and the length of the bounded per-frame series the run
    aggregator keeps for sparklines.
    """

    #: Bind host of the ``/metrics``–``/healthz``–``/runz`` exporter.
    host: str = "127.0.0.1"
    #: Bind port of the exporter (0 picks an ephemeral port).
    port: int = DEFAULT_PORT
    #: Per-subscriber ring-buffer capacity (events).
    ring: int = DEFAULT_RING
    #: Newline-JSON stream target (``tcp://host:port`` /
    #: ``unix:///path`` / file path); ``None`` disables streaming.
    stream_target: Optional[str] = None
    #: Stream pump interval, seconds.
    stream_interval: float = 0.05
    #: Bounded length of the aggregator's per-frame series tails.
    series_len: int = 120

    def __post_init__(self) -> None:
        if self.ring <= 0:
            raise ValueError("ring capacity must be positive")
        if self.series_len <= 0:
            raise ValueError("series_len must be positive")


class Subscription:
    """One consumer's bounded ring buffer onto the bus.

    Never blocks the publisher: when the ring is full the oldest event
    is dropped and :attr:`dropped` incremented.  Consumers call
    :meth:`drain` (or :meth:`drain_into`) to pop everything queued.
    """

    __slots__ = ("name", "kinds", "maxlen", "dropped", "delivered", "_queue")

    def __init__(self, name: str, kinds: Optional[frozenset],
                 maxlen: int = DEFAULT_RING):
        self.name = name
        self.kinds = kinds                 # None == every kind
        self.maxlen = int(maxlen)
        self.dropped = 0                   # events lost to the full ring
        self.delivered = 0                 # events ever enqueued
        self._queue: deque = deque(maxlen=self.maxlen)

    def _offer(self, event: Event) -> None:
        """Enqueue one event (bus-internal, called under the bus lock)."""
        if len(self._queue) == self.maxlen:
            self.dropped += 1              # deque(maxlen) evicts the oldest
        self.delivered += 1
        self._queue.append(event)

    def __len__(self) -> int:
        return len(self._queue)

    def drain(self) -> List[Event]:
        """Pop and return every queued event, oldest first."""
        out: List[Event] = []
        queue = self._queue
        while queue:
            try:
                out.append(queue.popleft())
            except IndexError:      # pragma: no cover - racing publisher
                break
        return out

    def drain_into(self, consume: Callable[[Event], Any]) -> int:
        """Feed every queued event to ``consume``; returns the count."""
        events = self.drain()
        for event in events:
            consume(event)
        return len(events)

    def stats(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "queued": len(self._queue),
            "capacity": self.maxlen,
            "delivered": int(self.delivered),
            "dropped": int(self.dropped),
        }


class TelemetryBus:
    """Bounded, backpressure-safe in-process pub/sub bus.

    Disabled (and free) by default; :meth:`enable` turns publishing on.
    Publishing is fan-out under a lock — each matching subscription gets
    the event offered to its own ring — plus a retained ``latest`` slot
    per kind so late subscribers (and the ``/runz`` endpoint) can read
    current state without having watched the whole stream.
    """

    def __init__(self, enabled: bool = False):
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._subs: List[Subscription] = []
        self._seq = 0
        self._published: Dict[str, int] = {}
        self._latest: Dict[str, Event] = {}
        self._sub_counter = 0

    # ---- lifecycle ----

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Clear retained state and counters (subscriptions persist)."""
        with self._lock:
            self._seq = 0
            self._published = {}
            self._latest = {}

    # ---- subscribing ----

    def subscribe(self, kinds: Optional[Tuple[str, ...]] = None,
                  maxlen: int = DEFAULT_RING,
                  name: Optional[str] = None) -> Subscription:
        """Attach a bounded subscriber; ``kinds=None`` receives all."""
        with self._lock:
            self._sub_counter += 1
            sub = Subscription(
                name or f"sub{self._sub_counter}",
                frozenset(kinds) if kinds is not None else None,
                maxlen=maxlen)
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    # ---- publishing ----

    def publish(self, kind: str, payload: Dict[str, Any]) -> None:
        """Publish one event (no-op — and allocation-free — while
        disabled)."""
        if not self._enabled:
            return
        with self._lock:
            self._seq += 1
            event: Event = (self._seq, time.time(), kind, payload)
            self._published[kind] = self._published.get(kind, 0) + 1
            self._latest[kind] = event
            for sub in self._subs:
                if sub.kinds is None or kind in sub.kinds:
                    sub._offer(event)

    # ---- introspection ----

    def latest(self, kind: str) -> Optional[Dict[str, Any]]:
        """The most recently published payload of ``kind`` (or None)."""
        event = self._latest.get(kind)
        return event[3] if event is not None else None

    def published(self, kind: Optional[str] = None) -> int:
        """Events published in total, or of one ``kind``."""
        if kind is not None:
            return self._published.get(kind, 0)
        return sum(self._published.values())

    def dropped(self) -> int:
        """Events dropped across every subscriber's ring."""
        return sum(sub.dropped for sub in self._subs)

    def stats(self) -> Dict[str, Any]:
        """JSON-ready snapshot of bus health (publish/drop counters)."""
        with self._lock:
            return {
                "enabled": self._enabled,
                "published": sum(self._published.values()),
                "published_by_kind": dict(sorted(self._published.items())),
                "dropped": sum(s.dropped for s in self._subs),
                "subscribers": [s.stats() for s in self._subs],
            }


#: Process-wide default bus; the publish hooks in
#: :mod:`repro.obs.flight` / :mod:`repro.obs.health` /
#: :mod:`repro.obs.metrics` / :mod:`repro.obs.tracing` target this
#: instance.  Disabled (and free) by default.
bus = TelemetryBus()


# ---------------------------------------------------------------------------
# Run aggregation: bus events -> a live run snapshot
# ---------------------------------------------------------------------------

def _get(record: Dict[str, Any], dotted: str) -> Any:
    current: Any = record
    for part in dotted.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


class RunAggregator:
    """Folds flight-stream bus events into one live run snapshot.

    Both live consumers share this: the HTTP exporter serves
    :meth:`snapshot` as ``/runz``, and ``repro top`` renders it.  It
    keeps bounded per-frame series (ring of the most recent
    ``series_len`` values) so a multi-thousand-frame run aggregates in
    constant memory.
    """

    #: (snapshot key, dotted frame-record path) series the aggregator
    #: keeps a bounded tail of.
    SERIES = (
        ("pose_error_m", "pose_error_m"),
        ("tracking_loss", "tracking.final_loss"),
        ("mapping_loss", "mapping.final_loss"),
        ("gaussians", "gaussians"),
        ("alpha_rejection", "alpha.rejection_rate"),
        ("cache_hit_rate", "cache.hit_rate"),
        ("wall_time_s", "wall_time_s"),
    )

    def __init__(self, series_len: int = 120, alerts_len: int = 16):
        self.series_len = int(series_len)
        self.header: Dict[str, Any] = {}
        self.summary: Optional[Dict[str, Any]] = None
        self.metrics: Optional[Dict[str, Any]] = None
        self.registry: Optional[Dict[str, Any]] = None
        self.frame: Optional[int] = None
        self.frames_seen = 0
        self.last_frame: Optional[Dict[str, Any]] = None
        self.series: Dict[str, deque] = {
            key: deque(maxlen=self.series_len) for key, _ in self.SERIES}
        self.alerts: deque = deque(maxlen=int(alerts_len))
        self.alert_count = 0
        self._pose_sq_sum = 0.0
        self._pose_count = 0
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None

    # ---- ingestion ----

    def consume_event(self, event: Event) -> None:
        seq, ts, kind, payload = event
        self.consume(kind, payload, ts=ts)

    def consume(self, kind: str, payload: Dict[str, Any],
                ts: Optional[float] = None) -> None:
        if kind == "header":
            self.header = dict(payload)
        elif kind == "frame":
            self._consume_frame(payload, ts)
        elif kind == "summary":
            self.summary = dict(payload)
        elif kind == "alert":
            self.alerts.append(dict(payload))
            self.alert_count += 1
        elif kind == "metrics":
            self.metrics = payload
        elif kind == "registry":
            self.registry = dict(payload)
        # Unknown kinds (spans, bus stats, ...) are ignored, not errors:
        # the aggregator only models the run stream.

    def _consume_frame(self, record: Dict[str, Any],
                       ts: Optional[float]) -> None:
        self.frames_seen += 1
        self.last_frame = record
        frame = record.get("frame")
        if frame is not None:
            self.frame = int(frame)
        for key, dotted in self.SERIES:
            value = _get(record, dotted)
            if value is not None:
                self.series[key].append(float(value))
        err = record.get("pose_error_m")
        if err is not None:
            self._pose_sq_sum += float(err) ** 2
            self._pose_count += 1
        for alert in record.get("alerts") or []:
            # Frame-embedded alerts (flight replay has no "alert"
            # events); live runs publish them separately and do not
            # embed duplicates in the snapshot's ticker.
            self.alerts.append(dict(alert))
            self.alert_count += 1
        if ts is not None:
            if self._first_ts is None:
                self._first_ts = ts
            self._last_ts = ts

    # ---- derived views ----

    @property
    def done(self) -> bool:
        return self.summary is not None

    def pose_rmse_so_far(self) -> Optional[float]:
        """Running RMSE of the raw per-frame pose error (the live,
        unaligned stand-in for ATE while the run executes)."""
        if not self._pose_count:
            return None
        return (self._pose_sq_sum / self._pose_count) ** 0.5

    def fps(self) -> Optional[float]:
        """Frames per second, preferring recorded frame wall times."""
        walls = self.series["wall_time_s"]
        if walls:
            mean = sum(walls) / len(walls)
            return (1.0 / mean) if mean > 0 else None
        if (self._first_ts is not None and self._last_ts is not None
                and self.frames_seen > 1
                and self._last_ts > self._first_ts):
            return (self.frames_seen - 1) / (self._last_ts - self._first_ts)
        return None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready live view of the run (the ``/runz`` document)."""
        last = self.last_frame or {}
        sampling = _get(last, "mapping.sampling")
        fps = self.fps()
        rmse = self.pose_rmse_so_far()
        return {
            "header": dict(self.header),
            "done": self.done,
            "frame": self.frame,
            "frames_seen": self.frames_seen,
            "frames_total": self.header.get("frames"),
            "fps": None if fps is None else round(fps, 3),
            "gaussians": last.get("gaussians"),
            "pose_error_m": last.get("pose_error_m"),
            "pose_rmse_so_far_m": None if rmse is None else rmse,
            "tracking": last.get("tracking"),
            "sampling": sampling,
            "keyframe": last.get("keyframe"),
            "counters": last.get("counters"),
            "cache": last.get("cache"),
            "series": {key: list(values)
                       for key, values in sorted(self.series.items())},
            "alerts": list(self.alerts),
            "alert_count": self.alert_count,
            "summary": self.summary,
            "registry": self.registry,
        }


# ---------------------------------------------------------------------------
# Newline-JSON stream exporter
# ---------------------------------------------------------------------------

def _open_stream_sink(target: str):
    """Open a line sink for ``target``.

    - ``tcp://host:port``   — TCP connection;
    - ``unix:///path/sock`` — unix domain socket;
    - anything else         — appendable file path.
    """
    if target.startswith("tcp://"):
        host, _, port = target[len("tcp://"):].rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"bad tcp telemetry target {target!r} "
                             f"(want tcp://host:port)")
        sock = socket.create_connection((host, int(port)), timeout=5.0)
        return sock.makefile("w", encoding="utf-8", newline="\n")
    if target.startswith("unix://"):
        path = target[len("unix://"):]
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(path)
        return sock.makefile("w", encoding="utf-8", newline="\n")
    return open(target, "a", encoding="utf-8")


class TelemetryStreamer:
    """Streams bus events as newline-JSON to a file or socket.

    Each line is ``{"seq": N, "ts": T, "kind": K, "data": {...}}``
    (layout :data:`STREAM_SCHEMA_VERSION`) — tail it with ``tail -f`` /
    ``jq``, or point it at a collector over ``tcp://``/``unix://``.  A
    daemon thread pumps the subscription on an interval; :meth:`pump`
    is also callable synchronously (tests, or final flush on
    :meth:`stop`).

    Sink failures never take the run down: a refused connection at
    :meth:`start` (or a peer disconnect mid-stream) marks the streamer
    :attr:`failed`, and every event that can no longer be written is
    counted in :attr:`dropped` — so ``delivered == lines + dropped``
    holds and the loss is visible rather than fatal.  Pass
    ``strict=True`` to :meth:`start` to get the old raise-on-connect
    behavior.  Malformed targets still raise ValueError.
    """

    def __init__(self, target: str, bus_: Optional[TelemetryBus] = None,
                 kinds: Optional[Tuple[str, ...]] = None,
                 maxlen: int = 4 * DEFAULT_RING,
                 interval: float = 0.05):
        self.target = target
        self.bus = bus_ if bus_ is not None else bus
        self.interval = float(interval)
        self.lines_written = 0
        #: Events drained after the sink failed (part of :attr:`dropped`).
        self.lines_dropped = 0
        self._kinds = kinds
        self._maxlen = int(maxlen)
        self._sub: Optional[Subscription] = None
        self._sink = None
        self._error: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    @property
    def dropped(self) -> int:
        """Total events lost: ring overflow plus sink-failure drops."""
        ring = self._sub.dropped if self._sub is not None else 0
        return ring + self.lines_dropped

    @property
    def failed(self) -> bool:
        return self._error is not None

    @property
    def error(self) -> Optional[str]:
        return self._error

    def _fail(self, exc: BaseException) -> None:
        self._error = f"{type(exc).__name__}: {exc}"
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
            self._sink = None

    def start(self, background: bool = True,
              strict: bool = False) -> "TelemetryStreamer":
        """Open the sink, subscribe, and (optionally) spawn the pump.

        A sink that cannot be opened (e.g. ``tcp://`` connection
        refused) marks the streamer :attr:`failed` instead of raising,
        so the instrumented run proceeds and the loss shows up in the
        drop counter; ``strict=True`` re-raises.  Malformed targets
        always raise ValueError.
        """
        try:
            self._sink = _open_stream_sink(self.target)
        except OSError as exc:
            if strict:
                raise
            self._fail(exc)
        self._sub = self.bus.subscribe(kinds=self._kinds,
                                       maxlen=self._maxlen,
                                       name=f"stream:{self.target}")
        if background and self._sink is not None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-telemetry-stream", daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.pump()
            if self._sink is None:      # sink went away; stop quietly
                break

    def pump(self) -> int:
        """Drain the subscription into the sink; returns lines written.

        With a failed (or never-opened) sink the drained events are
        counted as dropped instead of written, keeping
        ``delivered == lines_written + dropped + queued`` exact.
        """
        if self._sub is None:
            return 0
        events = self._sub.drain()
        if not events:
            return 0
        with self._lock:
            if self._sink is None:
                self.lines_dropped += len(events)
                return 0
            try:
                for seq, ts, kind, payload in events:
                    json.dump({"seq": seq, "ts": ts, "kind": kind,
                               "data": payload}, self._sink, sort_keys=True)
                    self._sink.write("\n")
                self._sink.flush()
            except OSError as exc:
                # The whole batch is unconfirmed once the sink breaks
                # (buffered writes never reached the peer): count every
                # event as dropped, none as written.
                self._fail(exc)
                self.lines_dropped += len(events)
                return 0
            self.lines_written += len(events)
        return len(events)

    def stop(self) -> Dict[str, Any]:
        """Final pump, detach, close; returns the streamer's stats."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.pump()
        if self._sub is not None:
            self.bus.unsubscribe(self._sub)
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
            self._sink = None
        return {"target": self.target, "lines": self.lines_written,
                "dropped": self.dropped, "error": self._error}
