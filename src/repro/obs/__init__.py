"""Observability: tracing, metrics, benchmarking, and regression gating.

Six cooperating pieces.  The core three are stdlib-only at import time
(no imports from the rest of the package, so any layer may instrument
itself without cycles); the perf-trajectory trio keeps its module-level
imports stdlib-only too and pulls in the scenario/hardware layers lazily
inside functions:

- :mod:`repro.obs.tracing` — the :data:`trace` span tracer.  Wrap stages
  in ``with trace.span("tracking_fwd", frame=i):``; export Chrome
  trace-event JSON for Perfetto plus a markdown per-stage time table.
  Disabled by default at near-zero cost.
- :mod:`repro.obs.metrics` — the :data:`metrics` registry (counters /
  gauges / histograms) and ``ingest_*`` bridges that pull in
  ``PipelineStats`` counters and hardware-model outputs so algorithmic
  and wall-clock views share one export path.
- :mod:`repro.obs.log` — ``get_logger`` / ``configure`` for the CLI's
  ``-v``/``-q`` leveled output.
- :mod:`repro.obs.bench` — the statistical benchmark runner: executes
  the scenario suite under the tracer with N repetitions and emits the
  versioned ``BENCH_trajectory.json`` payload (median + MAD wall times,
  exact workload counters, modeled cycles, environment fingerprint).
- :mod:`repro.obs.regress` — the regression gate: diffs a trajectory
  against a committed baseline with per-kind tolerances (exact for
  counters, tiny-rel for model floats, noise-aware for wall times).
- :mod:`repro.obs.attrib` — cycle attribution: maps modeled cycles and
  traced wall time onto the paper's pipeline stages per hardware unit,
  with bottleneck tables and a per-unit Chrome-trace export.
- :mod:`repro.obs.flight` — the per-frame SLAM flight recorder: one
  schema-versioned JSONL record per frame (poses, loss curves, sampling
  composition, workload counters), following the tracer's disabled ==
  free discipline.
- :mod:`repro.obs.health` — online health monitors over the flight
  stream (NaN/∞, pose jumps, loss divergence, coverage collapse,
  runaway densification) with a ``warn``/``raise`` escalation policy.
- :mod:`repro.obs.report` — run reports (markdown/HTML, sparkline
  summaries) and frame-aligned run-to-run diffing for flight records.
- :mod:`repro.obs.atlas` — the sparsity atlas: per-frame spatial work
  heatmaps (sampled pixels, candidate/contrib pairs, per-tile Gaussian
  incidence, atomic adds) collected from both kernel backends into a
  schema-versioned gzip artifact, with aggregation + heatmap rendering.
- :mod:`repro.obs.prof` — the continuous profiler: per-span CPU time
  and opt-in tracemalloc allocation/peak deltas on the tracer, plus
  top-N self-time/alloc tables and a JSON profile export.
- :mod:`repro.obs.telemetry` — the live telemetry :data:`~repro.obs.
  telemetry.bus`: a backpressure-safe in-process pub/sub bus (bounded
  per-subscriber rings, drop counters, disabled == free) the flight
  recorder, health monitors, metrics registry, and tracer publish onto,
  plus the :class:`~repro.obs.telemetry.RunAggregator` live run snapshot
  and the newline-JSON :class:`~repro.obs.telemetry.TelemetryStreamer`.
- :mod:`repro.obs.promexport` — the stdlib-only HTTP exporter over the
  bus: ``/metrics`` (Prometheus text exposition), ``/healthz``, and the
  ``/runz`` JSON run snapshot, behind ``repro slam --serve-telemetry``.
- :mod:`repro.obs.top` — the ``repro top`` live terminal dashboard:
  renders the run snapshot (fps, pose RMSE, loss sparklines, sampling
  composition, alert ticker) from the in-process bus, a remote
  endpoint, or a recorded flight log.
- :mod:`repro.obs.runsdb` — the run registry: an append-only JSONL run
  index plus a content-addressed artifact store under ``.repro/runs/``,
  keyed by environment fingerprint / git SHA / config hash / dataset,
  ingesting flight logs, bench payloads, atlas archives, and
  attribution reports behind ``--registry`` (disabled == free).
- :mod:`repro.obs.triage` — cross-run analytics over the registry:
  per-metric trend sparklines with median+MAD changepoint detection
  (``repro runs trend``) and automated regression triage that walks the
  evidence chain — metrics, regress verdict, cycle attribution, atlas
  totals, flight differ — into a ranked culprit report
  (``repro runs triage``).

See README "Observability" / "Watching a run" / "Run registry" and
EXPERIMENTS.md "Perf trajectory" / "Flight recorder" / "Sparsity atlas
& profiler" / "Live telemetry" / "Longitudinal analysis" for the
workflow, and DESIGN.md for the span name ↔ paper stage mapping.
"""

from . import (
    atlas,
    attrib,
    bench,
    flight,
    health,
    prof,
    promexport,
    regress,
    report,
    runsdb,
    telemetry,
    top,
    triage,
)
from .atlas import AtlasCollector, AtlasLog, read_atlas
from .attrib import AttributionReport, attribute_workload
from .bench import SuiteConfig, run_suite, write_trajectory
from .flight import FlightLog, FlightRecorder, read_flight_record
from .health import (
    HealthAlert,
    HealthConfig,
    HealthError,
    HealthMonitor,
    get_monitor,
    set_monitor,
)
from .log import configure, get_logger
from .metrics import (
    Histogram,
    MetricsRegistry,
    ingest_aggregation_trace,
    ingest_dram_stats,
    ingest_pipeline_stats,
    ingest_stage_times,
    metrics,
)
from .prof import format_top_table, profile, top_spans, write_profile
from .promexport import (
    TelemetryHTTPServer,
    parse_prometheus_text,
    render_prometheus,
    serve_telemetry,
)
from .regress import RegressionReport, TolerancePolicy, compare_files, compare_runs
from .report import RunDiff, diff_runs, render_atlas_report, render_report
from .runsdb import (
    RunRegistry,
    ingest_bench_payload,
    ingest_slam_run,
)
from .telemetry import (
    RunAggregator,
    TelemetryBus,
    TelemetryConfig,
    TelemetryStreamer,
    bus,
)
from .tracing import SpanRecord, Tracer, trace
from .triage import TriageReport, format_trend, triage_runs

__all__ = [
    "trace",
    "Tracer",
    "SpanRecord",
    "metrics",
    "MetricsRegistry",
    "Histogram",
    "ingest_pipeline_stats",
    "ingest_stage_times",
    "ingest_aggregation_trace",
    "ingest_dram_stats",
    "get_logger",
    "configure",
    "bench",
    "regress",
    "attrib",
    "SuiteConfig",
    "run_suite",
    "write_trajectory",
    "RegressionReport",
    "TolerancePolicy",
    "compare_runs",
    "compare_files",
    "AttributionReport",
    "attribute_workload",
    "flight",
    "health",
    "report",
    "FlightRecorder",
    "FlightLog",
    "read_flight_record",
    "HealthAlert",
    "HealthConfig",
    "HealthError",
    "HealthMonitor",
    "get_monitor",
    "set_monitor",
    "RunDiff",
    "diff_runs",
    "render_report",
    "atlas",
    "prof",
    "AtlasCollector",
    "AtlasLog",
    "read_atlas",
    "render_atlas_report",
    "profile",
    "top_spans",
    "format_top_table",
    "write_profile",
    "telemetry",
    "promexport",
    "top",
    "bus",
    "TelemetryBus",
    "TelemetryConfig",
    "TelemetryStreamer",
    "RunAggregator",
    "TelemetryHTTPServer",
    "serve_telemetry",
    "render_prometheus",
    "parse_prometheus_text",
    "runsdb",
    "triage",
    "RunRegistry",
    "ingest_slam_run",
    "ingest_bench_payload",
    "TriageReport",
    "format_trend",
    "triage_runs",
]
