"""Observability: hierarchical tracing, metrics, and leveled logging.

Three cooperating pieces, all stdlib-only (no imports from the rest of
the package, so any layer may instrument itself without cycles):

- :mod:`repro.obs.tracing` — the :data:`trace` span tracer.  Wrap stages
  in ``with trace.span("tracking_fwd", frame=i):``; export Chrome
  trace-event JSON for Perfetto plus a markdown per-stage time table.
  Disabled by default at near-zero cost.
- :mod:`repro.obs.metrics` — the :data:`metrics` registry (counters /
  gauges / histograms) and ``ingest_*`` bridges that pull in
  ``PipelineStats`` counters and hardware-model outputs so algorithmic
  and wall-clock views share one export path.
- :mod:`repro.obs.log` — ``get_logger`` / ``configure`` for the CLI's
  ``-v``/``-q`` leveled output.

See README "Observability" for the workflow and DESIGN.md for the span
name ↔ paper stage mapping.
"""

from .log import configure, get_logger
from .metrics import (
    Histogram,
    MetricsRegistry,
    ingest_aggregation_trace,
    ingest_dram_stats,
    ingest_pipeline_stats,
    ingest_stage_times,
    metrics,
)
from .tracing import SpanRecord, Tracer, trace

__all__ = [
    "trace",
    "Tracer",
    "SpanRecord",
    "metrics",
    "MetricsRegistry",
    "Histogram",
    "ingest_pipeline_stats",
    "ingest_stage_times",
    "ingest_aggregation_trace",
    "ingest_dram_stats",
    "get_logger",
    "configure",
]
