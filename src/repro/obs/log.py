"""Small leveled logger for the CLI and benches.

A thin wrapper over :mod:`logging`, namespaced under the ``repro`` root
logger.  Library code calls :func:`get_logger` and logs; nothing prints
until an entry point calls :func:`configure`, which maps the CLI's
``-v``/``-q`` flags onto levels and installs one plain-message stdout
handler (figure-row tables keep printing directly — only narration and
diagnostics go through here).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure", "verbosity_to_level"]

_ROOT = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger namespaced under ``repro`` (``get_logger("cli")`` ->
    ``repro.cli``); ``None`` or ``"repro"`` returns the root."""
    if not name or name == _ROOT:
        return logging.getLogger(_ROOT)
    if name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map ``(-v count) - (-q count)`` to a logging level."""
    if verbosity <= -2:
        return logging.ERROR
    if verbosity == -1:
        return logging.WARNING
    if verbosity == 0:
        return logging.INFO
    return logging.DEBUG


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install a plain-message handler at the level ``verbosity`` implies.

    Replaces any previous handler so repeated ``main()`` calls (tests,
    REPLs) never double-print, and binds to the *current* ``sys.stdout``
    so captured output ends up where the caller expects.
    """
    root = logging.getLogger(_ROOT)
    root.setLevel(verbosity_to_level(verbosity))
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root.addHandler(handler)
    root.propagate = False
    return root
