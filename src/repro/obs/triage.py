"""Cross-run trend analysis and automated regression triage.

The analytics layer over :mod:`repro.obs.runsdb`.  Two entry points:

- **Trend** (:func:`format_trend` / :func:`detect_step`): per-metric
  time series across every registered run — wall sections, modeled
  cycles and DRAM bytes, ATE/RMSE, sparsity ratios — rendered as
  sparkline tables with robust changepoint detection.  The step test
  follows the same statistics discipline as :mod:`repro.obs.bench`:
  a candidate split is flagged only when the left/right medians differ
  by more than a relative floor *and* several MADs, so wall noise does
  not manufacture changepoints.
- **Triage** (:func:`triage_runs`): given two registered runs, walk the
  whole evidence chain automatically — registered metric deltas (exact
  counters, modeled cycles, quality, wall), the bench regress verdict,
  per-stage traced self-times, per-unit cycle attribution from the
  ``attrib`` artifact, atlas tile totals, and the first-divergence
  frame from the flight differ — and emit a ranked markdown/JSON
  culprit report naming the responsible stage (tracking/mapping) and,
  when cycle attribution is present, the hardware unit carrying the
  delta.

Module-level imports stay within the stdlib-only corner of
:mod:`repro.obs` (bench statistics, attrib stage tables, report
sparklines); artifact readers (atlas, flight differ, regress) load
lazily inside :func:`triage_runs`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .attrib import SPAN_STAGES, STAGE_UNITS
from .bench import median_mad
from .report import sparkline

__all__ = [
    "COUNTER_STAGES",
    "ATLAS_CHANNEL_STAGES",
    "DEFAULT_TREND_PATTERNS",
    "ChangePoint",
    "TriagePolicy",
    "TriageEvidence",
    "TriageCulprit",
    "TriageReport",
    "detect_step",
    "metric_series",
    "select_metrics",
    "format_trend",
    "triage_runs",
]

#: Workload counter -> paper pipeline stage (Sec. IV), so counter deltas
#: can name the hardware unit that executes the changed work.
COUNTER_STAGES: Dict[str, str] = {
    "num_projected": "projection",
    "num_alpha_checks": "projection",
    "num_candidate_pairs": "projection",
    "num_sort_keys": "sorting",
    "num_pixels": "rasterization",
    "num_contrib_pairs": "rasterization",
    "num_atomic_adds": "aggregation",
}

#: Sparsity-atlas channel -> paper pipeline stage.
ATLAS_CHANNEL_STAGES: Dict[str, str] = {
    "sampled": "projection",
    "candidates": "projection",
    "contribs": "rasterization",
    "gaussians": "sorting",
    "atomics": "aggregation",
}

#: Default metric name globs ``repro runs trend`` renders.
DEFAULT_TREND_PATTERNS: Tuple[str, ...] = (
    "*wall*", "*.ate.*", "*dram*", "*total_s", "*rejection*",
    "*gaussians*", "*overhead*", "*rmse*",
)


# ---------------------------------------------------------------------------
# Trend: per-metric time series + robust changepoint detection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChangePoint:
    """One detected level shift in a metric's run-ordered series."""

    index: int                  # series position where the new level starts
    seq: int                    # registry sequence number of that run
    before: float               # median of the left segment
    after: float                # median of the right segment

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def rel(self) -> Optional[float]:
        if self.before == 0.0:
            return None
        return self.delta / abs(self.before)


def detect_step(values: Sequence[float],
                seqs: Optional[Sequence[int]] = None,
                min_side: int = 2,
                mad_factor: float = 4.0,
                rel_floor: float = 0.05,
                abs_floor: float = 1e-12) -> Optional[ChangePoint]:
    """Median+MAD step test over a run-ordered metric series.

    Scans every split with at least ``min_side`` points per side and
    flags a left/right median gap that exceeds *all* the noise slacks
    (absolute floor, relative floor on the left median, ``mad_factor``
    times the larger segment MAD) — the same layered tolerance the wall
    comparator in :mod:`repro.obs.regress` uses.  Among qualifying
    splits the one with the lowest L1 segmentation cost (total absolute
    deviation from each side's median) wins, so the reported index is
    the actual level boundary rather than the first split whose medians
    happen to differ.  Returns None for series that never step.
    """
    xs = [float(v) for v in values]
    n = len(xs)
    if n < 2 * min_side:
        return None
    best: Optional[ChangePoint] = None
    best_rank = None
    for i in range(min_side, n - min_side + 1):
        med_l, mad_l = median_mad(xs[:i])
        med_r, mad_r = median_mad(xs[i:])
        delta = med_r - med_l
        slack = max(abs_floor, rel_floor * abs(med_l),
                    mad_factor * max(mad_l, mad_r))
        if abs(delta) <= slack:
            continue
        cost = (sum(abs(x - med_l) for x in xs[:i])
                + sum(abs(x - med_r) for x in xs[i:]))
        rank = (cost, -abs(delta))
        if best_rank is None or rank < best_rank:
            best_rank = rank
            best = ChangePoint(
                index=i,
                seq=int(seqs[i]) if seqs is not None else i,
                before=med_l, after=med_r)
    return best


def metric_series(runs: Sequence[Dict[str, Any]],
                  metric: str) -> List[Tuple[int, str, float]]:
    """``(seq, run_id, value)`` for every run that recorded ``metric``."""
    out = []
    for record in runs:
        value = (record.get("metrics") or {}).get(metric)
        if value is not None:
            out.append((int(record.get("seq", 0)),
                        str(record.get("run_id", "?")), float(value)))
    return out


def select_metrics(runs: Sequence[Dict[str, Any]],
                   patterns: Optional[Sequence[str]]) -> List[str]:
    """Metric names (sorted) recorded by any run and matching a glob."""
    pats = list(patterns) if patterns else list(DEFAULT_TREND_PATTERNS)
    names = sorted({name for record in runs
                    for name in (record.get("metrics") or {})})
    return [name for name in names
            if any(fnmatch(name, pat) for pat in pats)]


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return f"{f:.6g}"


def format_trend(runs: Sequence[Dict[str, Any]],
                 patterns: Optional[Sequence[str]] = None,
                 width: int = 24,
                 max_rows: int = 80) -> str:
    """Markdown trend table over the registered runs.

    One row per selected metric recorded by at least two runs: first and
    latest value, a unicode sparkline of the series, and the detected
    changepoint (if the median+MAD step test fires).
    """
    lines = [f"### run trends — {len(runs)} registered runs"]
    if not runs:
        lines.append("- registry is empty; record runs with "
                     "`repro slam --registry` or `repro runs ingest`")
        return "\n".join(lines)
    selected = select_metrics(runs, patterns)
    rows = []
    steps = 0
    for name in selected:
        series = metric_series(runs, name)
        if len(series) < 2:
            continue
        values = [v for _seq, _rid, v in series]
        step = detect_step(values, seqs=[s for s, _rid, _v in series])
        change = ""
        if step is not None:
            steps += 1
            rel = step.rel
            rel_txt = "" if rel is None else f" ({rel:+.1%})"
            change = (f"step @run {step.seq}: {_fmt(step.before)} -> "
                      f"{_fmt(step.after)}{rel_txt}")
        rows.append((name, len(series), values, change))
    if not rows:
        lines.append("- no metric recorded by two or more runs yet")
        return "\n".join(lines)
    lines += [
        f"- {len(rows)} metrics across runs "
        f"{runs[0].get('seq')}..{runs[-1].get('seq')}; "
        f"{steps} changepoint(s) detected",
        "",
        "| metric | runs | first | last | trend | change |",
        "|---|---:|---:|---:|---|---|",
    ]
    for name, count, values, change in rows[:max_rows]:
        lines.append(
            f"| {name} | {count} | {_fmt(values[0])} | {_fmt(values[-1])} "
            f"| {sparkline(values, width)} | {change} |")
    if len(rows) > max_rows:
        lines.append(f"| ... +{len(rows) - max_rows} more | | | | | |")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Triage: walk the evidence chain between two registered runs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TriagePolicy:
    """Evidence weights and thresholds for the culprit ranking."""

    #: Per-source/kind evidence weight: deterministic signals dominate,
    #: wall-clock signals inform.
    weights: Dict[str, float] = field(default_factory=lambda: {
        "counter": 1.0, "model": 1.0, "quality": 0.6, "wall": 0.2,
        "attrib": 1.0, "atlas": 0.8, "flight": 0.25,
    })
    #: Relative deltas are capped here before scoring (a counter going
    #: 0 -> N would otherwise drown every other signal).
    rel_cap: float = 10.0
    #: Wall-kind deltas below this relative change are noise, not
    #: evidence (mirrors TolerancePolicy.wall_rel).
    wall_rel_floor: float = 0.30
    #: Deterministic (counter/model/quality) deltas below this relative
    #: change are ignored.
    det_rel_floor: float = 1e-9


@dataclass(frozen=True)
class TriageEvidence:
    """One signal in the evidence chain, attributed to a stage/unit."""

    source: str                 # "counter"|"model"|"quality"|"wall"
                                # |"attrib"|"atlas"|"flight"
    metric: str
    stage: Optional[str]        # SLAM stage: "tracking"|"mapping"|None
    unit: Optional[str]         # hardware unit (via the pipeline stage)
    baseline: Optional[float]
    current: Optional[float]
    rel: Optional[float]        # relative delta (None: informational)
    weight: float
    detail: str = ""

    def score(self, cap: float = 10.0) -> float:
        magnitude = 1.0 if self.rel is None else min(abs(self.rel), cap)
        return self.weight * magnitude

    def as_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source, "metric": self.metric,
            "stage": self.stage, "unit": self.unit,
            "baseline": self.baseline, "current": self.current,
            "rel": self.rel, "weight": self.weight, "detail": self.detail,
        }


@dataclass
class TriageCulprit:
    """One ranked suspect: a stage, its unit, and the supporting signals."""

    stage: str
    unit: Optional[str]
    score: float
    evidence: List[TriageEvidence] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage, "unit": self.unit,
            "score": round(self.score, 4),
            "evidence_count": len(self.evidence),
            "evidence": [e.as_dict() for e in self.evidence],
        }


def _run_brief(record: Dict[str, Any]) -> Dict[str, Any]:
    key = record.get("key") or {}
    sha = key.get("git_sha")
    return {
        "run_id": record.get("run_id"),
        "seq": record.get("seq"),
        "created": record.get("created"),
        "kind": record.get("kind"),
        "git_sha": sha,
        "config_hash": key.get("config_hash"),
        "dataset": key.get("dataset"),
    }


@dataclass
class TriageReport:
    """The ranked culprit report of one base-vs-current triage."""

    base: Dict[str, Any]
    current: Dict[str, Any]
    culprits: List[TriageCulprit] = field(default_factory=list)
    config_delta: List[Dict[str, Any]] = field(default_factory=list)
    env_mismatches: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    first_divergence_frame: Optional[int] = None
    diverged_channels: List[str] = field(default_factory=list)
    evidence_total: int = 0

    @property
    def top(self) -> Optional[TriageCulprit]:
        return self.culprits[0] if self.culprits else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base,
            "current": self.current,
            "config_delta": list(self.config_delta),
            "env_mismatches": list(self.env_mismatches),
            "notes": list(self.notes),
            "first_divergence_frame": self.first_divergence_frame,
            "diverged_channels": list(self.diverged_channels),
            "evidence_total": self.evidence_total,
            "culprits": [c.as_dict() for c in self.culprits],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=1, sort_keys=True)
            f.write("\n")

    def format_markdown(self, max_evidence: int = 12) -> str:
        base_id = self.base.get("run_id", "?")
        cur_id = self.current.get("run_id", "?")
        lines = [f"### run triage — {base_id} (base) vs {cur_id} (current)"]
        for label, brief in (("base", self.base), ("current", self.current)):
            sha = brief.get("git_sha")
            lines.append(
                f"- {label}: run {brief.get('seq')} ({brief.get('kind')}) "
                f"@ {brief.get('created')}, git "
                f"{sha[:10] if sha else 'unknown'}, dataset "
                f"{brief.get('dataset') or '?'}")
        if self.config_delta:
            changes = ", ".join(
                f"{d['key']}: {_fmt_any(d['baseline'])} -> "
                f"{_fmt_any(d['current'])}" for d in self.config_delta)
            lines.append(f"- config delta: {changes}")
        else:
            lines.append("- config delta: none detected")
        if self.env_mismatches:
            lines.append("- **environment mismatch** (wall comparisons "
                         "untrustworthy): "
                         + "; ".join(self.env_mismatches))
        for note in self.notes:
            lines.append(f"- {note}")
        if self.first_divergence_frame is not None:
            channels = ", ".join(self.diverged_channels) or "?"
            lines.append(f"- first divergence at frame "
                         f"{self.first_divergence_frame} "
                         f"(channels: {channels})")
        if not self.culprits:
            lines.append("")
            lines.append("no evidence of change between the runs — the "
                         "registered metrics and artifacts agree.")
            return "\n".join(lines) + "\n"
        top = self.culprits[0]
        unit = f" on {top.unit}" if top.unit else ""
        lines += [
            "",
            f"**top culprit: {top.stage}{unit}** "
            f"(score {top.score:.2f}, {len(top.evidence)} signals; "
            f"{self.evidence_total} total)",
            "",
            "| rank | stage | hardware unit | score | signals |",
            "|---:|---|---|---:|---:|",
        ]
        for rank, culprit in enumerate(self.culprits, 1):
            lines.append(
                f"| {rank} | {culprit.stage} | {culprit.unit or '—'} "
                f"| {culprit.score:.2f} | {len(culprit.evidence)} |")
        lines += [
            "",
            f"**strongest evidence — {top.stage}**",
            "",
            "| source | metric | baseline | current | Δ rel | detail |",
            "|---|---|---:|---:|---:|---|",
        ]
        strongest = sorted(top.evidence, key=lambda e: -e.score())
        for e in strongest[:max_evidence]:
            rel = "—" if e.rel is None else f"{e.rel:+.2%}"
            lines.append(
                f"| {e.source} | {e.metric} | {_fmt(e.baseline)} "
                f"| {_fmt(e.current)} | {rel} | {e.detail} |")
        if len(strongest) > max_evidence:
            lines.append(f"| ... +{len(strongest) - max_evidence} more "
                         f"| | | | | |")
        return "\n".join(lines) + "\n"


def _fmt_any(value: Any) -> str:
    if isinstance(value, (int, float)):
        return _fmt(value)
    return repr(value) if value is None or value == "" else str(value)


# ---- metric-key classification --------------------------------------------

def _slam_stage(key: str) -> Optional[str]:
    for token in key.split("."):
        base = token.split("_")[0]
        if base in ("tracking", "mapping"):
            return base
    return None


def _pipeline_stage(key: str) -> Optional[str]:
    tokens = key.split(".")
    for token in tokens:
        if token in COUNTER_STAGES:
            return COUNTER_STAGES[token]
    if "trace" in tokens:
        span = ".".join(tokens[tokens.index("trace") + 1:-1])
        if span in SPAN_STAGES:
            return SPAN_STAGES[span]
    if "stage" in tokens:
        idx = tokens.index("stage")
        if idx + 1 < len(tokens):
            candidate = tokens[idx + 1]
            for suffix in ("_s", "_cycles", "_bytes"):
                if candidate.endswith(suffix):
                    candidate = candidate[: -len(suffix)]
                    break
            if candidate in STAGE_UNITS:
                return candidate
    return None


def _metric_kind(key: str) -> str:
    tokens = key.split(".")
    if any(t.startswith("num_") for t in tokens):
        return "counter"
    if any(t in ("wall", "trace", "overhead", "fps") for t in tokens):
        return "wall"
    dotted = f".{key}."
    if (".ate." in dotted or "rmse" in key or "psnr" in key
            or "ssim" in key or "loss" in key or "depth_l1" in key):
        return "quality"
    return "model"


def _rel_delta(base: float, cur: float, cap: float) -> Optional[float]:
    if base == cur:
        return 0.0
    if base == 0.0:
        return cap if cur > 0 else -cap
    rel = (cur - base) / abs(base)
    return max(-cap, min(cap, rel))


def _metric_evidence(base_metrics: Dict[str, float],
                     cur_metrics: Dict[str, float],
                     policy: TriagePolicy) -> List[TriageEvidence]:
    evidence = []
    for key in sorted(set(base_metrics) & set(cur_metrics)):
        base_v, cur_v = float(base_metrics[key]), float(cur_metrics[key])
        rel = _rel_delta(base_v, cur_v, policy.rel_cap)
        if rel == 0.0:
            continue
        kind = _metric_kind(key)
        floor = (policy.wall_rel_floor if kind == "wall"
                 else policy.det_rel_floor)
        if rel is not None and abs(rel) < floor:
            continue
        pipeline = _pipeline_stage(key)
        evidence.append(TriageEvidence(
            source=kind, metric=key, stage=_slam_stage(key),
            unit=STAGE_UNITS.get(pipeline) if pipeline else None,
            baseline=base_v, current=cur_v, rel=rel,
            weight=policy.weights.get(kind, 0.5),
            detail=f"registered metric changed"))
    return evidence


# ---- artifact evidence ----------------------------------------------------

def _attrib_stage(scenario: Any) -> Optional[str]:
    if not scenario:
        return None
    return _slam_stage(str(scenario).replace("/", "."))


def _attrib_evidence(base_doc: Dict[str, Any], cur_doc: Dict[str, Any],
                     policy: TriagePolicy) -> List[TriageEvidence]:
    """Per-unit CycleBreakdown deltas from two attrib artifacts."""
    def rows_by_key(doc):
        return {(r.get("pass"), r.get("stage")): r
                for r in doc.get("rows") or []}

    base_rows = rows_by_key(base_doc)
    cur_rows = rows_by_key(cur_doc)
    stage = _attrib_stage(cur_doc.get("scenario")
                          or base_doc.get("scenario"))
    evidence = []
    for key in sorted(set(base_rows) & set(cur_rows),
                      key=lambda k: (str(k[0]), str(k[1]))):
        pass_name, pipe_stage = key
        base_c = float(base_rows[key].get("cycles", 0.0))
        cur_c = float(cur_rows[key].get("cycles", 0.0))
        rel = _rel_delta(base_c, cur_c, policy.rel_cap)
        if rel == 0.0 or (rel is not None
                          and abs(rel) < policy.det_rel_floor):
            continue
        evidence.append(TriageEvidence(
            source="attrib", metric=f"attrib.{pass_name}.{pipe_stage}.cycles",
            stage=stage, unit=cur_rows[key].get("unit"),
            baseline=base_c, current=cur_c, rel=rel,
            weight=policy.weights.get("attrib", 1.0),
            detail=f"modeled cycles on "
                   f"{cur_rows[key].get('unit', '?')}"))
    return evidence


def _atlas_evidence(registry, base_rec, cur_rec,
                    policy: TriagePolicy) -> List[TriageEvidence]:
    """Per-stage tile-channel deltas from two atlas artifacts."""
    from .atlas import read_atlas

    base_log = read_atlas(registry.artifact_path(base_rec, "atlas"))
    cur_log = read_atlas(registry.artifact_path(cur_rec, "atlas"))
    base_totals = base_log.observed_totals()
    cur_totals = cur_log.observed_totals()
    evidence = []
    for stage in sorted(set(base_totals) & set(cur_totals)):
        for channel in sorted(set(base_totals[stage])
                              & set(cur_totals[stage])):
            base_v = float(base_totals[stage][channel])
            cur_v = float(cur_totals[stage][channel])
            rel = _rel_delta(base_v, cur_v, policy.rel_cap)
            if rel == 0.0 or (rel is not None
                              and abs(rel) < policy.det_rel_floor):
                continue
            pipe = ATLAS_CHANNEL_STAGES.get(channel)
            evidence.append(TriageEvidence(
                source="atlas", metric=f"atlas.{stage}.{channel}",
                stage=_slam_stage(stage), unit=STAGE_UNITS.get(pipe),
                baseline=base_v, current=cur_v, rel=rel,
                weight=policy.weights.get("atlas", 0.8),
                detail="atlas tile totals changed"))
    return evidence


def _group_culprits(evidence: List[TriageEvidence],
                    policy: TriagePolicy) -> List[TriageCulprit]:
    groups: Dict[str, List[TriageEvidence]] = {}
    for e in evidence:
        groups.setdefault(e.stage or "(run)", []).append(e)
    culprits = []
    for stage, signals in groups.items():
        score = sum(e.score(policy.rel_cap) for e in signals)
        # Cycle attribution is authoritative about the unit; fall back
        # to the strongest counter/model signal's unit mapping.
        attrib = [e for e in signals if e.source == "attrib" and e.unit]
        with_unit = attrib or [e for e in signals if e.unit]
        unit = (max(with_unit, key=lambda e: e.score(policy.rel_cap)).unit
                if with_unit else None)
        culprits.append(TriageCulprit(
            stage=stage, unit=unit, score=score,
            evidence=sorted(signals,
                            key=lambda e: -e.score(policy.rel_cap))))
    culprits.sort(key=lambda c: (-c.score, c.stage))
    return culprits


def _dict_delta(base: Optional[Dict[str, Any]],
                cur: Optional[Dict[str, Any]]) -> List[Dict[str, Any]]:
    base = base or {}
    cur = cur or {}
    out = []
    for key in sorted(set(base) | set(cur)):
        if base.get(key) != cur.get(key):
            out.append({"key": key, "baseline": base.get(key),
                        "current": cur.get(key)})
    return out


def triage_runs(registry, base: Dict[str, Any], current: Dict[str, Any],
                policy: Optional[TriagePolicy] = None) -> TriageReport:
    """Walk the evidence chain between two registered runs.

    ``base``/``current`` are registry index records (see
    :meth:`repro.obs.runsdb.RunRegistry.get`).  Every evidence source is
    optional — the report uses whatever the two runs both recorded:
    registered metrics always, then the bench regress verdict, per-unit
    cycle attribution, atlas totals, and the flight differ when the
    matching artifacts exist on both sides.
    """
    pol = policy or TriagePolicy()
    report = TriageReport(base=_run_brief(base), current=_run_brief(current))
    report.config_delta = _dict_delta(base.get("config"),
                                      current.get("config"))

    base_key = base.get("key") or {}
    cur_key = current.get("key") or {}
    base_env = base_key.get("environment") or {}
    cur_env = cur_key.get("environment") or {}
    for key in sorted(set(base_env) | set(cur_env)):
        if base_env.get(key) != cur_env.get(key):
            report.env_mismatches.append(
                f"{key}: {base_env.get(key)!r} vs {cur_env.get(key)!r}")
    if (base_key.get("git_sha") and cur_key.get("git_sha")
            and base_key.get("git_sha") != cur_key.get("git_sha")):
        report.notes.append(
            f"git delta: {base_key['git_sha'][:10]} -> "
            f"{cur_key['git_sha'][:10]}")

    evidence = _metric_evidence(base.get("metrics") or {},
                                current.get("metrics") or {}, pol)

    def both_have(name: str) -> bool:
        return (name in (base.get("artifacts") or {})
                and name in (current.get("artifacts") or {}))

    if both_have("bench"):
        from . import regress

        rep = regress.compare_runs(
            registry.load_artifact_json(current, "bench"),
            registry.load_artifact_json(base, "bench"))
        counts = ", ".join(f"{v} {k}"
                           for k, v in sorted(rep.counts().items()))
        report.notes.append(
            f"bench regress: {'PASS' if rep.passed else 'FAIL'} "
            f"({counts or 'no metrics'})")

    if both_have("attrib"):
        evidence += _attrib_evidence(
            registry.load_artifact_json(base, "attrib"),
            registry.load_artifact_json(current, "attrib"), pol)

    if both_have("atlas"):
        evidence += _atlas_evidence(registry, base, current, pol)

    if both_have("flight"):
        from .report import diff_runs

        diff = diff_runs(registry.load_flight(base),
                         registry.load_flight(current))
        report.first_divergence_frame = diff.first_divergence_frame
        report.diverged_channels = [c.channel for c in diff.channels
                                    if c.diverged]
        for channel in diff.channels:
            if not channel.diverged:
                continue
            evidence.append(TriageEvidence(
                source="flight", metric=f"flight.{channel.channel}",
                stage=_slam_stage(channel.channel), unit=None,
                baseline=None, current=None, rel=None,
                weight=pol.weights.get("flight", 0.25),
                detail=f"first diverged at frame {channel.first_frame}"))

    report.evidence_total = len(evidence)
    report.culprits = _group_culprits(evidence, pol)
    return report
