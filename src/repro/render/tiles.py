"""Tile-Gaussian intersection (the tile-based pipeline's projection output).

The image is partitioned into square tiles of ``tile_size`` pixels.  Each
projected Gaussian is inserted into every tile its bounding box overlaps,
producing the *tile-Gaussian intersection table* of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..gaussians.camera import Intrinsics
from .projection import ProjectedGaussians

__all__ = ["TileGrid", "IntersectionTable", "build_intersection_table"]


@dataclass(frozen=True)
class TileGrid:
    """Geometry of the tile partition of an image."""

    width: int
    height: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")

    @classmethod
    def for_intrinsics(cls, intr: Intrinsics, tile_size: int) -> "TileGrid":
        return cls(width=intr.width, height=intr.height, tile_size=tile_size)

    @property
    def tiles_x(self) -> int:
        return -(-self.width // self.tile_size)

    @property
    def tiles_y(self) -> int:
        return -(-self.height // self.tile_size)

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile_of_pixel(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Return the flat tile index containing pixel columns/rows (u, v)."""
        tx = np.clip(np.asarray(u) // self.tile_size, 0, self.tiles_x - 1)
        ty = np.clip(np.asarray(v) // self.tile_size, 0, self.tiles_y - 1)
        return (ty * self.tiles_x + tx).astype(int)

    def tile_bounds(self, tile: int) -> tuple:
        """Pixel bounds ``(u0, v0, u1, v1)`` of a tile, clipped to the image."""
        ty, tx = divmod(tile, self.tiles_x)
        u0 = tx * self.tile_size
        v0 = ty * self.tile_size
        u1 = min(u0 + self.tile_size, self.width)
        v1 = min(v0 + self.tile_size, self.height)
        return u0, v0, u1, v1

    def tile_pixels(self, tile: int) -> np.ndarray:
        """``(P, 2)`` integer (u, v) coordinates of every pixel in a tile."""
        u0, v0, u1, v1 = self.tile_bounds(tile)
        uu, vv = np.meshgrid(np.arange(u0, u1), np.arange(v0, v1))
        return np.stack([uu.ravel(), vv.ravel()], axis=-1)


@dataclass
class IntersectionTable:
    """Per-tile lists of projected-Gaussian indices (into the projection)."""

    grid: TileGrid
    per_tile: List[np.ndarray]

    @property
    def num_pairs(self) -> int:
        return int(sum(len(t) for t in self.per_tile))


def build_intersection_table(
    proj: ProjectedGaussians, grid: TileGrid
) -> IntersectionTable:
    """Insert each projected Gaussian into every tile its bbox overlaps."""
    per_tile: List[list] = [[] for _ in range(grid.num_tiles)]
    if len(proj) > 0:
        bbox = proj.bbox()
        ts = grid.tile_size
        tx0 = np.clip(np.floor(bbox[:, 0] / ts).astype(int), 0, grid.tiles_x - 1)
        ty0 = np.clip(np.floor(bbox[:, 1] / ts).astype(int), 0, grid.tiles_y - 1)
        tx1 = np.clip(np.floor(bbox[:, 2] / ts).astype(int), 0, grid.tiles_x - 1)
        ty1 = np.clip(np.floor(bbox[:, 3] / ts).astype(int), 0, grid.tiles_y - 1)
        for g in range(len(proj)):
            for ty in range(ty0[g], ty1[g] + 1):
                base = ty * grid.tiles_x
                for tx in range(tx0[g], tx1[g] + 1):
                    per_tile[base + tx].append(g)
    arrays = [np.asarray(t, dtype=int) for t in per_tile]
    return IntersectionTable(grid=grid, per_tile=arrays)
