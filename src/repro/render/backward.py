"""Backward pass of the tile pipeline: reverse rasterization, aggregation,
and re-projection (Fig. 3, bottom).

Reverse rasterization walks every tile's cached composite and produces the
pixel-Gaussian partial gradients; *aggregation* scatters them into
per-Gaussian accumulators (``np.add.at`` plays the role of ``atomicAdd``
and its invocation count is recorded as the atomic-contention workload);
*re-projection* finally maps the 2D splat gradients through the projection
into world-space parameter gradients and, for tracking, the camera-twist
gradient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..gaussians.se3 import point_jacobian_wrt_twist
from ..obs import trace
from ..obs import atlas as _atlas_mod
from .compositing import T_MIN, composite_backward
from .projection import ProjectedGaussians
from .rasterize import RenderResult
from .stats import PipelineStats

__all__ = ["RenderGradients", "ProjectedGradients", "backward_full",
           "reproject_gradients"]


@dataclass
class ProjectedGradients:
    """Aggregated gradients per *projected* Gaussian (2D splat space)."""

    d_mean2d: np.ndarray    # (M, 2)
    d_sigma2d: np.ndarray   # (M,)
    d_opacity: np.ndarray   # (M,)
    d_color: np.ndarray     # (M, 3)
    d_depth: np.ndarray     # (M,)

    @classmethod
    def zeros(cls, m: int) -> "ProjectedGradients":
        return cls(
            d_mean2d=np.zeros((m, 2)),
            d_sigma2d=np.zeros(m),
            d_opacity=np.zeros(m),
            d_color=np.zeros((m, 3)),
            d_depth=np.zeros(m),
        )

    def accumulate(self, indices: np.ndarray, pair) -> None:
        """Aggregation stage: scatter-add pair gradients (atomicAdd model)."""
        np.add.at(self.d_mean2d, indices, pair.d_mean2d)
        np.add.at(self.d_sigma2d, indices, pair.d_sigma2d)
        np.add.at(self.d_opacity, indices, pair.d_opacity)
        np.add.at(self.d_color, indices, pair.d_color)
        np.add.at(self.d_depth, indices, pair.d_depth)


@dataclass
class RenderGradients:
    """World-space gradients for the cloud and the camera pose."""

    d_means: np.ndarray             # (N, 3)
    d_log_scales: np.ndarray        # (N,)
    d_logit_opacities: np.ndarray   # (N,)
    d_colors: np.ndarray            # (N, 3)
    d_pose_twist: np.ndarray        # (6,) right-multiplied twist gradient
    stats: PipelineStats = field(default_factory=PipelineStats)

    def as_cloud_vector(self) -> np.ndarray:
        """Flatten map gradients in :meth:`GaussianCloud.pack` order."""
        return np.concatenate([
            self.d_means.ravel(),
            self.d_log_scales,
            self.d_logit_opacities,
            self.d_colors.ravel(),
        ])


def reproject_gradients(
    proj: ProjectedGaussians,
    cloud: GaussianCloud,
    camera: Camera,
    pg: ProjectedGradients,
) -> RenderGradients:
    """Re-projection stage: 2D splat gradients -> world-space gradients.

    Uses the projection Jacobians of ``u = fx x/z + cx``, ``v = fy y/z + cy``
    and ``sigma = f s / z`` plus the direct depth-channel gradient on ``z``.
    """
    intr = camera.intrinsics
    n = len(cloud)
    out = RenderGradients(
        d_means=np.zeros((n, 3)),
        d_log_scales=np.zeros(n),
        d_logit_opacities=np.zeros(n),
        d_colors=np.zeros((n, 3)),
        d_pose_twist=np.zeros(6),
    )
    if len(proj) == 0:
        return out

    x, y, z = proj.p_cam[:, 0], proj.p_cam[:, 1], proj.p_cam[:, 2]
    mean_focal = 0.5 * (intr.fx + intr.fy)
    scales = np.exp(cloud.log_scales[proj.source_index])

    d_u = pg.d_mean2d[:, 0]
    d_v = pg.d_mean2d[:, 1]
    d_x = d_u * intr.fx / z
    d_y = d_v * intr.fy / z
    d_z = (
        -d_u * intr.fx * x / (z * z)
        - d_v * intr.fy * y / (z * z)
        - pg.d_sigma2d * mean_focal * scales / (z * z)
        + pg.d_depth
    )
    d_p_cam = np.stack([d_x, d_y, d_z], axis=-1)

    # World-space mean gradients: d mu = R_w2c^T d p_cam.
    R_w2c = camera.pose_w2c[:3, :3]
    d_means_proj = d_p_cam @ R_w2c

    # sigma = f * s / z and s = exp(log_s) give d log_s = d_sigma * sigma.
    d_log_scales_proj = pg.d_sigma2d * proj.sigma2d

    op = proj.opacity
    d_logit_proj = pg.d_opacity * op * (1.0 - op)

    # Colors were clamped to [0, 1] at projection; gate the gradient there.
    raw_color = cloud.colors[proj.source_index]
    gate = ((raw_color > 0.0) & (raw_color < 1.0)) | (
        (raw_color <= 0.0) & (pg.d_color < 0.0)) | (
        (raw_color >= 1.0) & (pg.d_color > 0.0))
    d_color_proj = np.where(gate, pg.d_color, 0.0)

    np.add.at(out.d_means, proj.source_index, d_means_proj)
    np.add.at(out.d_log_scales, proj.source_index, d_log_scales_proj)
    np.add.at(out.d_logit_opacities, proj.source_index, d_logit_proj)
    np.add.at(out.d_colors, proj.source_index, d_color_proj)

    # Camera twist gradient (right-multiplicative update T <- T exp(xi)).
    J = point_jacobian_wrt_twist(proj.p_cam)       # (M, 3, 6)
    out.d_pose_twist = np.einsum("mij,mi->j", J, d_p_cam)
    return out


def backward_full(
    result: RenderResult,
    cloud: GaussianCloud,
    camera: Camera,
    d_color: np.ndarray,
    d_depth: np.ndarray,
    d_silhouette: np.ndarray,
) -> RenderGradients:
    """Run the complete tile-pipeline backward pass.

    ``d_color`` is ``(H, W, 3)``; ``d_depth`` and ``d_silhouette`` are
    ``(H, W)`` (pass zeros for unused channels).  The forward pass must
    have been run with ``keep_cache=True``.
    """
    proj = result.proj
    pg = ProjectedGradients.zeros(len(proj))
    stats = PipelineStats(
        pipeline="tile",
        tile_size=result.grid.tile_size,
        image_width=result.grid.width,
        image_height=result.grid.height,
        num_gaussians=len(cloud),
        num_projected=len(proj),
        num_pixels=result.grid.width * result.grid.height,
        record_per_pixel=result.stats.record_per_pixel,
    )
    record = stats.record_per_pixel

    with trace.span("render.tile_bwd", pipeline="tile",
                    gaussians=len(cloud)):
        for tile, idx in enumerate(result.sorted_lists):
            cache = result.caches[tile]
            if cache is None or idx.size == 0:
                continue
            px = result.tile_pixels[tile]
            u, v = px[:, 0], px[:, 1]
            pair = composite_backward(
                cache,
                proj.mean2d[idx],
                proj.sigma2d[idx],
                proj.depth[idx],
                proj.opacity[idx],
                proj.color[idx],
                d_color[v, u],
                d_depth[v, u],
                d_silhouette[v, u],
            )
            pg.accumulate(idx, pair)
            # The tile backward re-runs alpha-checking against the cached
            # tile-Gaussian sorted list (Sec. II-B).
            stats.num_candidate_pairs += px.shape[0] * idx.size
            stats.num_alpha_checks += px.shape[0] * idx.size
            stats.num_contrib_pairs += pair.num_pairs_touched
            stats.num_atomic_adds += pair.num_pairs_touched
            if _atlas_mod.current.active:
                _atlas_mod.current.observe_tile_backward(px, cache.contrib.sum(axis=1))
            if record:
                serial_len = int((cache.gamma >= T_MIN).sum(axis=1).max())
                stats.tile_work.append((idx.size, px.shape[0], serial_len))
                stats.per_pixel_contribs.extend(
                    int(c) for c in cache.contrib.sum(axis=1))
                for p in range(px.shape[0]):
                    stats.pixel_contrib_ids.append(
                        result.proj.source_index[idx[cache.contrib[p]]])

        with trace.span("render.reproject"):
            grads = reproject_gradients(proj, cloud, camera, pg)
    grads.stats = stats
    return grads
