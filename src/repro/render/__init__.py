"""Differentiable 3DGS renderer: the conventional tile-based pipeline.

Forward (Fig. 3): projection -> tile intersection -> depth sort ->
per-pixel rasterization.  Backward: reverse rasterization -> aggregation ->
re-projection.  The sparse pixel-based pipeline that is the paper's
contribution lives in :mod:`repro.core`.
"""

from .anisotropic import (
    AnisoGradients,
    AnisoSparseResult,
    AnisotropicCloud,
    ProjectedAnisotropic,
    backward_sparse_anisotropic,
    project_anisotropic,
    render_sparse_anisotropic,
)
from .backward import (
    ProjectedGradients,
    RenderGradients,
    backward_full,
    reproject_gradients,
)
from .compositing import (
    ALPHA_MAX,
    ALPHA_THRESHOLD,
    T_MIN,
    CompositeCache,
    PairGradients,
    composite_backward,
    composite_forward,
)
from .projection import RADIUS_SIGMA, ProjectedGaussians, project_gaussians
from .rasterize import RenderResult, render_full
from .sorting import sort_by_depth, sort_intersection_table
from .stats import PipelineStats
from .tiles import IntersectionTable, TileGrid, build_intersection_table

__all__ = [
    "AnisotropicCloud",
    "ProjectedAnisotropic",
    "AnisoSparseResult",
    "AnisoGradients",
    "project_anisotropic",
    "render_sparse_anisotropic",
    "backward_sparse_anisotropic",
    "ALPHA_MAX",
    "ALPHA_THRESHOLD",
    "T_MIN",
    "RADIUS_SIGMA",
    "CompositeCache",
    "PairGradients",
    "composite_forward",
    "composite_backward",
    "ProjectedGaussians",
    "project_gaussians",
    "RenderResult",
    "render_full",
    "RenderGradients",
    "ProjectedGradients",
    "backward_full",
    "reproject_gradients",
    "sort_by_depth",
    "sort_intersection_table",
    "PipelineStats",
    "TileGrid",
    "IntersectionTable",
    "build_intersection_table",
]
