"""Anisotropic 3DGS rendering through the pixel-based pipeline.

The SLAM engine uses isotropic Gaussians (SplaTAM's choice), but the
original 3DGS representation is anisotropic: a full 3D covariance
``Sigma = R(q) diag(s^2) R(q)^T`` splatted through the EWA approximation
``Sigma_2D = J W Sigma W^T J^T`` (J the perspective Jacobian, W the
world-to-camera rotation).  This module implements that representation
for the *pixel-based* (sparse) pipeline — SPLATONIC's rendering paradigm —
with full analytic gradients for every parameter:

- means, per-axis log-scales, quaternions, opacity logits, colors;
- the camera twist (translation components exact; the rotational path
  through ``W`` in the covariance projection is omitted, the standard
  3DGS-SLAM approximation — see :func:`backward_sparse_anisotropic`).

Forward outputs are pixel-exact with the isotropic pipeline whenever all
three scales coincide and ``blur=0`` (a property-test target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.covariance import build_covariance, covariance_gradients
from ..gaussians.model import inverse_sigmoid, sigmoid
from ..gaussians.se3 import point_jacobian_wrt_twist, quat_to_rotmat
from .compositing import ALPHA_MAX, ALPHA_THRESHOLD, T_MIN, CompositeCache
from .projection import RADIUS_SIGMA
from .sorting import sort_by_depth
from .stats import PipelineStats

__all__ = [
    "AnisotropicCloud",
    "ProjectedAnisotropic",
    "AnisoSparseResult",
    "AnisoGradients",
    "project_anisotropic",
    "render_sparse_anisotropic",
    "backward_sparse_anisotropic",
]


@dataclass
class AnisotropicCloud:
    """Struct-of-arrays container for full-covariance 3D Gaussians."""

    means: np.ndarray            # (N, 3)
    log_scales: np.ndarray       # (N, 3) per-axis
    quaternions: np.ndarray      # (N, 4) (w, x, y, z); normalized on use
    logit_opacities: np.ndarray  # (N,)
    colors: np.ndarray           # (N, 3)

    def __post_init__(self) -> None:
        self.means = np.atleast_2d(np.asarray(self.means, dtype=float))
        self.log_scales = np.atleast_2d(
            np.asarray(self.log_scales, dtype=float))
        self.quaternions = np.atleast_2d(
            np.asarray(self.quaternions, dtype=float))
        self.logit_opacities = np.atleast_1d(
            np.asarray(self.logit_opacities, dtype=float))
        self.colors = np.atleast_2d(np.asarray(self.colors, dtype=float))
        n = self.means.shape[0]
        if self.means.shape != (n, 3):
            raise ValueError("means must be (N, 3)")
        if self.log_scales.shape != (n, 3):
            raise ValueError("log_scales must be (N, 3)")
        if self.quaternions.shape != (n, 4):
            raise ValueError("quaternions must be (N, 4)")
        if self.logit_opacities.shape != (n,):
            raise ValueError("logit_opacities must be (N,)")
        if self.colors.shape != (n, 3):
            raise ValueError("colors must be (N, 3)")

    def __len__(self) -> int:
        return self.means.shape[0]

    @classmethod
    def create(cls, means, scales, quaternions, opacities,
               colors) -> "AnisotropicCloud":
        scales = np.atleast_2d(np.asarray(scales, dtype=float))
        return cls(
            means=means,
            log_scales=np.log(np.maximum(scales, 1e-8)),
            quaternions=quaternions,
            logit_opacities=inverse_sigmoid(opacities),
            colors=colors,
        )

    @classmethod
    def from_isotropic(cls, cloud) -> "AnisotropicCloud":
        """Lift an isotropic :class:`~repro.gaussians.GaussianCloud`."""
        n = len(cloud)
        quats = np.zeros((n, 4))
        quats[:, 0] = 1.0
        return cls(
            means=cloud.means.copy(),
            log_scales=np.repeat(cloud.log_scales[:, None], 3, axis=1),
            quaternions=quats,
            logit_opacities=cloud.logit_opacities.copy(),
            colors=cloud.colors.copy(),
        )

    @property
    def scales(self) -> np.ndarray:
        return np.exp(self.log_scales)

    @property
    def opacities(self) -> np.ndarray:
        return sigmoid(self.logit_opacities)

    def pack(self) -> np.ndarray:
        """Flatten parameters: means, log_scales, quats, logits, colors."""
        return np.concatenate([
            self.means.ravel(), self.log_scales.ravel(),
            self.quaternions.ravel(), self.logit_opacities,
            self.colors.ravel(),
        ])

    def unpack(self, vector: np.ndarray) -> "AnisotropicCloud":
        n = len(self)
        vector = np.asarray(vector, dtype=float)
        expected = 14 * n
        if vector.shape != (expected,):
            raise ValueError(
                f"parameter vector has {vector.shape}, expected ({expected},)")
        o = 0
        means = vector[o:o + 3 * n].reshape(n, 3); o += 3 * n
        log_scales = vector[o:o + 3 * n].reshape(n, 3); o += 3 * n
        quats = vector[o:o + 4 * n].reshape(n, 4); o += 4 * n
        logits = vector[o:o + n]; o += n
        colors = vector[o:].reshape(n, 3)
        return AnisotropicCloud(means, log_scales, quats, logits, colors)


@dataclass
class ProjectedAnisotropic:
    """Per-view splat parameters of the surviving Gaussians."""

    source_index: np.ndarray  # (M,)
    p_cam: np.ndarray         # (M, 3)
    mean2d: np.ndarray        # (M, 2)
    conic: np.ndarray         # (M, 3): (a, b, c) of [[a, b], [b, c]]
    cov2d: np.ndarray         # (M, 2, 2)
    T: np.ndarray             # (M, 2, 3): J @ W (EWA projection operator)
    sigma3d: np.ndarray       # (M, 3, 3)
    depth: np.ndarray         # (M,)
    opacity: np.ndarray       # (M,)
    color: np.ndarray         # (M, 3)
    radius: np.ndarray        # (M,) bbox half-extent

    def __len__(self) -> int:
        return self.source_index.shape[0]


def _perspective_jacobian(intr, p_cam: np.ndarray) -> np.ndarray:
    """``(M, 2, 3)`` Jacobians of (u, v) w.r.t. camera-frame (x, y, z)."""
    x, y, z = p_cam[:, 0], p_cam[:, 1], p_cam[:, 2]
    J = np.zeros((p_cam.shape[0], 2, 3))
    J[:, 0, 0] = intr.fx / z
    J[:, 0, 2] = -intr.fx * x / (z * z)
    J[:, 1, 1] = intr.fy / z
    J[:, 1, 2] = -intr.fy * y / (z * z)
    return J


def project_anisotropic(cloud: AnisotropicCloud, camera: Camera,
                        near: float = 0.01, far: float = 1e6,
                        blur: float = 0.0) -> ProjectedAnisotropic:
    """EWA-project an anisotropic cloud and cull off-screen splats.

    ``blur`` adds a screen-space dilation ``blur * I`` to the 2D
    covariance (the reference 3DGS uses 0.3; 0 keeps the projection exact,
    which the isotropic-equivalence tests rely on).
    """
    intr = camera.intrinsics
    w2c = camera.pose_w2c
    W = w2c[:3, :3]
    p_cam = cloud.means @ W.T + w2c[:3, 3]
    z = p_cam[:, 2]
    in_depth = (z > near) & (z < far)
    z_safe = np.where(in_depth, z, 1.0)
    p_safe = p_cam.copy()
    p_safe[:, 2] = z_safe

    u = intr.fx * p_safe[:, 0] / z_safe + intr.cx
    v = intr.fy * p_safe[:, 1] / z_safe + intr.cy

    sigma3d = build_covariance(cloud.quaternions, cloud.scales)
    J = _perspective_jacobian(intr, p_safe)
    T = np.einsum("mij,jk->mik", J, W)
    cov2d = np.einsum("mij,mjk,mlk->mil", T, sigma3d, T)
    cov2d[:, 0, 0] += blur
    cov2d[:, 1, 1] += blur

    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    det = np.maximum(a * c - b * b, 1e-12)
    conic = np.stack([c / det, -b / det, a / det], axis=-1)
    mid = 0.5 * (a + c)
    lam_max = mid + np.sqrt(np.maximum(mid * mid - det, 0.0))
    radius = RADIUS_SIGMA * np.sqrt(np.maximum(lam_max, 1e-12))

    on_screen = ((u + radius > 0.0) & (u - radius < intr.width)
                 & (v + radius > 0.0) & (v - radius < intr.height))
    keep = in_depth & on_screen
    idx = np.nonzero(keep)[0]
    return ProjectedAnisotropic(
        source_index=idx,
        p_cam=p_cam[idx],
        mean2d=np.stack([u[idx], v[idx]], axis=-1),
        conic=conic[idx],
        cov2d=cov2d[idx],
        T=T[idx],
        sigma3d=sigma3d[idx],
        depth=z[idx],
        opacity=cloud.opacities[idx],
        color=np.clip(cloud.colors[idx], 0.0, 1.0),
        radius=radius[idx],
    )


@dataclass
class AnisoSparseResult:
    """Sparse forward outputs plus the caches the backward pass needs."""

    pixels: np.ndarray
    color: np.ndarray
    depth: np.ndarray
    silhouette: np.ndarray
    proj: ProjectedAnisotropic
    pixel_lists: List[np.ndarray]
    caches: List[Optional[CompositeCache]]
    stats: PipelineStats = field(default_factory=PipelineStats)

    @property
    def final_transmittance(self) -> np.ndarray:
        return 1.0 - self.silhouette


def _conic_alpha(centres: np.ndarray, mean2d: np.ndarray, conic: np.ndarray,
                 opacity: np.ndarray) -> np.ndarray:
    """``(P, L)`` alphas: ``o * exp(-0.5 d^T C d)`` per pixel-Gaussian pair."""
    du = centres[:, 0:1] - mean2d[None, :, 0]
    dv = centres[:, 1:2] - mean2d[None, :, 1]
    power = 0.5 * (conic[None, :, 0] * du * du
                   + 2.0 * conic[None, :, 1] * du * dv
                   + conic[None, :, 2] * dv * dv)
    return np.minimum(opacity[None, :] * np.exp(-power), ALPHA_MAX)


def render_sparse_anisotropic(
    cloud: AnisotropicCloud,
    camera: Camera,
    pixels: np.ndarray,
    background: Optional[np.ndarray] = None,
    alpha_threshold: float = ALPHA_THRESHOLD,
    t_min: float = T_MIN,
    blur: float = 0.0,
) -> AnisoSparseResult:
    """Pixel-based forward pass over ``pixels`` with anisotropic splats.

    Mirrors :func:`repro.core.pixel_pipeline.render_sparse`: per-pixel
    projection with preemptive α-checking, per-pixel depth sort, then
    Eqn. 1 compositing; the same workload counters are produced.
    """
    intr = camera.intrinsics
    bg = np.zeros(3) if background is None else np.asarray(background, float)
    pixels = np.atleast_2d(np.asarray(pixels, dtype=int))
    K = pixels.shape[0]

    proj = project_anisotropic(cloud, camera, blur=blur)
    stats = PipelineStats(
        pipeline="pixel",
        image_width=intr.width,
        image_height=intr.height,
        num_gaussians=len(cloud),
        num_projected=len(proj),
        num_pixels=K,
    )
    color = np.tile(bg, (K, 1))
    depth = np.zeros(K)
    silhouette = np.zeros(K)
    pixel_lists: List[np.ndarray] = []
    caches: List[Optional[CompositeCache]] = []
    if len(proj) == 0 or K == 0:
        stats.per_pixel_contribs = [0] * K
        return AnisoSparseResult(pixels, color, depth, silhouette, proj,
                                 [np.zeros(0, dtype=int)] * K,
                                 [None] * K, stats)

    centres = pixels + 0.5
    du = centres[:, 0:1] - proj.mean2d[None, :, 0]
    dv = centres[:, 1:2] - proj.mean2d[None, :, 1]
    r = proj.radius[None, :]
    in_bbox = (np.abs(du) <= r) & (np.abs(dv) <= r)
    stats.num_candidate_pairs += int(in_bbox.sum())
    alpha = _conic_alpha(centres, proj.mean2d, proj.conic, proj.opacity)
    survives = in_bbox & (alpha >= alpha_threshold)
    stats.num_alpha_checks += int(in_bbox.sum())

    from .compositing import composite_forward  # reused inner integrator

    for k in range(K):
        cand = sort_by_depth(np.nonzero(survives[k])[0], proj.depth)
        pixel_lists.append(cand)
        stats.num_sort_keys += cand.size
        stats.pixel_list_lengths.append(int(cand.size))
        if cand.size == 0:
            caches.append(None)
            stats.per_pixel_contribs.append(0)
            continue
        # Reuse the isotropic compositor by feeding it the already-known
        # alphas: encode each pair's alpha as an "opacity" with the pixel
        # exactly at the splat centre (sigma arbitrary).
        pair_alpha = alpha[k, cand]
        out_color, out_depth, out_sil, cache = composite_forward(
            np.zeros((1, 2)),
            mean2d=np.zeros((cand.size, 2)),
            sigma2d=np.ones(cand.size),
            depth=proj.depth[cand],
            opacity=pair_alpha,
            color=proj.color[cand],
            background=bg,
            alpha_threshold=alpha_threshold,
            t_min=t_min,
        )
        color[k] = out_color[0]
        depth[k] = out_depth[0]
        silhouette[k] = out_sil[0]
        contribs = int(cache.contrib.sum())
        stats.num_contrib_pairs += contribs
        stats.per_pixel_contribs.append(contribs)
        stats.pixel_contrib_ids.append(
            proj.source_index[cand[cache.contrib[0]]])
        caches.append(cache)

    return AnisoSparseResult(pixels, color, depth, silhouette, proj,
                             pixel_lists, caches, stats)


@dataclass
class AnisoGradients:
    """World-space gradients of an anisotropic cloud and the camera."""

    d_means: np.ndarray            # (N, 3)
    d_log_scales: np.ndarray       # (N, 3)
    d_quaternions: np.ndarray      # (N, 4)
    d_logit_opacities: np.ndarray  # (N,)
    d_colors: np.ndarray           # (N, 3)
    d_pose_twist: np.ndarray       # (6,) — see module docstring
    stats: PipelineStats = field(default_factory=PipelineStats)

    def as_cloud_vector(self) -> np.ndarray:
        return np.concatenate([
            self.d_means.ravel(), self.d_log_scales.ravel(),
            self.d_quaternions.ravel(), self.d_logit_opacities,
            self.d_colors.ravel(),
        ])


def backward_sparse_anisotropic(
    result: AnisoSparseResult,
    cloud: AnisotropicCloud,
    camera: Camera,
    d_color: np.ndarray,
    d_depth: np.ndarray,
    d_silhouette: np.ndarray,
) -> AnisoGradients:
    """Backward pass of the anisotropic pixel pipeline.

    Gradients flow through the conic (EWA) projection into all covariance
    parameters.  The camera-twist gradient includes every path through the
    camera-frame point ``p_cam`` (projection Jacobian included); the
    dependence of the covariance on the world-to-camera *rotation* is
    omitted, matching the approximation used by 3DGS-SLAM trackers — the
    twist's translational components are exact.
    """
    from .compositing import composite_backward

    proj = result.proj
    intr = camera.intrinsics
    K = result.pixels.shape[0]
    M = len(proj)
    n = len(cloud)

    d_color = np.atleast_2d(np.asarray(d_color, dtype=float))
    d_depth_in = np.atleast_1d(np.asarray(d_depth, dtype=float))
    d_sil = np.atleast_1d(np.asarray(d_silhouette, dtype=float))

    stats = PipelineStats(pipeline="pixel", num_gaussians=n,
                          num_projected=M, num_pixels=K,
                          image_width=intr.width, image_height=intr.height)
    d_alpha_terms_mean = np.zeros((M, 2))
    d_conic = np.zeros((M, 3))
    d_opacity = np.zeros(M)
    d_colors_proj = np.zeros((M, 3))
    d_depth_proj = np.zeros(M)

    centres = result.pixels + 0.5
    for k in range(K):
        cand = result.pixel_lists[k]
        cache = result.caches[k]
        if cache is None or cand.size == 0:
            continue
        du = centres[k, 0] - proj.mean2d[cand, 0]
        dv = centres[k, 1] - proj.mean2d[cand, 1]
        a = proj.conic[cand, 0]
        b = proj.conic[cand, 1]
        c = proj.conic[cand, 2]
        power = 0.5 * (a * du * du + 2 * b * du * dv + c * dv * dv)
        g = np.exp(-power)
        o = proj.opacity[cand]
        alpha_raw = o * g
        pair_alpha = np.minimum(alpha_raw, ALPHA_MAX)

        # The forward fed each pair's alpha as the "opacity" of a splat
        # centred on the pixel (g = 1), so running the shared backward
        # with the same inputs makes its d_opacity exactly dL/d(alpha).
        pair = composite_backward(
            cache,
            mean2d=np.zeros((cand.size, 2)),
            sigma2d=np.ones(cand.size),
            depth=proj.depth[cand],
            opacity=pair_alpha,
            color=proj.color[cand],
            d_color=d_color[k:k + 1],
            d_depth=d_depth_in[k:k + 1],
            d_silhouette=d_sil[k:k + 1],
        )
        live = alpha_raw <= ALPHA_MAX  # clipped pairs get no alpha gradient
        d_pair_alpha = np.where(live, pair.d_opacity, 0.0)

        np.add.at(d_opacity, cand, d_pair_alpha * g)
        d_g = d_pair_alpha * o
        coeff = d_g * g
        # d power / d mean2d = -(C d); alpha = o exp(-power).
        np.add.at(d_alpha_terms_mean, cand, np.stack([
            coeff * (a * du + b * dv),
            coeff * (b * du + c * dv),
        ], axis=-1))
        np.add.at(d_conic, cand, np.stack([
            -coeff * 0.5 * du * du,
            -coeff * du * dv,
            -coeff * 0.5 * dv * dv,
        ], axis=-1))
        np.add.at(d_colors_proj, cand, pair.d_color)
        np.add.at(d_depth_proj, cand, pair.d_depth)
        stats.num_contrib_pairs += pair.num_pairs_touched
        stats.num_atomic_adds += pair.num_pairs_touched
        stats.pixel_list_lengths.append(int(cand.size))

    # ---- conic -> 2D covariance -> (Sigma3D, T, p_cam) ----
    # C = Sigma2^-1  =>  dL/dSigma2 = -C G_C C with G_C the symmetric
    # matrix carrying (da, db, dc).
    G_C = np.zeros((M, 2, 2))
    G_C[:, 0, 0] = d_conic[:, 0]
    G_C[:, 0, 1] = G_C[:, 1, 0] = 0.5 * d_conic[:, 1]
    G_C[:, 1, 1] = d_conic[:, 2]
    Cm = np.zeros((M, 2, 2))
    Cm[:, 0, 0] = proj.conic[:, 0]
    Cm[:, 0, 1] = Cm[:, 1, 0] = proj.conic[:, 1]
    Cm[:, 1, 1] = proj.conic[:, 2]
    G_sigma2 = -np.einsum("mij,mjk,mkl->mil", Cm, G_C, Cm)

    # Sigma2 = T Sigma3 T^T: dL/dSigma3 = T^T G T; dL/dT = 2 G T Sigma3.
    G_sigma3 = np.einsum("mji,mjk,mkl->mil", proj.T, G_sigma2, proj.T)
    d_T = 2.0 * np.einsum("mij,mjk,mkl->mil", G_sigma2, proj.T, proj.sigma3d)

    # T = J W: dL/dJ = dL/dT W^T; J depends on p_cam.
    W = camera.pose_w2c[:3, :3]
    d_J = np.einsum("mij,kj->mik", d_T, W)
    x, y, z = proj.p_cam[:, 0], proj.p_cam[:, 1], proj.p_cam[:, 2]
    inv_z2 = 1.0 / (z * z)
    d_p_cam = np.zeros((M, 3))
    d_p_cam[:, 0] += d_J[:, 0, 2] * (-intr.fx * inv_z2)
    d_p_cam[:, 1] += d_J[:, 1, 2] * (-intr.fy * inv_z2)
    d_p_cam[:, 2] += (d_J[:, 0, 0] * (-intr.fx * inv_z2)
                      + d_J[:, 0, 2] * (2 * intr.fx * x / (z ** 3))
                      + d_J[:, 1, 1] * (-intr.fy * inv_z2)
                      + d_J[:, 1, 2] * (2 * intr.fy * y / (z ** 3)))

    # mean2d path (u = fx x/z + cx ...), plus the direct depth channel.
    d_u, d_v = d_alpha_terms_mean[:, 0], d_alpha_terms_mean[:, 1]
    d_p_cam[:, 0] += d_u * intr.fx / z
    d_p_cam[:, 1] += d_v * intr.fy / z
    d_p_cam[:, 2] += (-d_u * intr.fx * x * inv_z2
                      - d_v * intr.fy * y * inv_z2
                      + d_depth_proj)

    # ---- scatter to cloud parameters ----
    d_log_scales_proj, d_quats_proj = covariance_gradients(
        cloud.quaternions[proj.source_index],
        cloud.scales[proj.source_index], G_sigma3)
    op = proj.opacity
    d_logit_proj = d_opacity * op * (1.0 - op)
    raw_color = cloud.colors[proj.source_index]
    gate = ((raw_color > 0.0) & (raw_color < 1.0)) | (
        (raw_color <= 0.0) & (d_colors_proj < 0.0)) | (
        (raw_color >= 1.0) & (d_colors_proj > 0.0))
    d_colors_gated = np.where(gate, d_colors_proj, 0.0)

    out = AnisoGradients(
        d_means=np.zeros((n, 3)),
        d_log_scales=np.zeros((n, 3)),
        d_quaternions=np.zeros((n, 4)),
        d_logit_opacities=np.zeros(n),
        d_colors=np.zeros((n, 3)),
        d_pose_twist=np.zeros(6),
        stats=stats,
    )
    src = proj.source_index
    np.add.at(out.d_means, src, d_p_cam @ W)
    np.add.at(out.d_log_scales, src, d_log_scales_proj)
    np.add.at(out.d_quaternions, src, d_quats_proj)
    np.add.at(out.d_logit_opacities, src, d_logit_proj)
    np.add.at(out.d_colors, src, d_colors_gated)

    Jtw = point_jacobian_wrt_twist(proj.p_cam)
    out.d_pose_twist = np.einsum("mij,mi->j", Jtw, d_p_cam)
    return out
