"""Temporal-coherence render cache: cross-iteration candidate reuse.

The optimizer loops around the sparse pixel pipeline exhibit strong
temporal coherence: mapping iterations hold the camera and the sampled
pixel set fixed while the Gaussian parameters drift by Adam-sized steps,
and tracking iterations hold the cloud fixed while the pose drifts.  Yet
the uncached pipeline re-runs candidate generation — the dominant
pre-compositing cost, a ``K x N`` corner test or a lattice expansion plus
stable sorts — from scratch on every iteration.

:class:`RenderCache` memoizes, per optimization stream, the *dilated
candidate superset*: the (pixel, Gaussian) pairs whose pixel centre falls
inside each active Gaussian's bounding box grown by a safety ``margin``
(in pixels).  Every subsequent iteration is revalidated **exactly**:

1. The full-cloud projection math runs (shared, expression-for-expression,
   with :func:`repro.render.projection.project_gaussians` via
   :func:`projection_arrays` — so the projected values are bit-identical
   to the uncached path by construction).
2. The cache *hits* iff every currently-visible Gaussian (a) was active
   when the superset was built and (b) moved so little that its current
   bbox is still contained in its dilated build-time bbox:
   ``max(|u - u_ref|, |v - v_ref|) <= margin + radius_ref - radius``.
   Containment makes the superset *provably* conservative: any pixel
   centre inside the current bbox is inside the dilated build bbox, hence
   the pair is in the superset.
3. On a hit, re-running the exact corner predicate (identical float
   comparisons to the candidate generators) over the superset yields the
   exact candidate pair list — same pairs, same pixel-major order, same
   counters — at ``O(|superset|)`` cost instead of ``O(K x N)``.
4. Any violation triggers a transparent full rebuild inside a
   ``render.cache_rebuild`` tracer span; correctness never depends on the
   margin, only the hit rate does.

Margin policy (the two loop shapes):

- ``mode="mapping"`` — camera and pixels fixed, Gaussian parameters drift
  by Adam steps.  The observed per-iteration 2D motion *is* the projected
  parameter delta; the margin adapts to ``margin_scale * step * horizon``
  of the measured per-iteration maximum (clamped to
  ``[min_margin, max_margin]``), starting from a 1-px prior.
- ``mode="tracking"`` — cloud fixed, pose drifts.  The observed motion is
  the pose-induced pixel flow; same adaptive law, 2-px prior (pose steps
  move the whole frame coherently, so per-step deltas are larger).

Enable with ``SplatonicConfig.render_cache=True``, the CLI
``--render-cache`` flag, or ``REPRO_RENDER_CACHE=1``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..obs import trace
from .kernels.candidates import CandidatePairs, candidate_pairs
from .projection import (
    RADIUS_SIGMA,
    ProjectedGaussians,
    gather_projected,
    projection_arrays,
    projection_keep_mask,
)

__all__ = ["RenderCache", "CacheLookup", "resolve_render_cache", "ENV_VAR"]

#: Environment switch: truthy values enable the cache when no explicit
#: config/CLI choice was made.
ENV_VAR = "REPRO_RENDER_CACHE"

_TRUTHY = ("1", "true", "yes", "on")

#: Initial margin priors (pixels) per optimization-loop shape.
INITIAL_MARGIN = {"tracking": 2.0, "mapping": 1.0}


def resolve_render_cache(flag: Optional[bool] = None) -> bool:
    """Resolve the cache switch: explicit flag > ``$REPRO_RENDER_CACHE`` > off."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class CacheLookup:
    """Outcome bookkeeping of one :meth:`RenderCache.project_and_candidates`."""

    __slots__ = ("hit", "rebuilt", "active_gaussians", "margin")

    def __init__(self, hit: bool, rebuilt: bool, active_gaussians: int,
                 margin: float):
        self.hit = hit
        #: True only for *warm* invalidations (a previously valid superset
        #: was discarded); the cold first build is a miss but not a rebuild.
        self.rebuilt = rebuilt
        self.active_gaussians = active_gaussians
        self.margin = margin


class RenderCache:
    """One cache instance serves one optimization stream.

    A stream is a sequence of ``render_sparse`` calls over the same
    sampled-pixel set with smoothly drifting inputs: the tracker creates
    one per frame, the mapper one per window keyframe per invocation.
    The cache is conservative — its output is bit-identical to the
    uncached pipeline regardless of margin; see the module docstring for
    the containment argument.
    """

    def __init__(self, mode: str = "tracking",
                 margin: Optional[float] = None,
                 margin_scale: float = 1.5,
                 horizon: float = 16.0,
                 min_margin: float = 0.5,
                 max_margin: float = 32.0):
        if mode not in INITIAL_MARGIN:
            raise ValueError("mode must be 'tracking' or 'mapping'")
        self.mode = mode
        self.margin = float(margin if margin is not None
                            else INITIAL_MARGIN[mode])
        self.margin_scale = float(margin_scale)
        self.horizon = float(horizon)
        self.min_margin = float(min_margin)
        self.max_margin = float(max_margin)

        self.hits = 0
        self.misses = 0
        self.rebuilds = 0

        self._built = False
        self._n = -1
        self._pixels: Optional[np.ndarray] = None
        self._tile: Optional[int] = None
        self._active: Optional[np.ndarray] = None   # (N,) bool at build
        self._ref_u: Optional[np.ndarray] = None    # (N,) build-time u
        self._ref_v: Optional[np.ndarray] = None
        self._ref_radius: Optional[np.ndarray] = None
        self._sup_pix: Optional[np.ndarray] = None  # (S,) pixel indices
        self._sup_src: Optional[np.ndarray] = None  # (S,) cloud indices
        self._sup_cu: Optional[np.ndarray] = None   # (S,) pixel centres u
        self._sup_cv: Optional[np.ndarray] = None
        self._iters_since_build = 0
        self._max_delta_seen = 0.0
        #: Original pixels object seen at build time — an identity hit
        #: skips the elementwise comparison (optimizer loops pass the
        #: same array object every iteration).
        self._pixels_src: Optional[np.ndarray] = None
        #: Reusable cloud-index -> projected-index scatter buffer.
        self._proj_buf: Optional[np.ndarray] = None

    # ---- public API ----

    def project_and_candidates(
        self, cloud: GaussianCloud, camera: Camera, pixels: np.ndarray,
        lattice_tile: Optional[int] = None,
    ) -> Tuple[ProjectedGaussians, CandidatePairs, CacheLookup]:
        """Projection + exact candidate pairs for one iteration.

        Returns exactly what the uncached pipeline's
        ``project_gaussians`` + ``candidate_pairs`` stage would: the same
        :class:`ProjectedGaussians` and the same pixel-major candidate
        pair list (pre-α-filter), plus a :class:`CacheLookup` describing
        whether the superset was reused or rebuilt.
        """
        intr = camera.intrinsics
        pixels = np.atleast_2d(np.asarray(pixels, dtype=int))

        with trace.span("render.cache_validate", mode=self.mode,
                        margin=self.margin):
            arrays = projection_arrays(cloud, camera)
            p_cam, z, in_depth, u, v, sigma, radius = arrays
            keep = projection_keep_mask(in_depth, u, v, radius,
                                        intr.width, intr.height)
            ok = self._validate(cloud, pixels, lattice_tile, keep, u, v,
                                radius)

        rebuilt = (not ok) and self._built
        if not ok:
            with trace.span("render.cache_rebuild", mode=self.mode,
                            warm=rebuilt):
                self._build(pixels, lattice_tile, intr, in_depth, u, v,
                            radius, warm=rebuilt)

        idx = np.nonzero(keep)[0]
        proj = gather_projected(cloud, idx, p_cam, z, u, v, sigma, radius)
        pairs = self._exact_pairs(keep, idx, u, v, radius, cloud,
                                  pixels.shape[0])
        self._iters_since_build += 1

        if ok:
            self.hits += 1
        else:
            self.misses += 1
            if rebuilt:
                self.rebuilds += 1
        active = int(self._active.sum()) if self._active is not None else 0
        return proj, pairs, CacheLookup(ok, rebuilt, active, self.margin)

    # ---- internals ----

    def _validate(self, cloud: GaussianCloud, pixels: np.ndarray,
                  lattice_tile: Optional[int], keep: np.ndarray,
                  u: np.ndarray, v: np.ndarray,
                  radius: np.ndarray) -> bool:
        if (not self._built or len(cloud) != self._n
                or self._tile != lattice_tile
                or (pixels is not self._pixels_src
                    and (self._pixels.shape != pixels.shape
                         or not np.array_equal(self._pixels, pixels)))):
            return False
        # (a) every currently-visible Gaussian must have been active when
        # the superset was built — an entirely new arrival has no superset
        # entries at all.
        if np.any(keep & ~self._active):
            return False
        # (b) bbox containment: current bbox inside the dilated build bbox.
        # |u - u_ref| <= margin + radius_ref - radius (and same for v);
        # a shrinking radius buys slack, a growing one spends it.
        du = np.abs(u - self._ref_u)
        dv = np.abs(v - self._ref_v)
        slack = self.margin + self._ref_radius - radius
        tracked = keep & self._active
        if np.any(tracked):
            # Observed per-iteration motion feeds the adaptive margin.
            motion = np.maximum(du, dv)[tracked]
            self._max_delta_seen = max(self._max_delta_seen,
                                       float(motion.max()))
        bad = keep & ((du > slack) | (dv > slack))
        return not bool(np.any(bad))

    def _build(self, pixels: np.ndarray, lattice_tile: Optional[int],
               intr, in_depth: np.ndarray, u: np.ndarray, v: np.ndarray,
               radius: np.ndarray, warm: bool) -> None:
        if warm:
            # Re-derive the margin from the measured per-iteration motion
            # of the epoch that just ended (including the violating step).
            step = self._max_delta_seen / max(self._iters_since_build, 1)
            self.margin = float(np.clip(
                self.margin_scale * step * self.horizon,
                self.min_margin, self.max_margin))
        margin = self.margin
        # Active set: in-depth with the *margin-dilated* footprint
        # overlapping the image — a superset of every Gaussian that can
        # become visible without violating the motion bound.
        dilated = radius + margin
        active = in_depth & (
            (u + dilated > 0.0) & (u - dilated < intr.width)
            & (v + dilated > 0.0) & (v - dilated < intr.height))
        act_idx = np.nonzero(active)[0]
        au, av, ar = u[act_idx], v[act_idx], dilated[act_idx]
        dil_bbox = np.stack([au - ar, av - ar, au + ar, av + ar], axis=1)
        centres = pixels + 0.5
        sup = candidate_pairs(pixels, centres, dil_bbox,
                              lattice_tile=lattice_tile, width=intr.width,
                              pixel_major=True)
        self._sup_pix = sup.pix
        self._sup_src = act_idx[sup.gss]
        self._sup_cu = centres[sup.pix, 0]
        self._sup_cv = centres[sup.pix, 1]
        self._active = active
        self._ref_u = u
        self._ref_v = v
        self._ref_radius = radius
        self._pixels = pixels.copy()
        self._pixels_src = pixels
        self._tile = lattice_tile
        self._n = in_depth.shape[0]
        self._built = True
        self._iters_since_build = 0
        self._max_delta_seen = 0.0

    def _exact_pairs(self, keep: np.ndarray, idx: np.ndarray,
                     u: np.ndarray, v: np.ndarray, radius: np.ndarray,
                     cloud: GaussianCloud, K: int) -> CandidatePairs:
        """Filter the superset down to the exact candidate pair list.

        The corner predicate uses the same elementwise expressions as the
        generators in :mod:`repro.render.kernels.candidates` — bbox edges
        are ``u - radius`` / ``u + radius`` of the shared projection
        arrays, pixel centres are ``pixels + 0.5`` — so the surviving
        pairs are bitwise the generator output.  Because the superset is
        stored pixel-major with ascending cloud index inside each pixel
        segment and ``keep``-masking preserves order, the result is in
        the generators' canonical pixel-major order too.
        """
        src = self._sup_src
        if src.size == 0:
            return CandidatePairs.empty(K)
        lo_u = u - radius
        hi_u = u + radius
        lo_v = v - radius
        hi_v = v + radius
        sel = (keep[src]
               & (self._sup_cu >= lo_u[src]) & (self._sup_cu <= hi_u[src])
               & (self._sup_cv >= lo_v[src]) & (self._sup_cv <= hi_v[src]))
        # Cloud index -> projected index (position within the sorted idx).
        # The buffer persists across iterations; entries outside ``idx``
        # are stale but never read because ``sel`` implies ``keep``.
        if self._proj_buf is None or self._proj_buf.shape[0] != len(cloud):
            self._proj_buf = np.empty(len(cloud), dtype=int)
        self._proj_buf[idx] = np.arange(idx.shape[0])
        return CandidatePairs(self._sup_pix[sel], self._proj_buf[src[sel]], K)
