"""Projection stage of the 3DGS pipeline (forward pass, Fig. 3).

Transforms Gaussians into the camera frame, culls those outside the view
frustum, and computes their 2D splat parameters: the projected mean, the
isotropic 2D standard deviation, and the bounding-box radius used by the
tile/pixel intersection logic downstream.

The raw vectorized math lives in :func:`projection_arrays` /
:func:`projection_keep_mask` / :func:`gather_projected` so that other
consumers — the temporal-coherence render cache in
:mod:`repro.render.cache` revalidates its memoized candidate superset
with exactly these expressions — stay bit-identical to
:func:`project_gaussians` by construction, not by duplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud

__all__ = [
    "ProjectedGaussians",
    "project_gaussians",
    "projection_arrays",
    "projection_keep_mask",
    "gather_projected",
    "RADIUS_SIGMA",
]

# Splat truncation radius in units of sigma.  Chosen so that a splat's
# bounding box is a *conservative* filter for the default alpha threshold:
# alpha at the bbox edge is at most exp(-3.5^2 / 2) ~= 0.0022 < 1/255, so a
# pair rejected by the bbox test can never pass alpha-checking.  This is
# what makes the tile-based and pixel-based pipelines pixel-exact equal.
RADIUS_SIGMA = 3.5


@dataclass
class ProjectedGaussians:
    """Per-Gaussian 2D splat parameters for one camera view.

    All arrays are indexed by *projected* Gaussian; ``source_index`` maps
    back to the cloud so gradients can be scattered to the right rows.
    """

    source_index: np.ndarray  # (M,) int — index into the GaussianCloud
    p_cam: np.ndarray         # (M, 3) camera-frame centres
    mean2d: np.ndarray        # (M, 2) projected centres (pixels)
    sigma2d: np.ndarray       # (M,) isotropic 2D std-dev (pixels)
    depth: np.ndarray         # (M,) camera-frame z
    opacity: np.ndarray       # (M,) in (0, 1)
    color: np.ndarray         # (M, 3) clamped to [0, 1]
    radius: np.ndarray        # (M,) bbox half-extent = RADIUS_SIGMA * sigma2d

    def __len__(self) -> int:
        return self.source_index.shape[0]

    def bbox(self) -> np.ndarray:
        """Return ``(M, 4)`` pixel bounding boxes ``(u_min, v_min, u_max, v_max)``."""
        r = self.radius[:, None]
        lo = self.mean2d - r
        hi = self.mean2d + r
        return np.concatenate([lo, hi], axis=1)


def projection_arrays(
    cloud: GaussianCloud,
    camera: Camera,
    near: float = 0.01,
    far: float = 1e6,
    margin_sigma: float = RADIUS_SIGMA,
) -> Tuple[np.ndarray, ...]:
    """Full-cloud projection math, no culling/gathering.

    Returns ``(p_cam, z, in_depth, u, v, sigma, radius)`` — all length-N
    arrays over the whole cloud.  Entries failing the depth test hold
    placeholder (finite) projected values via the ``z_safe`` guard.
    """
    intr = camera.intrinsics
    p_cam = camera.world_to_camera(cloud.means)
    z = p_cam[:, 2]
    in_depth = (z > near) & (z < far)

    mean_focal = 0.5 * (intr.fx + intr.fy)
    # Guard z for the masked-out entries so the vectorized ops stay finite.
    z_safe = np.where(in_depth, z, 1.0)
    u = intr.fx * p_cam[:, 0] / z_safe + intr.cx
    v = intr.fy * p_cam[:, 1] / z_safe + intr.cy
    sigma = mean_focal * cloud.scales / z_safe
    radius = margin_sigma * sigma
    return p_cam, z, in_depth, u, v, sigma, radius


def projection_keep_mask(in_depth: np.ndarray, u: np.ndarray, v: np.ndarray,
                         radius: np.ndarray, width: int,
                         height: int) -> np.ndarray:
    """The survival mask of :func:`project_gaussians`: in-depth and the
    radius-dilated footprint overlaps the image rectangle."""
    on_screen = (
        (u + radius > 0.0)
        & (u - radius < width)
        & (v + radius > 0.0)
        & (v - radius < height)
    )
    return in_depth & on_screen


def gather_projected(cloud: GaussianCloud, idx: np.ndarray,
                     p_cam: np.ndarray, z: np.ndarray, u: np.ndarray,
                     v: np.ndarray, sigma: np.ndarray,
                     radius: np.ndarray) -> ProjectedGaussians:
    """Subset the full-cloud projection arrays into a ProjectedGaussians."""
    return ProjectedGaussians(
        source_index=idx,
        p_cam=p_cam[idx],
        mean2d=np.stack([u[idx], v[idx]], axis=-1),
        sigma2d=sigma[idx],
        depth=z[idx],
        opacity=cloud.opacities[idx],
        color=np.clip(cloud.colors[idx], 0.0, 1.0),
        radius=radius[idx],
    )


def project_gaussians(
    cloud: GaussianCloud,
    camera: Camera,
    near: float = 0.01,
    far: float = 1e6,
    margin_sigma: float = RADIUS_SIGMA,
) -> ProjectedGaussians:
    """Project a Gaussian cloud into a camera and cull off-screen splats.

    A Gaussian survives if its centre is within ``[near, far]`` in depth and
    its ``margin_sigma``-radius footprint overlaps the image rectangle.
    """
    intr = camera.intrinsics
    p_cam, z, in_depth, u, v, sigma, radius = projection_arrays(
        cloud, camera, near, far, margin_sigma)
    keep = projection_keep_mask(in_depth, u, v, radius,
                                intr.width, intr.height)
    idx = np.nonzero(keep)[0]
    return gather_projected(cloud, idx, p_cam, z, u, v, sigma, radius)
