"""Parallel sparse kernels: sharded-pixel execution on a persistent pool.

The software analogue of SPLATONIC's parallel rasterization engines:
the sampled pixel list is split into **contiguous shards**, each shard
runs the vectorized kernel on a worker of a persistent thread pool
(created once per worker count and reused across optimizer iterations),
and the backward pass aggregates through a software scoreboard:

- **forward** — pixels are independent, so each shard computes its slice
  of the output images in place.  The vectorized kernel's global
  ``(pixel, depth, index)`` lexsort is pixel-major-primary, which makes
  the per-shard sorts exact sub-sequences of the global sort — shard
  outputs, pixel lists, and caches concatenate bit-identically.
- **backward** — workers return per-pair ``(gaussian_index, partial)``
  gradients only (:func:`repro.render.kernels.vectorized.pair_gradients`);
  the parent concatenates the shards in shard (= pixel-major canonical)
  order and applies **one** global ``np.add.at`` per gradient array.
  The (index, value) sequence is identical to the vectorized backend's
  single-threaded scatter, so no float reassociation ever occurs and
  gradients are bit-identical at every worker count.

Threads, not processes: the heavy numpy ops release the GIL, nothing is
pickled, and output slices are written in place.  ``PipelineStats``
counters and record streams are collected per shard and folded into the
caller's stats in shard order — bit-identical to the vectorized
backend's streams.  Worker shard timings land in the parent trace as
``render.shard_fwd`` / ``render.shard_bwd`` spans tagged ``worker=i``.

Worker-count resolution: explicit ``workers=`` argument >
``$REPRO_KERNEL_WORKERS`` > ``os.cpu_count()``.  With one worker (or a
pixel set too small to shard) both passes route straight to the
vectorized code path — same outputs, same stats, no pool dispatch.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter, thread_time_ns
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...obs.tracing import trace
from ..stats import PipelineStats
from . import KernelBackend, register_kernel
from .candidates import CandidatePairs
from . import vectorized

__all__ = [
    "ENV_WORKERS",
    "MIN_SHARD_PIXELS",
    "ShardedCompositeCache",
    "resolve_workers",
    "shard_bounds",
    "forward",
    "backward",
]

#: Environment variable consulted when no explicit worker count is given.
ENV_WORKERS = "REPRO_KERNEL_WORKERS"

#: Upper bound on the worker pool size (a runaway-env-var backstop).
MAX_WORKERS = 32

#: Minimum pixels per shard: below this the per-shard dispatch overhead
#: dwarfs the kernel work, so the shard count is capped at
#: ``K // MIN_SHARD_PIXELS`` (and a single shard falls back to the
#: vectorized path outright).
MIN_SHARD_PIXELS = 8

#: Persistent pools, keyed by worker count — created once, reused across
#: every render/backward of every optimizer iteration.
_POOLS: Dict[int, ThreadPoolExecutor] = {}


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count: arg > ``$REPRO_KERNEL_WORKERS`` > CPUs."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        try:
            workers = int(env) if env else (os.cpu_count() or 1)
        except ValueError:
            workers = os.cpu_count() or 1
    return max(1, min(int(workers), MAX_WORKERS))


def _get_pool(workers: int) -> ThreadPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ThreadPoolExecutor(max_workers=workers,
                                  thread_name_prefix="repro-kernel")
        _POOLS[workers] = pool
    return pool


def shard_bounds(num_pixels: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` pixel ranges (array_split sizes)."""
    shards = max(1, min(int(shards), int(num_pixels)))
    base, rem = divmod(int(num_pixels), shards)
    bounds = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass
class ShardedCompositeCache:
    """Forward state of a sharded render: one vectorized cache per shard.

    ``bounds[i]`` is the contiguous ``[lo, hi)`` pixel range of shard
    ``i``; ``shards[i]`` is that shard's
    :class:`~repro.render.kernels.vectorized.FlatCompositeCache`, or
    ``None`` when the shard had no surviving candidate pairs.
    """

    bounds: List[Tuple[int, int]]
    shards: List[Optional[vectorized.FlatCompositeCache]]
    workers: int  # pool size the forward pass ran with


def _local_stats(stats: PipelineStats) -> PipelineStats:
    """A fresh per-shard stats sink mirroring the caller's record flag."""
    return PipelineStats(pipeline=stats.pipeline,
                         record_per_pixel=stats.record_per_pixel)


def _fold_stats(parent: PipelineStats, local: PipelineStats) -> None:
    """Fold one shard's kernel counters/records into the caller's stats.

    Only the fields the vectorized kernels mutate; shards fold in shard
    (= pixel-major) order, so the record streams concatenate into exactly
    the sequences the single-threaded vectorized pass emits.
    """
    parent.num_candidate_pairs += local.num_candidate_pairs
    parent.num_contrib_pairs += local.num_contrib_pairs
    parent.num_atomic_adds += local.num_atomic_adds
    parent.pixel_list_lengths.extend(local.pixel_list_lengths)
    parent.per_pixel_contribs.extend(local.per_pixel_contribs)
    parent.pixel_contrib_ids.extend(local.pixel_contrib_ids)


def _emit_shard_spans(name: str, timings, bounds) -> None:
    """Land worker-timed shard spans in the parent trace (worker= tag)."""
    if not trace.enabled:
        return
    for i, (start, duration, cpu_s) in enumerate(timings):
        lo, hi = bounds[i]
        trace.add_external_span(name, start, duration, cpu_time=cpu_s,
                                worker=i, pixels=hi - lo,
                                backend="parallel")


def forward(proj, pairs, centres, background, alpha_threshold, t_min,
            keep_cache, exp_fn, stats, color, depth, silhouette,
            pair_alpha=None, pair_clipped=None, contribs_out=None,
            workers=None):
    """Sharded forward pass: the vectorized kernel per contiguous shard.

    Signature-compatible with the vectorized forward plus ``workers=``
    (the pipeline passes ``SplatonicConfig.kernel_workers`` through).
    Outputs, pixel lists, stats, and atlas counts are bit-identical to
    the vectorized backend's by construction.
    """
    K = pairs.num_pixels
    n_workers = resolve_workers(workers)
    n_shards = min(n_workers, max(1, K // MIN_SHARD_PIXELS))
    if pairs.size == 0 or n_workers <= 1 or n_shards <= 1:
        # Graceful single-worker fallback: straight to the vectorized
        # code path — no pool, no shard bookkeeping.
        return vectorized.forward(
            proj, pairs, centres, background, alpha_threshold, t_min,
            keep_cache, exp_fn, stats, color, depth, silhouette,
            pair_alpha=pair_alpha, pair_clipped=pair_clipped,
            contribs_out=contribs_out)

    bounds = shard_bounds(K, n_shards)
    # Group the flat pair list by shard: a stable argsort on the shard id
    # keeps pairs in their incoming order within each shard (the
    # vectorized lexsort re-sorts per shard anyway).
    edges = np.array([hi for _, hi in bounds])
    shard_of = np.searchsorted(edges, pairs.pix, side="right")
    order = np.argsort(shard_of, kind="stable")
    counts = np.bincount(shard_of, minlength=len(bounds))
    offsets = np.concatenate([[0], np.cumsum(counts)])

    def run_shard(i: int):
        lo, hi = bounds[i]
        start = perf_counter()
        cpu0 = thread_time_ns()
        sel = order[offsets[i]:offsets[i + 1]]
        local = _local_stats(stats)
        sub_pairs = CandidatePairs(pix=pairs.pix[sel] - lo,
                                   gss=pairs.gss[sel],
                                   num_pixels=hi - lo)
        out = vectorized.forward(
            proj, sub_pairs, centres[lo:hi], background, alpha_threshold,
            t_min, keep_cache, exp_fn, local,
            color[lo:hi], depth[lo:hi], silhouette[lo:hi],
            pair_alpha=None if pair_alpha is None else pair_alpha[sel],
            pair_clipped=(None if pair_clipped is None
                          else pair_clipped[sel]),
            contribs_out=(None if contribs_out is None
                          else contribs_out[lo:hi]))
        timing = (start, perf_counter() - start,
                  (thread_time_ns() - cpu0) * 1e-9)
        return out, local, timing

    pool = _get_pool(n_workers)
    results = [f.result()
               for f in [pool.submit(run_shard, i)
                         for i in range(len(bounds))]]

    pixel_lists: List[np.ndarray] = []
    shard_caches: List[Optional[vectorized.FlatCompositeCache]] = []
    timings = []
    for (lists, _caches, fc), local, timing in results:
        pixel_lists.extend(lists)
        shard_caches.append(fc)
        _fold_stats(stats, local)
        timings.append(timing)
    _emit_shard_spans("render.shard_fwd", timings, bounds)

    flat_cache = None
    if keep_cache:
        flat_cache = ShardedCompositeCache(bounds=bounds,
                                           shards=shard_caches,
                                           workers=n_workers)
    return pixel_lists, [None] * K, flat_cache


def backward(result, proj, d_color, d_depth, d_silhouette, pg, stats,
             contribs_out=None):
    """Sharded backward pass with deterministic gradient aggregation.

    Workers compute per-pair gradient partials for their shard; the
    parent concatenates the shards in pixel-major canonical order and
    issues one global sequential ``np.add.at`` per gradient array (the
    software scoreboard) — the exact (index, value) sequence of the
    vectorized backend, hence bit-identical accumulations.
    """
    fc = result.flat_cache
    if fc is None:
        return
    if not isinstance(fc, ShardedCompositeCache):
        # Single-worker fallback (or a cache from another backend):
        # delegate wholesale to the vectorized path.
        return vectorized.backward(result, proj, d_color, d_depth,
                                   d_silhouette, pg, stats,
                                   contribs_out=contribs_out)

    bounds = fc.bounds

    def run_shard(i: int):
        lo, hi = bounds[i]
        start = perf_counter()
        cpu0 = thread_time_ns()
        sub = fc.shards[i]
        local = _local_stats(stats)
        grads = None
        if sub is not None:
            grads = vectorized.pair_gradients(
                sub, proj, d_color[lo:hi], d_depth[lo:hi],
                d_silhouette[lo:hi])
            vectorized.accumulate_backward_stats(
                local, sub, grads, proj,
                contribs_out=(None if contribs_out is None
                              else contribs_out[lo:hi]))
        timing = (start, perf_counter() - start,
                  (thread_time_ns() - cpu0) * 1e-9)
        return grads, local, timing

    pool = _get_pool(fc.workers)
    results = [f.result()
               for f in [pool.submit(run_shard, i)
                         for i in range(len(bounds))]]

    parts = [grads for grads, _local, _t in results if grads is not None]
    if parts:
        merged = vectorized.PairGradients(
            idx=np.concatenate([p.idx for p in parts]),
            d_mean2d=np.concatenate([p.d_mean2d for p in parts]),
            d_sigma2d=np.concatenate([p.d_sigma2d for p in parts]),
            d_opacity=np.concatenate([p.d_opacity for p in parts]),
            d_color=np.concatenate([p.d_color for p in parts]),
            d_depth=np.concatenate([p.d_depth for p in parts]),
            touched=np.concatenate([p.touched for p in parts]),
            contrib_flat=np.concatenate([p.contrib_flat for p in parts]),
        )
        vectorized.scatter_pair_gradients(pg, merged)
    timings = []
    for _grads, local, timing in results:
        _fold_stats(stats, local)
        timings.append(timing)
    _emit_shard_spans("render.shard_bwd", timings, bounds)


register_kernel(KernelBackend(
    name="parallel",
    description=("vectorized kernels sharded over a persistent worker "
                 "pool with scoreboard-order gradient aggregation"),
    forward=forward,
    backward=backward,
    # Shard selection regroups the flat pair list itself; like the
    # vectorized backend, pre-sorted pixel-major input buys nothing.
    needs_pixel_major_pairs=False,
    wants_pair_alpha=True,
    accepts_workers=True,
))
