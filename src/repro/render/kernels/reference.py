"""Reference sparse kernels: the original per-pixel Python loop.

This is the oracle the vectorized backend is validated against.  One
:func:`composite_forward` / :func:`composite_backward` call per sampled
pixel, exactly as the pipeline was first written — every other backend
must reproduce its outputs, gradients, and ``PipelineStats`` bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..compositing import CompositeCache, composite_backward, composite_forward
from ..sorting import sort_by_depth

__all__ = ["forward", "backward"]


def forward(proj, pairs, centres, background, alpha_threshold, t_min,
            keep_cache, exp_fn, stats, color, depth, silhouette,
            pair_alpha=None, pair_clipped=None, contribs_out=None):
    """Per-pixel forward loop over the shared candidate pair list.

    Fills ``color`` / ``depth`` / ``silhouette`` (length K) in place and
    returns ``(pixel_lists, caches, flat_cache)`` — ``flat_cache`` is
    always ``None`` here; this backend caches per pixel.  The pre-computed
    ``pair_alpha`` / ``pair_clipped`` arrays are deliberately ignored:
    the oracle re-derives α inside :func:`composite_forward`.
    ``contribs_out`` (when given, a zeroed length-K int array) receives
    every pixel's contributing-pair count regardless of
    ``record_per_pixel`` — the sparsity atlas's spatial channel.
    """
    K = pairs.num_pixels
    record = stats.record_per_pixel
    lengths = pairs.lengths()
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    pixel_lists: List[np.ndarray] = []
    caches: List[Optional[CompositeCache]] = []
    for k in range(K):
        cand = pairs.gss[offsets[k]:offsets[k + 1]]
        cand = sort_by_depth(cand, proj.depth)
        pixel_lists.append(cand)
        if record:
            stats.pixel_list_lengths.append(int(cand.size))
        if cand.size == 0:
            caches.append(None)
            if record:
                stats.per_pixel_contribs.append(0)
            continue
        out_color, out_depth, out_sil, cache = composite_forward(
            centres[k:k + 1],
            proj.mean2d[cand],
            proj.sigma2d[cand],
            proj.depth[cand],
            proj.opacity[cand],
            proj.color[cand],
            background,
            alpha_threshold=alpha_threshold,
            t_min=t_min,
            exp_fn=exp_fn,
        )
        color[k] = out_color[0]
        depth[k] = out_depth[0]
        silhouette[k] = out_sil[0]
        contribs = int(cache.contrib.sum())
        stats.num_contrib_pairs += contribs
        if record:
            stats.per_pixel_contribs.append(contribs)
        if contribs_out is not None:
            contribs_out[k] = contribs
        caches.append(cache if keep_cache else None)
    return pixel_lists, caches, None


def backward(result, proj, d_color, d_depth, d_silhouette, pg, stats,
             contribs_out=None):
    """Per-pixel backward loop over the cached forward composites.

    ``contribs_out`` (when given) receives the per-pixel touched-pair
    counts — the atlas's backward aggregation channel.
    """
    record = stats.record_per_pixel
    for k in range(result.pixels.shape[0]):
        cand = result.pixel_lists[k]
        cache = result.caches[k]
        if cache is None or cand.size == 0:
            continue
        pair = composite_backward(
            cache,
            proj.mean2d[cand],
            proj.sigma2d[cand],
            proj.depth[cand],
            proj.opacity[cand],
            proj.color[cand],
            d_color[k:k + 1],
            d_depth[k:k + 1],
            d_silhouette[k:k + 1],
        )
        pg.accumulate(cand, pair)
        stats.num_candidate_pairs += cand.size
        stats.num_contrib_pairs += pair.num_pairs_touched
        stats.num_atomic_adds += pair.num_pairs_touched
        if contribs_out is not None:
            contribs_out[k] = pair.num_pairs_touched
        if record:
            stats.pixel_list_lengths.append(int(cand.size))
            stats.per_pixel_contribs.append(pair.num_pairs_touched)
            stats.pixel_contrib_ids.append(
                proj.source_index[cand[cache.contrib[0]]])


from . import KernelBackend, register_kernel  # noqa: E402

register_kernel(KernelBackend(
    name="reference",
    description="per-pixel Python loop (oracle)",
    forward=forward,
    backward=backward,
))
