"""Vectorized sparse kernels: batched segmented forward/backward passes.

Executes all K pixel pipelines at once over the flattened (pixel,
Gaussian) pair list:

- one global ``np.lexsort`` on ``(pixel, depth, index)`` replaces the K
  per-pixel depth sorts (the tie-break matches ``sort_by_depth``);
- the ragged per-pixel segments are padded to ``(K, Lmax)`` and the
  transmittance prefix Γ comes from a single row-wise ``cumprod``, with
  early-termination/`t_min`/α-threshold handling as boolean masks;
- channel sums run as row-wise ``cumsum`` prefixes — the same strictly
  sequential reduction order :func:`composite_forward` uses, which is what
  makes zero-padding *exact*: appending zeros to a sequential sum (or ones
  to a product) never changes the earlier prefix values;
- the backward pass computes every pair gradient in one shot from the
  padded cache and aggregates per Gaussian with a single ``np.add.at``
  whose (index, value) sequence — pixel-major, depth-sorted — is exactly
  the sequence the reference loop's per-pixel scatters produce.

Together this makes the backend bit-identical to the reference loop while
doing O(K) Python work instead of O(K) Python *loop iterations* of ~25
numpy calls each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..compositing import ALPHA_MAX

__all__ = [
    "FlatCompositeCache",
    "PairGradients",
    "forward",
    "backward",
    "pair_gradients",
    "scatter_pair_gradients",
    "accumulate_backward_stats",
]


@dataclass
class FlatCompositeCache:
    """Backward-pass state of the batched forward pass (padded layout).

    Shapes: K pixels, Lmax = longest per-pixel candidate list, M = total
    surviving pairs.  Rows are the sampled pixels; columns are depth-sorted
    list positions; ``valid`` masks the padding.
    """

    centres: np.ndarray       # (K, 2) continuous pixel centres
    lengths: np.ndarray       # (K,) per-pixel list lengths
    gss: np.ndarray           # (M,) flat sorted projected-Gaussian indices
    gpad: np.ndarray          # (K, Lmax) padded Gaussian indices (0-filled)
    valid: np.ndarray         # (K, Lmax) bool — real entry vs padding
    alpha: np.ndarray         # (K, Lmax) α, zeroed where not contributing
    gamma: np.ndarray         # (K, Lmax) exclusive transmittance prefix
    contrib: np.ndarray       # (K, Lmax) bool
    clipped: np.ndarray       # (K, Lmax) bool — α hit ALPHA_MAX
    gamma_final: np.ndarray   # (K,)
    background: np.ndarray    # (3,)


def _pad(flat: np.ndarray, offsets: np.ndarray, valid: np.ndarray,
         fill) -> np.ndarray:
    """Scatter a flat per-pair array into the (K, Lmax) padded layout."""
    idx = np.minimum(offsets[:-1, None] + np.arange(valid.shape[1])[None, :],
                     max(flat.shape[0] - 1, 0))
    return np.where(valid, flat[idx], fill)


def forward(proj, pairs, centres, background, alpha_threshold, t_min,
            keep_cache, exp_fn, stats, color, depth, silhouette,
            pair_alpha=None, pair_clipped=None, contribs_out=None):
    """Batched forward pass over the shared candidate pair list.

    ``pair_alpha`` / ``pair_clipped`` are the flat per-pair α values and
    clip flags the pipeline's α stage already evaluated (aligned with
    ``pairs``); when given, the falloff is not re-evaluated here.
    ``contribs_out`` (when given, a zeroed length-K int array) receives
    the per-pixel contributing-pair counts for the sparsity atlas; the
    counts are the same ``contrib`` reduction the stats use, so the
    channel stays bit-identical to the reference backend's.
    """
    K = pairs.num_pixels
    M = pairs.size
    record = stats.record_per_pixel
    if M == 0:
        if record:
            stats.pixel_list_lengths.extend([0] * K)
            stats.per_pixel_contribs.extend([0] * K)
        return ([np.zeros(0, dtype=int) for _ in range(K)], [None] * K,
                None)

    # Segmented depth sort: pixel-major, then front-to-back, then by
    # projected index — the exact (depth, index) key of sort_by_depth.
    order = np.lexsort((pairs.gss, proj.depth[pairs.gss], pairs.pix))
    pix = pairs.pix[order]
    gss = pairs.gss[order]
    lengths = np.bincount(pix, minlength=K)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    Lmax = int(lengths.max())
    valid = np.arange(Lmax)[None, :] < lengths[:, None]
    gpad = _pad(gss, offsets, valid, 0)

    if pair_alpha is not None:
        alpha = _pad(pair_alpha[order], offsets, valid, 0.0)
        clipped = _pad(pair_clipped[order], offsets, valid, False)
    else:
        # α evaluation, elementwise identical to composite_forward's.
        mean_u = proj.mean2d[gpad, 0]
        mean_v = proj.mean2d[gpad, 1]
        sig = proj.sigma2d[gpad]
        du = centres[:, 0:1] - mean_u
        dv = centres[:, 1:2] - mean_v
        d2 = du * du + dv * dv
        inv_2var = 1.0 / (2.0 * sig * sig)
        g = exp_fn(-d2 * inv_2var)
        alpha_raw = proj.opacity[gpad] * g
        clipped = alpha_raw > ALPHA_MAX
        alpha = np.minimum(alpha_raw, ALPHA_MAX)
    passes = (alpha >= alpha_threshold) & valid

    # Transmittance prefix: padding contributes a factor of 1.0, so every
    # real prefix is untouched; cumprod is sequential like the reference's.
    alpha_eff = np.where(passes, alpha, 0.0)
    one_minus = 1.0 - alpha_eff
    gamma_incl = np.cumprod(one_minus, axis=1)
    gamma = np.concatenate([np.ones((K, 1)), gamma_incl[:, :-1]], axis=1)
    alive = gamma_incl >= t_min
    contrib = passes & alive
    weight = np.where(contrib, gamma * alpha, 0.0)

    # Channel sums as sequential prefix sums (zero padding is exact).
    out_color = np.cumsum(weight[:, :, None] * proj.color[gpad],
                          axis=1)[:, -1, :]
    out_depth = np.cumsum(weight * proj.depth[gpad], axis=1)[:, -1]
    out_sil = np.cumsum(weight, axis=1)[:, -1]
    gamma_final = 1.0 - out_sil

    color[:, :] = out_color + gamma_final[:, None] * background[None, :]
    depth[:] = out_depth
    silhouette[:] = out_sil

    contribs_row = contrib.sum(axis=1)
    stats.num_contrib_pairs += int(contribs_row.sum())
    if contribs_out is not None:
        contribs_out[:] = contribs_row
    if record:
        stats.pixel_list_lengths.extend(int(n) for n in lengths)
        stats.per_pixel_contribs.extend(int(c) for c in contribs_row)

    pixel_lists: List[np.ndarray] = np.split(gss, offsets[1:-1])
    flat_cache: Optional[FlatCompositeCache] = None
    if keep_cache:
        flat_cache = FlatCompositeCache(
            centres=centres,
            lengths=lengths,
            gss=gss,
            gpad=gpad,
            valid=valid,
            alpha=np.where(contrib, alpha, 0.0),
            gamma=gamma,
            contrib=contrib,
            clipped=clipped,
            gamma_final=gamma_final,
            background=background,
        )
    return pixel_lists, [None] * K, flat_cache


@dataclass
class PairGradients:
    """Flat per-pair gradient partials in canonical order.

    The pair sequence is the forward pass's global (pixel, depth, index)
    lexsort restricted to the valid (non-padding) entries — pixel-major,
    front-to-back.  ``scatter_pair_gradients`` consumes these with one
    sequential ``np.add.at`` per array, so any concatenation of
    ``PairGradients`` computed over contiguous pixel shards (in shard
    order) reproduces the exact global accumulation sequence — the
    software analogue of the accelerator's aggregation scoreboard.
    """

    idx: np.ndarray           # (P,) projected-Gaussian index per pair
    d_mean2d: np.ndarray      # (P, 2)
    d_sigma2d: np.ndarray     # (P,)
    d_opacity: np.ndarray     # (P,)
    d_color: np.ndarray       # (P, 3)
    d_depth: np.ndarray       # (P,)
    touched: np.ndarray       # (K,) per-pixel contributing-pair counts
    contrib_flat: np.ndarray  # (P,) bool — pair actually contributed


def pair_gradients(fc, proj, d_color, d_depth, d_silhouette):
    """Compute every per-pair gradient partial; no aggregation.

    Every arithmetic expression mirrors :func:`composite_backward` term
    for term (same operand values, same association order), and padding
    only ever adds exact zeros — all math here is elementwise per pixel
    row, so running it over a contiguous pixel shard yields bit-identical
    values to the corresponding rows of the global pass.
    """
    alpha = fc.alpha
    gamma = fc.gamma
    contrib = fc.contrib
    weight = gamma * alpha
    colpad = proj.color[fc.gpad]
    depth_pad = proj.depth[fc.gpad]

    # Exclusive suffix sums per channel, background folded in afterwards.
    # Padding sits at the row tails, so after the flip it only prepends
    # zeros to each cumsum — every real suffix value is unchanged.
    w_c = weight[:, :, None] * colpad
    w_d = weight * depth_pad
    suffix_c = np.flip(np.cumsum(np.flip(w_c, axis=1), axis=1), axis=1) - w_c
    suffix_d = np.flip(np.cumsum(np.flip(w_d, axis=1), axis=1), axis=1) - w_d
    suffix_s = (np.flip(np.cumsum(np.flip(weight, axis=1), axis=1), axis=1)
                - weight)
    suffix_c = suffix_c + fc.gamma_final[:, None, None] * fc.background

    one_minus = np.where(contrib, 1.0 - alpha, 1.0)
    inv_one_minus = 1.0 / np.maximum(one_minus, 1e-12)

    term_c = gamma[:, :, None] * colpad - suffix_c * inv_one_minus[:, :, None]
    d_alpha = (d_color[:, None, 0] * term_c[:, :, 0]
               + d_color[:, None, 1] * term_c[:, :, 1]
               + d_color[:, None, 2] * term_c[:, :, 2])
    d_alpha = d_alpha + d_depth[:, None] * (
        gamma * depth_pad - suffix_d * inv_one_minus)
    d_alpha = d_alpha + d_silhouette[:, None] * (
        gamma - suffix_s * inv_one_minus)
    d_alpha = np.where(contrib & ~fc.clipped, d_alpha, 0.0)

    opac = proj.opacity[fc.gpad]
    sig = proj.sigma2d[fc.gpad]
    g = np.where(contrib, alpha / np.maximum(opac, 1e-12), 0.0)
    d_g = d_alpha * opac
    d_opacity = d_alpha * g

    du = fc.centres[:, 0:1] - proj.mean2d[fc.gpad, 0]
    dv = fc.centres[:, 1:2] - proj.mean2d[fc.gpad, 1]
    inv_var = 1.0 / (sig * sig)
    d_mean_u = d_g * g * du * inv_var
    d_mean_v = d_g * g * dv * inv_var
    d2 = du * du + dv * dv
    d_sigma = d_g * g * d2 * (inv_var / sig)
    d_color_pairs = weight[:, :, None] * d_color[:, None, :]
    d_depth_pairs = weight * d_depth[:, None]

    # Flatten over all valid pairs in row-major (= pixel-major,
    # depth-sorted) order — the identical (index, value) sequence the
    # reference's per-pixel np.add.at calls issue, zero-valued
    # non-contributing pairs included.
    sel = fc.valid
    return PairGradients(
        idx=fc.gpad[sel],
        d_mean2d=np.stack([d_mean_u[sel], d_mean_v[sel]], axis=-1),
        d_sigma2d=d_sigma[sel],
        d_opacity=d_opacity[sel],
        d_color=d_color_pairs[sel],
        d_depth=d_depth_pairs[sel],
        touched=contrib.sum(axis=1),
        contrib_flat=contrib[sel],
    )


def scatter_pair_gradients(pg, grads: PairGradients) -> None:
    """Aggregate pair partials: one sequential scatter-add per array."""
    np.add.at(pg.d_mean2d, grads.idx, grads.d_mean2d)
    np.add.at(pg.d_sigma2d, grads.idx, grads.d_sigma2d)
    np.add.at(pg.d_opacity, grads.idx, grads.d_opacity)
    np.add.at(pg.d_color, grads.idx, grads.d_color)
    np.add.at(pg.d_depth, grads.idx, grads.d_depth)


def accumulate_backward_stats(stats, fc, grads: PairGradients, proj,
                              contribs_out=None) -> None:
    """Fold one (shard's) backward pass into ``stats`` + atlas counts."""
    touched = grads.touched
    total_touched = int(touched.sum())
    if contribs_out is not None:
        contribs_out[:] = touched
    stats.num_candidate_pairs += int(fc.lengths.sum())
    stats.num_contrib_pairs += total_touched
    stats.num_atomic_adds += total_touched
    if stats.record_per_pixel:
        nonzero = fc.lengths > 0
        stats.pixel_list_lengths.extend(int(n) for n in fc.lengths[nonzero])
        stats.per_pixel_contribs.extend(int(c) for c in touched[nonzero])
        ids = proj.source_index[fc.gss[grads.contrib_flat]]
        splits = np.cumsum(touched[nonzero])[:-1]
        stats.pixel_contrib_ids.extend(np.split(ids, splits))


def backward(result, proj, d_color, d_depth, d_silhouette, pg, stats,
             contribs_out=None):
    """Batched backward pass over the padded forward cache.

    Pair partials from :func:`pair_gradients` aggregated by the single
    pixel-major ``np.add.at`` of :func:`scatter_pair_gradients` — all
    per-Gaussian accumulations are bit-identical to the reference loop's.
    """
    fc = result.flat_cache
    if fc is None:
        return
    grads = pair_gradients(fc, proj, d_color, d_depth, d_silhouette)
    scatter_pair_gradients(pg, grads)
    accumulate_backward_stats(stats, fc, grads, proj, contribs_out)


from . import KernelBackend, register_kernel  # noqa: E402

register_kernel(KernelBackend(
    name="vectorized",
    description="batched segmented numpy kernels (CSR pair list)",
    forward=forward,
    backward=backward,
    # The global (pixel, depth, index) lexsort fully determines the pair
    # order on its own, so pre-sorted input buys nothing.
    needs_pixel_major_pairs=False,
    wants_pair_alpha=True,
))
