"""Candidate generation shared by every sparse kernel backend.

Produces the flattened CSR-style (pixel, Gaussian) pair list both kernel
backends consume.  Two generators build the *same* pair set:

- :func:`chunked_candidate_pairs` — the general path.  Tests every sampled
  pixel centre against every Gaussian's bbox corners, chunked over
  Gaussians so peak memory is bounded by ``chunk_pairs`` instead of the
  dense ``(K, N)`` matrix the old pipeline materialized (which blows up as
  the map densifies).
- :func:`lattice_candidate_pairs` — the direct-indexing path of the
  paper's projection unit (Sec. V-C).  When the pixels are the row-major
  one-per-tile lattice of ``sample_tracking_pixels``, each Gaussian's bbox
  corners bound a contiguous 2D index range in the lattice, so candidates
  come from pure index arithmetic — no scan over the pixel list at all.

Both use the identical corner predicate
``u_min <= u + 0.5 <= u_max and v_min <= v + 0.5 <= v_max``
(bboxes are ``mean2d ± radius``), so the generated pair sets — and with
them every ``PipelineStats`` counter — are independent of which path ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "CandidatePairs",
    "candidate_pairs",
    "chunked_candidate_pairs",
    "lattice_candidate_pairs",
    "lattice_pair_arrays",
    "is_tile_lattice",
]

#: Bound on the per-chunk boolean mask size (pixels x chunk Gaussians).
DEFAULT_CHUNK_PAIRS = 1 << 20


@dataclass
class CandidatePairs:
    """Flattened (pixel, Gaussian) candidate pairs in CSR-style order.

    When built with ``pixel_major=True`` (the default), ``pix`` is
    non-decreasing and within each pixel's segment ``gss`` is ascending.
    A consumer that re-sorts the pairs itself (the vectorized kernel's
    global lexsort) may request ``pixel_major=False`` and receive the same
    pair *set* in generator order.  ``num_pixels`` is K, the number of
    sampled pixels — pixels with no candidates simply own an empty segment.
    """

    pix: np.ndarray   # (M,) int — index into the sampled-pixel list
    gss: np.ndarray   # (M,) int — index into the projected Gaussians
    num_pixels: int

    @property
    def size(self) -> int:
        return int(self.pix.size)

    def lengths(self) -> np.ndarray:
        """Per-pixel candidate counts, length ``num_pixels``."""
        return np.bincount(self.pix, minlength=self.num_pixels)

    @classmethod
    def empty(cls, num_pixels: int) -> "CandidatePairs":
        return cls(np.zeros(0, dtype=int), np.zeros(0, dtype=int),
                   num_pixels)


def _corner_mask(cu, cv, bbox) -> np.ndarray:
    """(K, G) corner-predicate mask of pixel centres vs bbox corners."""
    return ((cu[:, None] >= bbox[None, :, 0])
            & (cu[:, None] <= bbox[None, :, 2])
            & (cv[:, None] >= bbox[None, :, 1])
            & (cv[:, None] <= bbox[None, :, 3]))


def chunked_candidate_pairs(
    centres: np.ndarray,
    bbox: np.ndarray,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    pixel_major: bool = True,
) -> CandidatePairs:
    """General candidate generation, chunked over Gaussians.

    ``centres`` is ``(K, 2)`` continuous pixel centres; ``bbox`` is the
    ``(M, 4)`` ``(u_min, v_min, u_max, v_max)`` corner array.
    """
    K = centres.shape[0]
    M = bbox.shape[0]
    if K == 0 or M == 0:
        return CandidatePairs.empty(K)
    cu, cv = centres[:, 0], centres[:, 1]
    chunk = max(1, chunk_pairs // K)
    pix_parts: List[np.ndarray] = []
    gss_parts: List[np.ndarray] = []
    for start in range(0, M, chunk):
        stop = min(start + chunk, M)
        pp, gg = np.nonzero(_corner_mask(cu, cv, bbox[start:stop]))
        pix_parts.append(pp)
        gss_parts.append(gg + start)
    pix = np.concatenate(pix_parts)
    gss = np.concatenate(gss_parts)
    if pixel_major and len(pix_parts) > 1:
        # np.nonzero is pixel-major only within a chunk; a stable sort on
        # the pixel key restores global pixel-major order while keeping
        # Gaussians ascending within each pixel (chunks are visited in
        # ascending Gaussian order).
        order = np.argsort(pix, kind="stable")
        pix, gss = pix[order], gss[order]
    return CandidatePairs(pix, gss, K)


def is_tile_lattice(pixels: np.ndarray, tile: int, width: int) -> bool:
    """True when ``pixels`` is the row-major one-per-tile lattice.

    The direct-indexing invariant of ``sample_tracking_pixels``: the pixel
    at list index ``k`` lies in tile ``(k % tiles_x, k // tiles_x)``.
    """
    if tile <= 0 or pixels.shape[0] == 0:
        return False
    tiles_x = -(-width // tile)
    k = np.arange(pixels.shape[0])
    return bool(np.all(pixels[:, 0] // tile == k % tiles_x)
                and np.all(pixels[:, 1] // tile == k // tiles_x))


def lattice_pair_arrays(
    pixels: np.ndarray, bbox: np.ndarray, tile: int, width: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Direct-indexing candidate pairs, *Gaussian-major*.

    Vectorized index arithmetic on the row-major lattice: for each
    Gaussian the bbox corners give an inclusive tile range
    ``[tx0, tx1] x [ty0, ty1]``; the covered lattice indices are
    ``ty * tiles_x + tx``, refined by the shared corner predicate.
    Returns ``(k, g)`` arrays ordered by Gaussian, then row-major over the
    tile range — the order the reference Python loop produced.
    """
    pixels = np.asarray(pixels, dtype=int)
    K = pixels.shape[0]
    M = bbox.shape[0]
    if K == 0 or M == 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    tiles_x = int(-(-width // tile))

    tx0 = np.maximum(np.floor_divide(bbox[:, 0], tile).astype(int), 0)
    ty0 = np.maximum(np.floor_divide(bbox[:, 1], tile).astype(int), 0)
    tx1 = np.minimum(np.floor_divide(bbox[:, 2], tile).astype(int),
                     tiles_x - 1)
    ty1 = np.floor_divide(bbox[:, 3], tile).astype(int)
    # The lattice has ceil(K / tiles_x) rows; clamp the row range there so
    # the expansion below stays bounded (out-of-list slots are masked).
    ty1 = np.minimum(ty1, (K - 1) // tiles_x)

    nx = np.maximum(tx1 - tx0 + 1, 0)
    ny = np.maximum(ty1 - ty0 + 1, 0)
    counts = nx * ny
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)

    g = np.repeat(np.arange(M), counts)
    starts = np.cumsum(counts) - counts
    local = np.arange(total) - np.repeat(starts, counts)
    nx_rep = np.repeat(nx, counts)
    tx = np.repeat(tx0, counts) + local % nx_rep
    ty = np.repeat(ty0, counts) + local // nx_rep
    k = ty * tiles_x + tx

    keep = k < K
    k, g = k[keep], g[keep]
    centre_u = pixels[k, 0] + 0.5
    centre_v = pixels[k, 1] + 0.5
    keep = ((bbox[g, 0] <= centre_u) & (centre_u <= bbox[g, 2])
            & (bbox[g, 1] <= centre_v) & (centre_v <= bbox[g, 3]))
    return k[keep], g[keep]


def lattice_candidate_pairs(
    pixels: np.ndarray, bbox: np.ndarray, tile: int, width: int,
    pixel_major: bool = True,
) -> CandidatePairs:
    """Direct-indexing candidate generation, reordered to pixel-major."""
    k, g = lattice_pair_arrays(pixels, bbox, tile, width)
    if pixel_major and k.size:
        # Stable sort on the pixel key: Gaussian-major in, so Gaussians
        # stay ascending within each pixel segment.
        order = np.argsort(k, kind="stable")
        k, g = k[order], g[order]
    return CandidatePairs(k, g, pixels.shape[0])


def candidate_pairs(
    pixels: np.ndarray,
    centres: np.ndarray,
    bbox: np.ndarray,
    lattice_tile: Optional[int] = None,
    width: int = 0,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
    pixel_major: bool = True,
) -> CandidatePairs:
    """Build the candidate pair list, picking the cheapest valid generator.

    ``lattice_tile`` is a *hint*: when the sampled pixels verifiably form
    the row-major one-per-tile lattice (tracking's layout), candidates
    come from direct index arithmetic; otherwise the chunked corner test
    runs.  Both produce the same pair set, so the choice is purely a
    performance matter — as is ``pixel_major=False``, which skips the
    final reorder for consumers that re-sort the pairs themselves.
    """
    if (lattice_tile is not None and width > 0
            and is_tile_lattice(pixels, lattice_tile, width)):
        return lattice_candidate_pairs(pixels, bbox, lattice_tile, width,
                                       pixel_major=pixel_major)
    return chunked_candidate_pairs(centres, bbox, chunk_pairs=chunk_pairs,
                                   pixel_major=pixel_major)
