"""Sparse-rendering kernel backends (pixel pipeline, Sec. IV-B/V).

The pixel pipeline's forward/backward passes are implemented by swappable
*kernel backends* behind a tiny registry:

- ``"reference"``  — the original per-pixel Python loop.  One
  :func:`composite_forward` / :func:`composite_backward` call per sampled
  pixel; slow, but trivially auditable.  This is the oracle.
- ``"vectorized"`` — batched segmented kernels over a flattened CSR-style
  (pixel, Gaussian) pair list: one global ``np.lexsort`` replaces the
  per-pixel depth sorts, a ragged-to-padded ``cumprod`` computes every
  pixel's transmittance prefix at once, and the backward pass produces all
  pair gradients in one shot before a single ``np.add.at`` aggregation
  (the scoreboard/merge-unit analogue).  Bit-identical to the reference —
  outputs, gradients, and every ``PipelineStats`` counter.
- ``"parallel"``   — the vectorized kernels run per contiguous pixel
  shard on a persistent worker (thread) pool, standing in for the
  accelerator's parallel rasterization engines.  Workers return per-pair
  gradient partials; the parent applies one global pixel-major
  ``np.add.at`` over the concatenated shards (a software aggregation
  scoreboard), so no float reassociation ever occurs and the backend
  stays bit-identical to ``vectorized`` at every worker count.  Worker
  count: ``workers=`` argument > ``REPRO_KERNEL_WORKERS`` > CPU count.

Backend resolution order: explicit ``backend=`` argument, then the
``REPRO_KERNEL_BACKEND`` environment variable, then :data:`DEFAULT_BACKEND`.

All backends consume the same candidate pair list
(:mod:`repro.render.kernels.candidates`) and the same preemptive-α filter
run by :func:`repro.core.pixel_pipeline.render_sparse`, so candidate /
α-check / sort-key counters are shared by construction; the equivalence
suite (``tests/test_kernel_backends.py``) pins down the rest.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelBackend",
    "available_backends",
    "get_kernel",
    "register_kernel",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Backend used when neither the caller nor the environment picks one.
DEFAULT_BACKEND = "reference"


@dataclass(frozen=True)
class KernelBackend:
    """One registered sparse-kernel implementation."""

    name: str
    description: str
    forward: Callable
    backward: Callable
    # Whether forward() requires the candidate pairs in pixel-major CSR
    # order.  A backend that globally re-sorts the pairs itself (the
    # vectorized lexsort) sets this False and skips the reorder pass.
    needs_pixel_major_pairs: bool = True
    # Whether forward() consumes the flat per-pair α / clipped arrays the
    # pipeline's α stage computed (so the kernel need not re-evaluate the
    # Gaussian falloff).  The reference loop recomputes inside
    # composite_forward — that's the point of an oracle.
    wants_pair_alpha: bool = False
    # Whether forward() accepts a ``workers=`` keyword (the parallel
    # backend).  The pipeline only threads ``kernel_workers`` through to
    # backends that declare it, so single-core backends keep their exact
    # signatures.
    accepts_workers: bool = False


_REGISTRY: Dict[str, KernelBackend] = {}


def register_kernel(backend: KernelBackend) -> KernelBackend:
    """Register (or replace) a kernel backend under ``backend.name``."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name=None) -> str:
    """Resolve a backend name: explicit arg > ``$REPRO_KERNEL_BACKEND`` > default."""
    resolved = name or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {resolved!r}; "
            f"available: {', '.join(available_backends())}")
    return resolved


def get_kernel(name=None) -> KernelBackend:
    """Return the :class:`KernelBackend` for ``name`` (after resolution)."""
    return _REGISTRY[resolve_backend(name)]


# Importing the implementations registers them.
from . import reference as _reference  # noqa: E402,F401
from . import vectorized as _vectorized  # noqa: E402,F401
from . import parallel as _parallel  # noqa: E402,F401
