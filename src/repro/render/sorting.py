"""Depth sorting stage (Fig. 3): order each list front-to-back.

Correct alpha compositing (Eqn. 1) integrates Gaussians from the closest to
the farthest, so both pipelines sort their candidate lists by camera-frame
depth.  The sort is stable so that co-planar splats keep a deterministic
order across pipelines — this is what lets the property tests assert
pixel-exact agreement between the tile-based and pixel-based renderers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .projection import ProjectedGaussians
from .tiles import IntersectionTable

__all__ = ["sort_by_depth", "sort_intersection_table"]


def sort_by_depth(indices: np.ndarray, depth: np.ndarray) -> np.ndarray:
    """Return ``indices`` reordered front-to-back by ``depth[indices]``.

    Tie-break (guaranteed): Gaussians at *exactly* equal depth are ordered
    by ascending projected index — a property of the *values*, not of the
    input order.  A merely "stable" sort would keep whatever order the
    caller supplied, so two backends building the same candidate set in
    different orders could composite co-planar splats differently; keying
    on ``(depth, index)`` makes the composite order a pure function of the
    candidate *set*, which is what lets the reference and vectorized
    kernels (and the tile pipeline) agree bit-for-bit.
    """
    indices = np.asarray(indices, dtype=int)
    if indices.size == 0:
        return indices
    # lexsort: last key is primary => sort by depth, then by index.
    order = np.lexsort((indices, depth[indices]))
    return indices[order]


def sort_intersection_table(
    table: IntersectionTable, proj: ProjectedGaussians
) -> List[np.ndarray]:
    """Sort every tile's Gaussian list front-to-back.

    Returns the tile-Gaussian *sorted* list of Fig. 3, parallel to
    ``table.per_tile``.
    """
    return [sort_by_depth(t, proj.depth) for t in table.per_tile]
