"""Depth sorting stage (Fig. 3): order each list front-to-back.

Correct alpha compositing (Eqn. 1) integrates Gaussians from the closest to
the farthest, so both pipelines sort their candidate lists by camera-frame
depth.  The sort is stable so that co-planar splats keep a deterministic
order across pipelines — this is what lets the property tests assert
pixel-exact agreement between the tile-based and pixel-based renderers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .projection import ProjectedGaussians
from .tiles import IntersectionTable

__all__ = ["sort_by_depth", "sort_intersection_table"]


def sort_by_depth(indices: np.ndarray, depth: np.ndarray) -> np.ndarray:
    """Return ``indices`` reordered front-to-back by ``depth[indices]``."""
    indices = np.asarray(indices, dtype=int)
    if indices.size == 0:
        return indices
    order = np.argsort(depth[indices], kind="stable")
    return indices[order]


def sort_intersection_table(
    table: IntersectionTable, proj: ProjectedGaussians
) -> List[np.ndarray]:
    """Sort every tile's Gaussian list front-to-back.

    Returns the tile-Gaussian *sorted* list of Fig. 3, parallel to
    ``table.per_tile``.
    """
    return [sort_by_depth(t, proj.depth) for t in table.per_tile]
