"""Workload counters collected by both rendering pipelines.

The hardware models (``repro.hw``) are driven entirely by these counters —
they play the role of the kernel instrumentation the paper gathered on the
Orin GPU.  Every forward/backward invocation of either pipeline fills in a
:class:`PipelineStats`; the GPU and accelerator models then translate the
counters into cycles and energy.

Counter glossary
----------------
``num_gaussians``           total Gaussians in the scene
``num_projected``           Gaussians surviving frustum culling
``num_pixels``              pixels actually rendered (sparse: the samples)
``num_tile_pairs``          tile-Gaussian intersection entries (tile pipeline)
``num_candidate_pairs``     pixel-Gaussian pairs submitted to α-checking
``num_contrib_pairs``       pairs that pass α-checking and get integrated
``num_sort_keys``           keys pushed through the depth sorter
``num_alpha_checks``        evaluations of exp() for α (== candidate pairs
                            in forward; the backward pass of the tile
                            pipeline repeats them)
``per_pixel_contribs``      list with the contributing-Gaussian count of
                            every rendered pixel (drives warp-utilization
                            and aggregation-contention models)
``num_atomic_adds``         gradient accumulations into shared Gaussian
                            state (backward only)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

__all__ = ["PipelineStats"]


@dataclass
class PipelineStats:
    """Workload counters for a single forward (and optional backward) pass."""

    pipeline: str = "tile"  # "tile" or "pixel"
    tile_size: int = 16
    image_width: int = 0
    image_height: int = 0

    num_gaussians: int = 0
    num_projected: int = 0
    num_pixels: int = 0
    num_tile_pairs: int = 0
    num_candidate_pairs: int = 0
    num_contrib_pairs: int = 0
    num_sort_keys: int = 0
    num_alpha_checks: int = 0
    num_atomic_adds: int = 0
    per_pixel_contribs: List[int] = field(default_factory=list)
    # Tile pipeline only: per-rasterized-tile (list_length, rendered_pixels)
    # records.  The GPU model derives warp-round counts from these: a warp
    # iterates the whole tile list regardless of how many of its lanes'
    # pixels were actually sampled (the Org.+S inefficiency).
    tile_work: List[tuple] = field(default_factory=list)
    # Pixel pipeline only: per-pixel surviving-candidate list lengths.
    pixel_list_lengths: List[int] = field(default_factory=list)
    # Backward passes only: per-pixel contributing-Gaussian ID lists (cloud
    # indices), replayed by the aggregation-unit simulator.  Kept at proxy
    # resolution even in upscaled workloads — consumers normalize by
    # ``num_atomic_adds``.
    pixel_contrib_ids: List[np.ndarray] = field(default_factory=list)
    # Opt-out switch for the per-item record lists above (replay streams
    # for the hardware models).  With ``record_per_pixel=False`` the
    # pipelines skip the per-pixel/per-tile appends entirely — the scalar
    # counters are unaffected, and ``merge()``/``summary()``/flight-record
    # consumers keep working on the (empty) lists.  Not a counter: it is
    # excluded from ``as_dict()``.
    record_per_pixel: bool = True
    # Temporal-coherence render-cache accounting (repro.render.cache).
    # These measure the *execution strategy*, not the logical workload —
    # the cached path produces bit-identical pair lists, so every num_*
    # counter above is unchanged by the cache.  Deliberately excluded from
    # ``as_dict()``/``headline()``: the hw models, bench counter gates,
    # and flight-diff channels must see identical payloads whether the
    # cache ran or not (same discipline as ``record_per_pixel``).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_rebuilds: int = 0
    cache_active_gaussians: int = 0

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        """Accumulate another pass's counters into this one (in place)."""
        # Frame geometry is a property of the run, not an accumulator;
        # carry it so stage-level aggregates don't export 0x0 frames.
        self.image_width = max(self.image_width, other.image_width)
        self.image_height = max(self.image_height, other.image_height)
        self.num_gaussians = max(self.num_gaussians, other.num_gaussians)
        self.num_projected += other.num_projected
        self.num_pixels += other.num_pixels
        self.num_tile_pairs += other.num_tile_pairs
        self.num_candidate_pairs += other.num_candidate_pairs
        self.num_contrib_pairs += other.num_contrib_pairs
        self.num_sort_keys += other.num_sort_keys
        self.num_alpha_checks += other.num_alpha_checks
        self.num_atomic_adds += other.num_atomic_adds
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_rebuilds += other.cache_rebuilds
        self.cache_active_gaussians += other.cache_active_gaussians
        self.per_pixel_contribs.extend(other.per_pixel_contribs)
        self.tile_work.extend(other.tile_work)
        self.pixel_list_lengths.extend(other.pixel_list_lengths)
        self.pixel_contrib_ids.extend(other.pixel_contrib_ids)
        # A merge that absorbs a records-off pass no longer has complete
        # per-pixel lists; summary() must report n/a, not fabricate rates.
        self.record_per_pixel = (self.record_per_pixel
                                 and other.record_per_pixel)
        return self

    def as_dict(self) -> Dict[str, Union[int, str]]:
        """Scalar counters + pipeline identification, JSON-ready.

        The per-item record lists (``per_pixel_contribs``, ``tile_work``,
        ...) are deliberately excluded: they are replay streams for the
        hardware models, not serializable headline numbers.
        """
        return {
            "pipeline": self.pipeline,
            "tile_size": int(self.tile_size),
            "image_width": int(self.image_width),
            "image_height": int(self.image_height),
            "num_gaussians": int(self.num_gaussians),
            "num_projected": int(self.num_projected),
            "num_pixels": int(self.num_pixels),
            "num_tile_pairs": int(self.num_tile_pairs),
            "num_candidate_pairs": int(self.num_candidate_pairs),
            "num_contrib_pairs": int(self.num_contrib_pairs),
            "num_sort_keys": int(self.num_sort_keys),
            "num_alpha_checks": int(self.num_alpha_checks),
            "num_atomic_adds": int(self.num_atomic_adds),
        }

    def headline(self) -> Dict[str, int]:
        """Just the scalar ``num_*`` workload counters.

        The per-frame payload of the flight recorder: small, integer,
        and deterministic — the per-frame analogue of the stage-level
        counters in ``BENCH_trajectory.json``.
        """
        return {key: value for key, value in self.as_dict().items()
                if key.startswith("num_")}

    def cache_summary(self) -> Dict[str, Union[int, float]]:
        """Render-cache accounting for this pass (flight/telemetry payload).

        Kept out of :meth:`as_dict`/:meth:`headline` on purpose — those
        must stay bit-identical with the cache on or off.
        """
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": int(self.cache_hits),
            "misses": int(self.cache_misses),
            "rebuilds": int(self.cache_rebuilds),
            "active_gaussians": int(self.cache_active_gaussians),
            "hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
        }

    def summary(self) -> Dict[str, Optional[float]]:
        """Derived per-pass rates (the quantities the figures report).

        ``mean_contribs_per_pixel`` and ``warp_utilization`` are computed
        from the per-pixel record lists; with ``record_per_pixel=False``
        those lists are empty and the naive values (0.0 / 1.0) would be
        fabrications — both keys are reported as ``None`` ("n/a") then.
        """
        pixels = max(self.num_pixels, 1)
        record = self.record_per_pixel
        return {
            "alpha_pass_rate": float(self.alpha_pass_rate),
            "mean_contribs_per_pixel": (
                float(self.mean_contribs_per_pixel) if record else None),
            "warp_utilization": (
                float(self.warp_utilization()) if record else None),
            "candidate_pairs_per_pixel": self.num_candidate_pairs / pixels,
            "sort_keys_per_pixel": self.num_sort_keys / pixels,
            "atomic_adds_per_pixel": self.num_atomic_adds / pixels,
        }

    @property
    def mean_contribs_per_pixel(self) -> float:
        if not self.per_pixel_contribs:
            return 0.0
        return float(np.mean(self.per_pixel_contribs))

    @property
    def alpha_pass_rate(self) -> float:
        """Fraction of α-checked pairs that actually contribute."""
        if self.num_candidate_pairs == 0:
            return 0.0
        return self.num_contrib_pairs / self.num_candidate_pairs

    def warp_utilization(self, warp_size: int = 32) -> float:
        """Thread utilization of pixel-parallel rasterization (Fig. 7 model).

        In the tile-based pipeline one thread renders one pixel, and the
        warp broadcasts each Gaussian of the tile list to all lanes; a lane
        is active only when its pixel integrates the broadcast Gaussian.
        Utilization is therefore (work done) / (work slots occupied): for
        each warp of pixels the slots per broadcast round equal
        ``warp_size * max_lane_work`` while the useful work is the summed
        per-lane contribution counts.
        """
        contribs = np.asarray(self.per_pixel_contribs, dtype=float)
        if contribs.size == 0:
            return 1.0
        pad = (-contribs.size) % warp_size
        if pad:
            contribs = np.concatenate([contribs, np.zeros(pad)])
        warps = contribs.reshape(-1, warp_size)
        useful = warps.sum()
        occupied = (warps.max(axis=1) * warp_size).sum()
        if occupied == 0:
            return 1.0
        return float(useful / occupied)
