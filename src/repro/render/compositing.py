"""Alpha-compositing core shared by the tile-based and pixel-based pipelines.

Implements Eqn. 1 of the paper and its exact reverse.  The forward routine
takes a batch of pixels and a *shared, depth-sorted* candidate Gaussian
list (the tile pipeline passes a tile's pixels with the tile list; the
pixel pipeline passes a single pixel with its own pre-filtered list) and
produces color / depth / silhouette maps plus everything the backward pass
needs.

Rendered channels (SplaTAM-style RGB-D SLAM needs all three):

- ``color``      ``C(p)      = sum_i Gamma_i alpha_i c_i + Gamma_final * bg``
- ``depth``      ``D(p)      = sum_i Gamma_i alpha_i z_i``
- ``silhouette`` ``S(p)      = sum_i Gamma_i alpha_i  (= 1 - Gamma_final)``

Early termination follows the reference CUDA rasterizer: a Gaussian whose
integration would push the transmittance below ``t_min`` is skipped and
integration stops there.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ALPHA_THRESHOLD",
    "ALPHA_MAX",
    "T_MIN",
    "CompositeCache",
    "PairGradients",
    "composite_forward",
    "composite_backward",
]

# Defaults matching the reference 3DGS rasterizer.
ALPHA_THRESHOLD = 1.0 / 255.0
ALPHA_MAX = 0.999
T_MIN = 1e-4


@dataclass
class CompositeCache:
    """Everything the backward pass needs, kept from the forward pass.

    Shapes use P = number of pixels in the batch, L = candidate list length.
    ``contrib`` marks the pairs that actually passed α-checking and were
    integrated before early termination; all gradients flow only through
    those pairs.
    """

    pixels: np.ndarray        # (P, 2) continuous pixel-centre coordinates
    alpha: np.ndarray         # (P, L) α of each pair (0 where not contributing)
    gamma: np.ndarray         # (P, L) transmittance in front of each pair
    contrib: np.ndarray       # (P, L) bool
    clipped: np.ndarray       # (P, L) bool — α hit ALPHA_MAX (gradient gated)
    gamma_final: np.ndarray   # (P,) transmittance remaining after the list
    color: np.ndarray         # (P, 3) composited color (without background)
    depth_out: np.ndarray     # (P,)
    background: np.ndarray    # (3,)


@dataclass
class PairGradients:
    """Per-candidate-Gaussian gradients, summed over the pixel batch.

    All arrays have length L (the candidate list), aligned with the inputs
    of :func:`composite_forward`; the caller scatters them to the projected
    Gaussians (the aggregation stage) and then to the cloud.
    """

    d_mean2d: np.ndarray      # (L, 2)
    d_sigma2d: np.ndarray     # (L,)
    d_opacity: np.ndarray     # (L,)
    d_color: np.ndarray       # (L, 3)
    d_depth: np.ndarray       # (L,) direct gradient from the depth channel
    num_pairs_touched: int    # contributing pairs — the atomicAdd count


def composite_forward(
    pixels: np.ndarray,
    mean2d: np.ndarray,
    sigma2d: np.ndarray,
    depth: np.ndarray,
    opacity: np.ndarray,
    color: np.ndarray,
    background: np.ndarray,
    alpha_threshold: float = ALPHA_THRESHOLD,
    t_min: float = T_MIN,
    exp_fn=np.exp,
):
    """Composite a depth-sorted candidate list over a batch of pixels.

    ``exp_fn`` evaluates ``exp(x)`` for the Gaussian falloff; pass an
    approximation (e.g. ``lambda x: lut(-x)`` for a :class:`repro.hw.ExpLUT`)
    to study LUT-based α-checking (Sec. V-C ablation).

    Parameters
    ----------
    pixels:
        ``(P, 2)`` continuous pixel-centre coordinates ``(u, v)``.
    mean2d, sigma2d, depth, opacity, color:
        Candidate Gaussians, already depth-sorted front-to-back, length L.
    background:
        ``(3,)`` background color composited under the splats.

    Returns
    -------
    ``(color, depth_map, silhouette, cache)`` where the first three have
    leading dimension P and ``cache`` is a :class:`CompositeCache`.
    """
    pixels = np.atleast_2d(np.asarray(pixels, dtype=float))
    background = np.asarray(background, dtype=float).reshape(3)
    P = pixels.shape[0]
    L = mean2d.shape[0]

    if L == 0:
        zero = np.zeros((P, 0))
        cache = CompositeCache(
            pixels=pixels,
            alpha=zero,
            gamma=zero,
            contrib=zero.astype(bool),
            clipped=zero.astype(bool),
            gamma_final=np.ones(P),
            color=np.zeros((P, 3)),
            depth_out=np.zeros(P),
            background=background,
        )
        out_color = np.tile(background, (P, 1))
        return out_color, np.zeros(P), np.zeros(P), cache

    du = pixels[:, 0:1] - mean2d[None, :, 0]
    dv = pixels[:, 1:2] - mean2d[None, :, 1]
    d2 = du * du + dv * dv
    inv_2var = 1.0 / (2.0 * sigma2d * sigma2d)
    g = exp_fn(-d2 * inv_2var[None, :])
    alpha_raw = opacity[None, :] * g
    clipped = alpha_raw > ALPHA_MAX
    alpha = np.minimum(alpha_raw, ALPHA_MAX)
    passes = alpha >= alpha_threshold

    # Exclusive front-to-back transmittance using only passing pairs.
    alpha_eff = np.where(passes, alpha, 0.0)
    one_minus = 1.0 - alpha_eff
    gamma_incl = np.cumprod(one_minus, axis=1)
    gamma = np.concatenate([np.ones((P, 1)), gamma_incl[:, :-1]], axis=1)

    # Early termination: skip a pair (and all later ones) whose integration
    # would drop the transmittance below t_min.
    alive = gamma_incl >= t_min
    contrib = passes & alive

    weight = np.where(contrib, gamma * alpha, 0.0)
    # Channel sums as strictly sequential front-to-back reductions (cumsum
    # along the list, take the last prefix).  A matmul would let BLAS pick
    # an unspecified reduction order; the sequential order is the one a
    # padded/batched kernel can reproduce bit-for-bit (appending zeros to
    # a sequential sum never changes it).
    out_color = np.cumsum(weight[:, :, None] * color[None, :, :],
                          axis=1)[:, -1, :]
    depth_map = np.cumsum(weight * depth[None, :], axis=1)[:, -1]
    silhouette = np.cumsum(weight, axis=1)[:, -1]
    gamma_final = 1.0 - silhouette
    out_color_bg = out_color + gamma_final[:, None] * background[None, :]

    # Zero out the non-contributing alphas in the cache so the backward
    # pass can use the arrays directly.
    alpha_cached = np.where(contrib, alpha, 0.0)
    cache = CompositeCache(
        pixels=pixels,
        alpha=alpha_cached,
        gamma=gamma,
        contrib=contrib,
        clipped=clipped,
        gamma_final=gamma_final,
        color=out_color,
        depth_out=depth_map,
        background=background,
    )
    return out_color_bg, depth_map, silhouette, cache


def composite_backward(
    cache: CompositeCache,
    mean2d: np.ndarray,
    sigma2d: np.ndarray,
    depth: np.ndarray,
    opacity: np.ndarray,
    color: np.ndarray,
    d_color: np.ndarray,
    d_depth: np.ndarray,
    d_silhouette: np.ndarray,
) -> PairGradients:
    """Reverse the color integration (reverse rasterization stage).

    ``d_color``/``d_depth``/``d_silhouette`` are the loss gradients at the
    batch's pixels (shapes ``(P, 3)``, ``(P,)``, ``(P,)``).  Returns the
    candidate-list gradients summed over the pixel batch.
    """
    P, L = cache.alpha.shape
    d_color = np.atleast_2d(np.asarray(d_color, dtype=float))
    d_depth = np.atleast_1d(np.asarray(d_depth, dtype=float))
    d_silhouette = np.atleast_1d(np.asarray(d_silhouette, dtype=float))

    if L == 0:
        return PairGradients(
            d_mean2d=np.zeros((0, 2)),
            d_sigma2d=np.zeros(0),
            d_opacity=np.zeros(0),
            d_color=np.zeros((0, 3)),
            d_depth=np.zeros(0),
            num_pairs_touched=0,
        )

    alpha = cache.alpha          # (P, L), zero where not contributing
    gamma = cache.gamma          # (P, L)
    contrib = cache.contrib
    weight = gamma * alpha       # (P, L)

    # Per-pair channel values V: color (3), depth (1), silhouette (1).
    # Suffix sums S_i = sum_{j > i} W_j V_j, plus the background folded in
    # as the term composited after the whole list.
    w_c = weight[:, :, None] * color[None, :, :]          # (P, L, 3)
    w_d = weight * depth[None, :]                         # (P, L)
    # Reverse-cumsum excluding self.
    suffix_c = np.flip(np.cumsum(np.flip(w_c, axis=1), axis=1), axis=1) - w_c
    suffix_d = np.flip(np.cumsum(np.flip(w_d, axis=1), axis=1), axis=1) - w_d
    suffix_s = (np.flip(np.cumsum(np.flip(weight, axis=1), axis=1), axis=1)
                - weight)
    # Background contributes Gamma_final * bg after every pair.
    suffix_c = suffix_c + cache.gamma_final[:, None, None] * cache.background

    one_minus = np.where(contrib, 1.0 - alpha, 1.0)
    inv_one_minus = 1.0 / np.maximum(one_minus, 1e-12)

    # dOut_ch / d alpha_i = Gamma_i V_i - S_i / (1 - alpha_i).  The channel
    # contraction is written as an explicit three-term sum (not einsum) so
    # the addition order is pinned down and a batched kernel can match it
    # exactly.
    term_c = (gamma[:, :, None] * color[None, :, :]
              - suffix_c * inv_one_minus[:, :, None])
    d_alpha = (d_color[:, None, 0] * term_c[:, :, 0]
               + d_color[:, None, 1] * term_c[:, :, 1]
               + d_color[:, None, 2] * term_c[:, :, 2])
    d_alpha = d_alpha + d_depth[:, None] * (
        gamma * depth[None, :] - suffix_d * inv_one_minus)
    d_alpha = d_alpha + d_silhouette[:, None] * (gamma - suffix_s * inv_one_minus)
    d_alpha = np.where(contrib & ~cache.clipped, d_alpha, 0.0)

    # alpha = opacity * g with g = exp(-d2 / (2 sigma^2)).
    g = np.where(contrib, alpha / np.maximum(opacity[None, :], 1e-12), 0.0)
    d_g = d_alpha * opacity[None, :]
    d_opacity = (d_alpha * g).sum(axis=0)

    du = cache.pixels[:, 0:1] - mean2d[None, :, 0]
    dv = cache.pixels[:, 1:2] - mean2d[None, :, 1]
    inv_var = 1.0 / (sigma2d * sigma2d)
    # d g / d mean2d = g * (p - mu) / sigma^2
    d_mean_u = (d_g * g * du * inv_var[None, :]).sum(axis=0)
    d_mean_v = (d_g * g * dv * inv_var[None, :]).sum(axis=0)
    d_mean2d = np.stack([d_mean_u, d_mean_v], axis=-1)
    # d g / d sigma = g * d2 / sigma^3
    d2 = du * du + dv * dv
    d_sigma2d = (d_g * g * d2 * (inv_var / sigma2d)[None, :]).sum(axis=0)

    # Direct channel gradients.
    d_color_out = np.einsum("pl,pc->lc", weight, d_color)
    d_depth_out = (weight * d_depth[:, None]).sum(axis=0)

    return PairGradients(
        d_mean2d=d_mean2d,
        d_sigma2d=d_sigma2d,
        d_opacity=d_opacity,
        d_color=d_color_out,
        d_depth=d_depth_out,
        num_pairs_touched=int(contrib.sum()),
    )
