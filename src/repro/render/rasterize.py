"""Tile-based forward rendering (the conventional 3DGS pipeline of Fig. 3).

``render_full`` runs projection -> tile intersection -> per-tile depth sort
-> per-pixel rasterization, producing color / depth / silhouette maps and
the workload counters the hardware models consume.  The per-tile composite
caches are retained so :mod:`repro.render.backward` can run the exact
reverse pass without recomputation.

Passing a sparse ``pixels`` subset reproduces the **Org.+S** baseline of
the paper: sparse pixel sampling bolted onto the tile pipeline.  Only the
sampled pixels are rasterized, but the pipeline still pays tile-level
projection, per-tile sorting (restricted, generously, to tiles containing
at least one sample), and per-tile list iteration — the structural
inefficiency Figs. 11/21 quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..obs import trace
from ..obs import atlas as _atlas_mod
from .compositing import ALPHA_THRESHOLD, T_MIN, CompositeCache, composite_forward
from .projection import ProjectedGaussians, project_gaussians
from .sorting import sort_intersection_table
from .stats import PipelineStats
from .tiles import TileGrid, build_intersection_table

__all__ = ["RenderResult", "render_full"]

DEFAULT_BACKGROUND = np.zeros(3)


@dataclass
class RenderResult:
    """Output of a tile-based forward pass (full frame or Org.+S subset)."""

    color: np.ndarray        # (H, W, 3)
    depth: np.ndarray        # (H, W)
    silhouette: np.ndarray   # (H, W)
    proj: ProjectedGaussians
    grid: TileGrid
    sorted_lists: List[np.ndarray]      # per-tile projected-Gaussian indices
    caches: List[Optional[CompositeCache]]
    tile_pixels: List[np.ndarray]       # per-tile (P, 2) rendered pixels
    stats: PipelineStats = field(default_factory=PipelineStats)

    @property
    def final_transmittance(self) -> np.ndarray:
        """``Gamma_final`` per pixel — the mapper's unseen-pixel signal (Eqn. 2)."""
        return 1.0 - self.silhouette


def render_full(
    cloud: GaussianCloud,
    camera: Camera,
    background: Optional[np.ndarray] = None,
    tile_size: int = 16,
    alpha_threshold: float = ALPHA_THRESHOLD,
    t_min: float = T_MIN,
    keep_cache: bool = True,
    pixels: Optional[np.ndarray] = None,
    record_per_pixel: bool = True,
) -> RenderResult:
    """Render with the tile pipeline.

    Parameters
    ----------
    pixels:
        Optional ``(K, 2)`` integer pixel subset (Org.+S mode).  ``None``
        renders the full frame.
    keep_cache:
        Set ``False`` for inference-only renders to skip retaining the
        backward-pass caches.
    record_per_pixel:
        ``False`` skips the per-item stats record lists (``tile_work``,
        ``per_pixel_contribs``); scalar counters are unaffected.
    """
    intr = camera.intrinsics
    bg = DEFAULT_BACKGROUND if background is None else np.asarray(background, float)

    with trace.span("render.project"):
        proj = project_gaussians(cloud, camera)
    with trace.span("render.tile_sort"):
        grid = TileGrid.for_intrinsics(intr, tile_size)
        table = build_intersection_table(proj, grid)
        sorted_lists = sort_intersection_table(table, proj)

    sample_mask = None
    if pixels is not None:
        pixels = np.atleast_2d(np.asarray(pixels, dtype=int))
        sample_mask = np.zeros((intr.height, intr.width), dtype=bool)
        sample_mask[pixels[:, 1], pixels[:, 0]] = True

    color = np.tile(bg, (intr.height, intr.width, 1))
    depth = np.zeros((intr.height, intr.width))
    silhouette = np.zeros((intr.height, intr.width))

    stats = PipelineStats(
        pipeline="tile",
        tile_size=tile_size,
        image_width=intr.width,
        image_height=intr.height,
        num_gaussians=len(cloud),
        num_projected=len(proj),
        num_pixels=(intr.width * intr.height if pixels is None
                    else pixels.shape[0]),
        num_tile_pairs=table.num_pairs,
        record_per_pixel=record_per_pixel,
    )

    caches: List[Optional[CompositeCache]] = []
    tile_pixels: List[np.ndarray] = []
    with trace.span("render.composite", pipeline="tile",
                    tiles=grid.num_tiles):
        _composite_tiles(grid, sorted_lists, sample_mask, proj, bg,
                         alpha_threshold, t_min, keep_cache, stats,
                         color, depth, silhouette, caches, tile_pixels)

    return RenderResult(
        color=color,
        depth=depth,
        silhouette=silhouette,
        proj=proj,
        grid=grid,
        sorted_lists=sorted_lists,
        caches=caches,
        tile_pixels=tile_pixels,
        stats=stats,
    )


def _composite_tiles(grid, sorted_lists, sample_mask, proj, bg,
                     alpha_threshold, t_min, keep_cache, stats,
                     color, depth, silhouette, caches, tile_pixels):
    """Per-tile compositing loop of :func:`render_full` (fills outputs
    in place)."""
    record = stats.record_per_pixel
    for tile in range(grid.num_tiles):
        idx = sorted_lists[tile]
        px = grid.tile_pixels(tile)
        if sample_mask is not None:
            px = px[sample_mask[px[:, 1], px[:, 0]]]
        tile_pixels.append(px)
        if px.shape[0] == 0:
            caches.append(None)
            continue
        # Sorting is charged only for tiles that render at least one pixel
        # (a generous accounting for the Org.+S baseline).
        stats.num_sort_keys += idx.size
        if idx.size == 0:
            caches.append(None)
            if record:
                stats.per_pixel_contribs.extend([0] * px.shape[0])
            if _atlas_mod.current.active:
                _atlas_mod.current.observe_tile_forward(px, 0, None)
            continue
        centres = px + 0.5
        out_color, out_depth, out_sil, cache = composite_forward(
            centres,
            proj.mean2d[idx],
            proj.sigma2d[idx],
            proj.depth[idx],
            proj.opacity[idx],
            proj.color[idx],
            bg,
            alpha_threshold=alpha_threshold,
            t_min=t_min,
        )
        u, v = px[:, 0], px[:, 1]
        color[v, u] = out_color
        depth[v, u] = out_depth
        silhouette[v, u] = out_sil

        n_px, n_g = px.shape[0], idx.size
        stats.num_candidate_pairs += n_px * n_g
        stats.num_alpha_checks += n_px * n_g
        # Serial iteration depth of this tile's thread block: each pixel's
        # thread walks the sorted list until early termination, and the
        # block runs as long as its slowest pixel (gamma is the exclusive
        # transmittance, so position j was examined iff gamma[j] >= t_min).
        contribs = cache.contrib.sum(axis=1)
        stats.num_contrib_pairs += int(contribs.sum())
        if _atlas_mod.current.active:
            _atlas_mod.current.observe_tile_forward(px, n_g, contribs)
        if record:
            serial_len = int((cache.gamma >= t_min).sum(axis=1).max())
            stats.tile_work.append((n_g, n_px, serial_len))
            stats.per_pixel_contribs.extend(int(c) for c in contribs)
        caches.append(cache if keep_cache else None)
