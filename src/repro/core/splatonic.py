"""High-level SPLATONIC API: sampling + pixel-based rendering in one object.

This is the facade a downstream SLAM system uses.  It owns the sampling
configuration (tile sizes, strategies, ablation switches), draws the pixel
sets, and dispatches rendering to either the sparse pixel-based pipeline or
the dense tile-based pipeline (for the Org./Org.+S baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..render.cache import RenderCache, resolve_render_cache
from ..render.compositing import ALPHA_THRESHOLD, T_MIN
from ..render.rasterize import RenderResult, render_full
from .pixel_pipeline import SparseRenderResult, backward_sparse, render_sparse
from .sampling import (
    MAPPING_TILE,
    TRACKING_TILE,
    MappingSamples,
    sample_mapping_pixels,
    sample_tracking_pixels,
)

__all__ = ["SplatonicConfig", "Splatonic"]


@dataclass(frozen=True)
class SplatonicConfig:
    """Knobs of the sparse-processing framework (defaults from Sec. VII-A)."""

    tracking_tile: int = TRACKING_TILE
    mapping_tile: int = MAPPING_TILE
    tracking_strategy: str = "random"
    mapping_unseen: bool = True
    mapping_weighted: bool = True
    mapping_uniform_weights: bool = False
    preemptive_alpha: bool = True
    alpha_threshold: float = ALPHA_THRESHOLD
    t_min: float = T_MIN
    # Full-frame mapping cadence: the current keyframe is rendered densely
    # on one out of this many mapping invocations.  With mapping invoked
    # every 4 frames (the presets), the default of 1 realizes the paper's
    # "one full-frame mapping for every four frames"; older keyframes in
    # the window always stay sparse.
    full_mapping_every: int = 1
    # Sparse-kernel backend ("reference" / "vectorized" / "parallel");
    # None resolves via $REPRO_KERNEL_BACKEND, falling back to the
    # registry default.
    kernel_backend: Optional[str] = None
    # Worker-pool size for the "parallel" backend (ignored by the
    # single-core backends); None resolves via $REPRO_KERNEL_WORKERS,
    # falling back to the CPU count.
    kernel_workers: Optional[int] = None
    # Per-item stats record lists (pixel_list_lengths, per_pixel_contribs,
    # pixel_contrib_ids, tile_work).  The hardware-model replay streams need
    # them; long SLAM / benchmark runs turn them off to keep rendering free
    # of unbounded Python-list appends.  Scalar counters are unaffected.
    record_per_pixel: bool = True
    # Temporal-coherence render cache (repro.render.cache): memoize the
    # candidate superset across optimizer iterations with exact
    # revalidation — bit-identical outputs, pure execution-strategy
    # change.  None resolves via $REPRO_RENDER_CACHE, defaulting to off.
    render_cache: Optional[bool] = None

    def with_overrides(self, **kwargs) -> "SplatonicConfig":
        return replace(self, **kwargs)


class Splatonic:
    """Sampling + sparse rendering facade.

    Parameters
    ----------
    config:
        A :class:`SplatonicConfig`; defaults reproduce the paper's setup.
    rng:
        Random generator for the samplers (seeded for reproducibility).
    """

    def __init__(self, config: Optional[SplatonicConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        self.config = config or SplatonicConfig()
        self.rng = rng or np.random.default_rng(0)
        self._mapping_counter = 0

    # ---- sampling ----

    def sample_tracking(self, camera: Camera,
                        image: Optional[np.ndarray] = None,
                        loss_map: Optional[np.ndarray] = None) -> np.ndarray:
        """Draw the tracking pixel set for one frame."""
        intr = camera.intrinsics
        return sample_tracking_pixels(
            intr.width, intr.height,
            tile=self.config.tracking_tile,
            strategy=self.config.tracking_strategy,
            rng=self.rng,
            image=image,
            loss_map=loss_map,
        )

    def sample_mapping(self, gamma_final: np.ndarray,
                       image: np.ndarray,
                       weight: Optional[np.ndarray] = None) -> MappingSamples:
        """Draw the mapping pixel sets from the first forward pass' Γ map.

        ``weight`` optionally supplies a precomputed texture-weight map
        (the Sobel magnitude of ``image``) so callers that render the
        same keyframe repeatedly — the mapper's window loop — can reuse
        a memoized map instead of recomputing the filter each time.
        """
        return sample_mapping_pixels(
            gamma_final, image,
            tile=self.config.mapping_tile,
            rng=self.rng,
            include_unseen=self.config.mapping_unseen,
            include_weighted=self.config.mapping_weighted,
            uniform_weights=self.config.mapping_uniform_weights,
            weight=weight,
        )

    def next_mapping_is_full_frame(self) -> bool:
        """True when this mapping invocation should render densely.

        The paper performs one full-frame mapping every
        ``full_mapping_every`` frames to keep global reconstruction
        quality; the counter advances on each call.
        """
        full = (self._mapping_counter % self.config.full_mapping_every) == 0
        self._mapping_counter += 1
        return full

    # ---- rendering ----

    def render_cache_enabled(self) -> bool:
        """Whether the temporal-coherence render cache is on for this run
        (config > ``$REPRO_RENDER_CACHE`` > off)."""
        return resolve_render_cache(self.config.render_cache)

    def make_render_cache(self, mode: str) -> Optional[RenderCache]:
        """A fresh :class:`RenderCache` for one optimization stream, or
        ``None`` when the cache is disabled.

        ``mode`` is ``"tracking"`` (fixed cloud, drifting pose) or
        ``"mapping"`` (fixed camera/pixels, drifting parameters) — it
        only seeds the margin prior; correctness never depends on it.
        """
        if not self.render_cache_enabled():
            return None
        return RenderCache(mode=mode)

    def render_sparse(self, cloud: GaussianCloud, camera: Camera,
                      pixels: np.ndarray,
                      background: Optional[np.ndarray] = None,
                      keep_cache: bool = True,
                      lattice_tile: Optional[int] = None,
                      cache: Optional[RenderCache] = None) -> SparseRenderResult:
        """Pixel-based forward pass over the sampled pixels.

        ``lattice_tile`` hints that ``pixels`` is the row-major one-per-tile
        lattice of that tile size (tracking's layout), enabling
        direct-indexing candidate generation.  ``cache`` threads a
        per-stream temporal-coherence cache (see :meth:`make_render_cache`)
        into the pipeline.
        """
        return render_sparse(
            cloud, camera, pixels, background,
            alpha_threshold=self.config.alpha_threshold,
            t_min=self.config.t_min,
            keep_cache=keep_cache,
            preemptive_alpha=self.config.preemptive_alpha,
            backend=self.config.kernel_backend,
            lattice_tile=lattice_tile,
            record_per_pixel=self.config.record_per_pixel,
            kernel_workers=self.config.kernel_workers,
            cache=cache,
        )

    def backward_sparse(self, result: SparseRenderResult,
                        cloud: GaussianCloud, camera: Camera,
                        d_color: np.ndarray, d_depth: np.ndarray,
                        d_silhouette: np.ndarray):
        """Pixel-based backward pass (reuses the forward caches)."""
        return backward_sparse(result, cloud, camera,
                               d_color, d_depth, d_silhouette)

    def render_full(self, cloud: GaussianCloud, camera: Camera,
                    background: Optional[np.ndarray] = None,
                    tile_size: int = 16,
                    keep_cache: bool = True) -> RenderResult:
        """Dense tile-based forward pass (baseline / full-frame mapping)."""
        return render_full(
            cloud, camera, background, tile_size=tile_size,
            alpha_threshold=self.config.alpha_threshold,
            t_min=self.config.t_min,
            keep_cache=keep_cache,
            record_per_pixel=self.config.record_per_pixel,
        )
