"""Pixel-based rendering pipeline (Sec. IV-B, the paper's second contribution).

Instead of amortizing projection/sorting across the pixels of a tile, every
*sampled* pixel owns its pipeline:

1. **Per-pixel projection with preemptive α-checking** — each projected
   Gaussian's bounding box is tested against the sampled pixels (the
   accelerator does this with direct index arithmetic, see
   :func:`bbox_candidate_ranges`), and α is evaluated immediately.  Only
   pairs with ``alpha >= threshold`` survive, so rasterization never
   α-checks again and there is no warp divergence.
2. **Per-pixel depth sort** of the surviving short list.
3. **Gaussian-parallel rasterization** — a warp co-renders one pixel; the
   partial colors are reduced.  Numerically this is Eqn. 1 again, so the
   output is bit-identical to the tile pipeline at the sampled locations.

The backward pass reuses the per-pixel sorted list and the cached ``Gamma``
/ prefix-color values from the forward pass (the accelerator stores them in
the rasterization engine's double buffer), computes partial gradients in
parallel, and aggregates them per Gaussian.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..obs import trace
from ..render.backward import (
    ProjectedGradients,
    RenderGradients,
    reproject_gradients,
)
from ..render.compositing import (
    ALPHA_MAX,
    ALPHA_THRESHOLD,
    T_MIN,
    CompositeCache,
    composite_backward,
    composite_forward,
)
from ..render.projection import ProjectedGaussians, project_gaussians
from ..render.sorting import sort_by_depth
from ..render.stats import PipelineStats

__all__ = ["SparseRenderResult", "render_sparse", "backward_sparse",
           "bbox_candidate_ranges"]

DEFAULT_BACKGROUND = np.zeros(3)


@dataclass
class SparseRenderResult:
    """Output of a sparse pixel-based forward pass over K sampled pixels."""

    pixels: np.ndarray       # (K, 2) integer (u, v), row-major sorted
    color: np.ndarray        # (K, 3)
    depth: np.ndarray        # (K,)
    silhouette: np.ndarray   # (K,)
    proj: ProjectedGaussians
    pixel_lists: List[np.ndarray]          # per-pixel sorted proj indices
    caches: List[Optional[CompositeCache]]
    stats: PipelineStats = field(default_factory=PipelineStats)

    @property
    def final_transmittance(self) -> np.ndarray:
        return 1.0 - self.silhouette

    def scatter(self, height: int, width: int,
                background: Optional[np.ndarray] = None):
        """Place the sparse outputs into dense maps (for visualization)."""
        bg = DEFAULT_BACKGROUND if background is None else background
        color = np.tile(np.asarray(bg, float), (height, width, 1))
        depth = np.zeros((height, width))
        sil = np.zeros((height, width))
        u, v = self.pixels[:, 0], self.pixels[:, 1]
        color[v, u] = self.color
        depth[v, u] = self.depth
        sil[v, u] = self.silhouette
        return color, depth, sil


def bbox_candidate_ranges(pixels: np.ndarray, bbox: np.ndarray,
                          tile: int, width: int) -> List[np.ndarray]:
    """Direct-indexing candidate generation of the projection unit (Sec. V-C).

    With one sampled pixel per ``tile x tile`` region stored row-major, the
    sampled-pixel list index of any pixel is a pure function of its tile
    coordinates.  For each Gaussian the four bbox corners therefore bound a
    *contiguous 2D index range* in the sampled-pixel lattice — no scan of
    the whole pixel list is needed.

    Returns, per Gaussian, the indices into ``pixels`` whose coordinates
    fall inside its bounding box.  ``pixels`` must be the row-major sorted
    one-per-tile lattice produced by ``sample_tracking_pixels``.
    """
    pixels = np.asarray(pixels, dtype=int)
    tiles_x = -(-width // tile)
    out: List[np.ndarray] = []
    for u_min, v_min, u_max, v_max in bbox:
        tx0 = max(int(u_min // tile), 0)
        ty0 = max(int(v_min // tile), 0)
        tx1 = int(u_max // tile)
        ty1 = int(v_max // tile)
        cand: List[int] = []
        for ty in range(ty0, ty1 + 1):
            base = ty * tiles_x
            for tx in range(tx0, min(tx1, tiles_x - 1) + 1):
                k = base + tx
                if k >= len(pixels):
                    break
                u, v = pixels[k]
                if u_min <= u + 0.5 <= u_max and v_min <= v + 0.5 <= v_max:
                    cand.append(k)
        out.append(np.asarray(cand, dtype=int))
    return out


def render_sparse(
    cloud: GaussianCloud,
    camera: Camera,
    pixels: np.ndarray,
    background: Optional[np.ndarray] = None,
    alpha_threshold: float = ALPHA_THRESHOLD,
    t_min: float = T_MIN,
    keep_cache: bool = True,
    preemptive_alpha: bool = True,
    exp_fn=np.exp,
) -> SparseRenderResult:
    """Render only the sampled ``pixels`` with the pixel-based pipeline.

    ``preemptive_alpha=False`` is an ablation switch: candidates are then
    filtered only by the bounding box, and α-checking happens inside
    rasterization (sorting and rasterizing the full candidate list), which
    reproduces the workload of a pipeline without the optimization.
    ``exp_fn`` substitutes an approximate exponential (LUT ablation).
    """
    intr = camera.intrinsics
    bg = DEFAULT_BACKGROUND if background is None else np.asarray(background, float)
    pixels = np.atleast_2d(np.asarray(pixels, dtype=int))
    K = pixels.shape[0]

    with trace.span("render.project", pipeline="pixel"):
        proj = project_gaussians(cloud, camera)
    stats = PipelineStats(
        pipeline="pixel",
        image_width=intr.width,
        image_height=intr.height,
        num_gaussians=len(cloud),
        num_projected=len(proj),
        num_pixels=K,
    )

    color = np.tile(bg, (K, 1))
    depth = np.zeros(K)
    silhouette = np.zeros(K)
    pixel_lists: List[np.ndarray] = []
    caches: List[Optional[CompositeCache]] = []

    if len(proj) == 0 or K == 0:
        pixel_lists = [np.zeros(0, dtype=int) for _ in range(K)]
        caches = [None] * K
        stats.per_pixel_contribs = [0] * K
        return SparseRenderResult(pixels, color, depth, silhouette, proj,
                                  pixel_lists, caches, stats)

    with trace.span("render.alpha_check", pipeline="pixel"):
        centres = pixels + 0.5
        # Per-pixel projection: bbox test of every (pixel, Gaussian) pair.
        du = centres[:, 0:1] - proj.mean2d[None, :, 0]
        dv = centres[:, 1:2] - proj.mean2d[None, :, 1]
        r = proj.radius[None, :]
        in_bbox = (np.abs(du) <= r) & (np.abs(dv) <= r)
        bbox_hits = int(in_bbox.sum())
        stats.num_candidate_pairs += bbox_hits

        if preemptive_alpha:
            # Preemptive alpha-checking happens in the projection stage.
            d2 = du * du + dv * dv
            inv_2var = 1.0 / (2.0 * proj.sigma2d * proj.sigma2d)
            alpha = np.minimum(
                proj.opacity[None, :] * exp_fn(-d2 * inv_2var[None, :]),
                ALPHA_MAX)
            survives = in_bbox & (alpha >= alpha_threshold)
            stats.num_alpha_checks += bbox_hits
        else:
            survives = in_bbox

    composite_span = trace.span("render.composite", pipeline="pixel",
                                pixels=K)
    composite_span.__enter__()
    for k in range(K):
        cand = np.nonzero(survives[k])[0]
        cand = sort_by_depth(cand, proj.depth)
        pixel_lists.append(cand)
        stats.num_sort_keys += cand.size
        stats.pixel_list_lengths.append(int(cand.size))
        if cand.size == 0:
            caches.append(None)
            stats.per_pixel_contribs.append(0)
            continue
        out_color, out_depth, out_sil, cache = composite_forward(
            centres[k:k + 1],
            proj.mean2d[cand],
            proj.sigma2d[cand],
            proj.depth[cand],
            proj.opacity[cand],
            proj.color[cand],
            bg,
            alpha_threshold=alpha_threshold,
            t_min=t_min,
            exp_fn=exp_fn,
        )
        color[k] = out_color[0]
        depth[k] = out_depth[0]
        silhouette[k] = out_sil[0]
        if not preemptive_alpha:
            # alpha-checking is paid inside rasterization instead.
            stats.num_alpha_checks += cand.size
        contribs = int(cache.contrib.sum())
        stats.num_contrib_pairs += contribs
        stats.per_pixel_contribs.append(contribs)
        caches.append(cache if keep_cache else None)
    composite_span.__exit__(None, None, None)

    return SparseRenderResult(pixels, color, depth, silhouette, proj,
                              pixel_lists, caches, stats)


def backward_sparse(
    result: SparseRenderResult,
    cloud: GaussianCloud,
    camera: Camera,
    d_color: np.ndarray,
    d_depth: np.ndarray,
    d_silhouette: np.ndarray,
) -> RenderGradients:
    """Backward pass of the pixel pipeline.

    Gradients arrive per sampled pixel (``(K, 3)``, ``(K,)``, ``(K,)``).
    The per-pixel sorted lists and cached transmittances from the forward
    pass are reused — no α-rechecking, matching the accelerator's Γ/C
    double buffer (Sec. V-B).
    """
    proj = result.proj
    K = result.pixels.shape[0]
    pg = ProjectedGradients.zeros(len(proj))
    stats = PipelineStats(
        pipeline="pixel",
        image_width=result.stats.image_width,
        image_height=result.stats.image_height,
        num_gaussians=len(cloud),
        num_projected=len(proj),
        num_pixels=K,
    )
    d_color = np.atleast_2d(np.asarray(d_color, dtype=float))
    d_depth = np.atleast_1d(np.asarray(d_depth, dtype=float))
    d_silhouette = np.atleast_1d(np.asarray(d_silhouette, dtype=float))

    bwd_span = trace.span("render.pixel_bwd", pipeline="pixel", pixels=K)
    bwd_span.__enter__()
    for k in range(K):
        cand = result.pixel_lists[k]
        cache = result.caches[k]
        if cache is None or cand.size == 0:
            continue
        pair = composite_backward(
            cache,
            proj.mean2d[cand],
            proj.sigma2d[cand],
            proj.depth[cand],
            proj.opacity[cand],
            proj.color[cand],
            d_color[k:k + 1],
            d_depth[k:k + 1],
            d_silhouette[k:k + 1],
        )
        pg.accumulate(cand, pair)
        stats.num_candidate_pairs += cand.size
        stats.num_contrib_pairs += pair.num_pairs_touched
        stats.num_atomic_adds += pair.num_pairs_touched
        stats.pixel_list_lengths.append(int(cand.size))
        stats.per_pixel_contribs.append(pair.num_pairs_touched)
        stats.pixel_contrib_ids.append(
            proj.source_index[cand[cache.contrib[0]]])

    with trace.span("render.reproject", pipeline="pixel"):
        grads = reproject_gradients(proj, cloud, camera, pg)
    bwd_span.__exit__(None, None, None)
    grads.stats = stats
    return grads
