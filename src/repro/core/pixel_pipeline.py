"""Pixel-based rendering pipeline (Sec. IV-B, the paper's second contribution).

Instead of amortizing projection/sorting across the pixels of a tile, every
*sampled* pixel owns its pipeline:

1. **Per-pixel projection with preemptive α-checking** — each projected
   Gaussian's bounding box is tested against the sampled pixels (the
   accelerator does this with direct index arithmetic, see
   :func:`bbox_candidate_ranges`), and α is evaluated immediately.  Only
   pairs with ``alpha >= threshold`` survive, so rasterization never
   α-checks again and there is no warp divergence.
2. **Per-pixel depth sort** of the surviving short list.
3. **Gaussian-parallel rasterization** — a warp co-renders one pixel; the
   partial colors are reduced.  Numerically this is Eqn. 1 again, so the
   output is bit-identical to the tile pipeline at the sampled locations.

The backward pass reuses the per-pixel sorted list and the cached ``Gamma``
/ prefix-color values from the forward pass (the accelerator stores them in
the rasterization engine's double buffer), computes partial gradients in
parallel, and aggregates them per Gaussian.

This module orchestrates the *stages* — candidate generation over a
flattened CSR-style (pixel, Gaussian) pair list, the shared preemptive-α
filter, and counter accounting — and dispatches sort + composite +
backward to a swappable kernel backend (:mod:`repro.render.kernels`):
``"reference"`` is the auditable per-pixel loop, ``"vectorized"`` the
batched segmented implementation, ``"parallel"`` the vectorized kernels
sharded over a persistent worker pool; all are bit-identical.  Select
with the ``backend=`` argument, ``SplatonicConfig.kernel_backend``, the
CLI ``--kernel-backend`` flag, or the ``REPRO_KERNEL_BACKEND``
environment variable; ``kernel_workers`` / ``--kernel-workers`` /
``REPRO_KERNEL_WORKERS`` size the parallel backend's pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..obs import trace
from ..obs import atlas as _atlas_mod
from ..render.backward import (
    ProjectedGradients,
    RenderGradients,
    reproject_gradients,
)
from ..render.compositing import (
    ALPHA_MAX,
    ALPHA_THRESHOLD,
    T_MIN,
    CompositeCache,
)
from ..render.cache import RenderCache
from ..render.kernels import get_kernel, resolve_backend
from ..render.kernels.candidates import (
    CandidatePairs,
    candidate_pairs,
    lattice_pair_arrays,
)
from ..render.kernels.vectorized import FlatCompositeCache
from ..render.projection import ProjectedGaussians, project_gaussians
from ..render.stats import PipelineStats

__all__ = ["SparseRenderResult", "render_sparse", "backward_sparse",
           "bbox_candidate_ranges"]

DEFAULT_BACKGROUND = np.zeros(3)


@dataclass
class SparseRenderResult:
    """Output of a sparse pixel-based forward pass over K sampled pixels."""

    pixels: np.ndarray       # (K, 2) integer (u, v), row-major sorted
    color: np.ndarray        # (K, 3)
    depth: np.ndarray        # (K,)
    silhouette: np.ndarray   # (K,)
    proj: ProjectedGaussians
    pixel_lists: List[np.ndarray]          # per-pixel sorted proj indices
    caches: List[Optional[CompositeCache]]
    stats: PipelineStats = field(default_factory=PipelineStats)
    # Which kernel backend produced this result; the backward pass must
    # use the same one (the cache layouts differ).
    backend: str = "reference"
    # Vectorized backend only: the padded whole-batch composite cache
    # (per-pixel ``caches`` entries stay None in that backend).  The
    # parallel backend stores its per-shard ShardedCompositeCache here
    # instead (duck-typed; the producing kernel's backward consumes it).
    flat_cache: Optional[FlatCompositeCache] = None

    @property
    def final_transmittance(self) -> np.ndarray:
        return 1.0 - self.silhouette

    def scatter(self, height: int, width: int,
                background: Optional[np.ndarray] = None):
        """Place the sparse outputs into dense maps (for visualization)."""
        bg = DEFAULT_BACKGROUND if background is None else background
        color = np.tile(np.asarray(bg, float), (height, width, 1))
        depth = np.zeros((height, width))
        sil = np.zeros((height, width))
        u, v = self.pixels[:, 0], self.pixels[:, 1]
        color[v, u] = self.color
        depth[v, u] = self.depth
        sil[v, u] = self.silhouette
        return color, depth, sil


def bbox_candidate_ranges(pixels: np.ndarray, bbox: np.ndarray,
                          tile: int, width: int) -> List[np.ndarray]:
    """Direct-indexing candidate generation of the projection unit (Sec. V-C).

    With one sampled pixel per ``tile x tile`` region stored row-major, the
    sampled-pixel list index of any pixel is a pure function of its tile
    coordinates.  For each Gaussian the four bbox corners therefore bound a
    *contiguous 2D index range* in the sampled-pixel lattice — no scan of
    the whole pixel list is needed.  Fully vectorized: the tile ranges of
    all Gaussians are expanded with index arithmetic in one shot (see
    :func:`repro.render.kernels.candidates.lattice_pair_arrays`).

    Returns, per Gaussian, the indices into ``pixels`` whose coordinates
    fall inside its bounding box.  ``pixels`` must be the row-major sorted
    one-per-tile lattice produced by ``sample_tracking_pixels``.
    """
    pixels = np.asarray(pixels, dtype=int)
    bbox = np.asarray(bbox, dtype=float)
    k, g = lattice_pair_arrays(pixels, bbox, tile, width)
    counts = np.bincount(g, minlength=bbox.shape[0])
    return np.split(k, np.cumsum(counts)[:-1])


def render_sparse(
    cloud: GaussianCloud,
    camera: Camera,
    pixels: np.ndarray,
    background: Optional[np.ndarray] = None,
    alpha_threshold: float = ALPHA_THRESHOLD,
    t_min: float = T_MIN,
    keep_cache: bool = True,
    preemptive_alpha: bool = True,
    exp_fn=np.exp,
    backend: Optional[str] = None,
    lattice_tile: Optional[int] = None,
    record_per_pixel: bool = True,
    kernel_workers: Optional[int] = None,
    cache: Optional[RenderCache] = None,
) -> SparseRenderResult:
    """Render only the sampled ``pixels`` with the pixel-based pipeline.

    ``preemptive_alpha=False`` is an ablation switch: candidates are then
    filtered only by the bounding box, and α-checking happens inside
    rasterization (sorting and rasterizing the full candidate list), which
    reproduces the workload of a pipeline without the optimization.
    ``exp_fn`` substitutes an approximate exponential (LUT ablation).

    ``backend`` picks the kernel implementation (``"reference"`` /
    ``"vectorized"`` / ``"parallel"``; default resolves via
    ``$REPRO_KERNEL_BACKEND``).  ``kernel_workers`` sizes the parallel
    backend's worker pool (ignored by single-core backends; default
    resolves via ``$REPRO_KERNEL_WORKERS``, then CPU count).
    ``lattice_tile`` is a candidate-generation hint: when the pixels form
    the row-major one-per-tile lattice of that tile size (tracking's
    layout), candidates come from direct index arithmetic instead of a
    bbox scan.  ``record_per_pixel=False`` skips the per-item stats record
    lists (hardware-model replay streams); scalar counters are unaffected.

    ``cache`` is an optional :class:`repro.render.cache.RenderCache` —
    the temporal-coherence cache replaces the projection + candidate
    generation stages with an exactly revalidated cross-iteration lookup
    (bit-identical pairs/outputs; see :mod:`repro.render.cache`).  The
    logical workload counters are unaffected; the cache's own hit/miss/
    rebuild counters land in the separate ``cache_*`` stats fields.
    """
    intr = camera.intrinsics
    bg = DEFAULT_BACKGROUND if background is None else np.asarray(background, float)
    pixels = np.atleast_2d(np.asarray(pixels, dtype=int))
    K = pixels.shape[0]
    backend_name = resolve_backend(backend)
    kernel = get_kernel(backend_name)

    cached_pairs = None
    if cache is not None:
        with trace.span("render.project", pipeline="pixel", cached=True):
            proj, cached_pairs, lookup = cache.project_and_candidates(
                cloud, camera, pixels, lattice_tile=lattice_tile)
    else:
        with trace.span("render.project", pipeline="pixel"):
            proj = project_gaussians(cloud, camera)
    stats = PipelineStats(
        pipeline="pixel",
        image_width=intr.width,
        image_height=intr.height,
        num_gaussians=len(cloud),
        num_projected=len(proj),
        num_pixels=K,
        record_per_pixel=record_per_pixel,
    )
    if cache is not None:
        stats.cache_hits += int(lookup.hit)
        stats.cache_misses += int(not lookup.hit)
        stats.cache_rebuilds += int(lookup.rebuilt)
        stats.cache_active_gaussians += int(lookup.active_gaussians)

    color = np.tile(bg, (K, 1))
    depth = np.zeros(K)
    silhouette = np.zeros(K)

    if len(proj) == 0 or K == 0:
        if record_per_pixel:
            stats.per_pixel_contribs = [0] * K
        if _atlas_mod.current.active:
            _atlas_mod.current.observe_sparse_forward(
                pixels, np.zeros(0, dtype=int), np.zeros(0, dtype=int),
                np.zeros(K, dtype=np.int64))
        return SparseRenderResult(
            pixels, color, depth, silhouette, proj,
            [np.zeros(0, dtype=int) for _ in range(K)], [None] * K, stats,
            backend=backend_name)

    centres = pixels + 0.5
    with trace.span("render.alpha_check", pipeline="pixel",
                    backend=backend_name):
        if cached_pairs is not None:
            # The cache already produced the exact pair list (pixel-major
            # canonical order, which satisfies every backend).
            pairs = cached_pairs
        else:
            pairs = candidate_pairs(
                pixels, centres, proj.bbox(),
                lattice_tile=lattice_tile, width=intr.width,
                pixel_major=kernel.needs_pixel_major_pairs)
        n_candidates = pairs.size
        stats.num_candidate_pairs += n_candidates
        # α is evaluated once per candidate either way: preemptively here,
        # or inside rasterization when the ablation disables the filter.
        stats.num_alpha_checks += n_candidates
        # The atlas bins the *pre-filter* candidate set, so its per-tile
        # α-pass rates match ``stats.alpha_pass_rate``; keep the arrays
        # before the preemptive filter replaces ``pairs``.
        atlas_pix, atlas_gss = ((pairs.pix, pairs.gss)
                                if _atlas_mod.current.active else (None, None))
        pair_alpha = pair_clipped = None
        if n_candidates and (preemptive_alpha or kernel.wants_pair_alpha):
            du = centres[pairs.pix, 0] - proj.mean2d[pairs.gss, 0]
            dv = centres[pairs.pix, 1] - proj.mean2d[pairs.gss, 1]
            d2 = du * du + dv * dv
            sig = proj.sigma2d[pairs.gss]
            inv_2var = 1.0 / (2.0 * sig * sig)
            alpha_raw = proj.opacity[pairs.gss] * exp_fn(-d2 * inv_2var)
            pair_clipped = alpha_raw > ALPHA_MAX
            pair_alpha = np.minimum(alpha_raw, ALPHA_MAX)
            if preemptive_alpha:
                keep = pair_alpha >= alpha_threshold
                pairs = CandidatePairs(pairs.pix[keep], pairs.gss[keep], K)
                pair_alpha = pair_alpha[keep]
                pair_clipped = pair_clipped[keep]
    stats.num_sort_keys += pairs.size

    contribs_out = (np.zeros(K, dtype=np.int64)
                    if _atlas_mod.current.active else None)
    kernel_kwargs = {}
    if kernel.accepts_workers:
        kernel_kwargs["workers"] = kernel_workers
    with trace.span("render.composite", pipeline="pixel", pixels=K,
                    backend=backend_name):
        pixel_lists, caches, flat_cache = kernel.forward(
            proj, pairs, centres, bg, alpha_threshold, t_min, keep_cache,
            exp_fn, stats, color, depth, silhouette,
            pair_alpha=pair_alpha, pair_clipped=pair_clipped,
            contribs_out=contribs_out, **kernel_kwargs)
    if contribs_out is not None:
        _atlas_mod.current.observe_sparse_forward(pixels, atlas_pix, atlas_gss,
                                      contribs_out)

    return SparseRenderResult(pixels, color, depth, silhouette, proj,
                              pixel_lists, caches, stats,
                              backend=backend_name, flat_cache=flat_cache)


def backward_sparse(
    result: SparseRenderResult,
    cloud: GaussianCloud,
    camera: Camera,
    d_color: np.ndarray,
    d_depth: np.ndarray,
    d_silhouette: np.ndarray,
) -> RenderGradients:
    """Backward pass of the pixel pipeline.

    Gradients arrive per sampled pixel (``(K, 3)``, ``(K,)``, ``(K,)``).
    The per-pixel sorted lists and cached transmittances from the forward
    pass are reused — no α-rechecking, matching the accelerator's Γ/C
    double buffer (Sec. V-B).  The kernel backend that produced ``result``
    also runs its backward (the cache layouts differ per backend).
    """
    proj = result.proj
    K = result.pixels.shape[0]
    kernel = get_kernel(result.backend)
    pg = ProjectedGradients.zeros(len(proj))
    stats = PipelineStats(
        pipeline="pixel",
        image_width=result.stats.image_width,
        image_height=result.stats.image_height,
        num_gaussians=len(cloud),
        num_projected=len(proj),
        num_pixels=K,
        record_per_pixel=result.stats.record_per_pixel,
    )
    d_color = np.atleast_2d(np.asarray(d_color, dtype=float))
    d_depth = np.atleast_1d(np.asarray(d_depth, dtype=float))
    d_silhouette = np.atleast_1d(np.asarray(d_silhouette, dtype=float))

    contribs_out = (np.zeros(K, dtype=np.int64)
                    if _atlas_mod.current.active else None)
    with trace.span("render.pixel_bwd", pipeline="pixel", pixels=K,
                    backend=result.backend):
        kernel.backward(result, proj, d_color, d_depth, d_silhouette,
                        pg, stats, contribs_out=contribs_out)
        with trace.span("render.reproject", pipeline="pixel"):
            grads = reproject_gradients(proj, cloud, camera, pg)
    if contribs_out is not None:
        _atlas_mod.current.observe_sparse_backward(result.pixels, contribs_out)
    grads.stats = stats
    return grads
