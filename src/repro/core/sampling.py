"""Adaptive sparse pixel sampling (Sec. IV-A, the paper's first contribution).

Tracking samples exactly one pixel per ``w_t x w_t`` tile; the paper shows
uniform random selection within each tile matches or beats feature-based
selection (Fig. 10), so :func:`sample_tracking_pixels` defaults to
``strategy="random"`` but also implements the comparison strategies:

- ``"random"`` — one uniformly random pixel per tile (the paper's choice);
- ``"harris"`` — the highest Harris-response pixel per tile;
- ``"center"`` — the tile centre (deterministic control);
- ``"lowres"``  — the Low-Res. baseline: equivalent pixel positions of a
  downsampled image (tile centres on a regular lattice);
- ``"loss_tile"`` — the GauSPU baseline: whole tiles chosen by loss,
  matching the total pixel budget but without global coverage.

Mapping combines two pixel sets (Fig. 12): every *unseen* pixel, i.e.
``Gamma_final > 0.5`` (Eqn. 2), plus one texture-weighted random pixel per
``w_m x w_m`` tile with probability ``P(p) = w_R(p) * r`` (Eqn. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .features import harris_response, sobel_magnitude

__all__ = [
    "TRACKING_TILE",
    "MAPPING_TILE",
    "UNSEEN_TRANSMITTANCE",
    "MappingSamples",
    "sample_tracking_pixels",
    "sample_mapping_pixels",
    "unseen_mask",
    "tile_origins",
]

# Default tile sizes from Sec. VII-A: w_t = 16, w_m = 4.
TRACKING_TILE = 16
MAPPING_TILE = 4
# Eqn. 2: a pixel is unseen when its final transmittance exceeds 0.5.
UNSEEN_TRANSMITTANCE = 0.5


def tile_origins(width: int, height: int, tile: int) -> np.ndarray:
    """``(T, 2)`` top-left ``(u0, v0)`` corner of every tile, row-major."""
    us = np.arange(0, width, tile)
    vs = np.arange(0, height, tile)
    uu, vv = np.meshgrid(us, vs)
    return np.stack([uu.ravel(), vv.ravel()], axis=-1)


def _one_per_tile(width: int, height: int, tile: int,
                  offsets_fn) -> np.ndarray:
    """Pick one pixel per tile; ``offsets_fn(origin, tw, th)`` returns (du, dv)."""
    origins = tile_origins(width, height, tile)
    picks = np.empty_like(origins)
    for i, (u0, v0) in enumerate(origins):
        tw = min(tile, width - u0)
        th = min(tile, height - v0)
        du, dv = offsets_fn((u0, v0), tw, th)
        picks[i] = (u0 + du, v0 + dv)
    return picks


def sample_tracking_pixels(
    width: int,
    height: int,
    tile: int = TRACKING_TILE,
    strategy: str = "random",
    rng: np.random.Generator | None = None,
    image: np.ndarray | None = None,
    loss_map: np.ndarray | None = None,
) -> np.ndarray:
    """Select tracking pixels: one per ``tile x tile`` region.

    Returns ``(K, 2)`` integer ``(u, v)`` coordinates in tile-row-major
    order — the pixel of tile ``(tx, ty)`` is at index ``ty * tiles_x + tx``
    — which is the lattice layout the accelerator's direct-indexing
    projection unit assumes (Sec. V-C).  ``image`` is required for
    ``"harris"``; ``loss_map`` for ``"loss_tile"``.
    """
    if tile <= 0:
        raise ValueError("tile must be positive")
    rng = rng or np.random.default_rng()

    if strategy == "random":
        picks = _one_per_tile(
            width, height, tile,
            lambda origin, tw, th: (rng.integers(tw), rng.integers(th)))
    elif strategy == "center":
        picks = _one_per_tile(
            width, height, tile, lambda origin, tw, th: (tw // 2, th // 2))
    elif strategy == "lowres":
        # Downsampling by `tile` is equivalent to sampling the regular
        # lattice of tile centres (no intra-tile randomness, no adaptivity).
        picks = _one_per_tile(
            width, height, tile, lambda origin, tw, th: (tw // 2, th // 2))
    elif strategy == "harris":
        if image is None:
            raise ValueError("harris strategy needs the reference image")
        response = harris_response(image)

        def best_in_tile(origin, tw, th):
            u0, v0 = origin
            block = response[v0:v0 + th, u0:u0 + tw]
            flat = int(np.argmax(block))
            return flat % tw, flat // tw

        picks = _one_per_tile(width, height, tile, best_in_tile)
    elif strategy == "loss_tile":
        if loss_map is None:
            raise ValueError("loss_tile strategy needs a loss map")
        return _loss_tile_pixels(width, height, tile, loss_map)
    else:
        raise ValueError(f"unknown tracking sampling strategy: {strategy!r}")

    # Tile-row-major order: the pixel of tile (tx, ty) sits at index
    # ty * tiles_x + tx.  The accelerator's direct-indexing projection
    # unit (Sec. V-C) depends on this lattice layout.
    return picks


def _loss_tile_pixels(width: int, height: int, tile: int,
                      loss_map: np.ndarray) -> np.ndarray:
    """GauSPU-style tile selection: dense tiles ranked by summed loss.

    Matches the one-pixel-per-tile budget: with T tiles of ``tile**2``
    pixels each, selecting ``ceil(T / tile**2)`` whole tiles renders the
    same number of pixels as our sampler but with no global coverage.
    """
    loss_map = np.asarray(loss_map, dtype=float)
    origins = tile_origins(width, height, tile)
    scores = np.array([
        loss_map[v0:v0 + tile, u0:u0 + tile].sum() for u0, v0 in origins
    ])
    budget_pixels = len(origins)
    picked: list = []
    for t in np.argsort(-scores):
        if len(picked) >= budget_pixels:
            break
        u0, v0 = origins[t]
        tw = min(tile, width - u0)
        th = min(tile, height - v0)
        uu, vv = np.meshgrid(np.arange(u0, u0 + tw), np.arange(v0, v0 + th))
        picked.extend(zip(uu.ravel(), vv.ravel()))
    picks = np.asarray(picked[:budget_pixels], dtype=int)
    return picks


def unseen_mask(gamma_final: np.ndarray,
                threshold: float = UNSEEN_TRANSMITTANCE) -> np.ndarray:
    """Eqn. 2: boolean map of pixels whose transmittance exceeds ``threshold``."""
    return np.asarray(gamma_final, dtype=float) > threshold


@dataclass
class MappingSamples:
    """The two pixel sets the mapping sampler produces (Fig. 12).

    They are kept separate because the accelerator stores unseen-pixel
    indices apart from the per-tile lattice so they do not break the
    projection unit's direct-indexing scheme (Sec. V-C).
    """

    unseen: np.ndarray    # (A, 2) every pixel with Gamma_final > 0.5
    weighted: np.ndarray  # (B, 2) one texture-weighted pixel per tile

    @property
    def all_pixels(self) -> np.ndarray:
        """Union of the two sets, duplicates removed, row-major order."""
        combined = np.concatenate([self.unseen, self.weighted], axis=0)
        if combined.size == 0:
            return combined.reshape(0, 2)
        unique = np.unique(combined, axis=0)
        order = np.lexsort((unique[:, 0], unique[:, 1]))
        return unique[order]

    def counts(self) -> dict:
        """Per-strategy pixel counts (the flight recorder's view).

        ``total`` is the size of the deduplicated union — what actually
        gets rendered — so ``unseen + weighted - total`` is the overlap
        between the two strategies.
        """
        return {
            "unseen": int(len(self.unseen)),
            "weighted": int(len(self.weighted)),
            "total": int(len(self.all_pixels)),
        }


def sample_mapping_pixels(
    gamma_final: np.ndarray,
    image: np.ndarray,
    tile: int = MAPPING_TILE,
    rng: np.random.Generator | None = None,
    include_unseen: bool = True,
    include_weighted: bool = True,
    uniform_weights: bool = False,
    weight: np.ndarray | None = None,
) -> MappingSamples:
    """Select mapping pixels per Fig. 12.

    Parameters
    ----------
    gamma_final:
        ``(H, W)`` final transmittance of the *first* forward pass of this
        mapping invocation (the paper computes it once per mapping).
    image:
        ``(H, W, 3)`` reference frame, used for the Sobel texture weight.
    include_unseen / include_weighted:
        Ablation switches for Fig. 24 ("Unseen", "Weighted", "Comb").
    uniform_weights:
        Replace the texture weight with a constant (plain random per tile),
        another Fig. 24 ablation arm.
    weight:
        Precomputed ``(H, W)`` texture-weight map (the Sobel magnitude of
        ``image``).  Keyframe colors never change, so callers can memoize
        the map (:meth:`repro.slam.keyframes.Keyframe.texture_weight`)
        and skip the per-invocation filter; ``uniform_weights`` takes
        precedence.  The sampled sets are identical either way.
    """
    rng = rng or np.random.default_rng()
    gamma_final = np.asarray(gamma_final, dtype=float)
    height, width = gamma_final.shape

    if include_unseen:
        vs, us = np.nonzero(unseen_mask(gamma_final))
        unseen = np.stack([us, vs], axis=-1)
    else:
        unseen = np.zeros((0, 2), dtype=int)

    if include_weighted:
        if uniform_weights:
            weight = np.ones((height, width))
        elif weight is None:
            weight = sobel_magnitude(image)
        # P(p) = w_R(p) * r with r ~ U(0, 1): the argmax per tile is a
        # weighted random draw (larger w_R wins more often).
        score = weight * rng.random((height, width))
        origins = tile_origins(width, height, tile)
        weighted = np.empty_like(origins)
        for i, (u0, v0) in enumerate(origins):
            block = score[v0:v0 + tile, u0:u0 + tile]
            flat = int(np.argmax(block))
            tw = block.shape[1]
            weighted[i] = (u0 + flat % tw, v0 + flat // tw)
    else:
        weighted = np.zeros((0, 2), dtype=int)

    return MappingSamples(unseen=unseen, weighted=weighted)
