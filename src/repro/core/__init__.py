"""SPLATONIC's primary contribution: adaptive sparse pixel sampling and the
pixel-based rendering pipeline (Sec. IV), plus the high-level facade."""

from .foveated import foveation_tile_map, sample_foveated_pixels
from .features import (
    harris_response,
    sobel_gradients,
    sobel_magnitude,
    to_grayscale,
)
from .pixel_pipeline import (
    SparseRenderResult,
    backward_sparse,
    bbox_candidate_ranges,
    render_sparse,
)
from .sampling import (
    MAPPING_TILE,
    TRACKING_TILE,
    UNSEEN_TRANSMITTANCE,
    MappingSamples,
    sample_mapping_pixels,
    sample_tracking_pixels,
    tile_origins,
    unseen_mask,
)
from .splatonic import Splatonic, SplatonicConfig

__all__ = [
    "foveation_tile_map",
    "sample_foveated_pixels",
    "harris_response",
    "sobel_gradients",
    "sobel_magnitude",
    "to_grayscale",
    "SparseRenderResult",
    "render_sparse",
    "backward_sparse",
    "bbox_candidate_ranges",
    "MAPPING_TILE",
    "TRACKING_TILE",
    "UNSEEN_TRANSMITTANCE",
    "MappingSamples",
    "sample_mapping_pixels",
    "sample_tracking_pixels",
    "tile_origins",
    "unseen_mask",
    "Splatonic",
    "SplatonicConfig",
]
