"""Image-feature operators used by the adaptive sampling algorithms.

Sobel gradient magnitude drives the texture-richness weight of the mapping
sampler (Eqn. 3), and the Harris corner response is the feature-based
selection metric compared against random sampling in Fig. 10.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["to_grayscale", "sobel_gradients", "sobel_magnitude",
           "harris_response"]

# ITU-R BT.601 luma weights.
_LUMA = np.array([0.299, 0.587, 0.114])


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` RGB image (or pass through grayscale)."""
    image = np.asarray(image, dtype=float)
    if image.ndim == 2:
        return image
    if image.ndim == 3 and image.shape[-1] == 3:
        return image @ _LUMA
    raise ValueError(f"expected (H, W) or (H, W, 3) image, got {image.shape}")


def sobel_gradients(image: np.ndarray):
    """Return ``(G_x, G_y)`` Sobel derivatives of the (grayscale) image."""
    gray = to_grayscale(image)
    gx = ndimage.sobel(gray, axis=1, mode="nearest")
    gy = ndimage.sobel(gray, axis=0, mode="nearest")
    return gx, gy


def sobel_magnitude(image: np.ndarray) -> np.ndarray:
    """Texture-richness weight ``w_R = sqrt(G_x^2 + G_y^2)`` (Eqn. 3)."""
    gx, gy = sobel_gradients(image)
    return np.hypot(gx, gy)


def harris_response(image: np.ndarray, sigma: float = 1.0,
                    k: float = 0.05) -> np.ndarray:
    """Harris corner response ``det(M) - k * trace(M)^2`` per pixel.

    ``M`` is the structure tensor of Sobel gradients smoothed with a
    Gaussian window of bandwidth ``sigma``.
    """
    gx, gy = sobel_gradients(image)
    ixx = ndimage.gaussian_filter(gx * gx, sigma, mode="nearest")
    iyy = ndimage.gaussian_filter(gy * gy, sigma, mode="nearest")
    ixy = ndimage.gaussian_filter(gx * gy, sigma, mode="nearest")
    det = ixx * iyy - ixy * ixy
    trace = ixx + iyy
    return det - k * trace * trace
