"""Foveated sparse sampling — the paper's broader-applicability extension.

Sec. VIII/IX argue the pixel-based rendering pipeline accelerates any
sparse-pixel workload, foveated VR rendering in particular: sample densely
where the user looks and sparsely in the periphery.  This module provides
that sampler; the pattern feeds straight into
:func:`repro.core.pixel_pipeline.render_sparse`, and
``benchmarks/bench_ext_foveated.py`` quantifies the resulting speedups on
the hardware models.

The image is partitioned at ``periphery_tile`` granularity; each cell is
subdivided according to its eccentricity (distance from the gaze point in
units of ``falloff`` pixels) so the local tile size doubles per falloff
ring, from ``fovea_tile`` at the gaze to ``periphery_tile`` at the edge.
One pixel is sampled per (sub-)tile, matching the one-per-tile lattice
structure of the tracking sampler.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_foveated_pixels", "foveation_tile_map"]


def foveation_tile_map(width: int, height: int, gaze,
                       fovea_tile: int = 2, periphery_tile: int = 16,
                       falloff: float = None) -> np.ndarray:
    """Per-coarse-cell tile size implied by eccentricity.

    Returns an array of shape ``(cells_y, cells_x)`` holding the local
    tile size (a power of two between ``fovea_tile`` and
    ``periphery_tile``) of every ``periphery_tile``-sized cell.
    """
    if fovea_tile <= 0 or periphery_tile < fovea_tile:
        raise ValueError("need 0 < fovea_tile <= periphery_tile")
    if periphery_tile % fovea_tile != 0:
        raise ValueError("periphery_tile must be a multiple of fovea_tile")
    gaze = np.asarray(gaze, dtype=float)
    falloff = falloff if falloff is not None else max(width, height) / 6.0

    cells_x = -(-width // periphery_tile)
    cells_y = -(-height // periphery_tile)
    tile_map = np.empty((cells_y, cells_x), dtype=int)
    for cy in range(cells_y):
        for cx in range(cells_x):
            centre = np.array([
                min((cx + 0.5) * periphery_tile, width),
                min((cy + 0.5) * periphery_tile, height),
            ])
            ecc = np.linalg.norm(centre - gaze) / falloff
            tile = fovea_tile * (2 ** int(ecc))
            tile_map[cy, cx] = min(tile, periphery_tile)
    return tile_map


def sample_foveated_pixels(width: int, height: int, gaze,
                           rng: np.random.Generator = None,
                           fovea_tile: int = 2, periphery_tile: int = 16,
                           falloff: float = None) -> np.ndarray:
    """Draw a gaze-contingent pixel set: dense fovea, sparse periphery.

    Returns ``(K, 2)`` integer pixel coordinates (one per local tile,
    uniformly random within it), ordered cell by cell.
    """
    rng = rng or np.random.default_rng()
    tile_map = foveation_tile_map(width, height, gaze, fovea_tile,
                                  periphery_tile, falloff)
    picks = []
    cells_y, cells_x = tile_map.shape
    for cy in range(cells_y):
        for cx in range(cells_x):
            tile = int(tile_map[cy, cx])
            u0 = cx * periphery_tile
            v0 = cy * periphery_tile
            u1 = min(u0 + periphery_tile, width)
            v1 = min(v0 + periphery_tile, height)
            for v in range(v0, v1, tile):
                for u in range(u0, u1, tile):
                    du = rng.integers(min(tile, u1 - u))
                    dv = rng.integers(min(tile, v1 - v))
                    picks.append((u + du, v + dv))
    return np.asarray(picks, dtype=int)
