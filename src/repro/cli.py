"""Command-line interface.

Ten subcommands::

    repro slam --sequence room0 --out results/      # run SLAM, save outputs
    repro render --scene-seed 7 --out view.ppm      # render a scene
    repro figure fig22                              # regenerate one figure
    repro trace --frames 4 --out trace.json         # traced proxy SLAM run
    repro bench run|compare|attrib                  # perf-trajectory suite
    repro report run.jsonl                          # flight-record report
    repro atlas atlas.jsonl.gz                      # sparsity-atlas heatmaps
    repro top --endpoint localhost:9464             # live run dashboard
    repro runs list|show|ingest|trend|triage|prune  # run registry
    repro info                                      # presets + hw summary

``repro bench`` is the perf-trajectory harness: ``run`` executes the
benchmark suite and writes ``BENCH_trajectory.json``, ``compare`` gates
a trajectory against a committed ``BENCH_baseline.json`` (non-zero exit
on regression — wire it into CI), and ``attrib`` prints the per-hardware-
unit cycle-attribution table with an optional flamegraph export.

``repro slam --flight-record run.jsonl`` records one structured record
per frame (poses, losses, sampling composition, health alerts); ``repro
report run.jsonl`` renders it as a markdown/HTML run report and ``repro
report --diff a.jsonl b.jsonl`` aligns two runs frame-by-frame and
reports where they first diverged (exit 1 on divergence, diff-style).

``repro slam --serve-telemetry`` turns on the live telemetry bus and a
background HTTP exporter (``/metrics`` in Prometheus text format,
``/healthz``, and a ``/runz`` JSON run snapshot); ``repro top
--endpoint localhost:9464`` renders that endpoint as a live terminal
dashboard, and ``repro top --once --from-flight run.jsonl`` renders a
recorded flight log's final snapshot.  ``repro slam --telemetry-stream
TARGET`` additionally streams every bus event as newline-JSON to a
file, ``tcp://host:port``, or ``unix:///path`` socket.

``repro slam --atlas atlas.jsonl.gz`` additionally records the sparsity
atlas — per-frame spatial heatmaps of sampled pixels, candidate/contrib
pairs, Gaussian incidence, and atomic adds — and ``repro atlas`` renders
the artifact as unicode (or HTML) heatmaps with occupancy histograms and
measured-vs-modeled tables.  ``repro trace --profile-memory
--profile-top 15`` adds per-span CPU time and tracemalloc allocation
deltas and prints the top-N self-time/alloc table.

``repro slam --registry [DIR]`` / ``repro bench run --registry [DIR]``
register the finished run (metrics + content-addressed artifacts) in
the append-only run registry (default ``.repro/runs/``); ``repro runs``
is the longitudinal layer on top — ``list``/``show`` browse the index,
``ingest`` registers existing artifacts after the fact, ``trend``
renders per-metric sparkline time series with median+MAD changepoint
detection, ``triage`` walks the evidence chain between two runs and
ranks culprit stages/units, and ``prune`` bounds history.

Global flags: ``-v``/``-q`` adjust log verbosity, ``--version`` prints
the package plus artifact schema versions, and ``--trace PATH``
captures a Chrome trace of *any* subcommand (open it in Perfetto or
``chrome://tracing``; see README "Observability").

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from .obs import configure, get_logger, trace

__all__ = ["main", "build_parser"]

log = get_logger("cli")


def _version_text() -> str:
    """Package version plus every artifact format's schema version."""
    from . import __version__
    from .obs.atlas import ATLAS_SCHEMA_VERSION
    from .obs.bench import SCHEMA_VERSION as BENCH_SCHEMA_VERSION
    from .obs.flight import FLIGHT_SCHEMA_VERSION
    from .obs.prof import PROFILE_SCHEMA_VERSION
    from .obs.runsdb import REGISTRY_SCHEMA_VERSION
    from .obs.telemetry import STREAM_SCHEMA_VERSION

    lines = [f"repro {__version__}", "artifact schema versions:"]
    for name, version in (
            ("flight record", FLIGHT_SCHEMA_VERSION),
            ("bench trajectory", BENCH_SCHEMA_VERSION),
            ("sparsity atlas", ATLAS_SCHEMA_VERSION),
            ("telemetry stream", STREAM_SCHEMA_VERSION),
            ("span profile", PROFILE_SCHEMA_VERSION),
            ("run registry", REGISTRY_SCHEMA_VERSION)):
        lines.append(f"  {name:18s} v{version}")
    return "\n".join(lines)


class _VersionAction(argparse.Action):
    """``--version``: print package + schema versions, then exit."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(_version_text())
        parser.exit(0)


def _add_registry_option(parser, default=None) -> None:
    from .obs.runsdb import DEFAULT_REGISTRY_ROOT

    if default is None:
        # Recording commands: off unless requested, bare flag = default
        # root.  `repro runs` subcommands always have a registry.
        parser.add_argument(
            "--registry", metavar="DIR", nargs="?",
            const=DEFAULT_REGISTRY_ROOT, default=None,
            help="register the finished run in the run registry at DIR "
                 f"(default: {DEFAULT_REGISTRY_ROOT})")
    else:
        parser.add_argument(
            "--registry", metavar="DIR", default=default,
            help=f"run-registry root (default: {default})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPLATONIC: sparse-processing 3DGS SLAM (reproduction)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more log output (repeatable)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less log output (repeatable)")
    parser.add_argument("--trace", dest="trace_out", metavar="PATH",
                        default=None,
                        help="capture a Chrome trace of the subcommand "
                             "and write it to PATH")
    parser.add_argument("--version", action=_VersionAction,
                        help="print the package version and every "
                             "artifact format's schema version")
    sub = parser.add_subparsers(dest="command", required=True)

    p_slam = sub.add_parser("slam", help="run SLAM on a synthetic sequence")
    p_slam.add_argument("--sequence", default="room0")
    p_slam.add_argument("--dataset", choices=["replica", "tum"],
                        default="replica")
    p_slam.add_argument("--algorithm", default="splatam",
                        choices=["splatam", "monogs", "gsslam", "flashslam"])
    p_slam.add_argument("--mode", choices=["sparse", "dense"],
                        default="sparse")
    p_slam.add_argument("--frames", type=int, default=12)
    p_slam.add_argument("--width", type=int, default=64)
    p_slam.add_argument("--height", type=int, default=48)
    p_slam.add_argument("--tracking-tile", type=int, default=8)
    p_slam.add_argument("--kernel-backend",
                        choices=["reference", "vectorized", "parallel"],
                        default=None,
                        help="sparse-kernel backend (default: "
                             "$REPRO_KERNEL_BACKEND or 'reference')")
    p_slam.add_argument("--kernel-workers", type=int, default=None,
                        help="worker-pool size for the 'parallel' backend "
                             "(default: $REPRO_KERNEL_WORKERS or CPU count)")
    p_slam.add_argument("--render-cache", action="store_true", default=None,
                        help="enable the temporal-coherence render cache "
                             "(cross-iteration candidate reuse with exact "
                             "revalidation; bit-identical outputs; default: "
                             "$REPRO_RENDER_CACHE or off)")
    p_slam.add_argument("--per-pixel-records", action="store_true",
                        help="keep the per-item stats record lists during "
                             "the run (off by default: nothing in this "
                             "command reads them)")
    p_slam.add_argument("--seed", type=int, default=0)
    p_slam.add_argument("--out", default=None,
                        help="directory for trajectory/cloud/render outputs")
    p_slam.add_argument("--flight-record", metavar="PATH", default=None,
                        help="record per-frame flight telemetry (JSONL) "
                             "to PATH; render it with `repro report`")
    p_slam.add_argument("--on-alert", choices=["warn", "raise"],
                        default="warn",
                        help="health-monitor escalation policy "
                             "(default: warn)")
    p_slam.add_argument("--atlas", metavar="PATH", default=None,
                        help="record the sparsity atlas (gzip JSONL) to "
                             "PATH; render it with `repro atlas`")
    p_slam.add_argument("--atlas-tile", type=int, default=None,
                        help="atlas binning tile in pixels (default: 8)")
    p_slam.add_argument("--serve-telemetry", metavar="PORT", nargs="?",
                        type=int, const=-1, default=None,
                        help="enable the live telemetry bus and serve "
                             "/metrics /healthz /runz over HTTP "
                             "(default port: 9464; 0 picks an ephemeral "
                             "port); watch it with `repro top`")
    p_slam.add_argument("--telemetry-host", default="127.0.0.1",
                        help="bind host of the telemetry exporter "
                             "(default: 127.0.0.1)")
    p_slam.add_argument("--telemetry-linger", type=float, default=0.0,
                        metavar="SEC",
                        help="keep the telemetry endpoint serving this "
                             "many seconds after the run finishes")
    p_slam.add_argument("--telemetry-stream", metavar="TARGET", default=None,
                        help="stream bus events as newline-JSON to TARGET "
                             "(file path, tcp://host:port, or "
                             "unix:///path); implies the telemetry bus")
    _add_registry_option(p_slam)

    p_render = sub.add_parser("render", help="render a procedural scene or "
                                             "a saved cloud")
    p_render.add_argument("--cloud", default=None,
                          help=".npz cloud saved by `repro slam`")
    p_render.add_argument("--scene-seed", type=int, default=0,
                          help="procedural scene seed (when no --cloud)")
    p_render.add_argument("--width", type=int, default=160)
    p_render.add_argument("--height", type=int, default=120)
    p_render.add_argument("--out", required=True, help="output .ppm path")
    p_render.add_argument("--depth-out", default=None,
                          help="optional depth .pgm path")

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("name", help="e.g. fig11, fig22, area "
                                    "(see `repro figure list`)")

    p_trace = sub.add_parser(
        "trace", help="run a traced proxy SLAM sequence and report the "
                      "per-stage time breakdown")
    p_trace.add_argument("--sequence", default="room0")
    p_trace.add_argument("--dataset", choices=["replica", "tum"],
                         default="replica")
    p_trace.add_argument("--algorithm", default="splatam",
                         choices=["splatam", "monogs", "gsslam", "flashslam"])
    p_trace.add_argument("--mode", choices=["sparse", "dense"],
                         default="sparse")
    p_trace.add_argument("--frames", type=int, default=4)
    p_trace.add_argument("--width", type=int, default=48)
    p_trace.add_argument("--height", type=int, default=36)
    p_trace.add_argument("--tracking-tile", type=int, default=8)
    p_trace.add_argument("--kernel-backend",
                         choices=["reference", "vectorized", "parallel"],
                         default=None,
                         help="sparse-kernel backend (default: "
                              "$REPRO_KERNEL_BACKEND or 'reference')")
    p_trace.add_argument("--kernel-workers", type=int, default=None,
                         help="worker-pool size for the 'parallel' backend "
                              "(default: $REPRO_KERNEL_WORKERS or CPU "
                              "count)")
    p_trace.add_argument("--render-cache", action="store_true", default=None,
                         help="enable the temporal-coherence render cache "
                              "(default: $REPRO_RENDER_CACHE or off); the "
                              "trace gains render.cache_validate/_rebuild "
                              "spans")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace-event JSON output path")
    p_trace.add_argument("--metrics-out", default=None,
                         help="optional metrics-registry JSON output path")
    p_trace.add_argument("--json", action="store_true",
                         help="print the stage table as key-sorted JSON "
                              "instead of markdown")
    p_trace.add_argument("--profile-memory", action="store_true",
                         help="profile per-span allocations with "
                              "tracemalloc (adds overhead)")
    p_trace.add_argument("--profile-top", type=int, default=0,
                         metavar="N",
                         help="print the top-N spans by self time (and "
                              "allocations with --profile-memory)")
    p_trace.add_argument("--profile-out", default=None, metavar="PATH",
                         help="write the span profile as key-sorted JSON")

    p_bench = sub.add_parser(
        "bench", help="perf-trajectory suite: run / compare / attrib")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser(
        "run", help="execute the benchmark suite and write a trajectory")
    b_run.add_argument("--size", default="small",
                       help="suite size (tiny/small/default)")
    b_run.add_argument("--reps", type=int, default=3,
                       help="repetitions per scenario (median + MAD)")
    b_run.add_argument("--scenarios", default=None,
                       help="comma-separated scenario subset (default: all)")
    b_run.add_argument("--sequence", default="room0")
    b_run.add_argument("--kernel-backend",
                       choices=["reference", "vectorized", "parallel"],
                       default=None,
                       help="sparse-kernel backend for the suite's "
                            "renders (exported as $REPRO_KERNEL_BACKEND; "
                            "the 'kernels' scenario always measures all "
                            "backends)")
    b_run.add_argument("--kernel-workers", type=int, default=None,
                       help="worker-pool size for the 'parallel' backend "
                            "(exported as $REPRO_KERNEL_WORKERS)")
    b_run.add_argument("--render-cache", action="store_true", default=None,
                       help="enable the temporal-coherence render cache for "
                            "the suite's SLAM-loop renders (exported as "
                            "$REPRO_RENDER_CACHE; the tracking/mapping "
                            "scenarios always measure cache-on vs cache-off "
                            "legs)")
    b_run.add_argument("--seed", type=int, default=0)
    b_run.add_argument("--out", default="BENCH_trajectory.json",
                       help="trajectory JSON output path")
    _add_registry_option(b_run)

    b_cmp = bench_sub.add_parser(
        "compare", help="gate a trajectory against a committed baseline "
                        "(exit 1 on regression, 2 on structural errors)")
    b_cmp.add_argument("--baseline", default="BENCH_baseline.json")
    b_cmp.add_argument("--current", default="BENCH_trajectory.json")
    b_cmp.add_argument("--counters-only", action="store_true",
                       help="gate only the exact workload counters "
                            "(machine-portable; use in CI)")
    b_cmp.add_argument("--no-wall", action="store_true",
                       help="skip the noise-aware wall-time comparison")
    b_cmp.add_argument("--scenarios", default=None,
                       help="comma-separated scenario subset to compare "
                            "(default: every scenario in the baseline)")
    b_cmp.add_argument("--sections", default=None,
                       help="comma-separated section subset "
                            "(counters,model,wall,overhead); overrides "
                            "--counters-only/--no-wall")
    b_cmp.add_argument("--json-out", default=None,
                       help="optional machine-readable report output path")

    b_att = bench_sub.add_parser(
        "attrib", help="per-hardware-unit cycle attribution of one "
                       "scenario workload")
    b_att.add_argument("--scenario", default="tracking",
                       choices=["tracking", "mapping"])
    b_att.add_argument("--size", default="small",
                       help="suite size (tiny/small/default)")
    b_att.add_argument("--sequence", default="room0")
    b_att.add_argument("--seed", type=int, default=0)
    b_att.add_argument("--out", default=None,
                       help="optional attribution-report JSON output path")
    b_att.add_argument("--trace-out", dest="unit_trace_out", default=None,
                       help="optional per-unit Chrome-trace/flamegraph "
                            "output path")

    p_report = sub.add_parser(
        "report", help="render a flight-record run report, or diff two "
                       "runs frame-by-frame")
    p_report.add_argument("records", nargs="+", metavar="RECORD",
                          help="flight-record JSONL path(s): one to "
                               "report, two with --diff")
    p_report.add_argument("--diff", action="store_true",
                          help="align two records frame-by-frame and "
                               "report the first divergence "
                               "(exit 1 when the runs diverge)")
    p_report.add_argument("--format", choices=["markdown", "html"],
                          default="markdown",
                          help="report output format (default: markdown)")
    p_report.add_argument("--out", default=None,
                          help="write the report here instead of stdout")

    p_atlas = sub.add_parser(
        "atlas", help="render a sparsity-atlas artifact as spatial "
                      "work heatmaps")
    p_atlas.add_argument("artifact", metavar="ARTIFACT",
                         help="atlas path recorded by `repro slam --atlas`")
    p_atlas.add_argument("--channel", default=None,
                         choices=["sampled", "candidates", "contribs",
                                  "gaussians", "atomics"],
                         help="restrict the heatmaps to one channel "
                              "(default: all)")
    p_atlas.add_argument("--frame", type=int, default=None,
                         help="render one frame's grids instead of the "
                              "run aggregates")
    p_atlas.add_argument("--format", choices=["markdown", "html"],
                         default="markdown",
                         help="report output format (default: markdown)")
    p_atlas.add_argument("--out", default=None,
                         help="write the report here instead of stdout")

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a telemetry endpoint "
                    "or a recorded flight log")
    p_top.add_argument("--endpoint", metavar="URL", default=None,
                       help="telemetry exporter to poll, e.g. "
                            "localhost:9464 (from `repro slam "
                            "--serve-telemetry`)")
    p_top.add_argument("--from-flight", metavar="PATH", default=None,
                       help="render a recorded flight-record JSONL "
                            "instead of a live endpoint")
    p_top.add_argument("--once", action="store_true",
                       help="render one snapshot and exit (scriptable; "
                            "no screen clearing)")
    p_top.add_argument("--interval", type=float, default=0.5,
                       help="refresh interval in seconds (default: 0.5)")
    p_top.add_argument("--width", type=int, default=100,
                       help="dashboard width in columns (default: 100)")
    p_top.add_argument("--no-color", action="store_true",
                       help="plain-text output (no ANSI styling or "
                            "screen clearing)")

    from .obs.runsdb import DEFAULT_REGISTRY_ROOT

    p_runs = sub.add_parser(
        "runs", help="run registry: list / show / ingest / trend / "
                     "triage / prune")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    r_list = runs_sub.add_parser(
        "list", help="list registered runs (newest last)")
    _add_registry_option(r_list, default=DEFAULT_REGISTRY_ROOT)
    r_list.add_argument("--kind", default=None,
                        help="restrict to one run kind (slam, bench, ...)")
    r_list.add_argument("--limit", type=int, default=0, metavar="N",
                        help="show only the N most recent runs")
    r_list.add_argument("--json", action="store_true",
                        help="print the index records as JSON")

    r_show = runs_sub.add_parser(
        "show", help="show one registered run's record")
    _add_registry_option(r_show, default=DEFAULT_REGISTRY_ROOT)
    r_show.add_argument("run", metavar="RUN",
                        help="run id, unique id prefix, or sequence "
                             "number (-1 = latest)")

    r_ingest = runs_sub.add_parser(
        "ingest", help="register existing artifacts after the fact")
    _add_registry_option(r_ingest, default=DEFAULT_REGISTRY_ROOT)
    r_ingest.add_argument("--flight", metavar="PATH", default=None,
                          help="flight-record JSONL to ingest as a slam "
                               "run")
    r_ingest.add_argument("--bench", metavar="PATH", default=None,
                          help="BENCH_trajectory.json to ingest as a "
                               "bench run")
    r_ingest.add_argument("--atlas", metavar="PATH", default=None,
                          help="sparsity-atlas artifact to attach")
    r_ingest.add_argument("--attrib", metavar="PATH", default=None,
                          help="cycle-attribution JSON to attach")
    r_ingest.add_argument("--regress", metavar="PATH", default=None,
                          help="bench-compare report JSON to attach")
    r_ingest.add_argument("--sequence", default=None,
                          help="dataset/sequence name override")

    r_trend = runs_sub.add_parser(
        "trend", help="per-metric time series with changepoint detection")
    _add_registry_option(r_trend, default=DEFAULT_REGISTRY_ROOT)
    r_trend.add_argument("--metric", default=None, metavar="GLOBS",
                         help="comma-separated metric-name globs "
                              "(default: wall/ATE/cycles/sparsity "
                              "headline set)")
    r_trend.add_argument("--kind", default=None,
                         help="restrict to one run kind (slam, bench, ...)")
    r_trend.add_argument("--json-out", default=None, metavar="PATH",
                         help="also write the raw series + changepoints "
                              "as JSON")

    r_triage = runs_sub.add_parser(
        "triage", help="walk the evidence chain between two runs and "
                       "rank culprit stages/units")
    _add_registry_option(r_triage, default=DEFAULT_REGISTRY_ROOT)
    r_triage.add_argument("base", metavar="BASE", nargs="?", default="-2",
                          help="baseline run ref (default: second-latest)")
    r_triage.add_argument("current", metavar="CURRENT", nargs="?",
                          default="-1",
                          help="current run ref (default: latest)")
    r_triage.add_argument("--json-out", default=None, metavar="PATH",
                          help="machine-readable report output path")
    r_triage.add_argument("--out", default=None, metavar="PATH",
                          help="write the markdown report here instead "
                               "of stdout")

    r_prune = runs_sub.add_parser(
        "prune", help="keep the N most recent runs; drop unreferenced "
                      "artifact objects")
    _add_registry_option(r_prune, default=DEFAULT_REGISTRY_ROOT)
    r_prune.add_argument("--keep", type=int, required=True, metavar="N",
                         help="number of most recent runs to keep")

    sub.add_parser("info", help="print presets and hardware configuration")
    return parser


def _make_sequence(args, note=None):
    from .datasets import make_replica_sequence, make_tum_sequence

    maker = (make_replica_sequence if args.dataset == "replica"
             else make_tum_sequence)
    (note or log.info)(f"building {args.dataset}/{args.sequence} "
                       f"({args.frames} frames, {args.width}x{args.height}) ...")
    return maker(args.sequence, n_frames=args.frames, width=args.width,
                 height=args.height, surface_density=10)


def _cmd_slam(args) -> int:
    import time as _time

    from .core import SplatonicConfig
    from .io import save_cloud, save_ppm, save_trajectory_tum
    from .metrics import rpe
    from .obs import ingest_pipeline_stats, metrics
    from .obs.atlas import AtlasCollector, DEFAULT_ATLAS_TILE
    from .obs.flight import FlightRecorder
    from .obs.health import HealthConfig, HealthMonitor
    from .obs.telemetry import (
        DEFAULT_PORT,
        TelemetryConfig,
        TelemetryStreamer,
        bus,
    )
    from .render import render_full
    from .gaussians import Camera
    from .slam import SLAMSystem

    sequence = _make_sequence(args)
    system = SLAMSystem(
        args.algorithm, mode=args.mode,
        splatonic_config=SplatonicConfig(
            tracking_tile=args.tracking_tile,
            kernel_backend=args.kernel_backend,
            kernel_workers=args.kernel_workers,
            record_per_pixel=args.per_pixel_records,
            render_cache=args.render_cache),
        seed=args.seed)
    flight = None
    health = None
    atlas = None
    if args.flight_record:
        flight = FlightRecorder()
        flight.enable(args.flight_record)
        health = HealthMonitor(HealthConfig(on_alert=args.on_alert))
    if args.atlas:
        atlas = AtlasCollector(tile=args.atlas_tile or DEFAULT_ATLAS_TILE)
        atlas.enable(args.atlas)

    telemetry_on = (args.serve_telemetry is not None
                    or args.telemetry_stream is not None)
    server = None
    streamer = None
    if telemetry_on:
        from .obs.promexport import serve_telemetry

        bus.enable()
        if health is None:
            # Live runs always watch health so alerts reach the ticker.
            health = HealthMonitor(HealthConfig(on_alert=args.on_alert))
        if args.serve_telemetry is not None:
            port = (DEFAULT_PORT if args.serve_telemetry < 0
                    else args.serve_telemetry)
            server = serve_telemetry(TelemetryConfig(
                host=args.telemetry_host, port=port))
            log.info(f"serving telemetry on {server.url} "
                     f"(/metrics /healthz /runz); watch with "
                     f"`repro top --endpoint {server.url}`")
        if args.telemetry_stream is not None:
            streamer = TelemetryStreamer(args.telemetry_stream).start()
            if streamer.failed:
                log.warning(f"telemetry stream target "
                            f"{args.telemetry_stream} unavailable "
                            f"({streamer.error}); run continues, events "
                            f"count as dropped")
            else:
                log.info(f"streaming telemetry to {args.telemetry_stream}")

    registry = None
    if args.registry:
        from .obs.runsdb import RunRegistry

        registry = RunRegistry(args.registry)

    log.info(f"running {args.algorithm} ({args.mode}) ...")
    try:
        result = system.run(sequence, flight=flight, health=health,
                            atlas=atlas, registry=registry)
        if telemetry_on:
            # Fold the run's stage totals into the registry so the final
            # /metrics scrape carries the workload counters too.
            for stage in SLAMSystem.STAGES:
                ingest_pipeline_stats(stage, result.stage_stats[stage])
            metrics.publish_snapshot()
    finally:
        if telemetry_on and args.telemetry_linger > 0:
            log.info(f"telemetry endpoint lingering "
                     f"{args.telemetry_linger:g} s ...")
            _time.sleep(args.telemetry_linger)
        if streamer is not None:
            stats = streamer.stop()
            log.info(f"telemetry stream: {stats['lines']} lines to "
                     f"{stats['target']} ({stats['dropped']} dropped)")
        if server is not None:
            stats = server.stop()
            log.info(f"telemetry endpoint {stats['url']} closed "
                     f"({stats['delivered']} events, "
                     f"{stats['dropped']} dropped)")
        if telemetry_on:
            bus.disable()
        if flight is not None:
            flight.disable()
        if atlas is not None:
            atlas.disable()
    if flight is not None:
        n_alerts = len(health.alerts)
        log.info(f"wrote {len(flight.records)} flight records to "
                 f"{args.flight_record} ({n_alerts} health alerts); "
                 f"render with `repro report {args.flight_record}`")
    if atlas is not None:
        log.info(f"wrote sparsity atlas ({atlas.tile}px tiles) to "
                 f"{args.atlas}; render with `repro atlas {args.atlas}`")
    if result.run_id is not None:
        log.info(f"registered run {result.run_id} in {args.registry}; "
                 f"inspect with `repro runs show {result.run_id} "
                 f"--registry {args.registry}`")

    ate = result.ate()
    drift = rpe(result.est_trajectory, result.gt_trajectory)
    quality = result.eval_quality(sequence)
    log.info(f"ATE  : {ate.rmse * 100:.2f} cm (rmse), "
             f"{ate.median * 100:.2f} cm (median)")
    log.info(f"RPE  : {drift.trans_rmse * 100:.2f} cm, "
             f"{np.rad2deg(drift.rot_rmse):.2f} deg per frame")
    log.info(f"PSNR : {quality['psnr']:.2f} dB   "
             f"SSIM: {quality['ssim']:.3f}   "
             f"depth L1: {quality['depth_l1']:.3f} m")
    log.info(f"map  : {len(result.cloud)} Gaussians after "
             f"{result.mapping_invocations} mapping invocations")

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        save_trajectory_tum(os.path.join(args.out, "trajectory_est.txt"),
                            result.est_trajectory)
        save_trajectory_tum(os.path.join(args.out, "trajectory_gt.txt"),
                            result.gt_trajectory)
        save_cloud(os.path.join(args.out, "cloud.npz"), result.cloud)
        cam = Camera(sequence.intrinsics, result.est_trajectory[-1])
        view = render_full(result.cloud, cam, np.full(3, 0.05),
                           keep_cache=False)
        save_ppm(os.path.join(args.out, "final_view.ppm"), view.color)
        log.info(f"wrote trajectory_est.txt / trajectory_gt.txt / cloud.npz "
                 f"/ final_view.ppm to {args.out}")
    return 0


def _cmd_render(args) -> int:
    from .datasets import SceneSpec, make_room_scene
    from .datasets.trajectory import look_at
    from .gaussians import Camera, Intrinsics
    from .io import load_cloud, save_pgm, save_ppm
    from .render import render_full

    if args.cloud:
        cloud = load_cloud(args.cloud)
        from .render.anisotropic import AnisotropicCloud
        if isinstance(cloud, AnisotropicCloud):
            raise SystemExit(
                "render: anisotropic clouds render through "
                "repro.render.render_sparse_anisotropic (API only)")
    else:
        cloud = make_room_scene(SceneSpec(seed=args.scene_seed))
    intr = Intrinsics.from_fov(args.width, args.height, 75.0)
    camera = Camera(intr, look_at(np.array([0.3, -0.2, -0.3]),
                                  np.array([2.5, 0.0, 1.0])))
    result = render_full(cloud, camera, np.full(3, 0.05), keep_cache=False)
    save_ppm(args.out, result.color)
    log.info(f"wrote {args.out} ({args.width}x{args.height}, "
             f"{len(cloud)} Gaussians)")
    if args.depth_out:
        save_pgm(args.depth_out, result.depth)
        log.info(f"wrote {args.depth_out}")
    return 0


_FIGURES = {
    "fig04": "fig04_latency", "fig05": "fig05_breakdown",
    "fig07": "fig07_utilization", "fig08": "fig08_aggregation",
    "fig09": "fig09_alpha_share", "fig10": "fig10_strategies",
    "fig11": "fig11_raster_speedup", "fig14": "fig14_bottleneck_shift",
    "fig17": "fig17_replica_accuracy", "fig18": "fig18_tum_accuracy",
    "fig19": "fig19_gpu_e2e", "fig20": "fig20_mapping_gpu",
    "fig21": "fig21_stage_speedup", "fig22": "fig22_accel_tracking",
    "fig23": "fig23_accel_mapping", "fig24": "fig24_mapping_ablation",
    "fig25": "fig25_sampling_sensitivity",
    "fig26": "fig26_accuracy_sensitivity",
    "fig27": "fig27_unit_sensitivity", "area": "area_table",
    "lut": "ablation_lut", "aggregation": "ablation_aggregation_unit",
    "gamma-cache": "ablation_gamma_cache",
    "bbox-index": "ablation_bbox_indexing",
    "preemptive": "ablation_preemptive_alpha",
}


def _cmd_figure(args) -> int:
    from .bench import figures, print_table

    if args.name == "list":
        for key in sorted(_FIGURES):
            fn = getattr(figures, _FIGURES[key])
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:8s} {summary}")
        return 0
    if args.name not in _FIGURES:
        raise SystemExit(
            f"unknown figure {args.name!r}; try `repro figure list`")
    fn = getattr(figures, _FIGURES[args.name])
    log.info(f"running {args.name} ({fn.__name__}) — this may take a "
             f"while ...")
    rows = fn()
    print_table(args.name, rows)
    return 0


def _cmd_trace(args) -> int:
    """Run a proxy SLAM sequence under the tracer and report per stage."""
    import json

    from .core import SplatonicConfig
    from .obs import ingest_pipeline_stats, metrics
    from .slam import SLAMSystem

    # In --json mode keep stdout parseable at default verbosity.
    note = log.debug if args.json else log.info

    sequence = _make_sequence(args, note=note)
    # Per-item records stay on: ingest_pipeline_stats derives the
    # warp-utilization metrics from them.
    system = SLAMSystem(
        args.algorithm, mode=args.mode,
        splatonic_config=SplatonicConfig(
            tracking_tile=args.tracking_tile,
            kernel_backend=args.kernel_backend,
            kernel_workers=args.kernel_workers,
            render_cache=args.render_cache),
        seed=args.seed)
    note(f"tracing {args.algorithm} ({args.mode}) ...")
    with trace.capture(memory=args.profile_memory or None):
        result = system.run(sequence)

    for stage in SLAMSystem.STAGES:
        ingest_pipeline_stats(stage, result.stage_stats[stage])

    n_events = trace.write_chrome_trace(args.out)
    top_n = args.profile_top
    if top_n <= 0 and args.profile_memory:
        top_n = 10  # memory profiling without a table would be silent
    if args.json:
        payload = {
            "scenario": {
                "algorithm": args.algorithm,
                "mode": args.mode,
                "sequence": args.sequence,
                "frames": result.num_frames,
                "width": args.width,
                "height": args.height,
            },
            "stages": [
                {"span": row["span"], "count": row["count"],
                 "total_s": round(row["total_s"], 6),
                 "self_s": round(row["self_s"], 6)}
                for row in trace.stage_table()
            ],
            "trace_events": n_events,
            "trace_path": args.out,
        }
        if top_n > 0:
            from .obs import prof
            payload["profile"] = prof.top_spans(n=top_n)
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(trace.format_summary(
            title=f"stage times — {args.algorithm}/{args.mode}, "
                  f"{result.num_frames} frames"))
        if top_n > 0:
            from .obs import prof
            print(prof.format_top_table(n=top_n))
    note(f"wrote {n_events} trace events to {args.out} "
         f"(load in Perfetto / chrome://tracing)")
    if args.profile_out:
        from .obs import prof
        prof.write_profile(args.profile_out)
        note(f"wrote span profile to {args.profile_out}")
    if args.metrics_out:
        metrics.write_json(args.metrics_out)
        note(f"wrote metrics registry to {args.metrics_out}")
    return 0


def _cmd_bench(args) -> int:
    handlers = {
        "run": _cmd_bench_run,
        "compare": _cmd_bench_compare,
        "attrib": _cmd_bench_attrib,
    }
    return handlers[args.bench_command](args)


def _cmd_bench_run(args) -> int:
    import os

    from .obs import bench as obs_bench

    if args.kernel_backend:
        # Scenarios build their own systems; the environment variable is
        # the one channel that reaches all of them.
        os.environ["REPRO_KERNEL_BACKEND"] = args.kernel_backend
    if args.kernel_workers:
        os.environ["REPRO_KERNEL_WORKERS"] = str(args.kernel_workers)
    if args.render_cache:
        os.environ["REPRO_RENDER_CACHE"] = "1"
    cfg = obs_bench.SuiteConfig(size=args.size, repetitions=args.reps,
                                sequence=args.sequence, seed=args.seed)
    names = ([s.strip() for s in args.scenarios.split(",") if s.strip()]
             if args.scenarios else None)
    payload = obs_bench.run_suite(cfg, scenarios=names)
    obs_bench.write_trajectory(payload, args.out)
    log.info(f"wrote {len(payload['scenarios'])} scenarios to {args.out} "
             f"(schema v{payload['schema_version']})")
    if args.registry:
        from .obs.runsdb import RunRegistry, ingest_bench_payload

        record = ingest_bench_payload(RunRegistry(args.registry), payload)
        log.info(f"registered bench run {record['run_id']} in "
                 f"{args.registry}")
    return 0


def _cmd_bench_compare(args) -> int:
    from .obs import regress

    if args.sections:
        sections = [s.strip() for s in args.sections.split(",") if s.strip()]
        unknown = set(sections) - set(regress.DEFAULT_SECTIONS)
        if unknown:
            raise SystemExit(f"unknown sections {sorted(unknown)}; choose "
                             f"from {list(regress.DEFAULT_SECTIONS)}")
    else:
        sections = list(regress.DEFAULT_SECTIONS)
        if args.counters_only:
            sections = ["counters"]
        elif args.no_wall:
            sections = [s for s in sections if s != "wall"]

    if args.scenarios:
        # Restrict both payloads to the requested scenarios so a partial
        # current run (e.g. CI gating one scenario) doesn't report every
        # other baseline scenario as removed.
        wanted = {s.strip() for s in args.scenarios.split(",") if s.strip()}
        report = regress.RegressionReport()
        docs = {}
        for label, path in (("baseline", args.baseline),
                            ("current", args.current)):
            try:
                docs[label] = regress.load_trajectory(path)
            except (OSError, ValueError) as exc:
                report.errors.append(f"{label} file unreadable: {exc}")
        if not report.errors:
            for doc in docs.values():
                scenarios = doc.get("scenarios")
                if isinstance(scenarios, dict):
                    doc["scenarios"] = {k: v for k, v in scenarios.items()
                                        if k in wanted}
            report = regress.compare_runs(docs["current"], docs["baseline"],
                                          sections=sections)
    else:
        report = regress.compare_files(args.current, args.baseline,
                                       sections=sections)
    print(report.format_markdown())
    if args.json_out:
        report.write_json(args.json_out)
        log.info(f"wrote comparison report to {args.json_out}")
    return report.exit_code


def _cmd_bench_attrib(args) -> int:
    from .bench.scenarios import (
        build_bundle,
        mapping_workloads,
        tracking_workloads,
    )
    from .obs import attrib as obs_attrib
    from .obs.bench import SIZES

    if args.size not in SIZES:
        raise SystemExit(
            f"unknown size {args.size!r}; choose from {sorted(SIZES)}")
    spec = SIZES[args.size]
    log.info(f"building {args.scenario} workload "
             f"({spec.width}x{spec.height}, {spec.frames} frames) ...")
    # Capture the workload measurement so the report can fold measured
    # wall self-times per paper stage next to the modeled cycles.
    with trace.capture():
        bundle = build_bundle(args.sequence, width=spec.width,
                              height=spec.height, n_frames=spec.frames,
                              seed=args.seed)
        if args.scenario == "tracking":
            workloads = tracking_workloads(bundle, tile=spec.tracking_tile,
                                           seed=args.seed)
        else:
            workloads = mapping_workloads(bundle, tile=spec.mapping_tile,
                                          seed=args.seed)
    report = obs_attrib.attribute_workload(
        workloads["pixel"], scenario=f"{args.scenario}/{args.size}",
        tracer=trace)
    print(report.format_table())
    if args.out:
        report.write_json(args.out)
        log.info(f"wrote attribution report to {args.out}")
    if args.unit_trace_out:
        n_events = report.write_chrome_trace(args.unit_trace_out)
        log.info(f"wrote {n_events} per-unit trace events to "
                 f"{args.unit_trace_out}")
    return 0


def _cmd_runs(args) -> int:
    handlers = {
        "list": _cmd_runs_list,
        "show": _cmd_runs_show,
        "ingest": _cmd_runs_ingest,
        "trend": _cmd_runs_trend,
        "triage": _cmd_runs_triage,
        "prune": _cmd_runs_prune,
    }
    return handlers[args.runs_command](args)


def _cmd_runs_list(args) -> int:
    import json

    from .obs.runsdb import RunRegistry

    registry = RunRegistry(args.registry)
    try:
        records = registry.runs(kind=args.kind)
    except ValueError as exc:
        raise SystemExit(f"runs list: {exc}")
    if args.limit > 0:
        records = records[-args.limit:]
    if args.json:
        print(json.dumps(records, indent=1, sort_keys=True))
        return 0
    if not records:
        print(f"registry {args.registry} is empty; record runs with "
              f"`repro slam --registry` / `repro bench run --registry` "
              f"or `repro runs ingest`")
        return 0
    print(f"| seq | run id | kind | created | dataset | config | "
          f"artifacts |")
    print(f"|---:|---|---|---|---|---|---|")
    for record in records:
        key = record.get("key") or {}
        arts = ",".join(sorted(record.get("artifacts") or {})) or "—"
        print(f"| {record.get('seq')} | {record.get('run_id')} "
              f"| {record.get('kind')} | {record.get('created')} "
              f"| {key.get('dataset') or '—'} "
              f"| {key.get('config_hash') or '—'} | {arts} |")
    stats = registry.stats()
    print(f"\n{stats['runs']} runs, {stats['objects']} objects, "
          f"{stats['bytes']} bytes in {stats['root']}")
    return 0


def _cmd_runs_show(args) -> int:
    import json

    from .obs.runsdb import RunRegistry

    registry = RunRegistry(args.registry)
    try:
        record = registry.get(args.run)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"runs show: {exc}")
    print(json.dumps(record, indent=1, sort_keys=True))
    return 0


def _cmd_runs_ingest(args) -> int:
    import json

    from .obs import runsdb

    sources = [s for s in (args.flight, args.bench) if s]
    if len(sources) != 1:
        raise SystemExit("runs ingest needs exactly one of --flight PATH "
                         "or --bench PATH")
    registry = runsdb.RunRegistry(args.registry)
    extra = {}
    for name, path in (("atlas", args.atlas), ("attrib", args.attrib),
                       ("regress", args.regress)):
        if path:
            extra[name] = path
    try:
        if args.flight:
            with open(args.flight, encoding="utf-8") as f:
                records = [json.loads(line) for line in f if line.strip()]
            record = runsdb.ingest_slam_run(
                registry, records, sequence=args.sequence,
                extra_artifacts=extra or None)
        else:
            from .obs.regress import load_trajectory

            record = runsdb.ingest_bench_payload(
                registry, load_trajectory(args.bench),
                extra_artifacts=extra or None)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"runs ingest: {exc}")
    log.info(f"registered {record['kind']} run {record['run_id']} "
             f"(seq {record['seq']}, "
             f"{len(record['artifacts'])} artifacts) in {args.registry}")
    print(record["run_id"])
    return 0


def _cmd_runs_trend(args) -> int:
    import json

    from .obs import triage as obs_triage
    from .obs.runsdb import RunRegistry

    registry = RunRegistry(args.registry)
    try:
        records = registry.runs(kind=args.kind)
    except ValueError as exc:
        raise SystemExit(f"runs trend: {exc}")
    patterns = ([p.strip() for p in args.metric.split(",") if p.strip()]
                if args.metric else None)
    print(obs_triage.format_trend(records, patterns=patterns))
    if args.json_out:
        selected = obs_triage.select_metrics(records, patterns)
        payload = {}
        for name in selected:
            series = obs_triage.metric_series(records, name)
            if len(series) < 2:
                continue
            step = obs_triage.detect_step(
                [v for _s, _r, v in series],
                seqs=[s for s, _r, _v in series])
            payload[name] = {
                "series": [{"seq": s, "run_id": r, "value": v}
                           for s, r, v in series],
                "changepoint": None if step is None else {
                    "seq": step.seq, "before": step.before,
                    "after": step.after, "rel": step.rel},
            }
        with open(args.json_out, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        log.info(f"wrote trend series to {args.json_out}")
    return 0


def _cmd_runs_triage(args) -> int:
    from .obs import triage as obs_triage
    from .obs.runsdb import RunRegistry

    registry = RunRegistry(args.registry)
    try:
        base = registry.get(args.base)
        current = registry.get(args.current)
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"runs triage: {exc} (registry {args.registry})")
    report = obs_triage.triage_runs(registry, base, current)
    text = report.format_markdown()
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        log.info(f"wrote triage report to {args.out}")
    else:
        print(text, end="")
    if args.json_out:
        report.write_json(args.json_out)
        log.info(f"wrote triage report to {args.json_out}")
    return 0


def _cmd_runs_prune(args) -> int:
    from .obs.runsdb import RunRegistry

    registry = RunRegistry(args.registry)
    try:
        result = registry.prune(args.keep)
    except ValueError as exc:
        raise SystemExit(f"runs prune: {exc}")
    log.info(f"pruned {result['removed_runs']} runs, "
             f"{result['removed_objects']} objects "
             f"({result['freed_bytes']} bytes freed); "
             f"{result['kept_runs']} runs kept")
    return 0


def _cmd_report(args) -> int:
    from .obs.flight import read_flight_record
    from .obs.report import diff_runs, render_report

    def _emit(text: str) -> None:
        if args.out:
            with open(args.out, "w") as f:
                f.write(text)
            log.info(f"wrote report to {args.out}")
        else:
            print(text, end="")

    if args.diff:
        if len(args.records) != 2:
            raise SystemExit("report --diff needs exactly two records")
        a = read_flight_record(args.records[0])
        b = read_flight_record(args.records[1])
        diff = diff_runs(a, b)
        _emit(diff.format_markdown())
        # diff-style exit code: 0 identical, 1 diverged.
        return 1 if diff.diverged else 0
    if len(args.records) != 1:
        raise SystemExit("report renders exactly one record "
                         "(use --diff for two)")
    log_data = read_flight_record(args.records[0])
    _emit(render_report(log_data, fmt=args.format))
    return 0


def _cmd_atlas(args) -> int:
    from .obs.atlas import read_atlas
    from .obs.report import render_atlas_report

    atlas_log = read_atlas(args.artifact)
    if args.frame is not None and not (
            0 <= args.frame < atlas_log.num_frames):
        raise SystemExit(f"frame {args.frame} out of range "
                         f"(artifact has {atlas_log.num_frames} frames)")
    text = render_atlas_report(atlas_log, fmt=args.format,
                               channel=args.channel, frame=args.frame)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        log.info(f"wrote atlas report to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_top(args) -> int:
    from .obs import top as obs_top

    if bool(args.endpoint) == bool(args.from_flight):
        raise SystemExit("top needs exactly one of --endpoint URL or "
                         "--from-flight PATH")
    if args.from_flight:
        try:
            source = obs_top.FlightSource(args.from_flight)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"top: cannot read flight record: {exc}")
    else:
        source = obs_top.HttpSource(args.endpoint)
    try:
        obs_top.run_top(source, interval=args.interval, once=args.once,
                        width=args.width, color=not args.no_color)
    except OSError as exc:
        raise SystemExit(f"top: cannot reach {args.endpoint}: {exc}")
    return 0


def _cmd_info(_args) -> int:
    from . import __version__
    from .hw import GpuSpec, SplatonicHwConfig, splatonic_area
    from .slam import ALGORITHMS

    log.info(f"repro {__version__} — SPLATONIC reproduction (HPCA 2026)")
    log.info("\nalgorithm presets:")
    for name, cfg in ALGORITHMS.items():
        log.info(f"  {name:10s} track_iters={cfg.tracking_iters:3d} "
                 f"map_iters={cfg.mapping_iters:3d} "
                 f"map_every={cfg.map_every} "
                 f"kf_window={cfg.keyframe_window}")
    spec = GpuSpec()
    log.info(f"\nGPU model: {spec.name}, {spec.sms} SMs x "
             f"{spec.cores_per_sm} cores @ {spec.clock_hz / 1e6:.0f} MHz")
    hw = SplatonicHwConfig()
    area = splatonic_area(hw)
    log.info(f"SPLATONIC-HW: {hw.projection_units} projection units x "
             f"{hw.alpha_filters_per_unit} alpha-filters, "
             f"{hw.sorting_units} sorters, {hw.raster_engines} raster "
             f"engines, {area.total:.2f} mm^2 @ 16 nm")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure(args.verbose - args.quiet)
    handlers = {
        "slam": _cmd_slam,
        "render": _cmd_render,
        "figure": _cmd_figure,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "report": _cmd_report,
        "atlas": _cmd_atlas,
        "top": _cmd_top,
        "runs": _cmd_runs,
        "info": _cmd_info,
    }
    # Global --trace: capture the whole subcommand (the `trace` and `bench`
    # subcommands manage their own capture windows and output paths).
    capture_path = (args.trace_out
                    if args.command not in ("trace", "bench") else None)
    if capture_path:
        trace.enable(reset=True)
    try:
        code = handlers[args.command](args)
    finally:
        if capture_path:
            trace.disable()
            n_events = trace.write_chrome_trace(capture_path)
            print(trace.format_summary(title=f"trace — {args.command}"))
            log.info(f"wrote {n_events} trace events to {capture_path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
