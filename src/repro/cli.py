"""Command-line interface.

Four subcommands::

    repro slam --sequence room0 --out results/      # run SLAM, save outputs
    repro render --scene-seed 7 --out view.ppm      # render a scene
    repro figure fig22                              # regenerate one figure
    repro info                                      # presets + hw summary

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPLATONIC: sparse-processing 3DGS SLAM (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_slam = sub.add_parser("slam", help="run SLAM on a synthetic sequence")
    p_slam.add_argument("--sequence", default="room0")
    p_slam.add_argument("--dataset", choices=["replica", "tum"],
                        default="replica")
    p_slam.add_argument("--algorithm", default="splatam",
                        choices=["splatam", "monogs", "gsslam", "flashslam"])
    p_slam.add_argument("--mode", choices=["sparse", "dense"],
                        default="sparse")
    p_slam.add_argument("--frames", type=int, default=12)
    p_slam.add_argument("--width", type=int, default=64)
    p_slam.add_argument("--height", type=int, default=48)
    p_slam.add_argument("--tracking-tile", type=int, default=8)
    p_slam.add_argument("--seed", type=int, default=0)
    p_slam.add_argument("--out", default=None,
                        help="directory for trajectory/cloud/render outputs")

    p_render = sub.add_parser("render", help="render a procedural scene or "
                                             "a saved cloud")
    p_render.add_argument("--cloud", default=None,
                          help=".npz cloud saved by `repro slam`")
    p_render.add_argument("--scene-seed", type=int, default=0,
                          help="procedural scene seed (when no --cloud)")
    p_render.add_argument("--width", type=int, default=160)
    p_render.add_argument("--height", type=int, default=120)
    p_render.add_argument("--out", required=True, help="output .ppm path")
    p_render.add_argument("--depth-out", default=None,
                          help="optional depth .pgm path")

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("name", help="e.g. fig11, fig22, area "
                                    "(see `repro figure list`)")

    sub.add_parser("info", help="print presets and hardware configuration")
    return parser


def _cmd_slam(args) -> int:
    from .datasets import make_replica_sequence, make_tum_sequence
    from .core import SplatonicConfig
    from .io import save_cloud, save_ppm, save_trajectory_tum
    from .metrics import rpe
    from .render import render_full
    from .gaussians import Camera
    from .slam import SLAMSystem

    maker = (make_replica_sequence if args.dataset == "replica"
             else make_tum_sequence)
    print(f"building {args.dataset}/{args.sequence} "
          f"({args.frames} frames, {args.width}x{args.height}) ...")
    sequence = maker(args.sequence, n_frames=args.frames, width=args.width,
                     height=args.height, surface_density=10)
    system = SLAMSystem(
        args.algorithm, mode=args.mode,
        splatonic_config=SplatonicConfig(tracking_tile=args.tracking_tile),
        seed=args.seed)
    print(f"running {args.algorithm} ({args.mode}) ...")
    result = system.run(sequence)

    ate = result.ate()
    drift = rpe(result.est_trajectory, result.gt_trajectory)
    quality = result.eval_quality(sequence)
    print(f"ATE  : {ate.rmse * 100:.2f} cm (rmse), "
          f"{ate.median * 100:.2f} cm (median)")
    print(f"RPE  : {drift.trans_rmse * 100:.2f} cm, "
          f"{np.rad2deg(drift.rot_rmse):.2f} deg per frame")
    print(f"PSNR : {quality['psnr']:.2f} dB   SSIM: {quality['ssim']:.3f}   "
          f"depth L1: {quality['depth_l1']:.3f} m")
    print(f"map  : {len(result.cloud)} Gaussians after "
          f"{result.mapping_invocations} mapping invocations")

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        save_trajectory_tum(os.path.join(args.out, "trajectory_est.txt"),
                            result.est_trajectory)
        save_trajectory_tum(os.path.join(args.out, "trajectory_gt.txt"),
                            result.gt_trajectory)
        save_cloud(os.path.join(args.out, "cloud.npz"), result.cloud)
        cam = Camera(sequence.intrinsics, result.est_trajectory[-1])
        view = render_full(result.cloud, cam, np.full(3, 0.05),
                           keep_cache=False)
        save_ppm(os.path.join(args.out, "final_view.ppm"), view.color)
        print(f"wrote trajectory_est.txt / trajectory_gt.txt / cloud.npz / "
              f"final_view.ppm to {args.out}")
    return 0


def _cmd_render(args) -> int:
    from .datasets import SceneSpec, make_room_scene
    from .datasets.trajectory import look_at
    from .gaussians import Camera, Intrinsics
    from .io import load_cloud, save_pgm, save_ppm
    from .render import render_full

    if args.cloud:
        cloud = load_cloud(args.cloud)
        from .render.anisotropic import AnisotropicCloud
        if isinstance(cloud, AnisotropicCloud):
            raise SystemExit(
                "render: anisotropic clouds render through "
                "repro.render.render_sparse_anisotropic (API only)")
    else:
        cloud = make_room_scene(SceneSpec(seed=args.scene_seed))
    intr = Intrinsics.from_fov(args.width, args.height, 75.0)
    camera = Camera(intr, look_at(np.array([0.3, -0.2, -0.3]),
                                  np.array([2.5, 0.0, 1.0])))
    result = render_full(cloud, camera, np.full(3, 0.05), keep_cache=False)
    save_ppm(args.out, result.color)
    print(f"wrote {args.out} ({args.width}x{args.height}, "
          f"{len(cloud)} Gaussians)")
    if args.depth_out:
        save_pgm(args.depth_out, result.depth)
        print(f"wrote {args.depth_out}")
    return 0


_FIGURES = {
    "fig04": "fig04_latency", "fig05": "fig05_breakdown",
    "fig07": "fig07_utilization", "fig08": "fig08_aggregation",
    "fig09": "fig09_alpha_share", "fig10": "fig10_strategies",
    "fig11": "fig11_raster_speedup", "fig14": "fig14_bottleneck_shift",
    "fig17": "fig17_replica_accuracy", "fig18": "fig18_tum_accuracy",
    "fig19": "fig19_gpu_e2e", "fig20": "fig20_mapping_gpu",
    "fig21": "fig21_stage_speedup", "fig22": "fig22_accel_tracking",
    "fig23": "fig23_accel_mapping", "fig24": "fig24_mapping_ablation",
    "fig25": "fig25_sampling_sensitivity",
    "fig26": "fig26_accuracy_sensitivity",
    "fig27": "fig27_unit_sensitivity", "area": "area_table",
    "lut": "ablation_lut", "aggregation": "ablation_aggregation_unit",
    "gamma-cache": "ablation_gamma_cache",
    "bbox-index": "ablation_bbox_indexing",
    "preemptive": "ablation_preemptive_alpha",
}


def _cmd_figure(args) -> int:
    from .bench import figures, print_table

    if args.name == "list":
        for key in sorted(_FIGURES):
            fn = getattr(figures, _FIGURES[key])
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:8s} {summary}")
        return 0
    if args.name not in _FIGURES:
        raise SystemExit(
            f"unknown figure {args.name!r}; try `repro figure list`")
    fn = getattr(figures, _FIGURES[args.name])
    print(f"running {args.name} ({fn.__name__}) — this may take a while ...")
    rows = fn()
    print_table(args.name, rows)
    return 0


def _cmd_info(_args) -> int:
    from . import __version__
    from .hw import GpuSpec, SplatonicHwConfig, splatonic_area
    from .slam import ALGORITHMS

    print(f"repro {__version__} — SPLATONIC reproduction (HPCA 2026)")
    print("\nalgorithm presets:")
    for name, cfg in ALGORITHMS.items():
        print(f"  {name:10s} track_iters={cfg.tracking_iters:3d} "
              f"map_iters={cfg.mapping_iters:3d} map_every={cfg.map_every} "
              f"kf_window={cfg.keyframe_window}")
    spec = GpuSpec()
    print(f"\nGPU model: {spec.name}, {spec.sms} SMs x "
          f"{spec.cores_per_sm} cores @ {spec.clock_hz / 1e6:.0f} MHz")
    hw = SplatonicHwConfig()
    area = splatonic_area(hw)
    print(f"SPLATONIC-HW: {hw.projection_units} projection units x "
          f"{hw.alpha_filters_per_unit} alpha-filters, "
          f"{hw.sorting_units} sorters, {hw.raster_engines} raster engines, "
          f"{area.total:.2f} mm^2 @ 16 nm")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "slam": _cmd_slam,
        "render": _cmd_render,
        "figure": _cmd_figure,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
