"""Paper-vs-measured bookkeeping for EXPERIMENTS.md.

``PAPER_CLAIMS`` records the headline quantity of every figure as the
paper states it; :func:`compare` lines a measured value up against the
claim and grades the *shape* (who wins / direction / order of magnitude),
which is the reproduction contract of this repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["PaperClaim", "PAPER_CLAIMS", "compare", "format_comparison"]


@dataclass(frozen=True)
class PaperClaim:
    """One headline number of a paper figure."""

    figure: str
    metric: str
    value: float
    unit: str = ""
    kind: str = "ratio"      # "ratio" | "share" | "absolute"
    note: str = ""


PAPER_CLAIMS: Dict[str, PaperClaim] = {c.figure + ":" + c.metric: c for c in [
    PaperClaim("fig04", "tracking_dominates", 4.0, "x",
               note="amortized tracking ~4x mapping latency"),
    PaperClaim("fig05", "raster_stages_share", 0.947, "", "share",
               note="raster + reverse raster share of execution"),
    PaperClaim("fig07", "thread_utilization", 0.283, "", "share",
               note="mean GPU thread utilization in rasterization"),
    PaperClaim("fig08", "aggregation_share", 0.635, "", "share",
               note="aggregation share of reverse rasterization"),
    PaperClaim("fig09", "alpha_share_raster", 0.434, "", "share"),
    PaperClaim("fig09", "alpha_share_reverse", 0.336, "", "share"),
    PaperClaim("fig10", "random_beats_loss_tiles", 1.0, "", "ratio",
               note="global-coverage sampling matches/beats alternatives"),
    PaperClaim("fig11", "orgs_raster_speedup", 4.2, "x"),
    PaperClaim("fig11", "ours_raster_speedup", 103.1, "x"),
    PaperClaim("fig11", "ours_reverse_speedup", 95.0, "x"),
    PaperClaim("fig14", "projection_share_fwd", 0.638, "", "share",
               note="projection share of fwd pass, pixel pipeline"),
    PaperClaim("fig17", "ate_delta_cm", -0.01, "cm", "absolute",
               note="ours minus baseline ATE (negative = better)"),
    PaperClaim("fig17", "psnr_delta_db", 0.8, "dB", "absolute",
               note="ours minus baseline PSNR on SplaTAM"),
    PaperClaim("fig18", "ate_delta_cm", -0.03, "cm", "absolute"),
    PaperClaim("fig19", "e2e_speedup", 14.6, "x"),
    PaperClaim("fig19", "energy_saving", 0.861, "", "share"),
    PaperClaim("fig19", "orgs_speedup", 3.4, "x"),
    PaperClaim("fig20", "mapping_speedup", 3.2, "x"),
    PaperClaim("fig20", "mapping_energy_saving", 0.60, "", "share"),
    PaperClaim("fig21", "orgs_raster_speedup", 4.1, "x"),
    PaperClaim("fig21", "ours_raster_speedup", 64.4, "x"),
    PaperClaim("fig21", "ours_reverse_speedup", 77.2, "x"),
    PaperClaim("fig22", "splatonic_hw_speedup", 274.9, "x"),
    PaperClaim("fig22", "splatonic_hw_energy", 4738.5, "x"),
    PaperClaim("fig22", "vs_prior_accel", 25.2, "x",
               note="max speedup over GauSPU/GSArch"),
    PaperClaim("fig22", "vs_prior_accel_same_sampling", 12.7, "x"),
    PaperClaim("fig23", "splatonic_wins_mapping", 1.0, "", "ratio"),
    PaperClaim("fig24", "comb_psnr_gain_db", 1.0, "dB", "absolute"),
    PaperClaim("fig25", "crossover_at_dense", 1.0, "", "ratio",
               note="tile-based wins at 1x1 sampling"),
    PaperClaim("fig26", "best_mapping_tile", 4.0, "", "absolute"),
    PaperClaim("fig27", "projection_units_bind_first", 1.0, "", "ratio"),
    PaperClaim("area", "total_mm2", 1.07, "mm^2", "absolute"),
    PaperClaim("area", "raster_share", 0.28, "", "share"),
    PaperClaim("area", "sram_share", 0.15, "", "share"),
]}


@dataclass
class Comparison:
    """A measured value graded against a paper claim."""

    claim: PaperClaim
    measured: float
    within_factor: Optional[float] = None

    @property
    def shape_holds(self) -> bool:
        """Same order of magnitude / direction as the paper's number."""
        c, m = self.claim.value, self.measured
        if self.claim.kind == "share":
            return abs(m - c) <= 0.25
        if self.claim.kind == "absolute":
            return (m >= 0) == (c >= 0) or abs(m - c) <= max(abs(c), 1.0)
        if c == 0:
            return m == 0
        ratio = m / c
        return 0.1 <= ratio <= 10.0


def compare(figure: str, metric: str, measured: float) -> Comparison:
    """Look up the paper claim and grade the measured value."""
    key = f"{figure}:{metric}"
    if key not in PAPER_CLAIMS:
        raise KeyError(f"no paper claim registered for {key}")
    return Comparison(claim=PAPER_CLAIMS[key], measured=float(measured))


def format_comparison(rows: List[Comparison]) -> str:
    """Markdown table of paper-vs-measured comparisons."""
    lines = [
        "| figure | metric | paper | measured | shape holds |",
        "|---|---|---|---|---|",
    ]
    for comp in rows:
        c = comp.claim
        lines.append(
            f"| {c.figure} | {c.metric} | {c.value:g}{c.unit} | "
            f"{comp.measured:g}{c.unit} | "
            f"{'yes' if comp.shape_holds else 'NO'} |")
    return "\n".join(lines)
