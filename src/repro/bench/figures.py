"""Experiment drivers regenerating every table/figure of the paper.

Each ``figNN_*`` function runs one experiment and returns its rows (list of
dicts); the ``benchmarks/`` files wrap them in pytest-benchmark and print
the tables.  Shapes — who wins, by roughly what factor, where crossovers
fall — are the reproduction target; EXPERIMENTS.md records paper-vs-
measured for each.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import Splatonic, SplatonicConfig, sample_tracking_pixels
from ..datasets import (
    REPLICA_SEQUENCES,
    TUM_SEQUENCES,
    make_replica_sequence,
    make_tum_sequence,
)
from ..gaussians import Camera, se3_exp, se3_inverse, se3_log
from ..hw import (
    COMPARISON_AREAS_MM2,
    AggregationUnit,
    ExpLUT,
    GauSpuAccelerator,
    GpuModel,
    GsArchAccelerator,
    SplatonicAccelerator,
    SplatonicHwConfig,
    Workload,
    measure_iteration,
    splatonic_area,
)
from ..metrics import psnr
from ..render.rasterize import render_full
from ..slam import ALGORITHMS, SLAMSystem, Tracker, get_algorithm
from .scenarios import ProxyBundle, build_bundle, mapping_workloads, tracking_workloads

__all__ = [
    "fig04_latency", "fig05_breakdown", "fig07_utilization",
    "fig08_aggregation", "fig09_alpha_share", "fig10_strategies",
    "fig11_raster_speedup", "fig14_bottleneck_shift", "fig17_replica_accuracy",
    "fig18_tum_accuracy", "fig19_gpu_e2e", "fig20_mapping_gpu",
    "fig21_stage_speedup", "fig22_accel_tracking", "fig23_accel_mapping",
    "fig24_mapping_ablation", "fig25_sampling_sensitivity",
    "fig26_accuracy_sensitivity", "fig27_unit_sensitivity", "area_table",
    "ablation_lut", "ablation_aggregation_unit", "ablation_gamma_cache",
    "ablation_bbox_indexing", "ablation_preemptive_alpha",
]

_BG = np.full(3, 0.05)


# ---------------------------------------------------------------------------
# Sec. III characterization (Figs. 4-9)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=16)
def _slam_stage_workloads(algorithm: str, sequence_name: str = "room0",
                          mode: str = "dense", width: int = 48,
                          height: int = 36, n_frames: int = 8,
                          surface_density: float = 10.0):
    """Run SLAM and return its four accumulated stage workloads + run."""
    seq = make_replica_sequence(sequence_name, n_frames=n_frames,
                                width=width, height=height,
                                surface_density=surface_density)
    result = SLAMSystem(algorithm, mode=mode).run(seq)
    f_p = (1200 * 680) / (width * height)
    f_g = 1e5 / max(len(result.cloud), 1)
    tracking = Workload(
        f"{algorithm}-tracking",
        result.stage_stats["tracking_fwd"],
        result.stage_stats["tracking_bwd"]).upscale(f_p, f_g)
    mapping = Workload(
        f"{algorithm}-mapping",
        result.stage_stats["mapping_fwd"],
        result.stage_stats["mapping_bwd"]).upscale(f_p, f_g)
    return tracking, mapping, result


def fig04_latency(algorithms: Optional[Sequence[str]] = None) -> List[Dict]:
    """Fig. 4: amortized per-frame tracking vs mapping latency (dense GPU)."""
    algorithms = list(algorithms or ALGORITHMS)
    gpu = GpuModel()
    rows = []
    for algo in algorithms:
        tracking, mapping, result = _slam_stage_workloads(algo)
        n = result.num_frames
        t_track = gpu.iteration_times(tracking).total / n
        t_map = gpu.iteration_times(mapping).total / n
        rows.append({
            "algorithm": algo,
            "tracking_ms_per_frame": t_track * 1e3,
            "mapping_ms_per_frame": t_map * 1e3,
            "tracking_share": t_track / (t_track + t_map),
        })
    return rows


def fig05_breakdown(algorithms: Optional[Sequence[str]] = None) -> List[Dict]:
    """Fig. 5: normalized execution breakdown of the dense pipeline."""
    algorithms = list(algorithms or ALGORITHMS)
    gpu = GpuModel()
    rows = []
    for algo in algorithms:
        tracking, _mapping, _result = _slam_stage_workloads(algo)
        t = gpu.iteration_times(tracking)
        compute = (t.projection + t.sorting + t.rasterization
                   + t.reverse_rasterization + t.aggregation + t.reprojection)
        rows.append({
            "algorithm": algo,
            "projection": t.projection / compute,
            "sorting": t.sorting / compute,
            "rasterization": t.rasterization / compute,
            "reverse_rasterization":
                (t.reverse_rasterization + t.aggregation) / compute,
            "reprojection": t.reprojection / compute,
            "raster_stages_share":
                (t.rasterization + t.reverse_rasterization + t.aggregation)
                / compute,
        })
    return rows


@lru_cache(maxsize=16)
def _scene_render_stats(sequence_name: str, width: int = 64, height: int = 48,
                        surface_density: float = 12.0):
    """Dense fwd+bwd stats of a GT-cloud render (cheap per-scene probe)."""
    seq = make_replica_sequence(sequence_name, n_frames=3, width=width,
                                height=height, surface_density=surface_density)
    cam = Camera(seq.intrinsics, seq[1].gt_pose_c2w)
    return measure_iteration(seq.gt_cloud, cam, seq[1].color, seq[1].depth,
                             "tile", background=_BG)


def fig07_utilization(scenes: Optional[Sequence[str]] = None) -> List[Dict]:
    """Fig. 7: GPU thread utilization of dense rasterization per scene."""
    scenes = list(scenes or REPLICA_SEQUENCES)
    rows = []
    for name in scenes:
        w = _scene_render_stats(name)
        rows.append({"scene": name,
                     "thread_utilization": w.fwd.summary()["warp_utilization"]})
    rows.append({"scene": "mean",
                 "thread_utilization":
                     float(np.mean([r["thread_utilization"] for r in rows]))})
    return rows


def fig08_aggregation(scenes: Optional[Sequence[str]] = None) -> List[Dict]:
    """Fig. 8: aggregation share of reverse rasterization (dense GPU)."""
    scenes = list(scenes or REPLICA_SEQUENCES)
    gpu = GpuModel()
    rows = []
    for name in scenes:
        w = _scene_render_stats(name).upscale(
            (1200 * 680) / (64 * 48), 1.0)
        t = gpu.iteration_times(w)
        share = t.aggregation / (t.aggregation + t.reverse_rasterization)
        rows.append({"scene": name, "aggregation_share": share})
    rows.append({"scene": "mean",
                 "aggregation_share":
                     float(np.mean([r["aggregation_share"] for r in rows]))})
    return rows


def fig09_alpha_share(scenes: Optional[Sequence[str]] = None) -> List[Dict]:
    """Fig. 9: α-checking share of raster and reverse-raster (dense GPU)."""
    scenes = list(scenes or REPLICA_SEQUENCES)
    gpu = GpuModel()
    rows = []
    for name in scenes:
        w = _scene_render_stats(name).upscale((1200 * 680) / (64 * 48), 1.0)
        t = gpu.iteration_times(w)
        rows.append({
            "scene": name,
            "alpha_share_raster": t.alpha_check_fwd / t.rasterization,
            "alpha_share_reverse":
                t.alpha_check_bwd / t.reverse_rasterization,
        })
    rows.append({
        "scene": "mean",
        "alpha_share_raster":
            float(np.mean([r["alpha_share_raster"] for r in rows])),
        "alpha_share_reverse":
            float(np.mean([r["alpha_share_reverse"] for r in rows])),
    })
    return rows


# ---------------------------------------------------------------------------
# Sec. IV algorithm (Figs. 10, 11, 14)
# ---------------------------------------------------------------------------

def fig10_strategies(tile_sizes: Sequence[int] = (4, 8, 16, 32),
                     strategies: Sequence[str] = ("random", "harris",
                                                  "lowres", "loss_tile"),
                     n_trials: int = 4, seed: int = 0) -> List[Dict]:
    """Fig. 10: tracking error vs sampling strategy and tile size.

    Isolated-tracker protocol: track perturbed poses against the ground-
    truth cloud so only the pixel-selection strategy differs.
    """
    seq = make_replica_sequence("room0", n_frames=6, width=96, height=64,
                                surface_density=10)
    cloud, intr = seq.gt_cloud, seq.intrinsics
    algo = get_algorithm("splatam")
    rows = []
    for strategy in strategies:
        for tile in tile_sizes:
            rng = np.random.default_rng(seed)
            errors = []
            for trial in range(n_trials):
                frame = seq[1 + trial % (len(seq) - 1)]
                xi = rng.normal(0.0, 0.02, 6)
                init = frame.gt_pose_c2w @ se3_exp(xi)
                splat = Splatonic(
                    SplatonicConfig(tracking_tile=tile,
                                    tracking_strategy=strategy),
                    rng=np.random.default_rng(seed + trial))
                tracker = Tracker(algo, intr, splat, "sparse", _BG)
                if strategy == "loss_tile":
                    # GauSPU selects tiles by rendered loss; bootstrap a
                    # loss map from the initial pose's dense render.
                    cam0 = Camera(intr, init)
                    res0 = render_full(cloud, cam0, _BG, keep_cache=False)
                    loss_map = np.abs(res0.color - frame.color).sum(axis=-1)
                    pixels = splat.sample_tracking(
                        Camera(intr, init), loss_map=loss_map)
                    # Tracker resamples internally; inject via strategy not
                    # supported, so run the iterations manually.
                    result = _track_with_pixels(
                        tracker, cloud, init, frame, pixels)
                else:
                    result = tracker.track_frame(
                        cloud, init, frame.color, frame.depth)
                err = np.linalg.norm(se3_log(
                    se3_inverse(frame.gt_pose_c2w) @ result.pose_c2w))
                errors.append(err)
            rows.append({
                "strategy": strategy,
                "tile": tile,
                "pose_error_cm": float(np.mean(errors)) * 100.0,
            })
    return rows


def _track_with_pixels(tracker: Tracker, cloud, init_pose, frame, pixels):
    """Run the tracker's optimization loop with an externally fixed pixel set."""
    from ..slam.losses import rgbd_loss
    from ..slam.optim import Adam

    algo = tracker.algo
    pose = np.asarray(init_pose, float).copy()
    lr = np.concatenate([np.full(3, algo.lr_translation),
                         np.full(3, algo.lr_rotation)])
    adam = Adam(6, lr)
    ref_c = frame.color[pixels[:, 1], pixels[:, 0]]
    ref_d = frame.depth[pixels[:, 1], pixels[:, 0]]
    best, stall = np.inf, 0
    for _ in range(algo.tracking_iters):
        camera = Camera(tracker.intrinsics, pose)
        result = tracker.splatonic.render_sparse(cloud, camera, pixels, _BG)
        out = rgbd_loss(result.color, result.depth, result.silhouette,
                        ref_c, ref_d, algo.tracking_loss, tracking=True)
        if out.num_valid == 0:
            break
        grads = tracker.splatonic.backward_sparse(
            result, cloud, camera, out.d_color, out.d_depth, out.d_silhouette)
        pose = pose @ se3_exp(adam.step(grads.d_pose_twist))
        if out.loss < best * (1.0 - algo.track_converge_rel):
            best, stall = out.loss, 0
        else:
            stall += 1
            if stall >= algo.track_converge_patience:
                break

    class _R:
        pose_c2w = pose
    return _R()


def fig11_raster_speedup(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 11: raster / reverse-raster latency for Org., Org.+S, Ours."""
    bundle = bundle or build_bundle()
    ws = tracking_workloads(bundle)
    gpu = GpuModel()
    t = {k: gpu.iteration_times(w) for k, w in ws.items()}
    base_r = t["dense"].rasterization
    base_rr = t["dense"].reverse_rasterization + t["dense"].aggregation
    rows = []
    for label, key in [("Org.", "dense"), ("Org.+S", "tile_sparse"),
                       ("Ours", "pixel")]:
        tt = t[key]
        rr = tt.reverse_rasterization + tt.aggregation
        rows.append({
            "variant": label,
            "raster_ms": tt.rasterization * 1e3,
            "raster_speedup": base_r / tt.rasterization,
            "reverse_raster_ms": rr * 1e3,
            "reverse_raster_speedup": base_rr / rr,
        })
    return rows


def fig14_bottleneck_shift(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 14: projection / reverse-raster shares before vs after."""
    bundle = bundle or build_bundle()
    ws = tracking_workloads(bundle)
    gpu = GpuModel()
    rows = []
    for label, key in [("Org.", "dense"), ("Ours", "pixel")]:
        t = gpu.iteration_times(ws[key])
        rr = t.reverse_rasterization + t.aggregation
        rows.append({
            "variant": label,
            "projection_ms": t.projection * 1e3,
            "projection_share_fwd": t.projection / t.forward,
            "reverse_raster_ms": rr * 1e3,
            "reverse_raster_share_bwd": rr / t.backward,
        })
    return rows


# ---------------------------------------------------------------------------
# Sec. VII-A accuracy (Figs. 17, 18, 24, 26)
# ---------------------------------------------------------------------------

def _accuracy_run(sequence, algorithm: str, mode: str,
                  splatonic_config: Optional[SplatonicConfig] = None,
                  seed: int = 0) -> Dict:
    system = SLAMSystem(algorithm, mode=mode,
                        splatonic_config=splatonic_config, seed=seed)
    result = system.run(sequence)
    quality = result.eval_quality(sequence)
    return {
        "ate_cm": result.ate().rmse * 100.0,
        "psnr_db": quality["psnr"],
        "depth_l1": quality["depth_l1"],
    }


def _accuracy_figure(sequences, algorithms, splatonic_config=None) -> List[Dict]:
    # Proxy-scale tracking tile: the paper's w_t = 16 at 1200x680 yields
    # ~3200 samples; at 48x36 the same tile leaves 6 — too few for a
    # stable pose fit.  A 6-pixel tile keeps ~48 samples while preserving
    # a >10x pixel reduction (documented in EXPERIMENTS.md).
    if splatonic_config is None:
        splatonic_config = SplatonicConfig(tracking_tile=6)
    rows = []
    for algo in algorithms:
        for seq in sequences:
            base = _accuracy_run(seq, algo, "dense")
            ours = _accuracy_run(seq, algo, "sparse", splatonic_config)
            rows.append({
                "algorithm": algo,
                "sequence": seq.name,
                "baseline_ate_cm": base["ate_cm"],
                "ours_ate_cm": ours["ate_cm"],
                "baseline_psnr_db": base["psnr_db"],
                "ours_psnr_db": ours["psnr_db"],
            })
    return rows


def fig17_replica_accuracy(
        sequence_names: Sequence[str] = ("room0", "room1", "office0"),
        algorithms: Optional[Sequence[str]] = None,
        width: int = 48, height: int = 36, n_frames: int = 8) -> List[Dict]:
    """Fig. 17: Replica ATE & PSNR, baseline vs sparse sampling.

    Defaults use three sequences for runtime; pass all eight names for the
    full figure.
    """
    algorithms = list(algorithms or ALGORITHMS)
    sequences = [make_replica_sequence(n, n_frames=n_frames, width=width,
                                       height=height, surface_density=9)
                 for n in sequence_names]
    return _accuracy_figure(sequences, algorithms)


def fig18_tum_accuracy(
        sequence_names: Sequence[str] = TUM_SEQUENCES,
        algorithms: Optional[Sequence[str]] = None,
        width: int = 48, height: int = 36, n_frames: int = 8) -> List[Dict]:
    """Fig. 18: TUM-like ATE & PSNR, baseline vs sparse sampling."""
    algorithms = list(algorithms or ALGORITHMS)
    sequences = [make_tum_sequence(n, n_frames=n_frames, width=width,
                                   height=height, surface_density=9)
                 for n in sequence_names]
    return _accuracy_figure(sequences, algorithms)


def fig24_mapping_ablation(sequence_name: str = "room0", width: int = 48,
                           height: int = 36, n_frames: int = 10) -> List[Dict]:
    """Fig. 24: mapping-sampling ablation on SplaTAM (Unseen/Weighted/Comb)."""
    seq = make_replica_sequence(sequence_name, n_frames=n_frames, width=width,
                                height=height, surface_density=9)
    variants = {
        "baseline(dense)": None,
        "unseen": SplatonicConfig(tracking_tile=6, mapping_weighted=False),
        "weighted": SplatonicConfig(tracking_tile=6, mapping_unseen=False),
        "uniform": SplatonicConfig(tracking_tile=6,
                                   mapping_uniform_weights=True),
        "comb": SplatonicConfig(tracking_tile=6),
    }
    rows = []
    for label, cfg in variants.items():
        mode = "dense" if cfg is None else "sparse"
        r = _accuracy_run(seq, "splatam", mode, cfg)
        rows.append({"variant": label, "ate_cm": r["ate_cm"],
                     "psnr_db": r["psnr_db"]})
    return rows


def fig26_accuracy_sensitivity(tile_sizes: Sequence[int] = (2, 4, 8, 16),
                               sequence_name: str = "office2",
                               width: int = 48, height: int = 36,
                               n_frames: int = 8) -> List[Dict]:
    """Fig. 26: mapping accuracy vs mapping tile size (office-2-like)."""
    seq = make_replica_sequence(sequence_name, n_frames=n_frames, width=width,
                                height=height, surface_density=9)
    rows = []
    for tile in tile_sizes:
        cfg = SplatonicConfig(tracking_tile=6, mapping_tile=tile)
        r = _accuracy_run(seq, "splatam", "sparse", cfg)
        rows.append({"mapping_tile": tile, "ate_cm": r["ate_cm"],
                     "psnr_db": r["psnr_db"]})
    return rows


# ---------------------------------------------------------------------------
# Sec. VII-B GPU performance (Figs. 19, 20, 21)
# ---------------------------------------------------------------------------

def fig19_gpu_e2e(algorithms: Optional[Sequence[str]] = None) -> List[Dict]:
    """Fig. 19: end-to-end tracking speedup & energy on the mobile GPU."""
    algorithms = list(algorithms or ALGORITHMS)
    gpu = GpuModel()
    rows = []
    for algo in algorithms:
        bundle = build_bundle(algorithm=algo)
        ws = tracking_workloads(bundle)
        t = {k: gpu.iteration_times(w).total for k, w in ws.items()}
        e = {k: gpu.iteration_energy(w) for k, w in ws.items()}
        rows.append({
            "algorithm": algo,
            "orgs_speedup": t["dense"] / t["tile_sparse"],
            "ours_speedup": t["dense"] / t["pixel"],
            "orgs_energy_saving": 1.0 - e["tile_sparse"] / e["dense"],
            "ours_energy_saving": 1.0 - e["pixel"] / e["dense"],
        })
    rows.append({
        "algorithm": "mean",
        **{k: float(np.mean([r[k] for r in rows]))
           for k in ("orgs_speedup", "ours_speedup",
                     "orgs_energy_saving", "ours_energy_saving")},
    })
    return rows


def fig20_mapping_gpu(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 20: mapping speedup & energy savings on the mobile GPU."""
    bundle = bundle or build_bundle()
    ws = mapping_workloads(bundle)
    gpu = GpuModel()
    t = {k: gpu.iteration_times(w).total for k, w in ws.items()}
    e = {k: gpu.iteration_energy(w) for k, w in ws.items()}
    return [{
        "variant": label,
        "speedup": t["dense"] / t[key],
        "energy_saving": 1.0 - e[key] / e["dense"],
    } for label, key in [("Org.+S", "tile_sparse"), ("Ours", "pixel")]]


def fig21_stage_speedup(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 21: bottleneck-stage speedups during tracking."""
    rows = fig11_raster_speedup(bundle)
    return [{
        "variant": r["variant"],
        "raster_speedup": r["raster_speedup"],
        "reverse_raster_speedup": r["reverse_raster_speedup"],
    } for r in rows if r["variant"] != "Org."]


# ---------------------------------------------------------------------------
# Sec. VII-C hardware performance (Figs. 22, 23, 25, 27, area)
# ---------------------------------------------------------------------------

def _accel_rows(ws: Dict[str, Workload]) -> List[Dict]:
    gpu = GpuModel()
    base_t = gpu.iteration_times(ws["dense"]).total
    base_e = gpu.iteration_energy(ws["dense"])
    sw_t = gpu.iteration_times(ws["pixel"]).total
    sw_e = gpu.iteration_energy(ws["pixel"])
    reports = {
        "GauSPU": GauSpuAccelerator().iteration_report(ws["dense"]),
        "GauSPU+S": GauSpuAccelerator().iteration_report(ws["tile_sparse"]),
        "GSArch": GsArchAccelerator().iteration_report(ws["dense"]),
        "GSArch+S": GsArchAccelerator().iteration_report(ws["tile_sparse"]),
        "SPLATONIC-HW": SplatonicAccelerator().iteration_report(ws["pixel"]),
    }
    rows = [{
        "design": "GPU", "speedup": 1.0, "energy_saving": 1.0,
    }, {
        "design": "SPLATONIC-SW",
        "speedup": base_t / sw_t,
        "energy_saving": base_e / sw_e,
    }]
    for name, rep in reports.items():
        rows.append({
            "design": name,
            "speedup": base_t / rep.total_s,
            "energy_saving": base_e / rep.energy_j,
        })
    return rows


def fig22_accel_tracking(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 22: tracking performance/energy across architectures."""
    bundle = bundle or build_bundle()
    return _accel_rows(tracking_workloads(bundle))


def fig23_accel_mapping(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 23: mapping speedups across architectures."""
    bundle = bundle or build_bundle()
    return _accel_rows(mapping_workloads(bundle))


def fig25_sampling_sensitivity(
        tile_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
        bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 25: speedup vs sampling tile size; tile-based wins when dense."""
    bundle = bundle or build_bundle()
    gpu = GpuModel()
    rows = []
    for tile in tile_sizes:
        ws = tracking_workloads(bundle, tile=tile)
        base_t = gpu.iteration_times(ws["dense"]).total
        hw = SplatonicAccelerator().iteration_report(ws["pixel"])
        gsarch = GsArchAccelerator().iteration_report(ws["tile_sparse"])
        rows.append({
            "tile": tile,
            "pixels": ws["pixel"].fwd.num_pixels,
            "splatonic_hw_speedup": base_t / hw.total_s,
            "gsarch_s_speedup": base_t / gsarch.total_s,
        })
    return rows


def fig27_unit_sensitivity(
        projection_units: Sequence[int] = (2, 4, 8, 16),
        render_units: Sequence[int] = (2, 4, 8),
        bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Fig. 27: sensitivity to projection-unit / render-unit counts."""
    bundle = bundle or build_bundle()
    w = tracking_workloads(bundle)["pixel"]
    base = SplatonicAccelerator().iteration_report(w).total_s
    rows = []
    for pu in projection_units:
        for ru in render_units:
            cfg = SplatonicHwConfig(projection_units=pu,
                                    raster_engines=ru)
            rep = SplatonicAccelerator(cfg).iteration_report(w)
            rows.append({
                "projection_units": pu,
                "render_engines": ru,
                "relative_performance": base / rep.total_s,
            })
    return rows


def area_table() -> List[Dict]:
    """Sec. VI area: SPLATONIC breakdown vs GSCore / GSArch totals."""
    breakdown = splatonic_area()
    rows = [{"component": k, "area_mm2": v,
             "share": breakdown.share(k)}
            for k, v in breakdown.components.items()]
    rows.append({"component": "TOTAL (16nm)", "area_mm2": breakdown.total,
                 "share": 1.0})
    for name, mm2 in COMPARISON_AREAS_MM2.items():
        if name != "splatonic":
            rows.append({"component": f"{name} (paper)", "area_mm2": mm2,
                         "share": float("nan")})
    return rows


# ---------------------------------------------------------------------------
# Design-choice ablations (DESIGN.md)
# ---------------------------------------------------------------------------

def ablation_lut(entries_list: Sequence[int] = (8, 16, 32, 64, 128),
                 bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Exp-LUT size: approximation error and rendered-color PSNR."""
    bundle = bundle or build_bundle()
    pixels = sample_tracking_pixels(bundle.width, bundle.height, 8,
                                    "random", np.random.default_rng(0))
    from ..core.pixel_pipeline import render_sparse
    exact = render_sparse(bundle.cloud, bundle.camera, pixels, _BG,
                          keep_cache=False)
    rows = []
    for entries in entries_list:
        lut = ExpLUT(entries)
        approx = render_sparse(bundle.cloud, bundle.camera, pixels, _BG,
                               keep_cache=False,
                               exp_fn=lambda x: lut(-np.asarray(x)))
        rows.append({
            "entries": entries,
            "max_exp_error": lut.max_abs_error(20_000),
            "render_psnr_db": psnr(approx.color, exact.color),
        })
    return rows


def ablation_aggregation_unit(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Scoreboard aggregation vs naive off-chip read-modify-write."""
    bundle = bundle or build_bundle()
    w = tracking_workloads(bundle)["pixel"]
    unit = AggregationUnit()
    ids = w.bwd.pixel_contrib_ids
    smart = unit.simulate(ids)
    naive = unit.simulate_naive(ids)
    return [
        {"variant": "scoreboard", "cycles": smart.cycles,
         "dram_bytes": smart.dram_bytes, "hit_rate": smart.hit_rate},
        {"variant": "naive", "cycles": naive.cycles,
         "dram_bytes": naive.dram_bytes, "hit_rate": naive.hit_rate},
        {"variant": "speedup", "cycles": naive.cycles / max(smart.cycles, 1e-9),
         "dram_bytes": naive.dram_bytes / max(smart.dram_bytes, 1e-9),
         "hit_rate": float("nan")},
    ]


def _hw_ablation(bundle: Optional[ProxyBundle], stage: str,
                 **overrides) -> List[Dict]:
    """End-to-end and affected-stage effect of disabling one feature.

    The pipeline overlaps stages, so a disabled feature only moves the
    end-to-end latency once its stage becomes the bottleneck; the stage
    column shows the structural cost either way.
    """
    bundle = bundle or build_bundle()
    w = tracking_workloads(bundle)["pixel"]
    on = SplatonicAccelerator().iteration_report(w)
    off = SplatonicAccelerator(
        SplatonicHwConfig(**overrides)).iteration_report(w)
    rows = [
        {"variant": "enabled", "total_us": on.total_s * 1e6,
         "stage_us": on.stage_seconds[stage] * 1e6},
        {"variant": "disabled", "total_us": off.total_s * 1e6,
         "stage_us": off.stage_seconds[stage] * 1e6},
        {"variant": "slowdown", "total_us": off.total_s / on.total_s,
         "stage_us": (off.stage_seconds[stage]
                      / max(on.stage_seconds[stage], 1e-12))},
    ]
    return rows


def ablation_gamma_cache(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Γ/C on-chip caching in the reverse render units (Sec. V-B)."""
    return _hw_ablation(bundle, "reverse_rasterization", gamma_cache=False)


def ablation_bbox_indexing(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Direct bbox indexing in the projection unit (Sec. V-C)."""
    return _hw_ablation(bundle, "projection", direct_bbox_indexing=False)


def ablation_preemptive_alpha(bundle: Optional[ProxyBundle] = None) -> List[Dict]:
    """Preemptive α-checking: SW workload effect + HW render-unit effect."""
    bundle = bundle or build_bundle()
    frame = bundle.frame
    pixels = sample_tracking_pixels(bundle.width, bundle.height, 16,
                                    "random", np.random.default_rng(0))
    f_p, f_g = bundle.pixel_factor, bundle.gaussian_factor
    with_pre = measure_iteration(bundle.cloud, bundle.camera, frame.color,
                                 frame.depth, "pixel", pixels).upscale(f_p, f_g)
    dense = measure_iteration(bundle.cloud, bundle.camera, frame.color,
                              frame.depth, "tile").upscale(f_p, f_g)
    gpu = GpuModel()
    hw_on = SplatonicAccelerator().iteration_report(with_pre)
    hw_off = SplatonicAccelerator(
        SplatonicHwConfig(preemptive_alpha=False)).iteration_report(with_pre)
    t_dense = gpu.iteration_times(dense)
    return [
        {"variant": "hw_raster_stage_on_us", "value":
            hw_on.stage_seconds["rasterization"] * 1e6},
        {"variant": "hw_raster_stage_off_us", "value":
            hw_off.stage_seconds["rasterization"] * 1e6},
        {"variant": "hw_raster_slowdown_without", "value":
            hw_off.stage_seconds["rasterization"]
            / max(hw_on.stage_seconds["rasterization"], 1e-12)},
        {"variant": "hw_total_slowdown_without", "value":
            hw_off.total_s / hw_on.total_s},
        # What preemption removes on the GPU side: the alpha-check share
        # of rasterization in the conventional (non-preemptive) pipeline.
        {"variant": "sw_alpha_share_without_preemption", "value":
            t_dense.alpha_check_fwd / max(t_dense.rasterization, 1e-12)},
    ]
