"""Plain-text table formatting for the figure benches.

Each bench prints the rows/series of the paper figure it regenerates; this
module keeps the formatting uniform so EXPERIMENTS.md can quote benches
verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_kv", "print_table"]


def format_table(title: str, rows: List[Dict[str, object]],
                 columns: Sequence[str] = None) -> str:
    """Render dict rows as an aligned text table with a title banner."""
    if not rows:
        return f"== {title} ==\n(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered))
              for i, c in enumerate(columns)]
    lines = [f"== {title} =="]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_kv(title: str, values: Dict[str, object]) -> str:
    """Render a flat key->value mapping with a title banner."""
    width = max((len(k) for k in values), default=0)
    lines = [f"== {title} =="]
    for k, v in values.items():
        lines.append(f"{k.ljust(width)}  {_fmt(v)}")
    return "\n".join(lines)


def print_table(title: str, rows: List[Dict[str, object]],
                columns: Sequence[str] = None) -> None:
    print("\n" + format_table(title, rows, columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
