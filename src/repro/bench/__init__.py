"""Benchmark harness: scenario builders and per-figure experiment drivers."""

from . import figures
from .scenarios import (
    PAPER_GAUSSIANS,
    PAPER_HEIGHT,
    PAPER_WIDTH,
    ProxyBundle,
    build_bundle,
    mapping_workloads,
    tracking_workloads,
)
from .report import PAPER_CLAIMS, PaperClaim, compare, format_comparison
from .tables import format_kv, format_table, print_table

__all__ = [
    "figures",
    "PAPER_GAUSSIANS",
    "PAPER_HEIGHT",
    "PAPER_WIDTH",
    "ProxyBundle",
    "build_bundle",
    "mapping_workloads",
    "tracking_workloads",
    "format_kv",
    "format_table",
    "print_table",
    "PAPER_CLAIMS",
    "PaperClaim",
    "compare",
    "format_comparison",
]
