"""Shared experiment scenarios for the benchmark harness.

Every figure-reproduction bench needs the same expensive artifacts: a
synthetic sequence, a SLAM run over it (to obtain a realistic mid-sequence
map), and measured workload counters for the three pipeline variants.
This module builds them once per process and caches them.

Workloads are measured at proxy resolution and projected to the paper's
deployment point (1200x680 frames, ~1e5 in-frustum Gaussians) via
:meth:`repro.hw.Workload.upscale`; see DESIGN.md for why the scaling
preserves the performance-relevant structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

import numpy as np

from ..core import Splatonic, SplatonicConfig, sample_tracking_pixels
from ..datasets import make_replica_sequence
from ..datasets.rgbd import RGBDSequence
from ..gaussians import Camera, GaussianCloud
from ..hw import Workload, measure_iteration
from ..obs import trace
from ..slam import SLAMSystem
from ..slam.system import SLAMResult

__all__ = ["PAPER_WIDTH", "PAPER_HEIGHT", "PAPER_GAUSSIANS", "ProxyBundle",
           "build_bundle", "tracking_workloads", "mapping_workloads"]

# The paper's deployment point.
PAPER_WIDTH, PAPER_HEIGHT = 1200, 680
# Effective in-frustum Gaussians streamed per iteration at that point.
PAPER_GAUSSIANS = 100_000


@dataclass
class ProxyBundle:
    """Everything the figure benches need about one proxy scenario."""

    sequence: RGBDSequence
    result: SLAMResult
    cloud: GaussianCloud
    frame_index: int
    camera: Camera
    width: int
    height: int

    @property
    def frame(self):
        return self.sequence[self.frame_index]

    @property
    def pixel_factor(self) -> float:
        return (PAPER_WIDTH * PAPER_HEIGHT) / (self.width * self.height)

    @property
    def gaussian_factor(self) -> float:
        return PAPER_GAUSSIANS / max(len(self.cloud), 1)


@lru_cache(maxsize=4)
def build_bundle(sequence_name: str = "room0", width: int = 96,
                 height: int = 64, n_frames: int = 10,
                 surface_density: float = 12.0,
                 algorithm: str = "splatam", seed: int = 0) -> ProxyBundle:
    """Run a short SLAM to obtain a realistic map + pose for workloads."""
    with trace.span("bench.build_bundle", sequence=sequence_name,
                    width=width, height=height, frames=n_frames):
        sequence = make_replica_sequence(
            sequence_name, n_frames=n_frames, width=width, height=height,
            surface_density=surface_density)
        result = SLAMSystem(algorithm, mode="sparse", seed=seed).run(sequence)
    # Probe a frame the mapper has just covered, so the unseen-pixel set
    # reflects the paper's steady state rather than brand-new territory.
    frame_index = max(4, ((n_frames - 2) // 4) * 4)
    camera = Camera(sequence.intrinsics, result.est_trajectory[frame_index])
    return ProxyBundle(
        sequence=sequence,
        result=result,
        cloud=result.cloud,
        frame_index=frame_index,
        camera=camera,
        width=width,
        height=height,
    )


def tracking_workloads(bundle: ProxyBundle, tile: int = 16,
                       seed: int = 0) -> Dict[str, Workload]:
    """Measure the three tracking-iteration variants and upscale them.

    Keys: ``dense`` (Org.), ``tile_sparse`` (Org.+S), ``pixel``
    (SPLATONIC's pipeline).
    """
    frame = bundle.frame
    rng = np.random.default_rng(seed)
    pixels = sample_tracking_pixels(bundle.width, bundle.height, tile,
                                    "random", rng)
    f_p, f_g = bundle.pixel_factor, bundle.gaussian_factor
    workload_span = trace.span("bench.tracking_workloads", tile=tile)
    workload_span.__enter__()
    out = {}
    out["dense"] = measure_iteration(
        bundle.cloud, bundle.camera, frame.color, frame.depth,
        "tile", name="dense").upscale(f_p, f_g)
    out["tile_sparse"] = measure_iteration(
        bundle.cloud, bundle.camera, frame.color, frame.depth,
        "tile_sparse", pixels, name="org+s").upscale(f_p, f_g)
    out["pixel"] = measure_iteration(
        bundle.cloud, bundle.camera, frame.color, frame.depth,
        "pixel", pixels, name="splatonic",
        lattice_tile=tile).upscale(f_p, f_g)
    workload_span.__exit__(None, None, None)
    return out


def mapping_workloads(bundle: ProxyBundle, tile: int = 4,
                      seed: int = 0) -> Dict[str, Workload]:
    """Measure the mapping-iteration variants (w_m x w_m sampling)."""
    from ..render.rasterize import render_full

    frame = bundle.frame
    splat = Splatonic(SplatonicConfig(mapping_tile=tile),
                      rng=np.random.default_rng(seed))
    first = render_full(bundle.cloud, bundle.camera, np.full(3, 0.05),
                        keep_cache=False)
    samples = splat.sample_mapping(first.final_transmittance, frame.color)
    pixels = samples.all_pixels
    f_p, f_g = bundle.pixel_factor, bundle.gaussian_factor
    workload_span = trace.span("bench.mapping_workloads", tile=tile)
    workload_span.__enter__()
    out = {}
    out["dense"] = measure_iteration(
        bundle.cloud, bundle.camera, frame.color, frame.depth,
        "tile", name="dense-mapping").upscale(f_p, f_g)
    out["tile_sparse"] = measure_iteration(
        bundle.cloud, bundle.camera, frame.color, frame.depth,
        "tile_sparse", pixels, name="org+s-mapping").upscale(f_p, f_g)
    out["pixel"] = measure_iteration(
        bundle.cloud, bundle.camera, frame.color, frame.depth,
        "pixel", pixels, name="splatonic-mapping").upscale(f_p, f_g)
    workload_span.__exit__(None, None, None)
    return out
