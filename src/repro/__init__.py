"""SPLATONIC reproduction: sparse-processing 3DGS SLAM, algorithm + hardware.

Layers (bottom-up):

- :mod:`repro.gaussians` — SE(3) math, cameras, the Gaussian map.
- :mod:`repro.render` — differentiable tile-based 3DGS renderer (fwd+bwd).
- :mod:`repro.core` — the paper's contribution: adaptive pixel sampling and
  the pixel-based rendering pipeline, behind the :class:`~repro.core.Splatonic`
  facade.
- :mod:`repro.slam` — tracking/mapping SLAM engine with four algorithm
  presets (SplaTAM, MonoGS, GS-SLAM, FlashSLAM).
- :mod:`repro.datasets` — synthetic Replica-like / TUM-like RGB-D sequences.
- :mod:`repro.metrics` — ATE, PSNR, SSIM, depth-L1.
- :mod:`repro.hw` — mobile-GPU model and the SPLATONIC / GSArch / GauSPU
  accelerator models driven by workload counters.
- :mod:`repro.bench` — experiment drivers regenerating the paper's figures.
- :mod:`repro.obs` — hierarchical span tracer, metrics registry, and
  leveled logging across all of the above (disabled-by-default tracing).
"""

from .core import Splatonic, SplatonicConfig
from .gaussians import Camera, GaussianCloud, Intrinsics
from .slam import SLAMSystem

__version__ = "0.1.0"

__all__ = [
    "Splatonic",
    "SplatonicConfig",
    "Camera",
    "GaussianCloud",
    "Intrinsics",
    "SLAMSystem",
    "__version__",
]
