"""Serialization utilities: clouds, images, and trajectories.

Everything writes dependency-free formats: Gaussian clouds as ``.npz``,
images as binary PPM/PGM (viewable everywhere), and trajectories in the
TUM RGB-D format (``timestamp tx ty tz qx qy qz qw`` per line) so external
SLAM tooling — evo, the TUM benchmark scripts — can consume the output.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .gaussians.model import GaussianCloud
from .gaussians.se3 import quat_to_rotmat, rotmat_to_quat
from .render.anisotropic import AnisotropicCloud

__all__ = [
    "save_cloud",
    "load_cloud",
    "save_ppm",
    "save_pgm",
    "save_trajectory_tum",
    "load_trajectory_tum",
    "save_sequence",
    "load_sequence",
]


def save_cloud(path: str, cloud) -> None:
    """Save an isotropic or anisotropic cloud to ``.npz``."""
    if isinstance(cloud, GaussianCloud):
        np.savez(path, kind="isotropic", means=cloud.means,
                 log_scales=cloud.log_scales,
                 logit_opacities=cloud.logit_opacities, colors=cloud.colors)
    elif isinstance(cloud, AnisotropicCloud):
        np.savez(path, kind="anisotropic", means=cloud.means,
                 log_scales=cloud.log_scales,
                 quaternions=cloud.quaternions,
                 logit_opacities=cloud.logit_opacities, colors=cloud.colors)
    else:
        raise TypeError(f"cannot serialize {type(cloud).__name__}")


def load_cloud(path: str):
    """Load a cloud saved by :func:`save_cloud`."""
    data = np.load(path if str(path).endswith(".npz") else f"{path}.npz",
                   allow_pickle=False)
    kind = str(data["kind"])
    if kind == "isotropic":
        return GaussianCloud(
            means=data["means"], log_scales=data["log_scales"],
            logit_opacities=data["logit_opacities"], colors=data["colors"])
    if kind == "anisotropic":
        return AnisotropicCloud(
            means=data["means"], log_scales=data["log_scales"],
            quaternions=data["quaternions"],
            logit_opacities=data["logit_opacities"], colors=data["colors"])
    raise ValueError(f"unknown cloud kind {kind!r}")


def save_ppm(path: str, image: np.ndarray) -> None:
    """Write an ``(H, W, 3)`` float image in [0, 1] as binary PPM (P6)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 3 or image.shape[-1] != 3:
        raise ValueError("expected an (H, W, 3) image")
    data = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    h, w = data.shape[:2]
    with open(path, "wb") as f:
        f.write(f"P6\n{w} {h}\n255\n".encode())
        f.write(data.tobytes())


def save_pgm(path: str, image: np.ndarray,
             max_value: Optional[float] = None) -> None:
    """Write an ``(H, W)`` float map (e.g. depth) as binary PGM (P5).

    Values are normalized by ``max_value`` (defaults to the map maximum).
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError("expected an (H, W) map")
    top = float(max_value) if max_value else max(float(image.max()), 1e-12)
    data = (np.clip(image / top, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    h, w = image.shape
    with open(path, "wb") as f:
        f.write(f"P5\n{w} {h}\n255\n".encode())
        f.write(data.tobytes())


def save_trajectory_tum(path: str, poses: Union[np.ndarray, Sequence],
                        timestamps: Optional[Sequence[float]] = None) -> None:
    """Write camera-to-world poses in the TUM trajectory format."""
    poses = np.asarray(poses, dtype=float)
    if poses.ndim != 3 or poses.shape[1:] != (4, 4):
        raise ValueError("expected (N, 4, 4) poses")
    n = poses.shape[0]
    ts = np.arange(n, dtype=float) if timestamps is None else np.asarray(
        timestamps, dtype=float)
    if ts.shape != (n,):
        raise ValueError("timestamps must match the pose count")
    with open(path, "w") as f:
        f.write("# timestamp tx ty tz qx qy qz qw\n")
        for t, T in zip(ts, poses):
            q = rotmat_to_quat(T[:3, :3])  # (w, x, y, z)
            tx, ty, tz = T[:3, 3]
            f.write(f"{t:.6f} {tx:.9f} {ty:.9f} {tz:.9f} "
                    f"{q[1]:.9f} {q[2]:.9f} {q[3]:.9f} {q[0]:.9f}\n")


def load_trajectory_tum(path: str):
    """Read a TUM-format trajectory; returns ``(timestamps, poses)``."""
    timestamps: List[float] = []
    poses: List[np.ndarray] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = [float(p) for p in line.split()]
            if len(parts) != 8:
                raise ValueError(f"malformed TUM line: {line!r}")
            t, tx, ty, tz, qx, qy, qz, qw = parts
            T = np.eye(4)
            T[:3, :3] = quat_to_rotmat(np.array([qw, qx, qy, qz]))
            T[:3, 3] = [tx, ty, tz]
            timestamps.append(t)
            poses.append(T)
    return np.asarray(timestamps), np.stack(poses) if poses else np.zeros(
        (0, 4, 4))


def save_sequence(path: str, sequence) -> None:
    """Save an RGB-D sequence (frames + intrinsics) to one ``.npz``.

    The ground-truth cloud, if present, is stored alongside so that
    regenerating procedural sequences can be skipped entirely.
    """
    colors = np.stack([f.color for f in sequence.frames])
    depths = np.stack([f.depth for f in sequence.frames])
    poses = sequence.gt_trajectory
    timestamps = np.array([f.timestamp for f in sequence.frames])
    intr = sequence.intrinsics
    payload = dict(
        name=sequence.name,
        colors=colors.astype(np.float32),
        depths=depths.astype(np.float32),
        poses=poses,
        timestamps=timestamps,
        intrinsics=np.array([intr.width, intr.height, intr.fx, intr.fy,
                             intr.cx, intr.cy]),
    )
    cloud = getattr(sequence, "gt_cloud", None)
    if cloud is not None:
        payload.update(
            gt_means=cloud.means, gt_log_scales=cloud.log_scales,
            gt_logit_opacities=cloud.logit_opacities, gt_colors=cloud.colors)
    np.savez_compressed(path, **payload)


def load_sequence(path: str):
    """Load a sequence saved by :func:`save_sequence`."""
    from .datasets.rgbd import RGBDFrame, RGBDSequence
    from .gaussians.camera import Intrinsics

    data = np.load(path if str(path).endswith(".npz") else f"{path}.npz",
                   allow_pickle=False)
    w, h, fx, fy, cx, cy = data["intrinsics"]
    intr = Intrinsics(width=int(w), height=int(h), fx=float(fx),
                      fy=float(fy), cx=float(cx), cy=float(cy))
    frames = [
        RGBDFrame(color=np.asarray(c, dtype=float),
                  depth=np.asarray(d, dtype=float),
                  gt_pose_c2w=np.asarray(p, dtype=float),
                  timestamp=float(t))
        for c, d, p, t in zip(data["colors"], data["depths"],
                              data["poses"], data["timestamps"])
    ]
    cloud = None
    if "gt_means" in data:
        cloud = GaussianCloud(
            means=data["gt_means"], log_scales=data["gt_log_scales"],
            logit_opacities=data["gt_logit_opacities"],
            colors=data["gt_colors"])
    return RGBDSequence(name=str(data["name"]), intrinsics=intr,
                        frames=frames, gt_cloud=cloud)
