"""3DGS-SLAM engine: tracking + mapping with four algorithm presets."""

from .config import (
    ALGORITHMS,
    FLASHSLAM,
    GSSLAM,
    MONOGS,
    SPLATAM,
    AlgorithmConfig,
    get_algorithm,
)
from .keyframes import Keyframe, KeyframeBuffer, view_overlap
from .losses import LossConfig, LossOutput, rgbd_loss
from .mapper import Mapper, MappingResult
from .optim import Adam
from .system import SLAMResult, SLAMSystem
from .tracker import Tracker, TrackingResult

__all__ = [
    "ALGORITHMS",
    "AlgorithmConfig",
    "get_algorithm",
    "SPLATAM",
    "MONOGS",
    "GSSLAM",
    "FLASHSLAM",
    "Keyframe",
    "KeyframeBuffer",
    "view_overlap",
    "LossConfig",
    "LossOutput",
    "rgbd_loss",
    "Mapper",
    "MappingResult",
    "Adam",
    "SLAMResult",
    "SLAMSystem",
    "Tracker",
    "TrackingResult",
]
