"""The full 3DGS-SLAM loop: alternating tracking and mapping (Fig. 2).

``SLAMSystem.run`` consumes an RGB-D sequence: every frame is tracked
(constant-velocity initialization, then iterative pose optimization);
every ``map_every`` frames the mapper densifies and fine-tunes the map
against a keyframe window.  Workload counters are accumulated separately
for the four stages (tracking/mapping x forward/backward) so the hardware
models can replay exactly the workloads the run produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from ..core.splatonic import Splatonic, SplatonicConfig
from ..gaussians.camera import Camera
from ..gaussians.init import seed_from_rgbd
from ..gaussians.model import GaussianCloud
from ..gaussians.se3 import se3_inverse
from ..metrics.ate import AteResult, ate_rmse
from ..metrics.quality import depth_l1, psnr, ssim
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..obs import flight as obs_flight
from ..obs import atlas as obs_atlas
from ..obs import telemetry as obs_telemetry
from ..obs.health import HealthMonitor, get_monitor, use_monitor
from ..render.rasterize import render_full
from ..render.stats import PipelineStats
from .config import AlgorithmConfig, get_algorithm
from .keyframes import Keyframe, KeyframeBuffer
from .mapper import Mapper
from .tracker import Tracker

__all__ = ["SLAMResult", "SLAMSystem"]


@dataclass
class SLAMResult:
    """Everything a finished SLAM run produced."""

    algorithm: str
    mode: str
    est_trajectory: np.ndarray      # (N, 4, 4)
    gt_trajectory: np.ndarray       # (N, 4, 4)
    cloud: GaussianCloud
    stage_stats: Dict[str, PipelineStats]
    tracking_iterations: List[int] = field(default_factory=list)
    mapping_invocations: int = 0
    num_frames: int = 0
    #: Registry id assigned when the run was recorded into a
    #: :class:`repro.obs.runsdb.RunRegistry` (None otherwise).
    run_id: Optional[str] = None

    def ate(self) -> AteResult:
        """Absolute trajectory error of the estimated trajectory."""
        return ate_rmse(self.est_trajectory, self.gt_trajectory)

    def eval_quality(self, sequence, every: int = 4,
                     background: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Render at the estimated poses and compare against the references.

        The returned dict always includes ``frames_evaluated``.  When the
        sampling yields no frames at all (``num_frames == 0`` or a
        non-positive ``every``), the scores are reported as 0.0 with a
        metrics-registry warning instead of silently averaging empty
        lists into NaN.
        """
        bg = np.full(3, 0.05) if background is None else background
        scores_psnr, scores_ssim, scores_d = [], [], []
        with trace.span("slam.eval_quality", every=every):
            for i in range(0, self.num_frames, max(every, 1)):
                cam = Camera(sequence.intrinsics, self.est_trajectory[i])
                res = render_full(self.cloud, cam, bg, keep_cache=False)
                frame = sequence[i]
                scores_psnr.append(psnr(res.color, frame.color))
                scores_ssim.append(ssim(res.color, frame.color))
                scores_d.append(depth_l1(res.depth, frame.depth))
        if not scores_psnr:
            obs_metrics.warn(
                f"eval_quality: no frames sampled (num_frames="
                f"{self.num_frames}, every={every}); returning zero scores")
            return {"psnr": 0.0, "ssim": 0.0, "depth_l1": 0.0,
                    "frames_evaluated": 0}
        return {
            "psnr": float(np.mean(scores_psnr)),
            "ssim": float(np.mean(scores_ssim)),
            "depth_l1": float(np.mean(scores_d)),
            "frames_evaluated": len(scores_psnr),
        }


class SLAMSystem:
    """Orchestrates tracking, keyframing, and mapping over a sequence."""

    STAGES = ("tracking_fwd", "tracking_bwd", "mapping_fwd", "mapping_bwd")

    def __init__(
        self,
        algorithm="splatam",
        mode: str = "sparse",
        splatonic_config: Optional[SplatonicConfig] = None,
        seed: int = 0,
        background: Optional[np.ndarray] = None,
        bootstrap_stride: int = 2,
        kernel_backend: Optional[str] = None,
        record_per_pixel: Optional[bool] = None,
        kernel_workers: Optional[int] = None,
        render_cache: Optional[bool] = None,
    ):
        """``kernel_backend`` / ``record_per_pixel`` / ``kernel_workers``
        / ``render_cache`` override the matching :class:`SplatonicConfig`
        fields when given (``None`` keeps the config's value)."""
        self.algo: AlgorithmConfig = (
            algorithm if isinstance(algorithm, AlgorithmConfig)
            else get_algorithm(algorithm))
        if mode not in ("sparse", "dense"):
            raise ValueError("mode must be 'sparse' or 'dense'")
        self.mode = mode
        config = splatonic_config or SplatonicConfig()
        overrides = {}
        if kernel_backend is not None:
            overrides["kernel_backend"] = kernel_backend
        if record_per_pixel is not None:
            overrides["record_per_pixel"] = record_per_pixel
        if kernel_workers is not None:
            overrides["kernel_workers"] = kernel_workers
        if render_cache is not None:
            overrides["render_cache"] = render_cache
        if overrides:
            config = config.with_overrides(**overrides)
        self.splatonic = Splatonic(config, rng=np.random.default_rng(seed))
        self.background = (np.full(3, 0.05) if background is None
                           else np.asarray(background, float))
        self.bootstrap_stride = bootstrap_stride

    def run(self, sequence, n_frames: Optional[int] = None,
            flight: Optional["obs_flight.FlightRecorder"] = None,
            health: Optional[HealthMonitor] = None,
            atlas: Optional["obs_atlas.AtlasCollector"] = None,
            registry=None) -> SLAMResult:
        """Run SLAM over ``sequence`` and return the result bundle.

        ``flight`` overrides the process-wide flight recorder
        (:data:`repro.obs.flight.recorder`); when the effective recorder
        is enabled, one structured record per frame is emitted (see
        :mod:`repro.obs.flight` for the schema) and the health monitors
        watch the stream online.  Passing an explicit ``health`` monitor
        turns the stream watching on even without a recorder.  ``atlas``
        overrides the process-wide sparsity-atlas collector
        (:data:`repro.obs.atlas.atlas`); when the effective collector is
        enabled, every frame's spatial work grids plus per-stage counters
        and hardware-model projections are recorded.  With all three left
        at their disabled defaults every hook is a single branch — the
        run is bit-identical to an uninstrumented one.

        Live telemetry: when the process-wide telemetry bus
        (:data:`repro.obs.telemetry.bus`) is enabled and no flight
        recorder is, the run records into a throwaway in-memory recorder
        so per-frame records still reach the bus (the flight recorder is
        the one publisher of the run stream) — the HTTP exporter, stream
        exporter, and ``repro top`` all consume from there.

        Run registry: pass a :class:`repro.obs.runsdb.RunRegistry` as
        ``registry`` and the finished run is registered into it (flight
        stream as the artifact, headline metrics extracted, keyed by
        env fingerprint / git SHA / config hash / dataset); the
        assigned id lands in :attr:`SLAMResult.run_id`.  Like the other
        hooks, ``registry=None`` (the default) costs nothing — the one
        extra branch runs after the run, never per frame.
        """
        n = len(sequence) if n_frames is None else min(n_frames, len(sequence))
        if n < 2:
            raise ValueError("need at least two frames")
        intr = sequence.intrinsics

        recorder = flight if flight is not None else obs_flight.recorder
        monitor = health if health is not None else get_monitor()
        collector = atlas if atlas is not None else obs_atlas.atlas
        bus = obs_telemetry.bus
        if (bus.enabled or registry is not None) and not recorder.enabled:
            # Live-only / registry-only mode: keep the run stream in an
            # in-memory recorder without persisting a JSONL artifact —
            # the bus consumers and the registry ingest read from it.
            recorder = obs_flight.FlightRecorder()
            recorder.enable()
        watch = recorder.enabled or health is not None
        if collector.enabled:
            # Backend-independent metadata only: the artifact must stay
            # bit-identical across kernel backends.
            collector.begin_run(
                algorithm=self.algo.name, mode=self.mode,
                sequence=getattr(sequence, "name", None), frames=n,
                width=intr.width, height=intr.height,
                tracking_tile=self.splatonic.config.tracking_tile,
                mapping_tile=self.splatonic.config.mapping_tile)
        if watch:
            monitor.begin_run()
            alert_cursor = 0
            recorder.begin_run(
                algorithm=self.algo.name, mode=self.mode,
                sequence=getattr(sequence, "name", None), frames=n,
                width=intr.width, height=intr.height,
                config={
                    "tracking_tile": self.splatonic.config.tracking_tile,
                    "mapping_tile": self.splatonic.config.mapping_tile,
                    "tracking_strategy":
                        self.splatonic.config.tracking_strategy,
                    "map_every": self.algo.map_every,
                    "keyframe_every": self.algo.keyframe_every,
                    "keyframe_window": self.algo.keyframe_window,
                    # The *resolved* execution backend, so registry
                    # triage can attribute wall-time deltas to backend
                    # or worker-count changes.
                    "kernel_backend": self.resolved_kernel_backend(),
                    "kernel_workers": self.effective_kernel_workers(),
                    "render_cache": self.resolved_render_cache(),
                })

        tracker = Tracker(self.algo, intr, self.splatonic, self.mode,
                          self.background)
        mapper = Mapper(self.algo, intr, self.splatonic, self.mode,
                        self.background)
        keyframes = KeyframeBuffer(self.algo.keyframe_every,
                                   self.algo.keyframe_window)
        stage_stats = {s: PipelineStats() for s in self.STAGES}

        # ---- bootstrap on frame 0 (pose anchored to ground truth) ----
        run_span = trace.span("slam.run", algorithm=self.algo.name,
                              mode=self.mode, frames=n)
        # A custom monitor becomes the process default for the run's
        # duration so the tracker/mapper finite guards route into it;
        # likewise an explicit atlas collector becomes the one the render
        # pipelines observe into.
        with use_monitor(monitor if health is not None else None), \
                obs_atlas.use_collector(atlas), run_span:
            frame0 = sequence[0]
            pose0 = frame0.gt_pose_c2w.copy()
            frame_start = perf_counter()
            collector.begin_frame(0, intr.width, intr.height)
            with trace.span("slam.bootstrap"):
                cloud = self._bootstrap_cloud(intr, pose0, frame0)
                kf0 = Keyframe(0, pose0, frame0.color, frame0.depth)
                keyframes.maybe_add(0, pose0, frame0.color, frame0.depth)
                boot = mapper.map_frame(cloud, kf0, [kf0],
                                        collect_curve=recorder.enabled)
            cloud = boot.cloud
            stage_stats["mapping_fwd"].merge(boot.forward_stats)
            stage_stats["mapping_bwd"].merge(boot.backward_stats)
            collector.end_frame({
                "mapping": (boot.forward_stats, boot.backward_stats)})

            est_poses = [pose0]
            tracking_iterations: List[int] = []
            mapping_invocations = 1

            if watch:
                alert_cursor = self._observe_frame(
                    recorder, monitor, frame=0, pose_est=pose0,
                    pose_gt=frame0.gt_pose_c2w, tracking=None, mapping=boot,
                    mapping_window=1, cloud_size=len(cloud),
                    keyframe_added=True, keyframe_count=len(keyframes),
                    wall_time_s=perf_counter() - frame_start,
                    alert_cursor=alert_cursor)

            for i in range(1, n):
                frame = sequence[i]
                init = self._constant_velocity_init(est_poses)
                frame_start = perf_counter()
                collector.begin_frame(i, intr.width, intr.height)
                with trace.span("slam.track", frame=i) as sp:
                    tr = tracker.track_frame(cloud, init, frame.color,
                                             frame.depth,
                                             collect_curve=recorder.enabled)
                    sp.set(iterations=tr.iterations, converged=tr.converged)
                est_poses.append(tr.pose_c2w)
                tracking_iterations.append(tr.iterations)
                stage_stats["tracking_fwd"].merge(tr.forward_stats)
                stage_stats["tracking_bwd"].merge(tr.backward_stats)

                kf_added = keyframes.maybe_add(i, tr.pose_c2w, frame.color,
                                               frame.depth)

                mp = None
                window_size = 0
                if i % self.algo.map_every == 0:
                    current = Keyframe(i, tr.pose_c2w, frame.color,
                                       frame.depth)
                    if self.algo.keyframe_selection == "overlap":
                        window = keyframes.select_by_overlap(
                            current, intr, rng=self.splatonic.rng)
                    else:
                        window = keyframes.select(current)
                    window_size = len(window)
                    with trace.span("slam.map", frame=i,
                                    window=len(window)) as sp:
                        mp = mapper.map_frame(cloud, current, window,
                                              collect_curve=recorder.enabled)
                        sp.set(seeded=mp.num_seeded, pruned=mp.num_pruned)
                    cloud = mp.cloud
                    mapping_invocations += 1
                    stage_stats["mapping_fwd"].merge(mp.forward_stats)
                    stage_stats["mapping_bwd"].merge(mp.backward_stats)

                if collector.active:
                    frame_stats = {
                        "tracking": (tr.forward_stats, tr.backward_stats)}
                    if mp is not None:
                        frame_stats["mapping"] = (mp.forward_stats,
                                                  mp.backward_stats)
                    collector.end_frame(frame_stats)

                if watch:
                    alert_cursor = self._observe_frame(
                        recorder, monitor, frame=i, pose_est=tr.pose_c2w,
                        pose_gt=frame.gt_pose_c2w, tracking=tr, mapping=mp,
                        mapping_window=window_size, cloud_size=len(cloud),
                        keyframe_added=kf_added, keyframe_count=len(keyframes),
                        wall_time_s=perf_counter() - frame_start,
                        alert_cursor=alert_cursor)

        if watch and recorder.enabled:
            est = np.stack(est_poses)
            gt = sequence.gt_trajectory[:n]
            ate = ate_rmse(est, gt)
            recorder.emit({
                "type": "summary",
                "frames": n,
                "ate": {
                    "rmse": ate.rmse, "mean": ate.mean,
                    "median": ate.median, "max": ate.max,
                    "per_frame": obs_flight.aligned_frame_errors(est, gt),
                },
                "final_gaussians": len(cloud),
                "mapping_invocations": mapping_invocations,
                "tracking_iterations": int(sum(tracking_iterations)),
                "alerts": [a.as_dict() for a in monitor.alerts],
            })

        result = SLAMResult(
            algorithm=self.algo.name,
            mode=self.mode,
            est_trajectory=np.stack(est_poses),
            gt_trajectory=sequence.gt_trajectory[:n],
            cloud=cloud,
            stage_stats=stage_stats,
            tracking_iterations=tracking_iterations,
            mapping_invocations=mapping_invocations,
            num_frames=n,
        )
        if registry is not None:
            from ..obs import runsdb
            record = runsdb.ingest_slam_run(
                registry, recorder.records,
                config={
                    "algorithm": self.algo.name,
                    "mode": self.mode,
                    "tracking_tile": self.splatonic.config.tracking_tile,
                    "mapping_tile": self.splatonic.config.mapping_tile,
                    "tracking_strategy":
                        self.splatonic.config.tracking_strategy,
                    "kernel_backend":
                        self.splatonic.config.kernel_backend,
                    "kernel_workers":
                        self.splatonic.config.kernel_workers,
                    "map_every": self.algo.map_every,
                    "keyframe_every": self.algo.keyframe_every,
                    "keyframe_window": self.algo.keyframe_window,
                },
                sequence=getattr(sequence, "name", None))
            result.run_id = record["run_id"]
        return result

    # ---- helpers ----

    def resolved_kernel_backend(self) -> str:
        """The sparse-kernel backend this run actually executes with
        (config > ``$REPRO_KERNEL_BACKEND`` > registry default)."""
        from ..render.kernels import resolve_backend
        return resolve_backend(self.splatonic.config.kernel_backend)

    def resolved_render_cache(self) -> bool:
        """Whether this run renders through the temporal-coherence cache
        (config > ``$REPRO_RENDER_CACHE`` > off)."""
        return self.splatonic.render_cache_enabled()

    def effective_kernel_workers(self) -> int:
        """The worker-pool size this run actually renders with.

        1 for the single-core backends; for ``parallel`` the resolved
        pool size (config > ``$REPRO_KERNEL_WORKERS`` > CPU count).
        """
        if self.resolved_kernel_backend() != "parallel":
            return 1
        from ..render.kernels.parallel import resolve_workers
        return resolve_workers(self.splatonic.config.kernel_workers)

    @staticmethod
    def _observe_frame(recorder, monitor, *, frame, pose_est, pose_gt,
                       tracking, mapping, mapping_window, cloud_size,
                       keyframe_added, keyframe_count,
                       wall_time_s: Optional[float] = None,
                       alert_cursor: int = 0) -> int:
        """Assemble one flight record, run the health monitors over it,
        attach any alerts this frame produced (including the tracker/
        mapper finite-guard ones), and emit it.  Returns the new alert
        cursor into ``monitor.alerts``."""
        alpha_src = (tracking or mapping)
        candidate = contrib = 0
        if alpha_src is not None:
            candidate = int(alpha_src.forward_stats.num_candidate_pairs)
            contrib = int(alpha_src.forward_stats.num_contrib_pairs)
        counters = {}
        if tracking is not None:
            counters["tracking_fwd"] = tracking.forward_stats.headline()
            counters["tracking_bwd"] = tracking.backward_stats.headline()
        if mapping is not None:
            counters["mapping_fwd"] = mapping.forward_stats.headline()
            counters["mapping_bwd"] = mapping.backward_stats.headline()
        # Render-cache accounting (forward passes own the lookups).  Not
        # a diff channel: the cached/uncached equivalence differ must see
        # identical payloads everywhere else, while this block carries
        # the strategy-level hit/miss telemetry.
        cache = PipelineStats()
        for src in (tracking, mapping):
            if src is not None:
                stats = src.forward_stats
                cache.cache_hits += stats.cache_hits
                cache.cache_misses += stats.cache_misses
                cache.cache_rebuilds += stats.cache_rebuilds
                cache.cache_active_gaussians += stats.cache_active_gaussians
        cache_block = cache.cache_summary()

        record = {
            "type": "frame",
            "frame": int(frame),
            "pose_est": pose_est,
            "pose_gt": pose_gt,
            "pose_error_m": float(np.linalg.norm(
                np.asarray(pose_est)[:3, 3] - np.asarray(pose_gt)[:3, 3])),
            "tracking": None if tracking is None else {
                "iterations": int(tracking.iterations),
                "converged": bool(tracking.converged),
                "final_loss": float(tracking.final_loss),
                "sampled_pixels": int(tracking.num_sampled_pixels),
                "loss_curve": tracking.loss_curve,
            },
            "mapping": None if mapping is None else {
                "invoked": True,
                "num_seeded": int(mapping.num_seeded),
                "num_pruned": int(mapping.num_pruned),
                "final_loss": float(mapping.final_loss),
                "window": int(mapping_window),
                "sampling": mapping.sample_info or None,
                "loss_curve": mapping.loss_curve,
            },
            "gaussians": int(cloud_size),
            "keyframe": {"added": bool(keyframe_added),
                         "buffer_size": int(keyframe_count)},
            "alpha": {
                "candidate_pairs": candidate,
                "contrib_pairs": contrib,
                "rejection_rate": (1.0 - contrib / candidate
                                   if candidate else 0.0),
            },
            "cache": cache_block,
            "counters": counters,
            "wall_time_s": (None if wall_time_s is None
                            else float(wall_time_s)),
        }
        # Normalize before observing so the monitors see the same plain
        # values a reader of the JSONL stream would.
        record = obs_flight.to_plain(record)
        monitor.observe_frame(record)
        new_alerts = monitor.alerts[alert_cursor:]
        if new_alerts:
            record["alerts"] = [a.as_dict() for a in new_alerts]
        recorder.emit(record)
        if obs_telemetry.bus.enabled:
            obs_metrics.set_gauge("slam.frame", float(frame))
            obs_metrics.set_gauge("slam.gaussians", float(cloud_size))
            obs_metrics.set_gauge(
                "slam.pose_error_m", float(record["pose_error_m"]))
            obs_metrics.set_gauge(
                "slam.cache_hit_rate", float(cache_block["hit_rate"]))
            obs_metrics.publish_snapshot()
        return len(monitor.alerts)

    def _bootstrap_cloud(self, intr, pose0, frame0) -> GaussianCloud:
        """Seed the initial map from a regular grid over frame 0."""
        stride = self.bootstrap_stride
        us = np.arange(0, intr.width, stride)
        vs = np.arange(0, intr.height, stride)
        uu, vv = np.meshgrid(us, vs)
        pixels = np.stack([uu.ravel(), vv.ravel()], axis=-1)
        camera = Camera(intr, pose0)
        return seed_from_rgbd(camera, frame0.color, frame0.depth, pixels,
                              initial_opacity=self.algo.densify_opacity,
                              scale_factor=1.3 * stride)

    @staticmethod
    def _constant_velocity_init(est_poses: List[np.ndarray]) -> np.ndarray:
        """Extrapolate the next pose from the last two estimates."""
        if len(est_poses) < 2:
            return est_poses[-1].copy()
        prev, last = est_poses[-2], est_poses[-1]
        delta = se3_inverse(prev) @ last
        return last @ delta
