"""The full 3DGS-SLAM loop: alternating tracking and mapping (Fig. 2).

``SLAMSystem.run`` consumes an RGB-D sequence: every frame is tracked
(constant-velocity initialization, then iterative pose optimization);
every ``map_every`` frames the mapper densifies and fine-tunes the map
against a keyframe window.  Workload counters are accumulated separately
for the four stages (tracking/mapping x forward/backward) so the hardware
models can replay exactly the workloads the run produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.splatonic import Splatonic, SplatonicConfig
from ..gaussians.camera import Camera
from ..gaussians.init import seed_from_rgbd
from ..gaussians.model import GaussianCloud
from ..gaussians.se3 import se3_inverse
from ..metrics.ate import AteResult, ate_rmse
from ..metrics.quality import depth_l1, psnr, ssim
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..render.rasterize import render_full
from ..render.stats import PipelineStats
from .config import AlgorithmConfig, get_algorithm
from .keyframes import Keyframe, KeyframeBuffer
from .mapper import Mapper
from .tracker import Tracker

__all__ = ["SLAMResult", "SLAMSystem"]


@dataclass
class SLAMResult:
    """Everything a finished SLAM run produced."""

    algorithm: str
    mode: str
    est_trajectory: np.ndarray      # (N, 4, 4)
    gt_trajectory: np.ndarray       # (N, 4, 4)
    cloud: GaussianCloud
    stage_stats: Dict[str, PipelineStats]
    tracking_iterations: List[int] = field(default_factory=list)
    mapping_invocations: int = 0
    num_frames: int = 0

    def ate(self) -> AteResult:
        """Absolute trajectory error of the estimated trajectory."""
        return ate_rmse(self.est_trajectory, self.gt_trajectory)

    def eval_quality(self, sequence, every: int = 4,
                     background: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Render at the estimated poses and compare against the references.

        The returned dict always includes ``frames_evaluated``.  When the
        sampling yields no frames at all (``num_frames == 0`` or a
        non-positive ``every``), the scores are reported as 0.0 with a
        metrics-registry warning instead of silently averaging empty
        lists into NaN.
        """
        bg = np.full(3, 0.05) if background is None else background
        scores_psnr, scores_ssim, scores_d = [], [], []
        with trace.span("slam.eval_quality", every=every):
            for i in range(0, self.num_frames, max(every, 1)):
                cam = Camera(sequence.intrinsics, self.est_trajectory[i])
                res = render_full(self.cloud, cam, bg, keep_cache=False)
                frame = sequence[i]
                scores_psnr.append(psnr(res.color, frame.color))
                scores_ssim.append(ssim(res.color, frame.color))
                scores_d.append(depth_l1(res.depth, frame.depth))
        if not scores_psnr:
            obs_metrics.warn(
                f"eval_quality: no frames sampled (num_frames="
                f"{self.num_frames}, every={every}); returning zero scores")
            return {"psnr": 0.0, "ssim": 0.0, "depth_l1": 0.0,
                    "frames_evaluated": 0}
        return {
            "psnr": float(np.mean(scores_psnr)),
            "ssim": float(np.mean(scores_ssim)),
            "depth_l1": float(np.mean(scores_d)),
            "frames_evaluated": len(scores_psnr),
        }


class SLAMSystem:
    """Orchestrates tracking, keyframing, and mapping over a sequence."""

    STAGES = ("tracking_fwd", "tracking_bwd", "mapping_fwd", "mapping_bwd")

    def __init__(
        self,
        algorithm="splatam",
        mode: str = "sparse",
        splatonic_config: Optional[SplatonicConfig] = None,
        seed: int = 0,
        background: Optional[np.ndarray] = None,
        bootstrap_stride: int = 2,
    ):
        self.algo: AlgorithmConfig = (
            algorithm if isinstance(algorithm, AlgorithmConfig)
            else get_algorithm(algorithm))
        if mode not in ("sparse", "dense"):
            raise ValueError("mode must be 'sparse' or 'dense'")
        self.mode = mode
        self.splatonic = Splatonic(splatonic_config or SplatonicConfig(),
                                   rng=np.random.default_rng(seed))
        self.background = (np.full(3, 0.05) if background is None
                           else np.asarray(background, float))
        self.bootstrap_stride = bootstrap_stride

    def run(self, sequence, n_frames: Optional[int] = None) -> SLAMResult:
        """Run SLAM over ``sequence`` and return the result bundle."""
        n = len(sequence) if n_frames is None else min(n_frames, len(sequence))
        if n < 2:
            raise ValueError("need at least two frames")
        intr = sequence.intrinsics

        tracker = Tracker(self.algo, intr, self.splatonic, self.mode,
                          self.background)
        mapper = Mapper(self.algo, intr, self.splatonic, self.mode,
                        self.background)
        keyframes = KeyframeBuffer(self.algo.keyframe_every,
                                   self.algo.keyframe_window)
        stage_stats = {s: PipelineStats() for s in self.STAGES}

        # ---- bootstrap on frame 0 (pose anchored to ground truth) ----
        run_span = trace.span("slam.run", algorithm=self.algo.name,
                              mode=self.mode, frames=n)
        with run_span:
            frame0 = sequence[0]
            pose0 = frame0.gt_pose_c2w.copy()
            with trace.span("slam.bootstrap"):
                cloud = self._bootstrap_cloud(intr, pose0, frame0)
                kf0 = Keyframe(0, pose0, frame0.color, frame0.depth)
                keyframes.maybe_add(0, pose0, frame0.color, frame0.depth)
                boot = mapper.map_frame(cloud, kf0, [kf0])
            cloud = boot.cloud
            stage_stats["mapping_fwd"].merge(boot.forward_stats)
            stage_stats["mapping_bwd"].merge(boot.backward_stats)

            est_poses = [pose0]
            tracking_iterations: List[int] = []
            mapping_invocations = 1

            for i in range(1, n):
                frame = sequence[i]
                init = self._constant_velocity_init(est_poses)
                with trace.span("slam.track", frame=i) as sp:
                    tr = tracker.track_frame(cloud, init, frame.color,
                                             frame.depth)
                    sp.set(iterations=tr.iterations, converged=tr.converged)
                est_poses.append(tr.pose_c2w)
                tracking_iterations.append(tr.iterations)
                stage_stats["tracking_fwd"].merge(tr.forward_stats)
                stage_stats["tracking_bwd"].merge(tr.backward_stats)

                keyframes.maybe_add(i, tr.pose_c2w, frame.color, frame.depth)

                if i % self.algo.map_every == 0:
                    current = Keyframe(i, tr.pose_c2w, frame.color,
                                       frame.depth)
                    if self.algo.keyframe_selection == "overlap":
                        window = keyframes.select_by_overlap(
                            current, intr, rng=self.splatonic.rng)
                    else:
                        window = keyframes.select(current)
                    with trace.span("slam.map", frame=i,
                                    window=len(window)) as sp:
                        mp = mapper.map_frame(cloud, current, window)
                        sp.set(seeded=mp.num_seeded, pruned=mp.num_pruned)
                    cloud = mp.cloud
                    mapping_invocations += 1
                    stage_stats["mapping_fwd"].merge(mp.forward_stats)
                    stage_stats["mapping_bwd"].merge(mp.backward_stats)

        return SLAMResult(
            algorithm=self.algo.name,
            mode=self.mode,
            est_trajectory=np.stack(est_poses),
            gt_trajectory=sequence.gt_trajectory[:n],
            cloud=cloud,
            stage_stats=stage_stats,
            tracking_iterations=tracking_iterations,
            mapping_invocations=mapping_invocations,
            num_frames=n,
        )

    # ---- helpers ----

    def _bootstrap_cloud(self, intr, pose0, frame0) -> GaussianCloud:
        """Seed the initial map from a regular grid over frame 0."""
        stride = self.bootstrap_stride
        us = np.arange(0, intr.width, stride)
        vs = np.arange(0, intr.height, stride)
        uu, vv = np.meshgrid(us, vs)
        pixels = np.stack([uu.ravel(), vv.ravel()], axis=-1)
        camera = Camera(intr, pose0)
        return seed_from_rgbd(camera, frame0.color, frame0.depth, pixels,
                              initial_opacity=self.algo.densify_opacity,
                              scale_factor=1.3 * stride)

    @staticmethod
    def _constant_velocity_init(est_poses: List[np.ndarray]) -> np.ndarray:
        """Extrapolate the next pose from the last two estimates."""
        if len(est_poses) < 2:
            return est_poses[-1].copy()
        prev, last = est_poses[-2], est_poses[-1]
        delta = se3_inverse(prev) @ last
        return last @ delta
