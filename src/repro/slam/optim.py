"""A small Adam optimizer for flat parameter vectors.

Both tracking (a 6-vector twist) and mapping (the packed Gaussian
parameters) are first-order optimizations, matching the Adam-based
training loops of the 3DGS-SLAM systems the paper builds on.
``lr`` may be a scalar or a per-parameter array, which is how the tracker
gives rotation and translation different step sizes and the mapper gives
means/scales/opacities/colors their own learning rates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Adam", "packed_cloud_blocks"]


def packed_cloud_blocks(old_n: int, new_n: int) -> List[Tuple[int, int]]:
    """(old, new) block sizes of ``GaussianCloud.pack()`` vectors.

    The packed layout is block-ordered ``[means (3n), log_scales (n),
    logit_opacities (n), colors (3n)]`` — the layout ``_mapping_lr``
    builds its per-parameter learning rates against.  Growing from
    ``old_n`` to ``new_n`` Gaussians must insert the new state *inside
    each block*, not at the vector tail (which would land it in the
    colors block).
    """
    if new_n < old_n:
        raise ValueError("Gaussian count can only grow")
    return [(3 * old_n, 3 * new_n), (old_n, new_n), (old_n, new_n),
            (3 * old_n, 3 * new_n)]


class Adam:
    """Adam (Kingma & Ba) on a flat numpy parameter vector."""

    def __init__(self, size: int, lr, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        self.lr = np.broadcast_to(np.asarray(lr, dtype=float), (size,)).copy()
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = np.zeros(size)
        self.v = np.zeros(size)
        self.t = 0

    def step(self, grad: np.ndarray) -> np.ndarray:
        """Return the parameter *update* (to be added) for this gradient."""
        grad = np.asarray(grad, dtype=float)
        if grad.shape != self.m.shape:
            raise ValueError(
                f"gradient shape {grad.shape} != state shape {self.m.shape}")
        self.t += 1
        self.m = self.beta1 * self.m + (1.0 - self.beta1) * grad
        self.v = self.beta2 * self.v + (1.0 - self.beta2) * grad * grad
        m_hat = self.m / (1.0 - self.beta1 ** self.t)
        v_hat = self.v / (1.0 - self.beta2 ** self.t)
        return -self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def resize(self, new_size: int,
               blocks: Optional[Sequence[Tuple[int, int]]] = None) -> None:
        """Grow the state with zeros when new parameters are appended.

        ``blocks`` describes a block-ordered layout as ``(old, new)``
        segment sizes; fresh zeros (and the segment's trailing learning
        rate) are inserted at the *end of each block*.  Without it the
        vector is treated as one flat block and grown at the tail —
        correct for genuinely flat layouts only.  Packed Gaussian-cloud
        vectors are block-ordered ``[means, scales, opacities, colors]``,
        so they must pass :func:`packed_cloud_blocks`; a tail append
        would land new-Gaussian momentum in the colors block.
        """
        old_size = self.m.shape[0]
        if new_size < old_size:
            raise ValueError("Adam state can only grow")
        if new_size == old_size:
            return
        if blocks is None:
            blocks = [(old_size, new_size)]
        if sum(o for o, _ in blocks) != old_size:
            raise ValueError(
                f"blocks describe {sum(o for o, _ in blocks)} old entries, "
                f"state has {old_size}")
        if sum(n for _, n in blocks) != new_size:
            raise ValueError(
                f"blocks describe {sum(n for _, n in blocks)} new entries, "
                f"asked to resize to {new_size}")
        if any(n < o for o, n in blocks):
            raise ValueError("every block can only grow")
        m_parts, v_parts, lr_parts = [], [], []
        offset = 0
        for old, new in blocks:
            m_parts.append(self.m[offset:offset + old])
            v_parts.append(self.v[offset:offset + old])
            lr_parts.append(self.lr[offset:offset + old])
            extra = new - old
            if extra:
                m_parts.append(np.zeros(extra))
                v_parts.append(np.zeros(extra))
                block_lr = self.lr[offset + old - 1] if old else 0.0
                lr_parts.append(np.full(extra, block_lr))
            offset += old
        self.m = np.concatenate(m_parts)
        self.v = np.concatenate(v_parts)
        self.lr = np.concatenate(lr_parts)
