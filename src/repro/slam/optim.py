"""A small Adam optimizer for flat parameter vectors.

Both tracking (a 6-vector twist) and mapping (the packed Gaussian
parameters) are first-order optimizations, matching the Adam-based
training loops of the 3DGS-SLAM systems the paper builds on.
``lr`` may be a scalar or a per-parameter array, which is how the tracker
gives rotation and translation different step sizes and the mapper gives
means/scales/opacities/colors their own learning rates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Adam"]


class Adam:
    """Adam (Kingma & Ba) on a flat numpy parameter vector."""

    def __init__(self, size: int, lr, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        self.lr = np.broadcast_to(np.asarray(lr, dtype=float), (size,)).copy()
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = np.zeros(size)
        self.v = np.zeros(size)
        self.t = 0

    def step(self, grad: np.ndarray) -> np.ndarray:
        """Return the parameter *update* (to be added) for this gradient."""
        grad = np.asarray(grad, dtype=float)
        if grad.shape != self.m.shape:
            raise ValueError(
                f"gradient shape {grad.shape} != state shape {self.m.shape}")
        self.t += 1
        self.m = self.beta1 * self.m + (1.0 - self.beta1) * grad
        self.v = self.beta2 * self.v + (1.0 - self.beta2) * grad * grad
        m_hat = self.m / (1.0 - self.beta1 ** self.t)
        v_hat = self.v / (1.0 - self.beta2 ** self.t)
        return -self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def resize(self, new_size: int) -> None:
        """Grow the state with zeros when new parameters are appended."""
        if new_size < self.m.shape[0]:
            raise ValueError("Adam state can only grow")
        extra = new_size - self.m.shape[0]
        if extra == 0:
            return
        self.m = np.concatenate([self.m, np.zeros(extra)])
        self.v = np.concatenate([self.v, np.zeros(extra)])
        last_lr = self.lr[-1] if self.lr.size else 0.0
        self.lr = np.concatenate([self.lr, np.full(extra, last_lr)])
