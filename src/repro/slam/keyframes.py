"""Keyframe bookkeeping for the mapper.

Mapping fine-tunes the map against a window of ``w`` recent keyframes
(Sec. II-A).  The buffer keeps every ``keyframe_every``-th frame plus the
first frame (which anchors the global reference), and serves a window of
them for each mapping invocation — the current frame is always included.

Two selection policies are provided:

- ``select`` — the most recent ``window`` keyframes (simple recency);
- ``select_by_overlap`` — SplaTAM's covisibility policy: back-project a
  subsample of the current frame's depth and rank keyframes by the
  fraction of those points that fall inside their view frustum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.features import sobel_magnitude
from ..gaussians.camera import Camera, Intrinsics

__all__ = ["Keyframe", "KeyframeBuffer", "view_overlap"]


def view_overlap(points_world: np.ndarray, camera: Camera,
                 near: float = 0.01) -> float:
    """Fraction of world points visible in ``camera``'s frustum."""
    points_world = np.atleast_2d(points_world)
    if points_world.shape[0] == 0:
        return 0.0
    p_cam = camera.world_to_camera(points_world)
    z = p_cam[:, 2]
    front = z > near
    if not np.any(front):
        return 0.0
    uv = camera.intrinsics.project(p_cam[front])
    intr = camera.intrinsics
    inside = ((uv[:, 0] >= 0) & (uv[:, 0] < intr.width)
              & (uv[:, 1] >= 0) & (uv[:, 1] < intr.height))
    return float(inside.sum()) / points_world.shape[0]


@dataclass
class Keyframe:
    """A stored observation with its estimated pose."""

    index: int
    pose_c2w: np.ndarray
    color: np.ndarray
    depth: np.ndarray
    # Lazily memoized Sobel texture-weight map of ``color``.  Keyframe
    # colors never change, but the mapper re-samples every window
    # keyframe on every invocation — without the cache it recomputes the
    # same filter response each time.  Excluded from equality/repr.
    _texture_weight: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False)

    def texture_weight(self) -> np.ndarray:
        """``(H, W)`` Sobel magnitude of ``color``, computed once."""
        if self._texture_weight is None:
            self._texture_weight = sobel_magnitude(self.color)
        return self._texture_weight


class KeyframeBuffer:
    """Fixed-cadence keyframe store with a recency window."""

    def __init__(self, keyframe_every: int, window: int):
        if keyframe_every <= 0 or window <= 0:
            raise ValueError("cadence and window must be positive")
        self.keyframe_every = keyframe_every
        self.window = window
        self._keyframes: List[Keyframe] = []

    def __len__(self) -> int:
        return len(self._keyframes)

    def maybe_add(self, index: int, pose_c2w: np.ndarray,
                  color: np.ndarray, depth: np.ndarray) -> bool:
        """Store the frame if it falls on the keyframe cadence."""
        if index % self.keyframe_every != 0:
            return False
        self._keyframes.append(Keyframe(
            index=index,
            pose_c2w=np.asarray(pose_c2w, float).copy(),
            color=color,
            depth=depth,
        ))
        return True

    def select(self, current: Keyframe) -> List[Keyframe]:
        """Keyframes for one mapping call: current + recent window + anchor."""
        recent = self._keyframes[-self.window:]
        chosen = list(recent)
        if self._keyframes and self._keyframes[0] not in chosen:
            chosen.insert(0, self._keyframes[0])
        if all(kf.index != current.index for kf in chosen):
            chosen.append(current)
        return chosen

    def select_by_overlap(self, current: Keyframe, intrinsics: Intrinsics,
                          n_samples: int = 64,
                          rng: Optional[np.random.Generator] = None
                          ) -> List[Keyframe]:
        """SplaTAM-style covisibility selection.

        Back-projects ``n_samples`` random valid-depth pixels of the
        current frame to world space, ranks stored keyframes by the
        fraction of those points inside their frustum, and returns the
        top ``window`` plus the current frame.
        """
        rng = rng or np.random.default_rng(0)
        depth = np.asarray(current.depth, dtype=float)
        vs, us = np.nonzero(depth > 0)
        if us.size == 0 or not self._keyframes:
            return self.select(current)
        pick = rng.choice(us.size, size=min(n_samples, us.size),
                          replace=False)
        u, v = us[pick], vs[pick]
        cam = Camera(intrinsics, current.pose_c2w)
        p_cam = intrinsics.backproject(
            np.stack([u + 0.5, v + 0.5], axis=-1), depth[v, u])
        p_world = p_cam @ cam.pose_c2w[:3, :3].T + cam.pose_c2w[:3, 3]

        scored = []
        for kf in self._keyframes:
            if kf.index == current.index:
                continue
            overlap = view_overlap(p_world, Camera(intrinsics, kf.pose_c2w))
            scored.append((overlap, kf.index, kf))
        scored.sort(key=lambda t: (-t[0], t[1]))
        chosen = [kf for _, _, kf in scored[:self.window]]
        chosen.append(current)
        return chosen
