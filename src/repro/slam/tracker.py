"""Camera tracking: per-frame pose optimization (Sec. II-A).

Each frame's pose is optimized by gradient descent on the RGB-D loss with
the map held fixed.  The tracker supports two rendering modes:

- ``sparse``  — SPLATONIC's pixel set (one pixel per ``w_t x w_t`` tile)
  rendered with the pixel-based pipeline;
- ``dense``   — the full frame rendered with the tile-based pipeline (the
  Org. baseline).

The pose update is right-multiplicative on SE(3): ``T <- T @ exp(xi)``
with a fresh Adam state per frame, separate learning rates for the
translational and rotational twist components, and early stopping when the
loss stops improving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.splatonic import Splatonic
from ..gaussians.camera import Camera, Intrinsics
from ..obs import trace
from ..obs import atlas as obs_atlas
from ..obs.health import get_monitor
from ..gaussians.model import GaussianCloud
from ..gaussians.se3 import se3_exp
from ..render.backward import backward_full
from ..render.stats import PipelineStats
from .config import AlgorithmConfig
from .losses import rgbd_loss
from .optim import Adam

__all__ = ["TrackingResult", "Tracker"]


@dataclass
class TrackingResult:
    """Outcome of tracking one frame."""

    pose_c2w: np.ndarray
    iterations: int
    final_loss: float
    converged: bool
    forward_stats: PipelineStats = field(default_factory=PipelineStats)
    backward_stats: PipelineStats = field(default_factory=PipelineStats)
    num_sampled_pixels: int = 0
    # Per-iteration loss values; collected only on request (the flight
    # recorder asks for it), None otherwise.
    loss_curve: Optional[List[float]] = None


class Tracker:
    """Per-frame pose estimator over a fixed Gaussian map."""

    def __init__(self, algo: AlgorithmConfig, intrinsics: Intrinsics,
                 splatonic: Optional[Splatonic] = None,
                 mode: str = "sparse",
                 background: Optional[np.ndarray] = None):
        if mode not in ("sparse", "dense"):
            raise ValueError("mode must be 'sparse' or 'dense'")
        if mode == "sparse" and splatonic is None:
            raise ValueError("sparse tracking needs a Splatonic instance")
        self.algo = algo
        self.intrinsics = intrinsics
        self.splatonic = splatonic or Splatonic()
        self.mode = mode
        self.background = (np.zeros(3) if background is None
                           else np.asarray(background, float))

    def track_frame(
        self,
        cloud: GaussianCloud,
        init_pose_c2w: np.ndarray,
        ref_color: np.ndarray,
        ref_depth: np.ndarray,
        max_iters: Optional[int] = None,
        collect_curve: bool = False,
    ) -> TrackingResult:
        """Optimize the frame's pose starting from ``init_pose_c2w``.

        ``collect_curve=True`` additionally records the per-iteration
        loss values (for the flight recorder); the default keeps the
        hot loop allocation-free.
        """
        iters = max_iters if max_iters is not None else self.algo.tracking_iters
        # Attribute this frame's render observations to the tracking stage
        # of the sparsity atlas (no-op unless a frame is being collected).
        obs_atlas.set_stage("tracking")
        pose = np.asarray(init_pose_c2w, dtype=float).copy()
        lr = np.concatenate([
            np.full(3, self.algo.lr_translation),
            np.full(3, self.algo.lr_rotation),
        ])
        adam = Adam(6, lr)

        record = self.splatonic.config.record_per_pixel
        fwd_stats = PipelineStats(pipeline=self.mode, record_per_pixel=record)
        bwd_stats = PipelineStats(pipeline=self.mode, record_per_pixel=record)
        if self.mode == "sparse":
            pixels = self.splatonic.sample_tracking(
                Camera(self.intrinsics, pose), image=ref_color)
            ref_c = ref_color[pixels[:, 1], pixels[:, 0]]
            ref_d = ref_depth[pixels[:, 1], pixels[:, 0]]
            num_sampled = int(len(pixels))
            # One temporal-coherence cache per frame: the pixel set is
            # fixed for the whole pose optimization, only the pose drifts.
            render_cache = self.splatonic.make_render_cache("tracking")
        else:
            num_sampled = int(ref_depth.size)

        best_loss = np.inf
        stall = 0
        loss_value = 0.0
        it = 0
        converged = False
        curve: Optional[List[float]] = [] if collect_curve else None
        for it in range(1, iters + 1):
            camera = Camera(self.intrinsics, pose)
            if self.mode == "sparse":
                with trace.span("tracking_fwd", iteration=it):
                    result = self.splatonic.render_sparse(
                        cloud, camera, pixels, self.background,
                        lattice_tile=self.splatonic.config.tracking_tile,
                        cache=render_cache)
                    out = rgbd_loss(result.color, result.depth,
                                    result.silhouette, ref_c, ref_d,
                                    self.algo.tracking_loss, tracking=True)
                with trace.span("tracking_bwd", iteration=it):
                    grads = self.splatonic.backward_sparse(
                        result, cloud, camera,
                        out.d_color, out.d_depth, out.d_silhouette)
            else:
                with trace.span("tracking_fwd", iteration=it):
                    result = self.splatonic.render_full(
                        cloud, camera, self.background)
                    h, w = ref_depth.shape
                    out = rgbd_loss(
                        result.color.reshape(-1, 3), result.depth.ravel(),
                        result.silhouette.ravel(), ref_color.reshape(-1, 3),
                        ref_depth.ravel(), self.algo.tracking_loss,
                        tracking=True)
                with trace.span("tracking_bwd", iteration=it):
                    grads = backward_full(
                        result, cloud, camera,
                        out.d_color.reshape(h, w, 3),
                        out.d_depth.reshape(h, w),
                        out.d_silhouette.reshape(h, w))
            fwd_stats.merge(result.stats)
            bwd_stats.merge(grads.stats)
            loss_value = out.loss
            if curve is not None:
                curve.append(float(loss_value))

            if out.num_valid == 0:
                break
            # Finite guard (always on): a poisoned loss or gradient must
            # not reach the Adam state or the pose — alert through the
            # health monitors and keep the last good estimate.
            if not (np.isfinite(loss_value)
                    and np.all(np.isfinite(grads.d_pose_twist))):
                get_monitor().non_finite("tracking loss/gradient",
                                         iteration=it,
                                         loss=float(loss_value))
                break
            step = adam.step(grads.d_pose_twist)
            pose = pose @ se3_exp(step)

            if loss_value < best_loss * (1.0 - self.algo.track_converge_rel):
                best_loss = loss_value
                stall = 0
            else:
                stall += 1
                if stall >= self.algo.track_converge_patience:
                    converged = True
                    break

        return TrackingResult(
            pose_c2w=pose,
            iterations=it,
            final_loss=loss_value,
            converged=converged,
            forward_stats=fwd_stats,
            backward_stats=bwd_stats,
            num_sampled_pixels=num_sampled,
            loss_curve=curve,
        )
