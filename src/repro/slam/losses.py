"""SLAM training losses and their analytic gradients.

Both tracking and mapping minimize a weighted L1 photometric + depth loss
(SplaTAM-style).  Tracking additionally masks the loss to *well-observed*
pixels — those whose rendered silhouette is close to 1 — so unreconstructed
regions cannot drag the pose (the red-block assumption of Fig. 1).

Every loss function returns the scalar loss together with the gradients
w.r.t. the rendered color / depth / silhouette, ready to feed the
renderers' backward passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LossConfig", "LossOutput", "rgbd_loss"]


@dataclass(frozen=True)
class LossConfig:
    """Weights and masking thresholds of the RGB-D loss."""

    color_weight: float = 0.5
    depth_weight: float = 1.0
    # Tracking-only: pixels with rendered silhouette below this are masked
    # out (SplaTAM uses 0.99; lower values admit partially-seen pixels).
    silhouette_threshold: float = 0.99
    # Optional pull on the silhouette channel during mapping, encouraging
    # opacity to explain observed surfaces.
    silhouette_weight: float = 0.0
    # Smooth-L1 knee: below delta the loss is quadratic, which keeps the
    # gradients informative near convergence. delta=0 degenerates to L1.
    huber_delta: float = 0.0


@dataclass
class LossOutput:
    """Scalar loss plus per-pixel gradients for the backward pass."""

    loss: float
    d_color: np.ndarray
    d_depth: np.ndarray
    d_silhouette: np.ndarray
    num_valid: int


def _huber(residual: np.ndarray, delta: float):
    """Return (value, derivative) of the Huber/L1 penalty elementwise."""
    if delta <= 0.0:
        return np.abs(residual), np.sign(residual)
    a = np.abs(residual)
    quad = a <= delta
    value = np.where(quad, 0.5 * residual ** 2 / delta, a - 0.5 * delta)
    grad = np.where(quad, residual / delta, np.sign(residual))
    return value, grad


def rgbd_loss(
    rendered_color: np.ndarray,
    rendered_depth: np.ndarray,
    rendered_silhouette: np.ndarray,
    ref_color: np.ndarray,
    ref_depth: np.ndarray,
    config: LossConfig,
    tracking: bool,
) -> LossOutput:
    """Weighted L1 color + depth loss over a batch of pixels.

    Inputs are flat per-pixel arrays: color ``(K, 3)``, depth and
    silhouette ``(K,)``.  Dense images must be raveled by the caller.
    The loss is normalized by the number of *valid* pixels so sparse and
    dense passes are on the same scale.
    """
    rendered_color = np.atleast_2d(np.asarray(rendered_color, dtype=float))
    rendered_depth = np.atleast_1d(np.asarray(rendered_depth, dtype=float))
    rendered_silhouette = np.atleast_1d(
        np.asarray(rendered_silhouette, dtype=float))
    ref_color = np.atleast_2d(np.asarray(ref_color, dtype=float))
    ref_depth = np.atleast_1d(np.asarray(ref_depth, dtype=float))
    K = rendered_depth.shape[0]

    valid = ref_depth > 0.0
    if tracking:
        valid = valid & (rendered_silhouette > config.silhouette_threshold)
    n_valid = int(valid.sum())
    d_color = np.zeros((K, 3))
    d_depth = np.zeros(K)
    d_silhouette = np.zeros(K)
    if n_valid == 0:
        return LossOutput(0.0, d_color, d_depth, d_silhouette, 0)

    norm = 1.0 / n_valid
    res_c = rendered_color - ref_color
    res_d = rendered_depth - ref_depth
    val_c, grad_c = _huber(res_c, config.huber_delta)
    val_d, grad_d = _huber(res_d, config.huber_delta)

    loss = config.color_weight * norm * float(val_c[valid].sum())
    loss += config.depth_weight * norm * float(val_d[valid].sum())
    d_color[valid] = config.color_weight * norm * grad_c[valid]
    d_depth[valid] = config.depth_weight * norm * grad_d[valid]

    if config.silhouette_weight > 0.0 and not tracking:
        # Pull the silhouette toward 1 on observed pixels.
        res_s = rendered_silhouette - 1.0
        val_s, grad_s = _huber(res_s, config.huber_delta)
        loss += config.silhouette_weight * norm * float(val_s[valid].sum())
        d_silhouette[valid] = config.silhouette_weight * norm * grad_s[valid]

    return LossOutput(loss, d_color, d_depth, d_silhouette, n_valid)
