"""Mapping: scene reconstruction by map optimization (Sec. II-A).

Each mapping invocation, at the current frame:

1. A *first forward pass* renders the full frame once to obtain the final
   transmittance map ``Gamma_final`` (the paper performs this single dense
   pass per mapping; its cost is charged to the mapping workload).
2. **Densification** seeds new Gaussians at unseen pixels (Eqn. 2) by
   back-projecting their measured depth.
3. **Optimization** runs ``mapping_iters`` iterations round-robin over the
   keyframe window, rendering each keyframe's mapping pixel set with the
   pixel-based pipeline (or densely, in the Org. baseline) and stepping
   all Gaussian parameters with Adam.
4. Gaussians whose opacity collapsed are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.splatonic import Splatonic
from ..gaussians.camera import Camera, Intrinsics
from ..gaussians.init import seed_from_rgbd
from ..gaussians.model import GaussianCloud
from ..obs import trace
from ..obs import atlas as obs_atlas
from ..obs.health import get_monitor
from ..render.backward import backward_full
from ..render.stats import PipelineStats
from .config import AlgorithmConfig
from .keyframes import Keyframe
from .losses import rgbd_loss
from .optim import Adam

__all__ = ["MappingResult", "Mapper"]


@dataclass
class MappingResult:
    """Outcome of one mapping invocation."""

    cloud: GaussianCloud
    num_seeded: int
    num_pruned: int
    final_loss: float
    forward_stats: PipelineStats = field(default_factory=PipelineStats)
    backward_stats: PipelineStats = field(default_factory=PipelineStats)
    # Sampling composition of the *current* keyframe's pixel set:
    # unseen/weighted/total counts, the unseen-coverage fraction of the
    # first forward pass, and whether this invocation rendered densely.
    sample_info: Dict[str, float] = field(default_factory=dict)
    # Per-iteration loss values; collected only on request (the flight
    # recorder asks for it), None otherwise.
    loss_curve: Optional[List[float]] = None


def _mapping_lr(algo: AlgorithmConfig, n: int) -> np.ndarray:
    """Per-parameter learning rates in GaussianCloud.pack() layout."""
    return np.concatenate([
        np.full(3 * n, algo.lr_means),
        np.full(n, algo.lr_log_scales),
        np.full(n, algo.lr_logit_opacities),
        np.full(3 * n, algo.lr_colors),
    ])


class Mapper:
    """Map optimizer over a keyframe window."""

    def __init__(self, algo: AlgorithmConfig, intrinsics: Intrinsics,
                 splatonic: Optional[Splatonic] = None,
                 mode: str = "sparse",
                 background: Optional[np.ndarray] = None):
        if mode not in ("sparse", "dense"):
            raise ValueError("mode must be 'sparse' or 'dense'")
        if mode == "sparse" and splatonic is None:
            raise ValueError("sparse mapping needs a Splatonic instance")
        self.algo = algo
        self.intrinsics = intrinsics
        self.splatonic = splatonic or Splatonic()
        self.mode = mode
        self.background = (np.zeros(3) if background is None
                           else np.asarray(background, float))

    # ---- densification ----

    def densify(self, cloud: GaussianCloud, keyframe: Keyframe,
                gamma_final: np.ndarray,
                rendered_depth: np.ndarray = None) -> GaussianCloud:
        """Seed new Gaussians at unseen pixels (Eqn. 2), plus — when the
        algorithm enables it — at pixels whose rendered depth disagrees
        strongly with the measurement (SplaTAM's second criterion)."""
        from ..core.sampling import unseen_mask

        mask = unseen_mask(gamma_final)
        factor = self.algo.densify_depth_error_factor
        if factor > 0.0 and rendered_depth is not None:
            measured = np.asarray(keyframe.depth, dtype=float)
            valid = measured > 0
            if np.any(valid):
                err = np.abs(np.asarray(rendered_depth) - measured)
                # A small absolute floor keeps the criterion meaningful
                # when the map already fits most pixels perfectly.
                scale = max(float(np.median(err[valid])), 1e-3)
                mask = mask | (valid & (err > factor * scale))
        vs, us = np.nonzero(mask)
        if us.size == 0:
            return cloud
        pixels = np.stack([us, vs], axis=-1)
        camera = Camera(self.intrinsics, keyframe.pose_c2w)
        seeds = seed_from_rgbd(camera, keyframe.color, keyframe.depth,
                               pixels,
                               initial_opacity=self.algo.densify_opacity,
                               scale_factor=1.3)
        if len(seeds) == 0:
            return cloud
        return cloud.extend(seeds)

    # ---- optimization ----

    def map_frame(self, cloud: GaussianCloud, current: Keyframe,
                  window: List[Keyframe],
                  max_iters: Optional[int] = None,
                  collect_curve: bool = False) -> MappingResult:
        """Run one full mapping invocation at ``current``.

        ``collect_curve=True`` additionally records the per-iteration
        loss values (for the flight recorder).
        """
        from ..core.sampling import unseen_mask

        iters = max_iters if max_iters is not None else self.algo.mapping_iters
        # Attribute this invocation's render observations to the mapping
        # stage of the sparsity atlas (no-op unless a frame is open).
        obs_atlas.set_stage("mapping")
        record = self.splatonic.config.record_per_pixel
        fwd_stats = PipelineStats(pipeline=self.mode, record_per_pixel=record)
        bwd_stats = PipelineStats(pipeline=self.mode, record_per_pixel=record)

        # First forward pass (dense, once per mapping): Gamma_final map.
        camera = Camera(self.intrinsics, current.pose_c2w)
        with trace.span("mapping_fwd", kind="first_pass",
                        frame=current.index):
            first = self.splatonic.render_full(cloud, camera, self.background,
                                               keep_cache=False)
        fwd_stats.merge(first.stats)
        gamma_final = first.final_transmittance

        before = len(cloud)
        with trace.span("mapping.densify", frame=current.index):
            cloud = self.densify(cloud, current, gamma_final, first.depth)
        num_seeded = len(cloud) - before

        # Mapping pixel sets, one per keyframe, drawn once per invocation.
        # Every `full_mapping_every`-th invocation renders the current
        # keyframe densely ("one full-frame mapping for every four
        # frames", Sec. VII-A).
        full_frame = (self.mode == "sparse"
                      and self.splatonic.next_mapping_is_full_frame())
        height, width = gamma_final.shape
        sample_info: Dict[str, float] = {
            "unseen": 0, "weighted": 0, "total": int(height * width),
            "unseen_coverage": float(unseen_mask(gamma_final).mean()),
            "full_frame": bool(full_frame or self.mode == "dense"),
        }
        kf_pixels = []
        # Per-keyframe loop invariants, gathered once per invocation:
        # the reference color/depth at the sampled pixels (the pixel set
        # is fixed for the whole iteration loop) and one
        # temporal-coherence render cache per keyframe stream (fixed
        # camera + pixels; the Gaussian parameters drift by Adam steps).
        kf_refs = []
        kf_caches = []
        for kf in window:
            if self.mode == "sparse":
                if kf.index == current.index:
                    if full_frame:
                        # A None entry routes this keyframe through the
                        # dense tile-pipeline branch below.
                        kf_pixels.append(None)
                        kf_refs.append(None)
                        kf_caches.append(None)
                        continue
                    samples = self.splatonic.sample_mapping(
                        gamma_final, current.color,
                        weight=current.texture_weight())
                    px = samples.all_pixels
                    sample_info.update(samples.counts())
                else:
                    # Older keyframes: no fresh Gamma map; use the
                    # texture-weighted lattice only.  The Sobel weight is
                    # memoized on the keyframe (colors never change), so
                    # repeat invocations skip the filter recompute.
                    samples = self.splatonic.sample_mapping(
                        np.zeros_like(gamma_final), kf.color,
                        weight=kf.texture_weight())
                    px = samples.all_pixels
                px = np.atleast_2d(px)
                kf_pixels.append(px)
                if px.shape[0]:
                    kf_refs.append((kf.color[px[:, 1], px[:, 0]],
                                    kf.depth[px[:, 1], px[:, 0]]))
                else:
                    kf_refs.append(None)
                kf_caches.append(self.splatonic.make_render_cache("mapping"))
            else:
                kf_pixels.append(None)
                kf_refs.append(None)
                kf_caches.append(None)

        n = len(cloud)
        adam = Adam(8 * n, _mapping_lr(self.algo, n))
        loss_value = 0.0
        curve: Optional[List[float]] = [] if collect_curve else None
        for it in range(iters):
            kf_i = it % len(window)
            kf = window[kf_i]
            cam = Camera(self.intrinsics, kf.pose_c2w)
            px = kf_pixels[kf_i]
            if px is not None:
                if px.shape[0] == 0:
                    continue
                with trace.span("mapping_fwd", iteration=it,
                                keyframe=kf.index):
                    result = self.splatonic.render_sparse(
                        cloud, cam, px, self.background,
                        cache=kf_caches[kf_i])
                    ref_c, ref_d = kf_refs[kf_i]
                    out = rgbd_loss(result.color, result.depth,
                                    result.silhouette, ref_c, ref_d,
                                    self.algo.mapping_loss, tracking=False)
                with trace.span("mapping_bwd", iteration=it,
                                keyframe=kf.index):
                    grads = self.splatonic.backward_sparse(
                        result, cloud, cam,
                        out.d_color, out.d_depth, out.d_silhouette)
            else:
                with trace.span("mapping_fwd", iteration=it,
                                keyframe=kf.index):
                    result = self.splatonic.render_full(
                        cloud, cam, self.background)
                    h, w = kf.depth.shape
                    out = rgbd_loss(
                        result.color.reshape(-1, 3), result.depth.ravel(),
                        result.silhouette.ravel(), kf.color.reshape(-1, 3),
                        kf.depth.ravel(), self.algo.mapping_loss,
                        tracking=False)
                with trace.span("mapping_bwd", iteration=it,
                                keyframe=kf.index):
                    grads = backward_full(
                        result, cloud, cam,
                        out.d_color.reshape(h, w, 3),
                        out.d_depth.reshape(h, w),
                        out.d_silhouette.reshape(h, w))
            fwd_stats.merge(result.stats)
            bwd_stats.merge(grads.stats)
            loss_value = out.loss
            if curve is not None:
                curve.append(float(loss_value))

            # Finite guard (always on): a poisoned gradient would be
            # baked into every Gaussian parameter by the update below —
            # alert through the health monitors and stop optimizing.
            grad_vector = grads.as_cloud_vector()
            if not (np.isfinite(loss_value)
                    and np.all(np.isfinite(grad_vector))):
                get_monitor().non_finite("mapping loss/gradient",
                                         iteration=it,
                                         loss=float(loss_value))
                break
            step = adam.step(grad_vector)
            cloud = cloud.unpack(cloud.pack() + step)

        # Prune collapsed Gaussians.
        keep = cloud.opacities >= self.algo.prune_opacity
        num_pruned = int((~keep).sum())
        if num_pruned:
            cloud = cloud.prune(keep)

        return MappingResult(
            cloud=cloud,
            num_seeded=num_seeded,
            num_pruned=num_pruned,
            final_loss=loss_value,
            forward_stats=fwd_stats,
            backward_stats=bwd_stats,
            sample_info=sample_info,
            loss_curve=curve,
        )
