"""Per-algorithm configurations for the four evaluated 3DGS-SLAM systems.

The paper evaluates SPLATONIC on SplaTAM, MonoGS, GS-SLAM, and FlashSLAM.
We model each as a configuration of one SLAM engine, reproducing the knobs
that distinguish the four papers and that matter to this paper's claims —
the tracking/mapping iteration budgets (which set the tracking-dominated
latency split of Fig. 4), the loss mixes, the mapping cadence (4-8 frames),
and the keyframe window.  Iteration counts are scaled down uniformly from
the originals (SplaTAM uses 40+60 at 1200x680; we run small frames), which
preserves the *ratios* the performance model depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .losses import LossConfig

__all__ = ["AlgorithmConfig", "ALGORITHMS", "get_algorithm", "SPLATAM",
           "MONOGS", "GSSLAM", "FLASHSLAM"]


@dataclass(frozen=True)
class AlgorithmConfig:
    """Engine knobs reproducing one 3DGS-SLAM system."""

    name: str
    tracking_iters: int
    mapping_iters: int
    map_every: int              # mapping invoked every N frames (4-8)
    keyframe_every: int         # a frame becomes a keyframe every N frames
    keyframe_window: int        # recent keyframes optimized per mapping
    tracking_loss: LossConfig
    mapping_loss: LossConfig
    # Tracking Adam learning rates (translation, rotation).
    lr_translation: float = 1e-2
    lr_rotation: float = 5e-3
    # Mapping Adam learning rates per parameter group.
    lr_means: float = 3e-3
    lr_log_scales: float = 5e-3
    lr_logit_opacities: float = 5e-2
    lr_colors: float = 2.5e-2
    # Early stopping: relative loss-improvement threshold and patience.
    track_converge_rel: float = 1e-4
    track_converge_patience: int = 10
    # Densification / pruning.
    densify_opacity: float = 0.6
    prune_opacity: float = 0.05
    # Optional SplaTAM-style depth-error densification: also seed pixels
    # whose rendered depth misses the measurement by more than this factor
    # times the frame's median absolute depth error (0 disables).
    densify_depth_error_factor: float = 0.0
    # Keyframe window policy: "recency" or "overlap" (covisibility).
    keyframe_selection: str = "recency"

    def with_overrides(self, **kwargs) -> "AlgorithmConfig":
        return replace(self, **kwargs)


SPLATAM = AlgorithmConfig(
    name="splatam",
    tracking_iters=60,
    mapping_iters=24,
    map_every=4,
    keyframe_every=4,
    keyframe_window=5,
    tracking_loss=LossConfig(color_weight=0.5, depth_weight=1.0,
                             silhouette_threshold=0.99),
    mapping_loss=LossConfig(color_weight=0.5, depth_weight=1.0,
                            silhouette_weight=0.1),
)

# MonoGS (Gaussian Splatting SLAM, Matsuki et al.): leans on photometric
# error with a smaller depth term, shorter per-frame optimization, denser
# keyframing.
MONOGS = AlgorithmConfig(
    name="monogs",
    tracking_iters=50,
    mapping_iters=20,
    map_every=8,
    keyframe_every=4,
    keyframe_window=4,
    tracking_loss=LossConfig(color_weight=0.9, depth_weight=0.3,
                             silhouette_threshold=0.95, huber_delta=0.05),
    mapping_loss=LossConfig(color_weight=0.9, depth_weight=0.3,
                            huber_delta=0.05),
    lr_translation=1.2e-2,
    lr_rotation=6e-3,
)

# GS-SLAM (Yan et al.): balanced RGB-D loss with an opacity regularizer
# and a coarser mapping cadence.
GSSLAM = AlgorithmConfig(
    name="gsslam",
    tracking_iters=45,
    mapping_iters=14,
    map_every=5,
    keyframe_every=5,
    keyframe_window=4,
    tracking_loss=LossConfig(color_weight=0.6, depth_weight=0.8,
                             silhouette_threshold=0.98),
    mapping_loss=LossConfig(color_weight=0.6, depth_weight=0.8,
                            silhouette_weight=0.2),
)

# FlashSLAM (Pham et al.): the "accelerated" configuration — aggressive
# early stopping and the fewest iterations.
FLASHSLAM = AlgorithmConfig(
    name="flashslam",
    tracking_iters=30,
    mapping_iters=10,
    map_every=4,
    keyframe_every=4,
    keyframe_window=3,
    tracking_loss=LossConfig(color_weight=0.5, depth_weight=1.0,
                             silhouette_threshold=0.99),
    mapping_loss=LossConfig(color_weight=0.5, depth_weight=1.0),
    track_converge_rel=1e-3,
    track_converge_patience=5,
    lr_translation=1.5e-2,
    lr_rotation=8e-3,
)

ALGORITHMS: Dict[str, AlgorithmConfig] = {
    cfg.name: cfg for cfg in (SPLATAM, MONOGS, GSSLAM, FLASHSLAM)
}


def get_algorithm(name: str) -> AlgorithmConfig:
    """Look up an algorithm preset by name."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
