"""Shared accelerator building blocks: unit configs and the report type.

All three modeled accelerators (SPLATONIC, GSArch, GauSPU) are described
by unit counts and per-cycle throughputs, clocked at 500 MHz against
4-channel LPDDR3-1600 DRAM, matching the paper's experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["AccelReport", "ACCEL_CLOCK_HZ", "DRAM_BYTES_PER_CYCLE",
           "QUANT_PARAM_BYTES", "PAIR_RECORD_BYTES"]

ACCEL_CLOCK_HZ = 500e6
# 4 channels of LPDDR3-1600: ~25.6 GB/s => bytes per 500 MHz cycle.
DRAM_BYTES_PER_CYCLE = 25.6e9 / ACCEL_CLOCK_HZ
# Accelerators stream quantized Gaussian parameter records.
QUANT_PARAM_BYTES = 32
# A projected pair record (id, depth key, alpha, color) in on-chip format.
PAIR_RECORD_BYTES = 16


@dataclass
class AccelReport:
    """Latency/energy of one training iteration on an accelerator."""

    name: str
    forward_s: float
    backward_s: float
    energy_j: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s

    def speedup_over(self, other_total_s: float) -> float:
        """Speedup of this design versus a reference latency."""
        if self.total_s <= 0:
            return float("inf")
        return other_total_s / self.total_s

    def energy_saving_over(self, other_energy_j: float) -> float:
        """Reference energy divided by this design's energy (paper's metric)."""
        if self.energy_j <= 0:
            return float("inf")
        return other_energy_j / self.energy_j
