"""The SPLATONIC pipelined accelerator model (Sec. V, Fig. 15).

Structure (defaults from Sec. VI):

- **8 projection units**, each with **4 α-filter units** — per-pixel
  projection with preemptive α-checking via a 64-entry exp LUT and direct
  bbox indexing into the sampled-pixel lattice.
- **4 hierarchical sorting units** — per-pixel depth sorts of the short
  surviving lists.
- **4 rasterization engines**, each 2x2 render units + 2x2 reverse render
  units around a color-reduction unit and an 8 KB Γ/C double buffer: the
  forward pass stores each pixel's per-Gaussian transmittance and prefix
  color so the reverse units need no cross-PE reduction.
- **1 aggregation unit** (4 channels, 32 KB Gaussian cache, 8 KB
  scoreboard) — replayed cycle-approximately by
  :class:`repro.hw.aggregation.AggregationUnit`.

Stages are double-buffered and stream through a 64 KB global buffer, so a
pass's latency is the maximum stage load (plus DRAM roofline), not the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..render.stats import PipelineStats
from .aggregation import AggregationConfig, AggregationUnit
from .energy import ACCEL_OPS, EnergyLedger, OpEnergies
from .pipeline import CycleBreakdown, StageLoad, pipelined_cycles
from .sorting_unit import HierarchicalSorter, SortingUnitConfig
from .units import (
    ACCEL_CLOCK_HZ,
    DRAM_BYTES_PER_CYCLE,
    PAIR_RECORD_BYTES,
    QUANT_PARAM_BYTES,
    AccelReport,
)
from .workload import Workload

__all__ = ["SplatonicConfig", "SplatonicAccelerator", "StageModel"]

# Fixed-function op counts (FMA equivalents) per work item.
PROJ_FLOPS = 60
ALPHA_FLOPS = 6
RENDER_FLOPS = 14
REVERSE_FLOPS = 30
PIPELINE_FILL_CYCLES = 256


@dataclass(frozen=True)
class SplatonicConfig:
    """Unit counts and buffer sizes (Sec. VI defaults)."""

    name: str = "splatonic-hw"
    projection_units: int = 8
    alpha_filters_per_unit: int = 4
    sorting_units: int = 4
    raster_engines: int = 4
    render_units_per_engine: int = 4
    reverse_units_per_engine: int = 4
    engine_buffer_bytes: int = 8 * 1024
    global_buffer_bytes: int = 64 * 1024
    aggregation: AggregationConfig = AggregationConfig()
    clock_hz: float = ACCEL_CLOCK_HZ
    node_nm: int = 8          # scaled to match the Orin SoC
    # Ablation switches.
    preemptive_alpha: bool = True
    gamma_cache: bool = True      # Γ/C double buffer in the engines
    scoreboard_aggregation: bool = True
    direct_bbox_indexing: bool = True

    def with_overrides(self, **kwargs) -> "SplatonicConfig":
        return replace(self, **kwargs)

    @property
    def alpha_checks_per_cycle(self) -> int:
        return self.projection_units * self.alpha_filters_per_unit

    @property
    def render_pairs_per_cycle(self) -> int:
        return self.raster_engines * self.render_units_per_engine

    @property
    def reverse_pairs_per_cycle(self) -> int:
        return self.raster_engines * self.reverse_units_per_engine


@dataclass(frozen=True)
class StageModel:
    """Per-stage busy cycles + off-chip traffic of one pass pair.

    The breakdowns are *pre-roofline*: they carry each stage's busy
    cycles (total = slowest stage + fill latency); the DRAM byte counts
    are applied as a separate bandwidth roofline by
    :meth:`SplatonicAccelerator.iteration_report`.  Cycle-attribution
    reports consume this directly so their bottleneck tables agree with
    :attr:`repro.hw.pipeline.CycleBreakdown.bottleneck` by construction.
    """

    forward: "CycleBreakdown"
    backward: "CycleBreakdown"
    forward_dram_bytes: float
    backward_dram_bytes: float


class SplatonicAccelerator:
    """Latency/energy model of SPLATONIC-HW for pixel-pipeline workloads."""

    def __init__(self, config: SplatonicConfig = SplatonicConfig(),
                 ops: OpEnergies = ACCEL_OPS):
        self.config = config
        self.ops = ops.scaled_to(config.node_nm)
        self._agg_unit = AggregationUnit(config.aggregation)
        self._sorter = HierarchicalSorter(SortingUnitConfig(),
                                          units=config.sorting_units)

    # ---- stage cycle counts ----

    def _projection_cycles(self, fwd: PipelineStats) -> float:
        cfg = self.config
        transform = fwd.num_projected / cfg.projection_units
        checks = fwd.num_alpha_checks
        if not cfg.direct_bbox_indexing:
            # Without direct indexing every Gaussian scans the whole
            # sampled-pixel list for bbox hits.
            checks += fwd.num_projected * max(fwd.num_pixels, 1) * 0.25
        alpha = checks / cfg.alpha_checks_per_cycle
        if not cfg.preemptive_alpha:
            alpha = 0.0  # alpha-checking deferred to the render units
        return max(transform, alpha)

    def _sorting_cycles(self, fwd: PipelineStats) -> float:
        if not self.config.preemptive_alpha:
            # The sorter orders the full candidate set, not the survivors.
            return fwd.num_candidate_pairs / self.config.sorting_units
        if fwd.pixel_list_lengths:
            return self._sorter.total_cycles(fwd.pixel_list_lengths)
        return fwd.num_sort_keys / self.config.sorting_units

    def _raster_cycles(self, fwd: PipelineStats) -> float:
        pairs = fwd.num_contrib_pairs
        cycles = pairs / self.config.render_pairs_per_cycle
        if not self.config.preemptive_alpha:
            # Without preemption every bbox candidate reaches the render
            # units, which must alpha-check it and idle on the rejected
            # ones (the GSCore/MetaSapiens under-utilization the paper
            # removes).
            cand = fwd.num_candidate_pairs
            cycles = cand / self.config.render_pairs_per_cycle
            cycles += cand / self.config.alpha_checks_per_cycle
        return cycles

    def _reverse_cycles(self, bwd: PipelineStats) -> float:
        pairs = bwd.num_contrib_pairs
        cycles = pairs / self.config.reverse_pairs_per_cycle
        if not self.config.gamma_cache:
            # Without the Gamma/C double buffer the transmittance prefix
            # is a serial dependency chain per pixel: each engine walks
            # its pixel's list one pair per cycle before the parallel
            # gradient computation can start.
            cycles += pairs / max(self.config.raster_engines, 1)
        return cycles

    def _aggregation(self, bwd: PipelineStats):
        """Returns (cycles, dram_bytes) scaled from the proxy ID stream."""
        ids = bwd.pixel_contrib_ids
        proxy_tuples = int(sum(len(p) for p in ids))
        if proxy_tuples == 0:
            return 0.0, 0.0
        if self.config.scoreboard_aggregation:
            trace = self._agg_unit.simulate(ids)
        else:
            trace = self._agg_unit.simulate_naive(ids)
        scale = bwd.num_atomic_adds / proxy_tuples
        return trace.cycles * scale, trace.dram_bytes * scale

    # ---- public API ----

    def stage_model(self, workload: Workload,
                    assume_pixel: bool = False) -> StageModel:
        """Per-stage busy-cycle breakdowns + DRAM bytes of one iteration.

        ``assume_pixel=True`` skips the pipeline-label check and models
        the counters as a pixel-pipeline workload anyway — used by the
        sparsity atlas, whose per-frame SLAM stage stats carry the run
        mode ("sparse"/"dense") as their pipeline label.
        """
        if not assume_pixel and workload.pipeline != "pixel":
            raise ValueError(
                "SPLATONIC executes the pixel-based pipeline; measure the "
                "workload with mode='pixel'")
        fwd, bwd = workload.fwd, workload.bwd
        cfg = self.config

        proj = self._projection_cycles(fwd)
        sort = self._sorting_cycles(fwd)
        raster = self._raster_cycles(fwd)
        agg_cycles, agg_dram = self._aggregation(bwd)
        reverse = self._reverse_cycles(bwd)
        reproj = bwd.num_projected / cfg.projection_units

        # DRAM rooflines per pass.  SPLATONIC is a streaming pipeline:
        # pixel-Gaussian pair records are produced by the projection units
        # and consumed by the sorters / rasterization engines through the
        # on-chip global buffer, and the Γ/C engine buffers let the
        # reverse pass run per pixel right behind the forward pass — so
        # pair records never touch DRAM.  Off-chip traffic is the
        # quantized parameter stream in, the sampled reference pixels,
        # the aggregation unit's spills, and the parameter updates out.
        fwd_dram = (fwd.num_projected * QUANT_PARAM_BYTES
                    + fwd.num_pixels * 16)
        bwd_dram = agg_dram + bwd.num_projected * QUANT_PARAM_BYTES

        fwd_break = pipelined_cycles([
            StageLoad("projection", proj),
            StageLoad("sorting", sort),
            StageLoad("rasterization", raster),
        ], fill_latency=PIPELINE_FILL_CYCLES)
        bwd_break = pipelined_cycles([
            StageLoad("reverse_rasterization", reverse),
            StageLoad("aggregation", agg_cycles),
            StageLoad("reprojection", reproj),
        ], fill_latency=PIPELINE_FILL_CYCLES)
        return StageModel(forward=fwd_break, backward=bwd_break,
                          forward_dram_bytes=fwd_dram,
                          backward_dram_bytes=bwd_dram)

    def iteration_report(self, workload: Workload) -> AccelReport:
        """Latency/energy of one average training iteration."""
        model = self.stage_model(workload)
        it = max(workload.iterations, 1)
        cfg = self.config
        fwd_break, bwd_break = model.forward, model.backward
        fwd_dram, bwd_dram = (model.forward_dram_bytes,
                              model.backward_dram_bytes)

        fwd_cycles = max(fwd_break.total, fwd_dram / DRAM_BYTES_PER_CYCLE)
        bwd_cycles = max(bwd_break.total, bwd_dram / DRAM_BYTES_PER_CYCLE)
        forward_s = fwd_cycles / cfg.clock_hz / it
        backward_s = bwd_cycles / cfg.clock_hz / it

        energy = self._energy(workload, fwd_cycles + bwd_cycles,
                              fwd_dram + bwd_dram) / it

        stage_seconds = {
            name: cycles / cfg.clock_hz / it
            for name, cycles in {**fwd_break.stages, **bwd_break.stages}.items()
        }
        return AccelReport(
            name=cfg.name,
            forward_s=forward_s,
            backward_s=backward_s,
            energy_j=energy,
            stage_seconds=stage_seconds,
            notes={
                "fwd_dram_bytes": fwd_dram / it,
                "bwd_dram_bytes": bwd_dram / it,
                "aggregation_cycles": bwd_break.stages["aggregation"] / it,
            },
        )

    def _energy(self, workload: Workload, total_cycles: float,
                dram_bytes: float) -> float:
        fwd, bwd = workload.fwd, workload.bwd
        ledger = EnergyLedger(self.ops)
        flops = fwd.num_projected * PROJ_FLOPS
        flops += fwd.num_candidate_pairs * ALPHA_FLOPS
        flops += fwd.num_contrib_pairs * RENDER_FLOPS
        flops += bwd.num_contrib_pairs * REVERSE_FLOPS
        flops += bwd.num_projected * PROJ_FLOPS
        ledger.add("flop", flops)
        ledger.add("special", fwd.num_alpha_checks)  # LUT lookups
        # On-chip traffic: pair records through the global buffer, Γ/C
        # through the engine double buffers.
        sram = (fwd.num_sort_keys + bwd.num_candidate_pairs) * PAIR_RECORD_BYTES
        sram += (fwd.num_contrib_pairs + bwd.num_contrib_pairs) * 8
        ledger.add("sram_byte", sram)
        ledger.add("dram_byte", dram_bytes)
        ledger.add("background_per_cycle", total_cycles)
        return ledger.total_joules()
