"""Performance and energy model of the mobile Ampere GPU (Orin SoC).

The paper measures a mobile Ampere GPU; we model it from the workload
counters with the mechanisms its characterization identified:

1. **Warp divergence** in pixel-parallel rasterization (Figs. 6/7) —
   derived from the per-pixel contribution counts.
2. **SFU-bound α-checking** (Fig. 9) — exp() runs on special functional
   units with a fraction of the FMA throughput.
3. **atomicAdd serialization** in gradient aggregation (Fig. 8) —
   contention grows with simultaneous updates per Gaussian.
4. **DRAM rooflines** — tile lists are reused by 256 pixels, per-pixel
   lists are not; the missing reuse is what limits the pixel pipeline at
   dense sampling rates (Fig. 25's crossover).
5. **Occupancy, kernel-launch, and per-iteration host overhead** — the
   Amdahl terms that cap sparse speedups (103x measured vs 256x ideal in
   Fig. 11; 14.6x end-to-end in Fig. 19).

Instruction-count and contention constants are calibrated so the *dense
SplaTAM* workload reproduces the paper's measured Orin breakdown
(rasterization + reverse rasterization ~95 % of time, α-checking ~43 %/34 %
of the two stages, aggregation ~63 % of reverse rasterization).  All
stage latencies come from counters in :class:`~repro.hw.workload.Workload`;
the model never re-renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..obs import trace
from ..render.stats import PipelineStats
from .energy import GPU_OPS, EnergyLedger, OpEnergies
from .workload import Workload

__all__ = ["GpuSpec", "StageTimes", "GpuModel", "GAUSSIAN_BYTES",
           "GRADIENT_BYTES"]

# Packed Gaussian record streamed by rasterization: mean2d, sigma, depth,
# opacity, color, id.
GAUSSIAN_BYTES = 40
# One Gaussian's gradient tuple: d_mean2d(2) d_sigma d_opacity d_color(3)
# d_depth as fp32.
GRADIENT_BYTES = 32
# Full parameter record read by projection / written by the optimizer.
PARAM_BYTES = 64
# Scalar atomic adds per aggregated pair (the 8 gradient components).
GRADS_PER_PAIR = 8

# Instruction-count constants (FMA-equivalents per work item), calibrated
# against the paper's Orin characterization (see module docstring).
PROJ_FLOPS_PER_GAUSSIAN = 120   # transform, project, sigma, bbox
TILE_INSERT_FLOPS = 10          # per tile-Gaussian table entry
ALPHA_FLOPS = 6                 # d2, scaling, compare (excl. the exp itself)
INTEGRATE_FLOPS = 38            # weight, channel MACs, Gamma update, masks
SORT_FLOPS_PER_KEY = 24         # radix passes amortized
BWD_PAIR_FLOPS = 58             # suffix terms + 7 partial gradients
REDUCTION_FLOPS_PER_PIXEL = 64  # cross-warp reductions (pixel pipeline)
REPROJECT_FLOPS_PER_GAUSSIAN = 80


@dataclass(frozen=True)
class GpuSpec:
    """A mobile-Ampere-class GPU (Orin NX ballpark)."""

    name: str = "mobile-ampere"
    sms: int = 8
    cores_per_sm: int = 128
    sfu_per_sm: int = 16
    clock_hz: float = 918e6
    warp_size: int = 32
    min_warps_per_sm: int = 8        # warps needed to hide latency
    blocks_per_sm: int = 2           # concurrent tile blocks per SM
    atomic_lanes: int = 32           # scalar atomics retired per cycle
    atomic_cycles: int = 1           # per scalar atomic, uncontended
    # Fitted contention curve: serialization grows with the square root of
    # simultaneous updates per Gaussian (calibrated to Fig. 8's 63.5 %).
    atomic_contention_scale: float = 2.0
    atomic_contention_max: float = 8.0
    kernel_launch_s: float = 8e-6    # driver + dispatch per kernel
    # Host-side per-iteration overhead: loss kernels, optimizer step,
    # synchronization (PyTorch-on-Orin ballpark; calibrated to Fig. 19).
    iteration_overhead_s: float = 6e-3
    dram_bw_bytes_per_s: float = 60e9
    # Fraction of atomic read-modify-writes that miss L2 and reach DRAM
    # (the rest coalesce on popular Gaussians; calibrated to Fig. 8).
    atomic_dram_factor: float = 0.25
    # Achieved fraction of peak math throughput for these irregular,
    # latency-bound kernels (calibrated to SplaTAM's ~0.1 Hz on Orin).
    compute_efficiency: float = 0.15

    @property
    def flops_per_cycle(self) -> float:
        return self.sms * self.cores_per_sm

    @property
    def sfu_ops_per_cycle(self) -> float:
        return self.sms * self.sfu_per_sm


@dataclass
class StageTimes:
    """Per-stage latency (seconds) of one training iteration."""

    projection: float = 0.0
    sorting: float = 0.0
    rasterization: float = 0.0
    reverse_rasterization: float = 0.0
    aggregation: float = 0.0
    reprojection: float = 0.0
    launch: float = 0.0
    overhead: float = 0.0
    # Sub-components used by Figs. 8/9.
    alpha_check_fwd: float = 0.0
    alpha_check_bwd: float = 0.0

    @property
    def forward(self) -> float:
        return self.projection + self.sorting + self.rasterization

    @property
    def backward(self) -> float:
        return self.reverse_rasterization + self.aggregation + self.reprojection

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.launch + self.overhead

    def as_dict(self) -> Dict[str, float]:
        return {
            "projection": self.projection,
            "sorting": self.sorting,
            "rasterization": self.rasterization,
            "reverse_rasterization": self.reverse_rasterization,
            "aggregation": self.aggregation,
            "reprojection": self.reprojection,
            "launch": self.launch,
            "overhead": self.overhead,
        }


class GpuModel:
    """Latency/energy model of a training iteration on the mobile GPU."""

    def __init__(self, spec: GpuSpec = GpuSpec(), ops: OpEnergies = GPU_OPS):
        self.spec = spec
        self.ops = ops

    # ---- helpers ----

    def _seconds(self, cycles: float) -> float:
        return cycles / self.spec.clock_hz

    def _occupancy(self, warps: float) -> float:
        """Fraction of peak throughput achievable with this many warps."""
        needed = self.spec.sms * self.spec.min_warps_per_sm
        if warps <= 0:
            return 1.0
        return min(1.0, warps / needed)

    def _stage_time(self, flops: float, sfu_ops: float, dram_bytes: float,
                    occupancy: float = 1.0) -> float:
        """Roofline over the FMA pipe, the SFU pipe, and DRAM bandwidth."""
        flop_cycles = flops / self.spec.flops_per_cycle
        sfu_cycles = sfu_ops / self.spec.sfu_ops_per_cycle
        derate = max(occupancy, 1e-6) * self.spec.compute_efficiency
        compute = self._seconds(max(flop_cycles, sfu_cycles) / derate)
        memory = dram_bytes / self.spec.dram_bw_bytes_per_s
        return max(compute, memory)

    def _tile_warp_rounds(self, stats: PipelineStats, warp: int):
        """(warp-Gaussian rounds, warps, block derate) of a tile raster.

        A tile is a thread block whose threads walk the sorted list in
        lockstep until the *slowest pixel's* early termination — the
        recorded ``serial_len`` — so rounds use the serial depth, not the
        raw list length.  Blocks with few live warps (the Org.+S case:
        one sampled pixel -> one warp) cannot hide latency inside the
        block, which the returned derate captures.
        """
        rounds = 0
        warps = 0
        blocks = 0
        for _list_len, n_px, serial_len in stats.tile_work:
            w = -(-n_px // warp)
            warps += w
            blocks += 1
            rounds += w * serial_len
        if blocks == 0:
            return 0, 0, 1.0
        warps_per_block = warps / blocks
        derate = min(1.0, (self.spec.blocks_per_sm * warps_per_block)
                     / self.spec.min_warps_per_sm)
        return rounds, warps, derate

    @staticmethod
    def _pixel_rounds(stats: PipelineStats, warp: int) -> float:
        lens = np.asarray(stats.pixel_list_lengths, dtype=float)
        return float(np.ceil(lens / warp).sum()) if lens.size else 0.0

    # ---- forward stages ----

    def projection_time(self, stats: PipelineStats) -> float:
        flops = stats.num_projected * PROJ_FLOPS_PER_GAUSSIAN
        sfu = 0.0
        dram = stats.num_projected * PARAM_BYTES
        if stats.pipeline == "tile":
            flops += stats.num_tile_pairs * TILE_INSERT_FLOPS
            dram += stats.num_tile_pairs * 8          # table entries out
        else:
            # Pixel pipeline: per-pixel projection + preemptive alpha-check
            # moved into this stage.
            flops += stats.num_candidate_pairs * ALPHA_FLOPS
            sfu += stats.num_alpha_checks
            dram += stats.num_sort_keys * 8           # surviving pairs out
        return self._stage_time(flops, sfu, dram)

    def sorting_time(self, stats: PipelineStats) -> float:
        keys = stats.num_sort_keys
        return self._stage_time(keys * SORT_FLOPS_PER_KEY, 0.0, keys * 16)

    def rasterization_time(self, stats: PipelineStats):
        """Returns (total seconds, alpha-check seconds) of forward raster."""
        warp = self.spec.warp_size
        if stats.pipeline == "tile":
            rounds, warps, derate = self._tile_warp_rounds(stats, warp)
            occ = self._occupancy(warps) * derate
            # Every lane alpha-checks every Gaussian its block examines;
            # the tile list is streamed once per tile (shared by pixels).
            alpha_slots = rounds * warp
            util = max(stats.warp_utilization(warp), 1e-3)
            integ_slots = stats.num_contrib_pairs / util
            list_bytes = sum(t[2] for t in stats.tile_work) * GAUSSIAN_BYTES
            t_alpha = self._stage_time(alpha_slots * ALPHA_FLOPS,
                                       alpha_slots, list_bytes, occ)
            t_integ = self._stage_time(integ_slots * INTEGRATE_FLOPS,
                                       0.0, 0.0, occ)
            return t_alpha + t_integ, t_alpha
        # Pixel pipeline: Gaussian-parallel, no alpha-check here, but every
        # pixel streams its own list (no cross-pixel reuse).
        rounds = self._pixel_rounds(stats, warp)
        slots = rounds * warp
        # One warp co-renders one pixel: blocks hold a single warp, so
        # intra-block latency hiding is poor (same derate as Org.+S).
        derate = min(1.0, self.spec.blocks_per_sm / self.spec.min_warps_per_sm)
        occ = self._occupancy(max(stats.num_pixels, 1)) * derate
        flops = (slots * INTEGRATE_FLOPS
                 + stats.num_pixels * REDUCTION_FLOPS_PER_PIXEL)
        dram = sum(stats.pixel_list_lengths) * GAUSSIAN_BYTES
        return self._stage_time(flops, 0.0, dram, occ), 0.0

    # ---- backward stages ----

    def reverse_rasterization_time(self, stats: PipelineStats):
        """Returns (gradient-compute seconds, alpha seconds) of the reverse
        rasterization stage, excluding aggregation."""
        warp = self.spec.warp_size
        if stats.pipeline == "tile":
            rounds, warps, derate = self._tile_warp_rounds(stats, warp)
            occ = self._occupancy(warps) * derate
            alpha_slots = rounds * warp
            util = max(stats.warp_utilization(warp), 1e-3)
            grad_slots = stats.num_contrib_pairs / util
            list_bytes = sum(t[2] for t in stats.tile_work) * GAUSSIAN_BYTES
            t_alpha = self._stage_time(alpha_slots * ALPHA_FLOPS,
                                       alpha_slots, list_bytes, occ)
            t_grad = self._stage_time(grad_slots * BWD_PAIR_FLOPS,
                                      0.0, 0.0, occ)
            return t_alpha + t_grad, t_alpha
        rounds = self._pixel_rounds(stats, warp)
        slots = rounds * warp
        derate = min(1.0, self.spec.blocks_per_sm / self.spec.min_warps_per_sm)
        occ = self._occupancy(max(stats.num_pixels, 1)) * derate
        # Two reduction rounds: Gamma prefix and the gradient reduction.
        flops = (slots * BWD_PAIR_FLOPS
                 + 2 * stats.num_pixels * REDUCTION_FLOPS_PER_PIXEL)
        dram = sum(stats.pixel_list_lengths) * GAUSSIAN_BYTES
        return self._stage_time(flops, 0.0, dram, occ), 0.0

    def aggregation_time(self, stats: PipelineStats) -> float:
        """atomicAdd gradient accumulation with contention serialization."""
        atomics = stats.num_atomic_adds * GRADS_PER_PAIR
        if atomics == 0:
            return 0.0
        per_gaussian = stats.num_atomic_adds / max(stats.num_projected, 1)
        contention = float(np.clip(
            np.sqrt(per_gaussian) / self.spec.atomic_contention_scale,
            1.0, self.spec.atomic_contention_max))
        cycles = (atomics * self.spec.atomic_cycles * contention
                  / self.spec.atomic_lanes)
        # RMW traffic that actually reaches DRAM after L2 coalescing.
        dram = (stats.num_atomic_adds * GRADIENT_BYTES * 2
                * self.spec.atomic_dram_factor)
        return max(self._seconds(cycles),
                   dram / self.spec.dram_bw_bytes_per_s)

    def reprojection_time(self, stats: PipelineStats) -> float:
        return self._stage_time(
            stats.num_projected * REPROJECT_FLOPS_PER_GAUSSIAN, 0.0,
            stats.num_projected * GRADIENT_BYTES)

    # ---- per-iteration totals ----

    def iteration_times(self, workload: Workload) -> StageTimes:
        """Average per-iteration stage latencies of a workload."""
        with trace.span("hw.gpu.iteration_times", workload=workload.name,
                        pipeline=workload.pipeline):
            return self._iteration_times(workload)

    def _iteration_times(self, workload: Workload) -> StageTimes:
        it = max(workload.iterations, 1)
        fwd, bwd = workload.fwd, workload.bwd
        t = StageTimes()
        t.projection = self.projection_time(fwd) / it
        t.sorting = self.sorting_time(fwd) / it
        raster, alpha_f = self.rasterization_time(fwd)
        t.rasterization = raster / it
        t.alpha_check_fwd = alpha_f / it
        rev, alpha_b = self.reverse_rasterization_time(bwd)
        t.reverse_rasterization = rev / it
        t.alpha_check_bwd = alpha_b / it
        t.aggregation = self.aggregation_time(bwd) / it
        t.reprojection = self.reprojection_time(bwd) / it
        # 3 forward kernels + 2 backward kernels per iteration.
        t.launch = 5 * self.spec.kernel_launch_s
        t.overhead = self.spec.iteration_overhead_s
        return t

    # ---- energy ----

    def iteration_energy(self, workload: Workload) -> float:
        """Average per-iteration energy (joules) of a workload."""
        with trace.span("hw.gpu.iteration_energy", workload=workload.name,
                        pipeline=workload.pipeline):
            return self._iteration_energy(workload)

    def _iteration_energy(self, workload: Workload) -> float:
        it = max(workload.iterations, 1)
        fwd, bwd = workload.fwd, workload.bwd
        ledger = EnergyLedger(self.ops)

        flops = fwd.num_projected * PROJ_FLOPS_PER_GAUSSIAN
        flops += fwd.num_sort_keys * SORT_FLOPS_PER_KEY
        if fwd.pipeline == "tile":
            flops += fwd.num_tile_pairs * TILE_INSERT_FLOPS
        flops += fwd.num_candidate_pairs * ALPHA_FLOPS
        flops += fwd.num_contrib_pairs * INTEGRATE_FLOPS
        flops += bwd.num_candidate_pairs * ALPHA_FLOPS
        flops += bwd.num_contrib_pairs * BWD_PAIR_FLOPS
        flops += bwd.num_projected * REPROJECT_FLOPS_PER_GAUSSIAN
        ledger.add("flop", flops)
        ledger.add("special", fwd.num_alpha_checks + bwd.num_alpha_checks)
        ledger.add("atomic", bwd.num_atomic_adds * GRADS_PER_PAIR)

        # DRAM traffic: Gaussian streams + gradients.
        dram = fwd.num_projected * PARAM_BYTES
        if fwd.pipeline == "tile":
            dram += sum(t[2] for t in fwd.tile_work) * GAUSSIAN_BYTES
            dram += sum(t[2] for t in bwd.tile_work) * GAUSSIAN_BYTES
        else:
            dram += sum(fwd.pixel_list_lengths) * GAUSSIAN_BYTES
            dram += sum(bwd.pixel_list_lengths) * GAUSSIAN_BYTES
        dram += (bwd.num_atomic_adds * GRADIENT_BYTES * 2
                 * self.spec.atomic_dram_factor)
        ledger.add("dram_byte", dram)

        times = self.iteration_times(workload)
        active_cycles = times.total * self.spec.clock_hz * it
        ledger.add("background_per_cycle", active_cycles)
        return ledger.total_joules() / it
