"""Pipelined-accelerator composition helpers.

SPLATONIC (and the baselines we model) are streaming pipelines: stages are
double-buffered, so steady-state throughput is set by the slowest stage
while the others overlap.  :func:`pipelined_cycles` captures exactly that:
``max`` over stage busy-cycles plus a fill latency, versus the sequential
``sum`` when a design cannot overlap stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["StageLoad", "CycleBreakdown", "pipelined_cycles",
           "sequential_cycles"]


@dataclass(frozen=True)
class StageLoad:
    """Busy-cycle count of one hardware stage for one pass."""

    name: str
    cycles: float

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")


@dataclass
class CycleBreakdown:
    """Total cycles of a pass plus its per-stage composition."""

    total: float
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def bottleneck(self) -> str:
        """Name of the stage with the most busy cycles."""
        if not self.stages:
            return ""
        return max(self.stages, key=self.stages.get)

    def share(self, name: str) -> float:
        """Fraction of summed stage work attributed to ``name``."""
        denom = sum(self.stages.values())
        if denom <= 0:
            return 0.0
        return self.stages.get(name, 0.0) / denom

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view: total, key-sorted stage cycles, bottleneck."""
        return {
            "total": float(self.total),
            "stages": {k: float(v) for k, v in sorted(self.stages.items())},
            "bottleneck": self.bottleneck,
        }


def pipelined_cycles(stages: List[StageLoad],
                     fill_latency: float = 0.0) -> CycleBreakdown:
    """Steady-state latency of fully overlapped (double-buffered) stages."""
    table = {s.name: s.cycles for s in stages}
    total = (max(table.values()) if table else 0.0) + fill_latency
    return CycleBreakdown(total=total, stages=table)


def sequential_cycles(stages: List[StageLoad]) -> CycleBreakdown:
    """Latency when stages execute back-to-back with no overlap."""
    table = {s.name: s.cycles for s in stages}
    return CycleBreakdown(total=sum(table.values()), stages=table)
