"""Area model of SPLATONIC and the comparison accelerators (Sec. VI).

Per-unit areas are at the 16 nm reference node (the paper synthesizes in
TSMC 16 nm), with :mod:`repro.hw.scaling` available for other nodes.  The
breakdown reproduces the paper's reported composition: rasterization
engines ~28 % of the 1.07 mm^2 total, SRAM ~15 %, the rest dominated by
the enlarged projection units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .scaling import scale_area
from .splatonic_accel import SplatonicConfig

__all__ = ["AreaBreakdown", "splatonic_area", "COMPARISON_AREAS_MM2",
           "SRAM_MM2_PER_KB"]

# Dense single-port SRAM at 16 nm, ~0.6 mm^2 per MB.
SRAM_MM2_PER_KB = 0.0006 * 1.9  # compiled macros with periphery overhead

# Per-unit logic areas (mm^2 at 16 nm), chosen to reproduce the paper's
# reported totals and composition.
_PROJECTION_UNIT_MM2 = 0.046      # incl. its 4 alpha-filter LUT datapaths
_SORTING_UNIT_MM2 = 0.028
_RASTER_ENGINE_MM2 = 0.075        # 2x2 render + 2x2 reverse + reduction
_AGGREGATION_LOGIC_MM2 = 0.038    # merge unit + scoreboard control

# Published totals of the comparison designs, scaled to 16 nm (Sec. VI).
COMPARISON_AREAS_MM2 = {
    "splatonic": 1.07,
    "gscore": 1.77,
    "gsarch": 3.42,
}


@dataclass
class AreaBreakdown:
    """Component areas in mm^2 and their composition."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def share(self, name: str) -> float:
        return self.components.get(name, 0.0) / self.total if self.total else 0.0

    def scaled_to(self, from_nm: int, to_nm: int) -> "AreaBreakdown":
        return AreaBreakdown({
            k: scale_area(v, from_nm, to_nm) for k, v in self.components.items()
        })


def splatonic_area(config: SplatonicConfig = SplatonicConfig()) -> AreaBreakdown:
    """Area of a SPLATONIC instance at 16 nm from its unit counts."""
    sram_kb = (
        config.raster_engines * config.engine_buffer_bytes
        + config.global_buffer_bytes
        + config.aggregation.gaussian_cache_bytes
        + config.aggregation.scoreboard_bytes
    ) / 1024.0
    return AreaBreakdown({
        "projection_units": config.projection_units * _PROJECTION_UNIT_MM2,
        "sorting_units": config.sorting_units * _SORTING_UNIT_MM2,
        "raster_engines": config.raster_engines * _RASTER_ENGINE_MM2,
        "aggregation_logic": _AGGREGATION_LOGIC_MM2,
        "sram": sram_kb * SRAM_MM2_PER_KB,
    })
