"""Cycle-approximate simulator of SPLATONIC's aggregation unit (Fig. 16).

The unit batches the partial-gradient lists of ``channels`` pixels, merges
same-Gaussian tuples on-chip (merge unit), tracks in-flight Gaussians in a
scoreboard, and accumulates against a Gaussian cache backed by DRAM.  The
point of the design is to *hide* the off-chip latency of reloading
partially-accumulated gradients: while a batch's misses are in flight, the
accumulation unit keeps updating Gaussians whose state is already cached.

``simulate`` replays an actual per-pixel contributing-Gaussian ID stream
(recorded by the backward passes) through an LRU-cache + scoreboard model
and reports cycles, stalls, and DRAM traffic.  A ``naive`` mode models the
ablation without the unit: every tuple is an uncached read-modify-write.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..obs import trace

__all__ = ["AggregationConfig", "AggregationTrace", "AggregationUnit"]

# Accumulated-gradient record per Gaussian resident in the cache.
CACHE_ENTRY_BYTES = 32
SCOREBOARD_ENTRY_BYTES = 16


@dataclass(frozen=True)
class AggregationConfig:
    """Microarchitectural parameters (defaults from Sec. VI)."""

    channels: int = 4              # pixels' gradient lists merged per batch
    gaussian_cache_bytes: int = 32 * 1024
    scoreboard_bytes: int = 8 * 1024
    dram_latency_cycles: int = 96  # load-to-use for a missed Gaussian
    dram_bytes_per_cycle: float = 51.2   # 4ch LPDDR3-1600 at 500 MHz
    merge_tuples_per_cycle: int = 4
    accum_gaussians_per_cycle: int = 1

    @property
    def cache_entries(self) -> int:
        return self.gaussian_cache_bytes // CACHE_ENTRY_BYTES

    @property
    def scoreboard_entries(self) -> int:
        return self.scoreboard_bytes // SCOREBOARD_ENTRY_BYTES


@dataclass
class AggregationTrace:
    """Outcome of replaying a gradient stream through the unit."""

    cycles: float
    stall_cycles: float
    tuples: int
    unique_accumulations: int
    cache_misses: int
    cache_hits: int
    dram_bytes: float

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 1.0

    @property
    def cycles_per_tuple(self) -> float:
        return self.cycles / self.tuples if self.tuples else 0.0


class AggregationUnit:
    """Replay-based model of the scoreboard aggregation unit."""

    def __init__(self, config: AggregationConfig = AggregationConfig()):
        self.config = config

    def simulate(self, pixel_gaussian_ids: Sequence[np.ndarray]) -> AggregationTrace:
        """Process per-pixel contributing-Gaussian ID lists, in order."""
        with trace.span("hw.aggregation.simulate",
                        pixels=len(pixel_gaussian_ids)):
            return self._simulate(pixel_gaussian_ids)

    def _simulate(self, pixel_gaussian_ids: Sequence[np.ndarray]) -> AggregationTrace:
        cfg = self.config
        cache: "OrderedDict[int, bool]" = OrderedDict()
        cycles = 0.0
        stalls = 0.0
        tuples = 0
        uniques = 0
        misses = 0
        hits = 0
        dram_bytes = 0.0

        lists = [np.asarray(p, dtype=int) for p in pixel_gaussian_ids]
        for start in range(0, len(lists), cfg.channels):
            batch = lists[start:start + cfg.channels]
            ids = np.concatenate(batch) if batch else np.zeros(0, dtype=int)
            if ids.size == 0:
                continue
            tuples += ids.size
            unique = np.unique(ids)
            uniques += unique.size

            batch_misses = 0
            for g in unique:
                key = int(g)
                if key in cache:
                    cache.move_to_end(key)
                    hits += 1
                else:
                    misses += 1
                    batch_misses += 1
                    cache[key] = True
                    if len(cache) > cfg.cache_entries:
                        cache.popitem(last=False)
                        # Evicted partial accumulation spills to DRAM.
                        dram_bytes += CACHE_ENTRY_BYTES
            dram_bytes += batch_misses * CACHE_ENTRY_BYTES

            merge_cycles = ids.size / cfg.merge_tuples_per_cycle
            accum_cycles = unique.size / cfg.accum_gaussians_per_cycle
            fetch_cycles = batch_misses * CACHE_ENTRY_BYTES / cfg.dram_bytes_per_cycle
            busy = max(merge_cycles, accum_cycles, fetch_cycles)

            # Latency is hidden as long as the scoreboard can park the
            # batch's Gaussians while their state streams in; overflow
            # exposes a full DRAM round trip.
            if unique.size > cfg.scoreboard_entries:
                overflow = unique.size / cfg.scoreboard_entries
                stall = cfg.dram_latency_cycles * overflow
            elif busy < cfg.dram_latency_cycles and batch_misses > 0:
                # Small batch with misses: part of the latency peeks out.
                stall = (cfg.dram_latency_cycles - busy) * min(
                    1.0, batch_misses / max(unique.size, 1))
            else:
                stall = 0.0
            cycles += busy + stall
            stalls += stall

        # Final write-back of everything still resident.
        dram_bytes += len(cache) * CACHE_ENTRY_BYTES
        return AggregationTrace(
            cycles=cycles,
            stall_cycles=stalls,
            tuples=tuples,
            unique_accumulations=uniques,
            cache_misses=misses,
            cache_hits=hits,
            dram_bytes=dram_bytes,
        )

    def simulate_naive(self, pixel_gaussian_ids: Sequence[np.ndarray],
                       max_outstanding: int = 4) -> AggregationTrace:
        """Ablation: no merge/scoreboard — every tuple is an off-chip RMW."""
        cfg = self.config
        lists = [np.asarray(p, dtype=int) for p in pixel_gaussian_ids]
        tuples = int(sum(p.size for p in lists))
        # Each tuple reads and writes its Gaussian's accumulator; latency
        # overlaps only across `max_outstanding` requests.
        cycles = tuples * cfg.dram_latency_cycles / max_outstanding
        dram = tuples * CACHE_ENTRY_BYTES * 2
        cycles = max(cycles, dram / cfg.dram_bytes_per_cycle)
        return AggregationTrace(
            cycles=cycles,
            stall_cycles=cycles,
            tuples=tuples,
            unique_accumulations=tuples,
            cache_misses=tuples,
            cache_hits=0,
            dram_bytes=dram,
        )
