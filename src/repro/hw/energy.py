"""Per-operation energy tables and the energy accounting model.

Energies are picojoules per operation at the **16 nm reference node** and
follow the widely used Horowitz-style numbers (ISSCC'14) extrapolated to
16 nm, with LPDDR3 DRAM energy per the Micron power calculators the paper
cites.  Accelerator energies are scaled between nodes with
:mod:`repro.hw.scaling`; DRAM energy does not scale with the logic node.

These absolute values carry the usual model uncertainty; all paper-facing
results use them only inside ratios (energy savings vs the GPU baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .scaling import scale_energy

__all__ = ["OpEnergies", "EnergyLedger", "ACCEL_OPS", "GPU_OPS",
           "DRAM_PJ_PER_BYTE"]

# LPDDR3-1600 x 4 channels: ~15 pJ/byte including I/O and activation
# amortization (Micron system power calculator ballpark).
DRAM_PJ_PER_BYTE = 15.0


@dataclass(frozen=True)
class OpEnergies:
    """Energy per operation in pJ at a given technology node."""

    node_nm: int
    flop: float            # fused 32-bit multiply-add
    special: float         # exp/rsqrt evaluation (SFU or LUT lookup)
    sram_byte: float       # on-chip SRAM access per byte
    reg_byte: float        # register/operand movement per byte
    atomic: float          # atomic update (read-modify-write at L2)
    dram_byte: float = DRAM_PJ_PER_BYTE
    # Static/idle power is folded into a per-cycle overhead.
    background_per_cycle: float = 0.0

    def scaled_to(self, node_nm: int) -> "OpEnergies":
        """Return this table scaled to another logic node (DRAM unscaled)."""
        f = lambda v: scale_energy(v, self.node_nm, node_nm)
        return OpEnergies(
            node_nm=node_nm,
            flop=f(self.flop),
            special=f(self.special),
            sram_byte=f(self.sram_byte),
            reg_byte=f(self.reg_byte),
            atomic=f(self.atomic),
            dram_byte=self.dram_byte,
            background_per_cycle=f(self.background_per_cycle),
        )


# Dedicated accelerator datapath at 16 nm: lean operand delivery, short
# wires, no instruction overhead.
ACCEL_OPS = OpEnergies(
    node_nm=16,
    flop=1.2,
    special=2.0,       # the 64-entry LUT makes exp barely costlier than a MAC
    sram_byte=0.8,
    reg_byte=0.1,
    atomic=4.0,
    background_per_cycle=2.0,
)

# GPU at 8 nm (Orin's node): each math op drags instruction fetch/decode,
# register-file traffic, and shared-memory overheads along — the classic
# ~10-30x energy-per-op gap between GPUs and fixed-function logic.
GPU_OPS = OpEnergies(
    node_nm=8,
    flop=15.0,
    special=60.0,      # SFU op + the issue overhead of the transcendental path
    sram_byte=6.0,     # shared memory / L1
    reg_byte=1.5,
    atomic=150.0,      # L2 read-modify-write with retry traffic
    background_per_cycle=400.0,  # fixed SoC overhead per GPU-active cycle
)


@dataclass
class EnergyLedger:
    """Accumulates operation counts and converts them to joules."""

    ops: OpEnergies
    counts: Dict[str, float] = field(default_factory=dict)

    def add(self, kind: str, count: float) -> None:
        """Record ``count`` operations of ``kind`` (an OpEnergies field)."""
        if not hasattr(self.ops, kind):
            raise KeyError(f"unknown op kind {kind!r}")
        self.counts[kind] = self.counts.get(kind, 0.0) + float(count)

    def total_joules(self) -> float:
        """Total energy of everything recorded, in joules."""
        pj = sum(getattr(self.ops, kind) * count
                 for kind, count in self.counts.items())
        return pj * 1e-12

    def breakdown_joules(self) -> Dict[str, float]:
        """Energy per op kind, in joules."""
        return {kind: getattr(self.ops, kind) * count * 1e-12
                for kind, count in self.counts.items()}
