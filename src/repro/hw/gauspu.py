"""GauSPU baseline model (Wu et al., MICRO'24).

GauSPU is a 3DGS-SLAM co-processor: **projection and sorting stay on the
GPU**, while rasterization, reverse rasterization, and gradient handling
run on a dedicated tile-granularity engine.  Two structural properties
drive its behaviour in Fig. 22:

- the GPU-resident front-end keeps the GPU powered and bounds energy
  savings (the paper measures only 23.6x even with sampling);
- the tile-granularity PE array under-utilizes on sparse pixels, like all
  tile-based designs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..render.stats import PipelineStats
from .aggregation import AggregationConfig, AggregationUnit
from .energy import ACCEL_OPS, GPU_OPS, EnergyLedger, OpEnergies
from .gpu import GpuModel, GpuSpec
from .pipeline import StageLoad, pipelined_cycles
from .units import (
    ACCEL_CLOCK_HZ,
    DRAM_BYTES_PER_CYCLE,
    PAIR_RECORD_BYTES,
    QUANT_PARAM_BYTES,
    AccelReport,
)
from .workload import Workload

__all__ = ["GauSpuConfig", "GauSpuAccelerator"]

RENDER_FLOPS = 20
REVERSE_FLOPS = 40
PIPELINE_FILL_CYCLES = 256


@dataclass(frozen=True)
class GauSpuConfig:
    """GauSPU processing-unit parameters (approximated from the paper)."""

    name: str = "gauspu"
    tile_lane_pixels: int = 64        # pixels co-processed per tile round
    render_engines: int = 2
    reverse_engines: int = 2
    aggregation: AggregationConfig = AggregationConfig(
        channels=4, gaussian_cache_bytes=32 * 1024,
        scoreboard_bytes=8 * 1024)
    # Handoff of projection/sorting outputs GPU -> accelerator.
    sync_overhead_s: float = 50e-6
    clock_hz: float = ACCEL_CLOCK_HZ
    node_nm: int = 8

    def with_overrides(self, **kwargs) -> "GauSpuConfig":
        return replace(self, **kwargs)


class GauSpuAccelerator:
    """Latency/energy model of GauSPU for tile-pipeline workloads."""

    def __init__(self, config: GauSpuConfig = GauSpuConfig(),
                 gpu: GpuModel = None, ops: OpEnergies = ACCEL_OPS):
        self.config = config
        self.gpu = gpu or GpuModel(GpuSpec())
        self.ops = ops.scaled_to(config.node_nm)
        self._agg_unit = AggregationUnit(config.aggregation)

    def _tile_rounds(self, stats: PipelineStats) -> float:
        lanes = self.config.tile_lane_pixels
        rounds = 0.0
        for _list_len, n_px, serial_len in stats.tile_work:
            rounds += serial_len * max(1, -(-n_px // lanes))
        return rounds

    def iteration_report(self, workload: Workload) -> AccelReport:
        if workload.pipeline != "tile":
            raise ValueError(
                "GauSPU executes the tile-based pipeline; measure the "
                "workload with mode='tile' or 'tile_sparse'")
        it = max(workload.iterations, 1)
        fwd, bwd = workload.fwd, workload.bwd
        cfg = self.config

        # Front-end on the GPU.
        gpu_proj_s = self.gpu.projection_time(fwd)
        gpu_sort_s = self.gpu.sorting_time(fwd)
        gpu_front_s = gpu_proj_s + gpu_sort_s + cfg.sync_overhead_s

        raster = self._tile_rounds(fwd) / cfg.render_engines
        reverse = self._tile_rounds(bwd) * 1.5 / cfg.reverse_engines
        agg_cycles, agg_dram = self._aggregation(bwd)
        # Re-projection returns to the GPU.
        gpu_reproj_s = self.gpu.reprojection_time(bwd)

        fwd_dram = fwd.num_tile_pairs * PAIR_RECORD_BYTES
        bwd_dram = (bwd.num_tile_pairs * PAIR_RECORD_BYTES + agg_dram
                    + bwd.num_projected * QUANT_PARAM_BYTES)

        fwd_break = pipelined_cycles(
            [StageLoad("rasterization", raster)],
            fill_latency=PIPELINE_FILL_CYCLES)
        bwd_break = pipelined_cycles([
            StageLoad("reverse_rasterization", reverse),
            StageLoad("aggregation", agg_cycles),
        ], fill_latency=PIPELINE_FILL_CYCLES)

        fwd_cycles = max(fwd_break.total, fwd_dram / DRAM_BYTES_PER_CYCLE)
        bwd_cycles = max(bwd_break.total, bwd_dram / DRAM_BYTES_PER_CYCLE)
        forward_s = gpu_front_s / it + fwd_cycles / cfg.clock_hz / it
        backward_s = (bwd_cycles / cfg.clock_hz + gpu_reproj_s) / it

        energy = self._energy(workload, fwd_cycles + bwd_cycles,
                              fwd_dram + bwd_dram,
                              gpu_front_s + gpu_reproj_s) / it
        stage_seconds = {
            "gpu_projection": gpu_proj_s / it,
            "gpu_sorting": gpu_sort_s / it,
            "gpu_reprojection": gpu_reproj_s / it,
        }
        stage_seconds.update({
            name: cycles / cfg.clock_hz / it
            for name, cycles in {**fwd_break.stages, **bwd_break.stages}.items()
        })
        return AccelReport(
            name=cfg.name,
            forward_s=forward_s,
            backward_s=backward_s,
            energy_j=energy,
            stage_seconds=stage_seconds,
        )

    def _aggregation(self, bwd: PipelineStats):
        ids = bwd.pixel_contrib_ids
        proxy_tuples = int(sum(len(p) for p in ids))
        if proxy_tuples == 0:
            return 0.0, 0.0
        trace = self._agg_unit.simulate(ids)
        scale = bwd.num_atomic_adds / proxy_tuples
        return trace.cycles * scale, trace.dram_bytes * scale

    def _energy(self, workload: Workload, accel_cycles: float,
                accel_dram: float, gpu_seconds: float) -> float:
        fwd, bwd = workload.fwd, workload.bwd
        # Accelerator back-end.
        ledger = EnergyLedger(self.ops)
        flops = self._tile_rounds(fwd) * self.config.tile_lane_pixels * 2
        flops += fwd.num_contrib_pairs * RENDER_FLOPS
        flops += bwd.num_contrib_pairs * REVERSE_FLOPS
        ledger.add("flop", flops)
        ledger.add("special", fwd.num_alpha_checks + bwd.num_alpha_checks)
        ledger.add("sram_byte",
                   (fwd.num_tile_pairs + bwd.num_tile_pairs) * PAIR_RECORD_BYTES)
        ledger.add("dram_byte", accel_dram)
        ledger.add("background_per_cycle", accel_cycles)
        accel_j = ledger.total_joules()

        # GPU front-end: compute ops plus idle-GPU burn while it owns the
        # projection/sorting stages.
        gpu_ledger = EnergyLedger(GPU_OPS)
        gpu_ledger.add("flop", fwd.num_projected * 120
                       + fwd.num_sort_keys * 24
                       + bwd.num_projected * 80)
        gpu_ledger.add("dram_byte", fwd.num_projected * 64)
        gpu_cycles = gpu_seconds * self.gpu.spec.clock_hz
        gpu_ledger.add("background_per_cycle", gpu_cycles)
        return accel_j + gpu_ledger.total_joules()
