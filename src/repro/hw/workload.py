"""Workload descriptors bridging the renderers and the hardware models.

A :class:`Workload` bundles the forward- and backward-pass counters of one
(or several accumulated) training iterations.  The hardware models consume
only this — they never touch pixels — which mirrors how the paper's
performance models are driven by kernel instrumentation counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.pixel_pipeline import backward_sparse, render_sparse
from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..render.backward import backward_full
from ..render.rasterize import render_full
from ..render.stats import PipelineStats

__all__ = ["Workload", "measure_iteration"]


def _upscale_stats(stats: PipelineStats, pixel_factor: float,
                   gaussian_factor: float) -> PipelineStats:
    """Scale one pass's counters (see :meth:`Workload.upscale`)."""
    fp, fg = float(pixel_factor), float(gaussian_factor)
    rep = max(1, int(round(fp)))
    scale_side = np.sqrt(fp)
    return PipelineStats(
        pipeline=stats.pipeline,
        tile_size=stats.tile_size,
        record_per_pixel=stats.record_per_pixel,
        image_width=int(round(stats.image_width * scale_side)),
        image_height=int(round(stats.image_height * scale_side)),
        num_gaussians=int(stats.num_gaussians * fg),
        num_projected=int(stats.num_projected * fg),
        num_pixels=int(stats.num_pixels * fp),
        num_tile_pairs=int(stats.num_tile_pairs * fp),
        num_candidate_pairs=int(stats.num_candidate_pairs * fp),
        num_contrib_pairs=int(stats.num_contrib_pairs * fp),
        num_sort_keys=int(stats.num_sort_keys * fp),
        num_alpha_checks=int(stats.num_alpha_checks * fp),
        num_atomic_adds=int(stats.num_atomic_adds * fp),
        per_pixel_contribs=list(stats.per_pixel_contribs) * rep,
        tile_work=list(stats.tile_work) * rep,
        pixel_list_lengths=list(stats.pixel_list_lengths) * rep,
        # ID streams stay at proxy resolution (see PipelineStats docs).
        pixel_contrib_ids=list(stats.pixel_contrib_ids),
    )


@dataclass
class Workload:
    """Counters of one rendering+training iteration (or an accumulation)."""

    name: str
    fwd: PipelineStats
    bwd: PipelineStats
    iterations: int = 1

    @property
    def pipeline(self) -> str:
        return self.fwd.pipeline

    def scaled(self, iterations: int) -> "Workload":
        """Reinterpret this workload as repeated ``iterations`` times.

        Counter totals are *not* multiplied — the hardware models report
        per-iteration latency from totals / iterations — so this simply
        adjusts the amortization denominator.
        """
        return Workload(self.name, self.fwd, self.bwd,
                        iterations=self.iterations * iterations)

    def upscale(self, pixel_factor: float, gaussian_factor: float) -> "Workload":
        """Project this proxy-resolution workload to a larger deployment.

        The experiments render small frames over small maps; the paper's
        setup is 1200x680 frames over million-Gaussian maps.  Pixel-coupled
        counters (pairs, α-checks, atomics, per-pixel records) scale with
        ``pixel_factor``; Gaussian-coupled counters (projection, tile-table
        size, re-projection) scale with ``gaussian_factor``.  Per-pixel
        depth complexity — the length of each pixel's contributing list —
        is resolution-independent and is kept, which is why per-pixel /
        per-tile records are *replicated*, not stretched.
        """
        return Workload(
            name=self.name,
            fwd=_upscale_stats(self.fwd, pixel_factor, gaussian_factor),
            bwd=_upscale_stats(self.bwd, pixel_factor, gaussian_factor),
            iterations=self.iterations,
        )


def measure_iteration(
    cloud: GaussianCloud,
    camera: Camera,
    ref_color: np.ndarray,
    ref_depth: np.ndarray,
    mode: str = "pixel",
    pixels: Optional[np.ndarray] = None,
    background: Optional[np.ndarray] = None,
    name: Optional[str] = None,
    backend: Optional[str] = None,
    lattice_tile: Optional[int] = None,
    record_per_pixel: bool = True,
) -> Workload:
    """Run one fwd+bwd iteration and capture its workload counters.

    ``mode`` selects the pipeline: ``"tile"`` (dense), ``"tile_sparse"``
    (Org.+S: sparse pixels through the tile pipeline, requires ``pixels``),
    or ``"pixel"`` (the SPLATONIC pipeline, requires ``pixels``).
    A unit photometric+depth gradient is used — the hardware models only
    read counters, not values.  ``backend`` / ``lattice_tile`` select the
    sparse kernel backend and candidate-generation hint (pixel mode only);
    ``record_per_pixel=False`` drops the per-item record lists (the
    hardware-model replay streams need them, so the default keeps them).
    """
    from ..slam.losses import LossConfig, rgbd_loss

    bg = np.zeros(3) if background is None else background
    cfg = LossConfig()

    if mode == "tile":
        result = render_full(cloud, camera, bg,
                             record_per_pixel=record_per_pixel)
        h, w = result.depth.shape
        out = rgbd_loss(result.color.reshape(-1, 3), result.depth.ravel(),
                        result.silhouette.ravel(),
                        ref_color.reshape(-1, 3), ref_depth.ravel(),
                        cfg, tracking=False)
        grads = backward_full(result, cloud, camera,
                              out.d_color.reshape(h, w, 3),
                              out.d_depth.reshape(h, w),
                              out.d_silhouette.reshape(h, w))
    elif mode == "tile_sparse":
        if pixels is None:
            raise ValueError("tile_sparse mode needs pixels")
        result = render_full(cloud, camera, bg, pixels=pixels,
                             record_per_pixel=record_per_pixel)
        h, w = result.depth.shape
        out = rgbd_loss(result.color.reshape(-1, 3), result.depth.ravel(),
                        result.silhouette.ravel(),
                        ref_color.reshape(-1, 3), ref_depth.ravel(),
                        cfg, tracking=False)
        grads = backward_full(result, cloud, camera,
                              out.d_color.reshape(h, w, 3),
                              out.d_depth.reshape(h, w),
                              out.d_silhouette.reshape(h, w))
    elif mode == "pixel":
        if pixels is None:
            raise ValueError("pixel mode needs pixels")
        result = render_sparse(cloud, camera, pixels, bg, backend=backend,
                               lattice_tile=lattice_tile,
                               record_per_pixel=record_per_pixel)
        ref_c = ref_color[pixels[:, 1], pixels[:, 0]]
        ref_d = ref_depth[pixels[:, 1], pixels[:, 0]]
        out = rgbd_loss(result.color, result.depth, result.silhouette,
                        ref_c, ref_d, cfg, tracking=False)
        grads = backward_sparse(result, cloud, camera, out.d_color,
                                out.d_depth, out.d_silhouette)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    return Workload(name=name or mode, fwd=result.stats, bwd=grads.stats)
