"""Hardware models: the mobile GPU, SPLATONIC, and baseline accelerators.

Every model consumes :class:`~repro.hw.workload.Workload` counters produced
by the renderers — the same counters a profiler would collect — and returns
latency and energy.  Absolute values are model estimates; all paper-facing
results are ratios against the GPU baseline.
"""

from .aggregation import AggregationConfig, AggregationTrace, AggregationUnit
from .area import (
    COMPARISON_AREAS_MM2,
    AreaBreakdown,
    splatonic_area,
)
from .dram import DramConfig, DramModel, DramStats
from .energy import ACCEL_OPS, DRAM_PJ_PER_BYTE, GPU_OPS, EnergyLedger, OpEnergies
from .gauspu import GauSpuAccelerator, GauSpuConfig
from .gpu import GpuModel, GpuSpec, StageTimes
from .gsarch import GsArchAccelerator, GsArchConfig
from .lut import ExpLUT
from .pipeline import CycleBreakdown, StageLoad, pipelined_cycles, sequential_cycles
from .scaling import NODES, scale_area, scale_delay, scale_energy
from .sorting_unit import HierarchicalSorter, SortingUnitConfig
from .splatonic_accel import SplatonicAccelerator, StageModel
from .splatonic_accel import SplatonicConfig as SplatonicHwConfig
from .units import AccelReport
from .workload import Workload, measure_iteration

__all__ = [
    "AggregationConfig",
    "AggregationTrace",
    "AggregationUnit",
    "AreaBreakdown",
    "splatonic_area",
    "COMPARISON_AREAS_MM2",
    "DramConfig",
    "DramModel",
    "DramStats",
    "ACCEL_OPS",
    "GPU_OPS",
    "DRAM_PJ_PER_BYTE",
    "EnergyLedger",
    "OpEnergies",
    "GpuModel",
    "GpuSpec",
    "StageTimes",
    "GauSpuAccelerator",
    "GauSpuConfig",
    "GsArchAccelerator",
    "GsArchConfig",
    "ExpLUT",
    "CycleBreakdown",
    "StageLoad",
    "pipelined_cycles",
    "sequential_cycles",
    "NODES",
    "HierarchicalSorter",
    "SortingUnitConfig",
    "scale_area",
    "scale_delay",
    "scale_energy",
    "SplatonicAccelerator",
    "StageModel",
    "SplatonicHwConfig",
    "AccelReport",
    "Workload",
    "measure_iteration",
]
