"""Cycle model of the hierarchical sorting units (Fig. 15, GSCore-style).

Each sorting unit ingests a pixel's candidate list as a key stream and
sorts it hierarchically: an insertion-sorter front-end orders chunks of
``chunk_size`` keys at ``ingest_width`` keys per cycle, and an ``m``-way
merge back-end combines the sorted chunks in streaming passes.  Cycles per
list of length ``n``::

    ceil(n / width) * (1 + max(0, ceil(log_m(ceil(n / chunk)))))

The pixel-based pipeline's lists are short (tens of keys), so most lists
finish in the insertion front-end alone — the structural reason the
paper's sorters are tiny compared to a global radix sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["SortingUnitConfig", "HierarchicalSorter"]


@dataclass(frozen=True)
class SortingUnitConfig:
    """Microarchitecture of one sorting unit."""

    ingest_width: int = 4      # keys accepted per cycle
    chunk_size: int = 64       # insertion-sorter capacity
    merge_ways: int = 4        # streaming merge radix

    def __post_init__(self) -> None:
        if self.ingest_width < 1 or self.chunk_size < 2 or self.merge_ways < 2:
            raise ValueError("degenerate sorting-unit configuration")


class HierarchicalSorter:
    """Latency model for a pool of hierarchical sorting units."""

    def __init__(self, config: SortingUnitConfig = SortingUnitConfig(),
                 units: int = 4):
        if units < 1:
            raise ValueError("need at least one sorting unit")
        self.config = config
        self.units = units

    def list_cycles(self, n: int) -> float:
        """Cycles for one unit to sort a single list of ``n`` keys."""
        if n <= 0:
            return 0.0
        cfg = self.config
        stream = -(-n // cfg.ingest_width)
        chunks = -(-n // cfg.chunk_size)
        if chunks <= 1:
            return float(stream)
        passes = int(np.ceil(np.log(chunks) / np.log(cfg.merge_ways)))
        return float(stream * (1 + passes))

    def total_cycles(self, list_lengths: Iterable[int]) -> float:
        """Pool latency: lists are distributed across units greedily.

        With many independent per-pixel lists the pool behaves like a
        queueing system; we model it as ideal work sharing (total work
        divided by unit count) plus the longest single list, which cannot
        be split.
        """
        lengths = [int(n) for n in list_lengths if n > 0]
        if not lengths:
            return 0.0
        work = sum(self.list_cycles(n) for n in lengths)
        critical = max(self.list_cycles(n) for n in lengths)
        return max(work / self.units, critical)
