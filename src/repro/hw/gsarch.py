"""GSArch baseline model (He et al., HPCA'25, edge configuration).

GSArch is a 3DGS *training* accelerator built around the conventional
tile-based pipeline with sub-tile (4x4) rendering granularity and
memory-efficient on-chip gradient merging.  Its structural weakness under
sparse pixel sampling — the property Fig. 22/25 exercise — is that a
sub-tile's 16 lanes process a Gaussian together, so with one sampled pixel
per sub-tile 15 of 16 lanes idle, and sparsely scattered samples touch
many sub-tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..render.stats import PipelineStats
from .aggregation import AggregationConfig, AggregationUnit
from .energy import ACCEL_OPS, EnergyLedger, OpEnergies
from .pipeline import StageLoad, pipelined_cycles
from .units import (
    ACCEL_CLOCK_HZ,
    DRAM_BYTES_PER_CYCLE,
    PAIR_RECORD_BYTES,
    QUANT_PARAM_BYTES,
    AccelReport,
)
from .workload import Workload

__all__ = ["GsArchConfig", "GsArchAccelerator"]

PROJ_FLOPS = 60
RENDER_FLOPS = 20      # includes per-pair alpha-checking in the PE
REVERSE_FLOPS = 40
PIPELINE_FILL_CYCLES = 256


@dataclass(frozen=True)
class GsArchConfig:
    """GSArch edge configuration (approximated from the paper)."""

    name: str = "gsarch"
    projection_units: int = 8
    sorting_units: int = 4
    subtile_pixels: int = 16          # 4x4 rendering granularity
    render_engines: int = 8           # sub-tile rounds retired per cycle
    reverse_engines: int = 8
    # Gradient merging: a large on-chip accumulation buffer.
    aggregation: AggregationConfig = AggregationConfig(
        channels=16, gaussian_cache_bytes=64 * 1024,
        scoreboard_bytes=16 * 1024)
    clock_hz: float = ACCEL_CLOCK_HZ
    node_nm: int = 8

    def with_overrides(self, **kwargs) -> "GsArchConfig":
        return replace(self, **kwargs)


class GsArchAccelerator:
    """Latency/energy model of GSArch for tile-pipeline workloads."""

    def __init__(self, config: GsArchConfig = GsArchConfig(),
                 ops: OpEnergies = ACCEL_OPS):
        self.config = config
        self.ops = ops.scaled_to(config.node_nm)
        self._agg_unit = AggregationUnit(config.aggregation)

    def _subtile_rounds(self, stats: PipelineStats) -> float:
        """Sub-tile x Gaussian rounds of a (possibly sparse) tile raster.

        One-per-``w x w`` sampling lattices place each sampled pixel in its
        own sub-tile (for w >= 4), so a tile with ``n_px`` rendered pixels
        activates ``min(n_px, subtiles_per_tile)`` sub-tile rounds per
        Gaussian in its list.
        """
        sub = self.config.subtile_pixels
        rounds = 0.0
        for _list_len, n_px, serial_len in stats.tile_work:
            tile_px = stats.tile_size * stats.tile_size
            subtiles = max(1, tile_px // sub)
            active = min(n_px, subtiles) if n_px < tile_px else subtiles
            rounds += serial_len * active
        return rounds

    def iteration_report(self, workload: Workload) -> AccelReport:
        if workload.pipeline != "tile":
            raise ValueError(
                "GSArch executes the tile-based pipeline; measure the "
                "workload with mode='tile' or 'tile_sparse'")
        it = max(workload.iterations, 1)
        fwd, bwd = workload.fwd, workload.bwd
        cfg = self.config

        proj = (fwd.num_projected / cfg.projection_units
                + fwd.num_tile_pairs / cfg.projection_units)
        sort = fwd.num_sort_keys / cfg.sorting_units
        raster = self._subtile_rounds(fwd) / cfg.render_engines
        reverse = self._subtile_rounds(bwd) * 1.5 / cfg.reverse_engines
        agg_cycles, agg_dram = self._aggregation(bwd)
        reproj = bwd.num_projected / cfg.projection_units

        fwd_dram = (fwd.num_projected * QUANT_PARAM_BYTES
                    + fwd.num_tile_pairs * PAIR_RECORD_BYTES)
        bwd_dram = (bwd.num_tile_pairs * PAIR_RECORD_BYTES if bwd.tile_work
                    else 0.0)
        bwd_dram += agg_dram + bwd.num_projected * QUANT_PARAM_BYTES

        fwd_break = pipelined_cycles([
            StageLoad("projection", proj),
            StageLoad("sorting", sort),
            StageLoad("rasterization", raster),
        ], fill_latency=PIPELINE_FILL_CYCLES)
        bwd_break = pipelined_cycles([
            StageLoad("reverse_rasterization", reverse),
            StageLoad("aggregation", agg_cycles),
            StageLoad("reprojection", reproj),
        ], fill_latency=PIPELINE_FILL_CYCLES)

        fwd_cycles = max(fwd_break.total, fwd_dram / DRAM_BYTES_PER_CYCLE)
        bwd_cycles = max(bwd_break.total, bwd_dram / DRAM_BYTES_PER_CYCLE)

        energy = self._energy(workload, fwd_cycles + bwd_cycles,
                              fwd_dram + bwd_dram) / it
        stage_seconds = {
            name: cycles / cfg.clock_hz / it
            for name, cycles in {**fwd_break.stages, **bwd_break.stages}.items()
        }
        return AccelReport(
            name=cfg.name,
            forward_s=fwd_cycles / cfg.clock_hz / it,
            backward_s=bwd_cycles / cfg.clock_hz / it,
            energy_j=energy,
            stage_seconds=stage_seconds,
        )

    def _aggregation(self, bwd: PipelineStats):
        ids = bwd.pixel_contrib_ids
        proxy_tuples = int(sum(len(p) for p in ids))
        if proxy_tuples == 0:
            return 0.0, 0.0
        trace = self._agg_unit.simulate(ids)
        scale = bwd.num_atomic_adds / proxy_tuples
        return trace.cycles * scale, trace.dram_bytes * scale

    def _energy(self, workload: Workload, total_cycles: float,
                dram_bytes: float) -> float:
        fwd, bwd = workload.fwd, workload.bwd
        ledger = EnergyLedger(self.ops)
        flops = fwd.num_projected * PROJ_FLOPS
        # Sub-tile lanes burn energy even when masked; charge issued slots.
        flops += self._subtile_rounds(fwd) * self.config.subtile_pixels * 2
        flops += fwd.num_candidate_pairs * 4
        flops += fwd.num_contrib_pairs * RENDER_FLOPS
        flops += bwd.num_contrib_pairs * REVERSE_FLOPS
        flops += bwd.num_projected * PROJ_FLOPS
        ledger.add("flop", flops)
        ledger.add("special", fwd.num_alpha_checks + bwd.num_alpha_checks)
        sram = (fwd.num_tile_pairs + bwd.num_tile_pairs) * PAIR_RECORD_BYTES
        sram += (fwd.num_contrib_pairs + bwd.num_contrib_pairs) * 8
        ledger.add("sram_byte", sram)
        ledger.add("dram_byte", dram_bytes)
        ledger.add("background_per_cycle", total_cycles * 1.6)  # larger die
        return ledger.total_joules()
