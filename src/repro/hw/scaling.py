"""Technology-node scaling in the style of DeepScaleTool.

The paper implements SPLATONIC in TSMC 16 nm and scales results to 8 nm
(to match the Orin SoC) with DeepScaleTool [66], [69], which fits scaling
factors for area, delay, and energy from published CMOS data (Stillmaker &
Baas).  We embed a factor table with the same shape: per-node relative
area / delay / energy of a logic gate, normalized to 16 nm.  Values follow
the published general-purpose scaling curves; like the original tool, they
are estimates — every consumer in this repo treats them as relative
factors, never absolute silicon truth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NodeFactors", "NODES", "scale_area", "scale_energy",
           "scale_delay", "scale_all"]


@dataclass(frozen=True)
class NodeFactors:
    """Relative factors of a technology node, normalized to 16 nm = 1.0."""

    node_nm: float
    area: float
    delay: float
    energy: float


# Normalized to 16 nm.  Area tracks ~(node/16)^2 with a density saturation
# below 10 nm; delay and energy follow the Stillmaker-Baas style curves
# (energy improves roughly linearly with node at iso-frequency).
NODES = {
    28: NodeFactors(28, area=2.72, delay=1.45, energy=2.05),
    16: NodeFactors(16, area=1.00, delay=1.00, energy=1.00),
    12: NodeFactors(12, area=0.69, delay=0.91, energy=0.79),
    10: NodeFactors(10, area=0.52, delay=0.84, energy=0.66),
    8: NodeFactors(8, area=0.41, delay=0.77, energy=0.55),
    7: NodeFactors(7, area=0.36, delay=0.74, energy=0.51),
}


def _factors(node_nm: int) -> NodeFactors:
    try:
        return NODES[node_nm]
    except KeyError:
        raise KeyError(
            f"no scaling data for {node_nm} nm; known nodes: {sorted(NODES)}"
        ) from None


def scale_area(value: float, from_nm: int, to_nm: int) -> float:
    """Scale an area from one node to another."""
    return value * _factors(to_nm).area / _factors(from_nm).area


def scale_delay(value: float, from_nm: int, to_nm: int) -> float:
    """Scale a gate delay (or its inverse, a clock period) between nodes."""
    return value * _factors(to_nm).delay / _factors(from_nm).delay


def scale_energy(value: float, from_nm: int, to_nm: int) -> float:
    """Scale a per-op energy between nodes."""
    return value * _factors(to_nm).energy / _factors(from_nm).energy


def scale_all(area: float, delay: float, energy: float,
              from_nm: int, to_nm: int):
    """Scale an (area, delay, energy) triple between nodes."""
    return (
        scale_area(area, from_nm, to_nm),
        scale_delay(delay, from_nm, to_nm),
        scale_energy(energy, from_nm, to_nm),
    )
