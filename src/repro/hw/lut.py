"""Lookup-table approximation of the exponential (projection unit, Sec. V-C).

α-checking evaluates ``exp(-x)`` for ``x = d^2 / (2 sigma^2)``; on the GPU
this runs on scarce SFUs.  SPLATONIC replaces it with a small LUT: the
paper finds 64 entries sufficient to preserve task accuracy.  We implement
a piecewise-linear LUT over ``x in [0, X_MAX]`` (beyond the truncation
radius ``exp(-x)`` is below the α threshold anyway and clamps to 0), plus
an error probe used by the LUT-size ablation bench.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ExpLUT"]

# 3.5-sigma truncation means x = d^2/(2 sigma^2) <= 3.5^2/2 = 6.125; round
# up so the table covers every value alpha-checking can produce.
DEFAULT_X_MAX = 6.5


class ExpLUT:
    """Piecewise-linear table for ``exp(-x)`` on ``[0, x_max]``."""

    def __init__(self, entries: int = 64, x_max: float = DEFAULT_X_MAX):
        if entries < 2:
            raise ValueError("need at least 2 entries")
        self.entries = entries
        self.x_max = float(x_max)
        self._xs = np.linspace(0.0, self.x_max, entries)
        self._ys = np.exp(-self._xs)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the approximation; inputs beyond ``x_max`` clamp to 0."""
        x = np.asarray(x, dtype=float)
        out = np.interp(x, self._xs, self._ys, right=0.0)
        return np.where(x > self.x_max, 0.0, out)

    @property
    def size_bytes(self) -> int:
        """Storage footprint assuming 16-bit entries."""
        return 2 * self.entries

    def max_abs_error(self, samples: int = 100_000) -> float:
        """Worst-case absolute error against the true exponential."""
        xs = np.linspace(0.0, self.x_max, samples)
        return float(np.max(np.abs(self(xs) - np.exp(-xs))))

    def alpha_error(self, opacity: float = 1.0, samples: int = 100_000) -> float:
        """Worst-case error it induces on α = opacity * exp(-x)."""
        return opacity * self.max_abs_error(samples)
