"""A bank/row-buffer model of the LPDDR3 DRAM behind the accelerators.

The aggregation unit's miss traffic is *irregular*: Gaussian records are
scattered across the address space, so whether a fetch hits an open row
dominates its latency and energy.  This model tracks one open row per
bank and charges row hits, row misses (precharge + activate), and bank
conflicts accordingly — the standard first-order DRAM model.

Timings are in 500 MHz accelerator cycles for 4-channel LPDDR3-1600
(roughly: CL ~ 12 ns, tRCD ~ 15 ns, tRP ~ 15 ns at the DRAM clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from ..obs import trace

__all__ = ["DramConfig", "DramStats", "DramModel"]


@dataclass(frozen=True)
class DramConfig:
    """Address mapping and timing of the modeled memory system."""

    banks: int = 8
    row_bytes: int = 2048             # row-buffer size per bank
    hit_cycles: int = 8               # CAS only
    miss_cycles: int = 24             # precharge + activate + CAS
    hit_energy_pj_per_byte: float = 10.0
    miss_energy_pj_per_byte: float = 22.0

    def locate(self, address: int):
        """``address -> (bank, row)`` with row-interleaved banks."""
        row = address // self.row_bytes
        return row % self.banks, row // self.banks


@dataclass
class DramStats:
    """Access tally of one replay."""

    hits: int = 0
    misses: int = 0
    cycles: float = 0.0
    energy_pj: float = 0.0
    per_bank_accesses: Dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


class DramModel:
    """Replay a sequence of (address, bytes) accesses through the banks."""

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        self._open_rows: Dict[int, int] = {}

    def reset(self) -> None:
        self._open_rows.clear()

    def access(self, address: int, nbytes: int, stats: DramStats) -> None:
        """One access; updates ``stats`` in place."""
        cfg = self.config
        bank, row = cfg.locate(int(address))
        if self._open_rows.get(bank) == row:
            stats.hits += 1
            stats.cycles += cfg.hit_cycles
            stats.energy_pj += cfg.hit_energy_pj_per_byte * nbytes
        else:
            self._open_rows[bank] = row
            stats.misses += 1
            stats.cycles += cfg.miss_cycles
            stats.energy_pj += cfg.miss_energy_pj_per_byte * nbytes
        stats.per_bank_accesses[bank] = stats.per_bank_accesses.get(bank, 0) + 1

    def replay(self, addresses: Iterable[int], nbytes: int) -> DramStats:
        """Replay many accesses of uniform size; returns the tally."""
        with trace.span("hw.dram.replay", nbytes=nbytes):
            self.reset()
            stats = DramStats()
            for a in addresses:
                self.access(a, nbytes, stats)
            return stats

    def replay_gaussian_fetches(self, gaussian_ids: Iterable[int],
                                record_bytes: int = 32) -> DramStats:
        """Replay fetches of Gaussian records laid out contiguously by ID.

        Sequential or spatially-local ID streams hit the open rows;
        scattered streams (the naive aggregation pattern) mostly miss.
        """
        ids = np.asarray(list(gaussian_ids), dtype=int)
        return self.replay(ids * record_bytes, record_bytes)
