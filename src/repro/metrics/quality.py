"""Image-quality metrics: PSNR, SSIM, and depth L1."""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["psnr", "ssim", "depth_l1"]


def psnr(rendered: np.ndarray, reference: np.ndarray,
         data_range: float = 1.0, mask: np.ndarray = None) -> float:
    """Peak signal-to-noise ratio in dB over optionally masked pixels."""
    rendered = np.asarray(rendered, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if rendered.shape != reference.shape:
        raise ValueError("images must have the same shape")
    diff = (rendered - reference) ** 2
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim == diff.ndim - 1:
            mask = mask[..., None]
        diff = diff[np.broadcast_to(mask, diff.shape)]
        if diff.size == 0:
            return float("inf")
    mse = float(np.mean(diff))
    if mse <= 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range * data_range / mse))


def ssim(rendered: np.ndarray, reference: np.ndarray,
         data_range: float = 1.0, sigma: float = 1.5) -> float:
    """Mean structural similarity with a Gaussian window.

    Multi-channel images are averaged over channels, matching the common
    scikit-image behaviour the SLAM papers report.
    """
    a = np.asarray(rendered, dtype=float)
    b = np.asarray(reference, dtype=float)
    if a.shape != b.shape:
        raise ValueError("images must have the same shape")
    if a.ndim == 3:
        return float(np.mean([
            ssim(a[..., c], b[..., c], data_range, sigma)
            for c in range(a.shape[-1])
        ]))

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    def blur(img):
        return ndimage.gaussian_filter(img, sigma, mode="nearest")

    mu_a = blur(a)
    mu_b = blur(b)
    var_a = blur(a * a) - mu_a * mu_a
    var_b = blur(b * b) - mu_b * mu_b
    cov = blur(a * b) - mu_a * mu_b
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a ** 2 + mu_b ** 2 + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))


def depth_l1(rendered: np.ndarray, reference: np.ndarray,
             mask: np.ndarray = None) -> float:
    """Mean absolute depth error over valid (reference > 0) pixels."""
    rendered = np.asarray(rendered, dtype=float)
    reference = np.asarray(reference, dtype=float)
    valid = reference > 0
    if mask is not None:
        valid &= np.asarray(mask, dtype=bool)
    if not np.any(valid):
        return 0.0
    return float(np.mean(np.abs(rendered[valid] - reference[valid])))
