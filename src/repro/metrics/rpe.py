"""Relative pose error (RPE), the drift metric of the TUM benchmark.

Where ATE measures global consistency after alignment, RPE measures local
drift: for every pair of poses ``delta`` frames apart, compare the
estimated relative motion against the ground-truth relative motion and
report translational / rotational error statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gaussians.se3 import se3_inverse, so3_log

__all__ = ["RpeResult", "rpe"]


@dataclass(frozen=True)
class RpeResult:
    """RPE summary: translation in metres, rotation in radians."""

    trans_rmse: float
    trans_mean: float
    rot_rmse: float
    rot_mean: float
    delta: int
    num_pairs: int


def rpe(estimated: np.ndarray, ground_truth: np.ndarray,
        delta: int = 1) -> RpeResult:
    """Relative pose error over all pose pairs ``delta`` frames apart.

    Both trajectories are ``(N, 4, 4)`` camera-to-world pose arrays.
    """
    est = np.asarray(estimated, dtype=float)
    gt = np.asarray(ground_truth, dtype=float)
    if est.shape != gt.shape or est.ndim != 3 or est.shape[1:] != (4, 4):
        raise ValueError("expected matching (N, 4, 4) pose arrays")
    if delta < 1:
        raise ValueError("delta must be >= 1")
    n = est.shape[0]
    if n <= delta:
        raise ValueError("need more poses than delta")

    trans_errs = []
    rot_errs = []
    for i in range(n - delta):
        rel_est = se3_inverse(est[i]) @ est[i + delta]
        rel_gt = se3_inverse(gt[i]) @ gt[i + delta]
        err = se3_inverse(rel_gt) @ rel_est
        trans_errs.append(np.linalg.norm(err[:3, 3]))
        rot_errs.append(np.linalg.norm(so3_log(err[:3, :3])))
    trans = np.asarray(trans_errs)
    rot = np.asarray(rot_errs)
    return RpeResult(
        trans_rmse=float(np.sqrt(np.mean(trans ** 2))),
        trans_mean=float(trans.mean()),
        rot_rmse=float(np.sqrt(np.mean(rot ** 2))),
        rot_mean=float(rot.mean()),
        delta=delta,
        num_pairs=len(trans_errs),
    )
