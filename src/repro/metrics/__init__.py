"""Accuracy metrics: trajectory error and reconstruction quality."""

from .ate import AteResult, ate_rmse, umeyama_alignment
from .quality import depth_l1, psnr, ssim
from .rpe import RpeResult, rpe

__all__ = ["AteResult", "ate_rmse", "umeyama_alignment",
           "psnr", "ssim", "depth_l1", "RpeResult", "rpe"]
