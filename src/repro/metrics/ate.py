"""Absolute trajectory error (ATE) with Umeyama alignment.

The standard SLAM pose-accuracy metric (Sturm et al., IROS 2012): align
the estimated trajectory to the ground truth with the best-fit rigid (or
similarity) transform, then report the RMSE of the residual translations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["umeyama_alignment", "ate_rmse", "AteResult"]


@dataclass(frozen=True)
class AteResult:
    """ATE summary statistics, all in metres."""

    rmse: float
    mean: float
    median: float
    max: float


def umeyama_alignment(source: np.ndarray, target: np.ndarray,
                      with_scale: bool = False):
    """Best-fit transform aligning ``source`` points onto ``target``.

    Returns ``(R, t, s)`` with ``target ~= s * R @ source + t`` in the
    least-squares sense (Umeyama 1991).  ``with_scale=False`` fixes s = 1
    (rigid alignment, the SLAM convention for RGB-D trajectories).
    """
    source = np.asarray(source, dtype=float)
    target = np.asarray(target, dtype=float)
    if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 3:
        raise ValueError("expected matching (N, 3) point sets")
    n = source.shape[0]
    if n < 3:
        raise ValueError("need at least 3 poses to align")

    mu_s = source.mean(axis=0)
    mu_t = target.mean(axis=0)
    xs = source - mu_s
    xt = target - mu_t
    cov = xt.T @ xs / n
    U, D, Vt = np.linalg.svd(cov)
    S = np.eye(3)
    if np.linalg.det(U) * np.linalg.det(Vt) < 0:
        S[2, 2] = -1.0
    R = U @ S @ Vt
    if with_scale:
        var_s = (xs ** 2).sum() / n
        s = float(np.trace(np.diag(D) @ S) / var_s)
    else:
        s = 1.0
    t = mu_t - s * R @ mu_s
    return R, t, s


def ate_rmse(estimated: np.ndarray, ground_truth: np.ndarray,
             align: bool = True, with_scale: bool = False) -> AteResult:
    """ATE of estimated camera centres vs ground truth.

    Both inputs are ``(N, 3)`` positions or ``(N, 4, 4)`` pose arrays.
    """
    est = _positions(estimated)
    gt = _positions(ground_truth)
    if align:
        R, t, s = umeyama_alignment(est, gt, with_scale=with_scale)
        est = s * est @ R.T + t
    err = np.linalg.norm(est - gt, axis=1)
    return AteResult(
        rmse=float(np.sqrt(np.mean(err ** 2))),
        mean=float(err.mean()),
        median=float(np.median(err)),
        max=float(err.max()),
    )


def _positions(traj: np.ndarray) -> np.ndarray:
    traj = np.asarray(traj, dtype=float)
    if traj.ndim == 3 and traj.shape[1:] == (4, 4):
        return traj[:, :3, 3]
    if traj.ndim == 2 and traj.shape[1] == 3:
        return traj
    raise ValueError("trajectory must be (N, 3) positions or (N, 4, 4) poses")
