"""Ground-truth camera trajectory generators.

All trajectories are sequences of camera-to-world 4x4 poses.  The replica-
like sequences use smooth orbit/scan paths (slow indoor motion); the
tum-like sequences perturb them with faster, jerkier motion.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..gaussians.se3 import se3_exp

__all__ = ["look_at", "orbit_trajectory", "scan_trajectory",
           "perturb_trajectory", "trajectory_positions"]


def look_at(eye: np.ndarray, target: np.ndarray,
            up: np.ndarray = None) -> np.ndarray:
    """Camera-to-world pose with +z toward ``target`` and y roughly ``up``.

    ``up`` defaults to world -y being "up" is *not* assumed; we use
    ``(0, 1, 0)`` (y down convention: image v grows along world +y).
    """
    eye = np.asarray(eye, dtype=float)
    target = np.asarray(target, dtype=float)
    up = np.array([0.0, 1.0, 0.0]) if up is None else np.asarray(up, float)

    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-9:
        raise ValueError("eye and target coincide")
    forward = forward / norm
    right = np.cross(up, forward)
    rn = np.linalg.norm(right)
    if rn < 1e-9:
        # forward parallel to up; pick an arbitrary right vector.
        right = np.cross(np.array([1.0, 0.0, 0.0]), forward)
        rn = np.linalg.norm(right)
    right = right / rn
    down = np.cross(forward, right)

    T = np.eye(4)
    T[:3, 0] = right
    T[:3, 1] = down
    T[:3, 2] = forward
    T[:3, 3] = eye
    return T


def orbit_trajectory(n_frames: int, radius: float = 1.2,
                     center: np.ndarray = None,
                     look_radius: float = 2.5,
                     height: float = 0.0,
                     sweep: float = 1.5 * np.pi,
                     phase: float = 0.0) -> List[np.ndarray]:
    """Orbit around ``center`` while looking outwards at the room walls.

    Looking outward (rather than at the centre) makes new wall regions
    come into view continuously, which exercises the mapper's unseen-pixel
    sampling.
    """
    center = np.zeros(3) if center is None else np.asarray(center, float)
    poses = []
    for i in range(n_frames):
        t = phase + sweep * i / max(n_frames - 1, 1)
        eye = center + np.array([radius * np.cos(t), height,
                                 radius * np.sin(t)])
        target = center + np.array([look_radius * np.cos(t), height * 0.5,
                                    look_radius * np.sin(t)])
        poses.append(look_at(eye, target))
    return poses


def scan_trajectory(n_frames: int, start: np.ndarray, end: np.ndarray,
                    target: np.ndarray, bob: float = 0.05) -> List[np.ndarray]:
    """Linear dolly from ``start`` to ``end`` watching ``target``."""
    start = np.asarray(start, float)
    end = np.asarray(end, float)
    target = np.asarray(target, float)
    poses = []
    for i in range(n_frames):
        s = i / max(n_frames - 1, 1)
        eye = (1 - s) * start + s * end
        eye = eye + np.array([0.0, bob * np.sin(4 * np.pi * s), 0.0])
        poses.append(look_at(eye, target))
    return poses


def perturb_trajectory(poses: List[np.ndarray], rng: np.random.Generator,
                       trans_sigma: float = 0.01,
                       rot_sigma: float = 0.01) -> List[np.ndarray]:
    """Add per-frame jitter (fast hand-held motion, TUM-style)."""
    out = []
    for T in poses:
        xi = np.concatenate([
            rng.normal(0.0, trans_sigma, 3),
            rng.normal(0.0, rot_sigma, 3),
        ])
        out.append(T @ se3_exp(xi))
    return out


def trajectory_positions(poses: List[np.ndarray]) -> np.ndarray:
    """Stack the (N, 3) camera centres of a pose list."""
    return np.stack([T[:3, 3] for T in poses], axis=0)
