"""Synthetic RGB-D datasets standing in for Replica and TUM RGB-D."""

from .replica import REPLICA_SEQUENCES, make_replica_sequence, make_replica_suite
from .rgbd import RGBDFrame, RGBDSequence, render_sequence
from .scene import SceneSpec, make_room_scene
from .trajectory import (
    look_at,
    orbit_trajectory,
    perturb_trajectory,
    scan_trajectory,
    trajectory_positions,
)
from .tum import TUM_SEQUENCES, make_tum_sequence, make_tum_suite

__all__ = [
    "REPLICA_SEQUENCES",
    "make_replica_sequence",
    "make_replica_suite",
    "TUM_SEQUENCES",
    "make_tum_sequence",
    "make_tum_suite",
    "RGBDFrame",
    "RGBDSequence",
    "render_sequence",
    "SceneSpec",
    "make_room_scene",
    "look_at",
    "orbit_trajectory",
    "scan_trajectory",
    "perturb_trajectory",
    "trajectory_positions",
]
