"""RGB-D frame and sequence containers plus the ground-truth frame renderer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..gaussians.camera import Camera, Intrinsics
from ..gaussians.model import GaussianCloud
from ..render.rasterize import render_full

__all__ = ["RGBDFrame", "RGBDSequence", "render_sequence"]


@dataclass
class RGBDFrame:
    """One observation: color, depth, and the (ground-truth) pose."""

    color: np.ndarray       # (H, W, 3) in [0, 1]
    depth: np.ndarray       # (H, W) metres; 0 marks invalid
    gt_pose_c2w: np.ndarray  # (4, 4)
    timestamp: float = 0.0


@dataclass
class RGBDSequence:
    """A named sequence of RGB-D frames with shared intrinsics."""

    name: str
    intrinsics: Intrinsics
    frames: List[RGBDFrame] = field(default_factory=list)
    gt_cloud: Optional[GaussianCloud] = None

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, i: int) -> RGBDFrame:
        return self.frames[i]

    def __iter__(self):
        return iter(self.frames)

    @property
    def gt_trajectory(self) -> np.ndarray:
        """``(N, 4, 4)`` ground-truth camera-to-world poses."""
        return np.stack([f.gt_pose_c2w for f in self.frames])


def render_sequence(
    name: str,
    gt_cloud: GaussianCloud,
    poses: List[np.ndarray],
    intrinsics: Intrinsics,
    background: Optional[np.ndarray] = None,
    color_noise: float = 0.0,
    depth_noise: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    fps: float = 30.0,
) -> RGBDSequence:
    """Render a ground-truth cloud along a trajectory into an RGB-D sequence.

    Depth is the alpha-composited expected depth of the GT cloud, matching
    what a consistent renderer reproduces exactly; optional noise emulates
    real sensors (used by the tum-like sequences).
    """
    rng = rng or np.random.default_rng(0)
    bg = np.full(3, 0.05) if background is None else np.asarray(background, float)
    frames = []
    for i, pose in enumerate(poses):
        cam = Camera(intrinsics, pose)
        res = render_full(gt_cloud, cam, bg, keep_cache=False)
        color = res.color
        depth = res.depth
        if color_noise > 0.0:
            color = np.clip(
                color + rng.normal(0.0, color_noise, color.shape), 0.0, 1.0)
        if depth_noise > 0.0:
            depth = np.maximum(
                depth * (1.0 + rng.normal(0.0, depth_noise, depth.shape)), 0.0)
        frames.append(RGBDFrame(color=color, depth=depth,
                                gt_pose_c2w=np.asarray(pose, float).copy(),
                                timestamp=i / fps))
    return RGBDSequence(name=name, intrinsics=intrinsics, frames=frames,
                        gt_cloud=gt_cloud)
