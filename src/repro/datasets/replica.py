"""Replica-like synthetic sequences.

The Replica dataset has eight indoor sequences (room0-2, office0-4) of
slow, smooth camera motion with clean depth.  We synthesize one procedural
room per sequence name — distinct seed, extent, texture frequency, and
trajectory — and render noiseless RGB-D along a smooth path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..gaussians.camera import Intrinsics
from .rgbd import RGBDSequence, render_sequence
from .scene import SceneSpec, make_room_scene
from .trajectory import orbit_trajectory, scan_trajectory

__all__ = ["REPLICA_SEQUENCES", "make_replica_sequence", "make_replica_suite"]

REPLICA_SEQUENCES = (
    "room0", "room1", "room2",
    "office0", "office1", "office2", "office3", "office4",
)

# Per-sequence scene/trajectory parameters: (seed, extent, texture_scale,
# furniture, trajectory kind).
_SEQUENCE_PARAMS = {
    "room0": (10, 3.5, 1.0, 3, "orbit"),
    "room1": (11, 4.0, 1.3, 2, "orbit"),
    "room2": (12, 3.0, 0.8, 4, "scan"),
    "office0": (20, 4.5, 1.1, 4, "orbit"),
    "office1": (21, 3.8, 0.9, 3, "scan"),
    "office2": (22, 4.2, 1.4, 5, "orbit"),
    "office3": (23, 3.6, 1.0, 3, "scan"),
    "office4": (24, 4.8, 1.2, 4, "orbit"),
}


def make_replica_sequence(
    name: str,
    n_frames: int = 30,
    width: int = 80,
    height: int = 60,
    surface_density: float = 14.0,
    intrinsics: Optional[Intrinsics] = None,
) -> RGBDSequence:
    """Build one replica-like sequence by name.

    Sizes default to a laptop-scale proxy of the 1200x680@2000-frame
    originals; all experiments scale them consistently.
    """
    if name not in _SEQUENCE_PARAMS:
        raise KeyError(
            f"unknown replica-like sequence {name!r}; "
            f"choose from {REPLICA_SEQUENCES}")
    seed, extent, tex, furniture, kind = _SEQUENCE_PARAMS[name]
    spec = SceneSpec(extent=extent, texture_scale=tex, furniture=furniture,
                     surface_density=surface_density, seed=seed)
    cloud = make_room_scene(spec)
    intr = intrinsics or Intrinsics.from_fov(width, height, 75.0)

    if kind == "orbit":
        # ~0.035 rad of orbit per frame: slow indoor motion comparable to
        # Replica's 2000-frame sweeps once scaled to our frame counts.
        poses = orbit_trajectory(
            n_frames, radius=0.35 * extent, look_radius=extent,
            height=-0.1, sweep=0.035 * n_frames, phase=seed * 0.7)
    else:
        rng = np.random.default_rng(seed)
        span = min(1.0, 0.02 * n_frames)
        start = np.array([-0.4 * extent * span, -0.1, -0.4 * extent * span])
        end = np.array([0.4 * extent * span, 0.0, 0.3 * extent * span])
        target = np.array([0.9 * extent * np.cos(seed),
                           0.0,
                           0.9 * extent * np.sin(seed)])
        poses = scan_trajectory(n_frames, start, end, target,
                                bob=0.03 + 0.01 * rng.random())
    return render_sequence(name, cloud, poses, intr)


def make_replica_suite(
    names: Optional[List[str]] = None, **kwargs
) -> List[RGBDSequence]:
    """Build several replica-like sequences (all eight by default)."""
    names = list(REPLICA_SEQUENCES) if names is None else names
    return [make_replica_sequence(n, **kwargs) for n in names]
