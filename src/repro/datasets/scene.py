"""Procedural ground-truth Gaussian scenes.

The paper evaluates on Replica and TUM RGB-D.  Neither is available
offline, so we synthesize indoor scenes as ground-truth Gaussian clouds —
a box room (floor, ceiling, four walls) with procedural textures plus
occluding furniture blocks — and render RGB-D frames from them with the
repository's own tile renderer.  This yields photometrically consistent
RGB-D with exact ground-truth trajectories, which is what the accuracy
metrics and the sampling algorithms need: texture-rich and texture-poor
regions, occlusions, and unseen-region growth as the camera moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gaussians.model import GaussianCloud

__all__ = ["SceneSpec", "make_room_scene", "checkerboard_color",
           "stripes_color", "noise_color"]


@dataclass(frozen=True)
class SceneSpec:
    """Parameters of a procedural room scene."""

    extent: float = 4.0          # room half-width (metres)
    height: float = 2.5          # room height
    surface_density: float = 14.0  # Gaussians per square metre of surface
    furniture: int = 3           # number of occluder boxes
    texture_scale: float = 1.0   # spatial frequency multiplier of textures
    opacity: float = 0.92
    seed: int = 0


def checkerboard_color(uv: np.ndarray, base: np.ndarray, alt: np.ndarray,
                       period: float) -> np.ndarray:
    """Checkerboard pattern over surface coordinates ``uv`` (N, 2)."""
    cells = np.floor(uv / period).astype(int)
    mask = ((cells[:, 0] + cells[:, 1]) % 2).astype(bool)
    return np.where(mask[:, None], alt[None, :], base[None, :])


def stripes_color(uv: np.ndarray, base: np.ndarray, alt: np.ndarray,
                  period: float) -> np.ndarray:
    """Vertical stripes over surface coordinates."""
    mask = (np.floor(uv[:, 0] / period).astype(int) % 2).astype(bool)
    return np.where(mask[:, None], alt[None, :], base[None, :])


def noise_color(uv: np.ndarray, base: np.ndarray, rng: np.random.Generator,
                amplitude: float = 0.25) -> np.ndarray:
    """Base color modulated by per-Gaussian noise (texture-rich clutter)."""
    noise = rng.uniform(-amplitude, amplitude, size=(uv.shape[0], 3))
    return np.clip(base[None, :] + noise, 0.0, 1.0)


def _sample_plane(rng: np.random.Generator, origin: np.ndarray,
                  axis_u: np.ndarray, axis_v: np.ndarray,
                  size_u: float, size_v: float, density: float):
    """Jittered-grid samples on a rectangle; returns (points, uv, spacing)."""
    n = max(1, int(density * size_u * size_v))
    side = max(1, int(np.sqrt(n * size_u / size_v)))
    rows = max(1, n // side)
    us = (np.arange(side) + 0.5) / side
    vs = (np.arange(rows) + 0.5) / rows
    uu, vv = np.meshgrid(us, vs)
    uv = np.stack([uu.ravel(), vv.ravel()], axis=-1)
    uv += rng.uniform(-0.4 / side, 0.4 / side, size=uv.shape)
    uv = np.clip(uv, 0.0, 1.0)
    scaled = uv * np.array([size_u, size_v])
    points = (origin[None, :]
              + scaled[:, 0:1] * axis_u[None, :]
              + scaled[:, 1:2] * axis_v[None, :])
    spacing = np.sqrt(size_u * size_v / uv.shape[0])
    return points, scaled, spacing


def make_room_scene(spec: SceneSpec) -> GaussianCloud:
    """Build a ground-truth room as an isotropic Gaussian cloud.

    World frame: x right, y down (floor at ``y = +height/2``), z forward.
    The room spans ``[-extent, extent]`` in x and z.  Walls carry
    checkerboard or stripe textures (texture-rich); the ceiling is nearly
    flat-colored (texture-poor) — both regimes matter for the samplers.
    """
    rng = np.random.default_rng(spec.seed)
    e, h = spec.extent, spec.height
    half_h = h / 2.0
    ts = spec.texture_scale

    palettes = [
        (np.array([0.75, 0.45, 0.30]), np.array([0.30, 0.45, 0.75])),
        (np.array([0.55, 0.70, 0.35]), np.array([0.85, 0.80, 0.55])),
        (np.array([0.65, 0.35, 0.55]), np.array([0.90, 0.85, 0.75])),
        (np.array([0.35, 0.55, 0.65]), np.array([0.80, 0.60, 0.40])),
    ]

    parts = []

    def add_surface(points, uv, spacing, colors):
        scales = np.full(points.shape[0], spacing * 0.75)
        opac = np.full(points.shape[0], spec.opacity)
        parts.append(GaussianCloud.create(points, scales, opac, colors))

    # Floor (checkerboard) and ceiling (flat, texture-poor).
    pts, uv, sp = _sample_plane(rng, np.array([-e, half_h, -e]),
                                np.array([1.0, 0, 0]), np.array([0, 0, 1.0]),
                                2 * e, 2 * e, spec.surface_density)
    add_surface(pts, uv, sp, checkerboard_color(
        uv, *palettes[0], period=0.8 / ts))
    pts, uv, sp = _sample_plane(rng, np.array([-e, -half_h, -e]),
                                np.array([1.0, 0, 0]), np.array([0, 0, 1.0]),
                                2 * e, 2 * e, spec.surface_density * 0.6)
    add_surface(pts, uv, sp, noise_color(
        uv, np.array([0.85, 0.85, 0.82]), rng, amplitude=0.03))

    # Four walls: two striped, two checkerboard.
    wall_defs = [
        (np.array([-e, -half_h, e]), np.array([1.0, 0, 0]),
         np.array([0, 1.0, 0]), 2 * e, h),       # back (+z)
        (np.array([-e, -half_h, -e]), np.array([1.0, 0, 0]),
         np.array([0, 1.0, 0]), 2 * e, h),       # front (-z)
        (np.array([-e, -half_h, -e]), np.array([0, 0, 1.0]),
         np.array([0, 1.0, 0]), 2 * e, h),       # left (-x)
        (np.array([e, -half_h, -e]), np.array([0, 0, 1.0]),
         np.array([0, 1.0, 0]), 2 * e, h),       # right (+x)
    ]
    for w, (origin, au, av, su, sv) in enumerate(wall_defs):
        pts, uv, sp = _sample_plane(rng, origin, au, av, su, sv,
                                    spec.surface_density)
        base, alt = palettes[w % len(palettes)]
        if w % 2 == 0:
            colors = checkerboard_color(uv, base, alt, period=0.6 / ts)
        else:
            colors = stripes_color(uv, base, alt, period=0.5 / ts)
        add_surface(pts, uv, sp, colors)

    # Furniture: boxes standing on the floor, creating occlusions.
    for f in range(spec.furniture):
        cx = rng.uniform(-0.55 * e, 0.55 * e)
        cz = rng.uniform(-0.55 * e, 0.55 * e)
        w_box = rng.uniform(0.4, 0.9)
        h_box = rng.uniform(0.5, 1.2)
        d_box = rng.uniform(0.4, 0.9)
        base_color = rng.uniform(0.2, 0.9, size=3)
        y_top = half_h - h_box
        faces = [
            (np.array([cx - w_box / 2, y_top, cz - d_box / 2]),
             np.array([1.0, 0, 0]), np.array([0, 0, 1.0]), w_box, d_box),
            (np.array([cx - w_box / 2, y_top, cz - d_box / 2]),
             np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), w_box, h_box),
            (np.array([cx - w_box / 2, y_top, cz + d_box / 2]),
             np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), w_box, h_box),
            (np.array([cx - w_box / 2, y_top, cz - d_box / 2]),
             np.array([0, 0, 1.0]), np.array([0, 1.0, 0]), d_box, h_box),
            (np.array([cx + w_box / 2, y_top, cz - d_box / 2]),
             np.array([0, 0, 1.0]), np.array([0, 1.0, 0]), d_box, h_box),
        ]
        for origin, au, av, su, sv in faces:
            pts, uv, sp = _sample_plane(rng, origin, au, av, su, sv,
                                        spec.surface_density * 1.4)
            add_surface(pts, uv, sp, noise_color(uv, base_color, rng))

    cloud = parts[0]
    for part in parts[1:]:
        cloud = cloud.extend(part)
    return cloud
