"""TUM-RGB-D-like synthetic sequences.

TUM RGB-D is a hand-held real-world dataset: fast, jerky camera motion and
noisy depth.  We reuse the procedural rooms but drive them with perturbed
trajectories and inject sensor noise, giving the harder regime in which
the paper reports larger ATEs (Fig. 18).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..gaussians.camera import Intrinsics
from .rgbd import RGBDSequence, render_sequence
from .scene import SceneSpec, make_room_scene
from .trajectory import orbit_trajectory, perturb_trajectory

__all__ = ["TUM_SEQUENCES", "make_tum_sequence", "make_tum_suite"]

TUM_SEQUENCES = ("fr1_desk", "fr2_xyz", "fr3_office")

# (seed, extent, texture_scale, furniture, trans jitter, rot jitter,
#  depth noise, color noise)
_SEQUENCE_PARAMS = {
    "fr1_desk": (31, 3.0, 1.2, 4, 0.012, 0.010, 0.01, 0.01),
    "fr2_xyz": (32, 3.4, 0.9, 2, 0.008, 0.006, 0.008, 0.008),
    "fr3_office": (33, 4.2, 1.1, 5, 0.015, 0.012, 0.012, 0.012),
}


def make_tum_sequence(
    name: str,
    n_frames: int = 30,
    width: int = 80,
    height: int = 60,
    surface_density: float = 14.0,
    intrinsics: Optional[Intrinsics] = None,
) -> RGBDSequence:
    """Build one tum-like sequence by name."""
    if name not in _SEQUENCE_PARAMS:
        raise KeyError(
            f"unknown tum-like sequence {name!r}; choose from {TUM_SEQUENCES}")
    (seed, extent, tex, furniture, t_jit, r_jit,
     depth_noise, color_noise) = _SEQUENCE_PARAMS[name]
    spec = SceneSpec(extent=extent, texture_scale=tex, furniture=furniture,
                     surface_density=surface_density, seed=seed)
    cloud = make_room_scene(spec)
    intr = intrinsics or Intrinsics.from_fov(width, height, 75.0)

    rng = np.random.default_rng(seed)
    # Faster per-frame motion than the replica-like sequences (hand-held).
    poses = orbit_trajectory(
        n_frames, radius=0.3 * extent, look_radius=extent,
        height=-0.05, sweep=0.06 * n_frames, phase=seed)
    poses = perturb_trajectory(poses, rng, trans_sigma=t_jit, rot_sigma=r_jit)
    return render_sequence(name, cloud, poses, intr,
                           color_noise=color_noise, depth_noise=depth_noise,
                           rng=rng)


def make_tum_suite(names: Optional[List[str]] = None,
                   **kwargs) -> List[RGBDSequence]:
    """Build several tum-like sequences (all three by default)."""
    names = list(TUM_SEQUENCES) if names is None else names
    return [make_tum_sequence(n, **kwargs) for n in names]
