"""Initialization of new Gaussians from RGB-D observations.

Used by the mapper's densification step (Sec. II-A): pixels flagged for
densification are back-projected with their measured depth and seeded as
new Gaussians, SplaTAM-style, with a scale matched to the pixel footprint
at that depth so neighbouring seeds tile the surface.
"""

from __future__ import annotations

import numpy as np

from .camera import Camera
from .model import GaussianCloud

__all__ = ["seed_from_rgbd"]


def seed_from_rgbd(
    camera: Camera,
    color_image: np.ndarray,
    depth_image: np.ndarray,
    pixels: np.ndarray,
    initial_opacity: float = 0.7,
    scale_factor: float = 1.0,
) -> GaussianCloud:
    """Create new Gaussians at ``pixels`` of an RGB-D frame.

    Parameters
    ----------
    camera:
        The posed camera that observed the frame.
    color_image:
        ``(H, W, 3)`` RGB in [0, 1].
    depth_image:
        ``(H, W)`` metric depth; non-positive entries are skipped.
    pixels:
        ``(K, 2)`` integer ``(u, v)`` pixel coordinates to seed from.
    initial_opacity:
        Opacity assigned to every seed.
    scale_factor:
        Multiplier on the pixel-footprint-matched scale; >1 makes seeds
        overlap more (fewer holes, blurrier), <1 the opposite.

    Returns
    -------
    A :class:`GaussianCloud` of the seeded Gaussians (possibly empty).
    """
    pixels = np.atleast_2d(np.asarray(pixels, dtype=int))
    if pixels.size == 0:
        return GaussianCloud.empty()
    u = np.clip(pixels[:, 0], 0, camera.intrinsics.width - 1)
    v = np.clip(pixels[:, 1], 0, camera.intrinsics.height - 1)
    depth = np.asarray(depth_image, dtype=float)[v, u]
    valid = depth > 1e-6
    if not np.any(valid):
        return GaussianCloud.empty()
    u, v, depth = u[valid], v[valid], depth[valid]

    centres = np.stack([u + 0.5, v + 0.5], axis=-1)
    p_cam = camera.intrinsics.backproject(centres, depth)
    p_world = p_cam @ camera.pose_c2w[:3, :3].T + camera.pose_c2w[:3, 3]

    colors = np.asarray(color_image, dtype=float)[v, u]
    # One-pixel footprint at depth z spans z / f metres.
    mean_focal = 0.5 * (camera.intrinsics.fx + camera.intrinsics.fy)
    scales = scale_factor * depth / mean_focal
    opacities = np.full(len(depth), initial_opacity)
    return GaussianCloud.create(p_world, scales, opacities, colors)
