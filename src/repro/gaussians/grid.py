"""Uniform voxel grid over a Gaussian cloud: coarse spatial queries.

At the paper's deployment point the map holds hundreds of thousands of
Gaussians; projecting every one of them each iteration to discover the
in-frustum subset is wasteful.  A uniform grid keyed on quantized means
lets the projection stage fetch only the cells that intersect the view
frustum — the "coarse spatial structure" assumption behind the hardware
models' parameter-streaming traffic.

The grid is conservative: a frustum query returns a superset of the truly
visible Gaussians (cells are tested by their bounding spheres against the
frustum planes), never a subset, so rendering through it is lossless.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .camera import Camera

__all__ = ["VoxelGrid", "frustum_planes"]


def frustum_planes(camera: Camera, near: float = 0.01,
                   far: float = 100.0) -> np.ndarray:
    """Inward-pointing frustum planes ``(6, 4)`` as ``(n, d)``: n.x + d >= 0.

    Planes: near, far, left, right, top, bottom, in world coordinates.
    """
    intr = camera.intrinsics
    c2w = camera.pose_c2w
    R, t = c2w[:3, :3], c2w[:3, 3]

    # Camera-frame half-angles of the image edges.
    tan_l = intr.cx / intr.fx
    tan_r = (intr.width - intr.cx) / intr.fx
    tan_t = intr.cy / intr.fy
    tan_b = (intr.height - intr.cy) / intr.fy

    # Camera-frame plane normals (pointing inside the frustum).
    normals_cam = [
        np.array([0.0, 0.0, 1.0]),                 # near: z >= near
        np.array([0.0, 0.0, -1.0]),                # far:  z <= far
        _normalize(np.array([1.0, 0.0, tan_l])),   # left edge
        _normalize(np.array([-1.0, 0.0, tan_r])),  # right edge
        _normalize(np.array([0.0, 1.0, tan_t])),   # top edge (y down)
        _normalize(np.array([0.0, -1.0, tan_b])),  # bottom edge
    ]
    offsets_cam = [-near, far, 0.0, 0.0, 0.0, 0.0]

    planes = np.empty((6, 4))
    for i, (n_cam, d_cam) in enumerate(zip(normals_cam, offsets_cam)):
        n_world = R @ n_cam
        # n_cam . p_cam + d >= 0 with p_cam = R^T (p - t).
        planes[i, :3] = n_world
        planes[i, 3] = d_cam - n_world @ t
    return planes


def _normalize(v: np.ndarray) -> np.ndarray:
    return v / np.linalg.norm(v)


@dataclass
class VoxelGrid:
    """Hash grid of Gaussian indices keyed by quantized means."""

    cell_size: float
    cells: Dict[Tuple[int, int, int], np.ndarray] = field(default_factory=dict)
    # Per-cell conservative bounding radius: half diagonal + max splat extent.
    pad_radius: float = 0.0

    @classmethod
    def build(cls, means: np.ndarray, cell_size: float,
              max_extent: float = 0.0) -> "VoxelGrid":
        """Index ``(N, 3)`` means; ``max_extent`` pads queries for splat size."""
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        means = np.atleast_2d(np.asarray(means, dtype=float))
        keys = np.floor(means / cell_size).astype(int)
        buckets: Dict[Tuple[int, int, int], List[int]] = defaultdict(list)
        for i, key in enumerate(map(tuple, keys)):
            buckets[key].append(i)
        cells = {k: np.asarray(v, dtype=int) for k, v in buckets.items()}
        pad = cell_size * np.sqrt(3.0) / 2.0 + float(max_extent)
        return cls(cell_size=cell_size, cells=cells, pad_radius=pad)

    @property
    def num_indexed(self) -> int:
        return int(sum(len(v) for v in self.cells.values()))

    def _cell_centres(self) -> Tuple[np.ndarray, List[np.ndarray]]:
        keys = np.array(list(self.cells.keys()), dtype=float)
        centres = (keys + 0.5) * self.cell_size
        return centres, list(self.cells.values())

    def query_frustum(self, camera: Camera, near: float = 0.01,
                      far: float = 100.0) -> np.ndarray:
        """Indices of Gaussians in cells intersecting the view frustum.

        Conservative: tests each cell's bounding sphere against the six
        frustum planes, so the result is a superset of the visible set.
        """
        if not self.cells:
            return np.zeros(0, dtype=int)
        planes = frustum_planes(camera, near, far)
        centres, index_lists = self._cell_centres()
        signed = centres @ planes[:, :3].T + planes[None, :, 3]
        inside = np.all(signed >= -self.pad_radius, axis=1)
        if not np.any(inside):
            return np.zeros(0, dtype=int)
        picked = [index_lists[i] for i in np.nonzero(inside)[0]]
        return np.sort(np.concatenate(picked))

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of Gaussians within ``radius`` cells of ``point``.

        Conservative at cell granularity (returns whole cells whose centre
        lies within ``radius + pad``).
        """
        if not self.cells:
            return np.zeros(0, dtype=int)
        point = np.asarray(point, dtype=float)
        centres, index_lists = self._cell_centres()
        close = np.linalg.norm(centres - point, axis=1) <= radius + self.pad_radius
        if not np.any(close):
            return np.zeros(0, dtype=int)
        picked = [index_lists[i] for i in np.nonzero(close)[0]]
        return np.sort(np.concatenate(picked))
