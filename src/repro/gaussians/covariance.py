"""Anisotropic covariance math for full 3DGS Gaussians.

The SLAM stack follows SplaTAM and uses isotropic Gaussians, but the
original 3DGS representation (and MonoGS-style systems) parameterize each
Gaussian with a full 3D covariance ``Sigma = R diag(s^2) R^T`` built from
a unit quaternion and per-axis scales.  This module provides that algebra
with analytic derivatives, consumed by :mod:`repro.render.anisotropic`:

- :func:`build_covariance` — ``(q, s) -> Sigma`` (N, 3, 3);
- :func:`covariance_gradients` — pull a ``dL/dSigma`` back to
  ``dL/d log s`` and ``dL/dq``;
- :func:`quat_rotation_derivatives` — ``dR/dq_i`` for unit-normalized
  quaternions (the normalization Jacobian is included).
"""

from __future__ import annotations

import numpy as np

from .se3 import quat_to_rotmat

__all__ = ["build_covariance", "quat_rotation_derivatives",
           "covariance_gradients"]


def build_covariance(quaternions: np.ndarray,
                     scales: np.ndarray) -> np.ndarray:
    """``Sigma = R diag(s^2) R^T`` for ``(N, 4)`` quats and ``(N, 3)`` scales."""
    R = quat_to_rotmat(quaternions)
    s2 = np.asarray(scales, dtype=float) ** 2
    return np.einsum("nij,nj,nkj->nik", R, s2, R)


def _raw_rotation_derivatives(q: np.ndarray):
    """``dR/dq_i`` of the *unnormalized* quaternion-to-matrix map.

    For the normalized map used by :func:`repro.gaussians.quat_to_rotmat`,
    chain with the normalization Jacobian (see
    :func:`quat_rotation_derivatives`).  Input is a unit quaternion
    ``(w, x, y, z)``; returns ``(4, 3, 3)``.
    """
    w, x, y, z = q
    dw = 2 * np.array([
        [0.0, -z, y],
        [z, 0.0, -x],
        [-y, x, 0.0],
    ])
    dx = 2 * np.array([
        [0.0, y, z],
        [y, -2 * x, -w],
        [z, w, -2 * x],
    ])
    dy = 2 * np.array([
        [-2 * y, x, w],
        [x, 0.0, z],
        [-w, z, -2 * y],
    ])
    dz = 2 * np.array([
        [-2 * z, -w, x],
        [w, -2 * z, y],
        [x, y, 0.0],
    ])
    return np.stack([dw, dx, dy, dz])


def quat_rotation_derivatives(quaternions: np.ndarray) -> np.ndarray:
    """``dR/dq`` of the normalized map, shape ``(N, 4, 3, 3)``.

    Because rendering normalizes quaternions first, the derivative w.r.t.
    the *stored* quaternion includes the projection onto the unit sphere:
    ``dR/dq_stored = (I - qq^T)/|q| . dR/dq_unit``.
    """
    q = np.atleast_2d(np.asarray(quaternions, dtype=float))
    n = q.shape[0]
    out = np.empty((n, 4, 3, 3))
    for i in range(n):
        norm = np.linalg.norm(q[i])
        unit = q[i] / norm
        raw = _raw_rotation_derivatives(unit)          # (4, 3, 3)
        proj = (np.eye(4) - np.outer(unit, unit)) / norm
        out[i] = np.einsum("ab,bij->aij", proj, raw)
    return out


def covariance_gradients(quaternions: np.ndarray, scales: np.ndarray,
                         d_sigma: np.ndarray):
    """Pull ``dL/dSigma`` back to the covariance parameters.

    Parameters
    ----------
    quaternions, scales:
        ``(N, 4)`` and ``(N, 3)`` covariance parameters.
    d_sigma:
        ``(N, 3, 3)`` loss gradients w.r.t. the covariance matrices (will
        be symmetrized; only the symmetric part is observable).

    Returns
    -------
    ``(d_log_scales, d_quaternions)`` of shapes ``(N, 3)`` and ``(N, 4)``.
    """
    q = np.atleast_2d(np.asarray(quaternions, dtype=float))
    s = np.atleast_2d(np.asarray(scales, dtype=float))
    G = np.asarray(d_sigma, dtype=float)
    G = 0.5 * (G + np.swapaxes(G, -1, -2))

    R = quat_to_rotmat(q)
    # d Sigma / d s_k = R (d diag(s^2)/d s_k) R^T  =>
    # dL/d s_k = 2 s_k (R^T G R)_kk ; log-scale chain adds another s_k.
    RtGR = np.einsum("nji,njk,nkl->nil", R, G, R)
    diag = np.einsum("nii->ni", RtGR)
    d_log_scales = 2.0 * (s ** 2) * diag

    # d Sigma / d q_a = dR_a S2 R^T + R S2 dR_a^T  (S2 = diag(s^2));
    # with G symmetric:  dL/d q_a = 2 tr(G dR_a S2 R^T).
    dR = quat_rotation_derivatives(q)                   # (N, 4, 3, 3)
    S2Rt = (s ** 2)[:, :, None] * np.swapaxes(R, -1, -2)  # (N, 3, 3)
    M = np.einsum("nij,najk->naik", G, dR)              # G dR_a
    d_quats = 2.0 * np.einsum("naik,nki->na", M, S2Rt)
    return d_log_scales, d_quats
