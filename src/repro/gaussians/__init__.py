"""Geometric substrate: rigid-body math, cameras, and the Gaussian map."""

from .camera import Camera, Intrinsics
from .covariance import build_covariance, covariance_gradients
from .grid import VoxelGrid, frustum_planes
from .init import seed_from_rgbd
from .model import GaussianCloud, inverse_sigmoid, sigmoid
from .se3 import (
    apply_se3,
    hat,
    point_jacobian_wrt_twist,
    quat_multiply,
    quat_normalize,
    quat_to_rotmat,
    random_rotation,
    relative_pose,
    rotmat_to_quat,
    se3_exp,
    se3_inverse,
    se3_log,
    so3_exp,
    so3_log,
    vee,
)

__all__ = [
    "Camera",
    "Intrinsics",
    "build_covariance",
    "covariance_gradients",
    "VoxelGrid",
    "frustum_planes",
    "GaussianCloud",
    "seed_from_rgbd",
    "sigmoid",
    "inverse_sigmoid",
    "apply_se3",
    "hat",
    "vee",
    "so3_exp",
    "so3_log",
    "se3_exp",
    "se3_log",
    "se3_inverse",
    "relative_pose",
    "point_jacobian_wrt_twist",
    "quat_to_rotmat",
    "rotmat_to_quat",
    "quat_multiply",
    "quat_normalize",
    "random_rotation",
]
