"""Rigid-body (SE(3)) and rotation math used throughout the SLAM stack.

Camera poses are stored as 4x4 homogeneous matrices mapping *camera-frame*
points to *world-frame* points (camera-to-world, the SLAM convention of
SplaTAM and MonoGS).  The tracker optimizes a local twist ``xi`` in the
tangent space at the current estimate: ``T <- T @ exp(xi)`` for a
right-multiplicative update, which keeps the Jacobians of camera-frame
points simple (see :func:`point_jacobian_wrt_twist`).

Twist layout is ``xi = (rho, phi)`` — translation first, rotation second —
matching the common robotics convention (Barfoot, "State Estimation for
Robotics").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hat",
    "vee",
    "so3_exp",
    "so3_log",
    "se3_exp",
    "se3_log",
    "se3_inverse",
    "quat_to_rotmat",
    "rotmat_to_quat",
    "quat_multiply",
    "quat_normalize",
    "random_rotation",
    "point_jacobian_wrt_twist",
    "apply_se3",
    "relative_pose",
]

_EPS = 1e-12


def hat(phi: np.ndarray) -> np.ndarray:
    """Return the 3x3 skew-symmetric matrix of a 3-vector.

    ``hat(a) @ b == cross(a, b)`` for all 3-vectors ``b``.
    """
    x, y, z = np.asarray(phi, dtype=float)
    return np.array([
        [0.0, -z, y],
        [z, 0.0, -x],
        [-y, x, 0.0],
    ])


def vee(m: np.ndarray) -> np.ndarray:
    """Inverse of :func:`hat`: extract the 3-vector from a skew matrix."""
    m = np.asarray(m, dtype=float)
    return np.array([m[2, 1], m[0, 2], m[1, 0]])


def so3_exp(phi: np.ndarray) -> np.ndarray:
    """Rodrigues' formula: map an axis-angle vector to a rotation matrix."""
    phi = np.asarray(phi, dtype=float)
    theta = float(np.linalg.norm(phi))
    K = hat(phi)
    if theta < 1e-8:
        # Second-order Taylor expansion is exact to machine precision here.
        return np.eye(3) + K + 0.5 * (K @ K)
    a = np.sin(theta) / theta
    b = (1.0 - np.cos(theta)) / (theta * theta)
    return np.eye(3) + a * K + b * (K @ K)


def so3_log(R: np.ndarray) -> np.ndarray:
    """Map a rotation matrix to its axis-angle vector (inverse of exp)."""
    R = np.asarray(R, dtype=float)
    cos_theta = np.clip((np.trace(R) - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < 1e-8:
        return vee(R - R.T) / 2.0
    if abs(np.pi - theta) < 1e-6:
        # Near pi the standard formula is singular; recover the axis from
        # the symmetric part R + I = 2 (axis axis^T) (1 - cos) / ... .
        B = (R + np.eye(3)) / 2.0
        axis = np.sqrt(np.maximum(np.diag(B), 0.0))
        # Fix signs using the off-diagonals.
        if B[0, 1] < 0:
            axis[1] = -axis[1]
        if B[0, 2] < 0:
            axis[2] = -axis[2]
        if axis[0] == 0.0 and B[1, 2] < 0:
            axis[2] = -axis[2]
        n = np.linalg.norm(axis)
        if n < _EPS:
            return np.zeros(3)
        return theta * axis / n
    return theta * vee(R - R.T) / (2.0 * np.sin(theta))


def _left_jacobian(phi: np.ndarray) -> np.ndarray:
    """Left Jacobian of SO(3), used by the SE(3) exponential."""
    theta = float(np.linalg.norm(phi))
    K = hat(phi)
    if theta < 1e-8:
        return np.eye(3) + 0.5 * K + (K @ K) / 6.0
    a = (1.0 - np.cos(theta)) / (theta * theta)
    b = (theta - np.sin(theta)) / (theta ** 3)
    return np.eye(3) + a * K + b * (K @ K)


def _left_jacobian_inv(phi: np.ndarray) -> np.ndarray:
    theta = float(np.linalg.norm(phi))
    K = hat(phi)
    if theta < 1e-8:
        return np.eye(3) - 0.5 * K + (K @ K) / 12.0
    half = theta / 2.0
    cot = 1.0 / np.tan(half)
    b = (1.0 - half * cot) / (theta * theta)
    return np.eye(3) - 0.5 * K + b * (K @ K)


def se3_exp(xi: np.ndarray) -> np.ndarray:
    """Exponential map from a twist ``(rho, phi)`` to a 4x4 transform."""
    xi = np.asarray(xi, dtype=float).reshape(6)
    rho, phi = xi[:3], xi[3:]
    T = np.eye(4)
    T[:3, :3] = so3_exp(phi)
    T[:3, 3] = _left_jacobian(phi) @ rho
    return T


def se3_log(T: np.ndarray) -> np.ndarray:
    """Logarithm map from a 4x4 transform to its twist ``(rho, phi)``."""
    T = np.asarray(T, dtype=float)
    phi = so3_log(T[:3, :3])
    rho = _left_jacobian_inv(phi) @ T[:3, 3]
    return np.concatenate([rho, phi])


def se3_inverse(T: np.ndarray) -> np.ndarray:
    """Invert a rigid transform without a general matrix inverse."""
    T = np.asarray(T, dtype=float)
    R = T[:3, :3]
    out = np.eye(4)
    out[:3, :3] = R.T
    out[:3, 3] = -R.T @ T[:3, 3]
    return out


def apply_se3(T: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Transform an (N, 3) array of points by a 4x4 rigid transform."""
    points = np.asarray(points, dtype=float)
    return points @ T[:3, :3].T + T[:3, 3]


def relative_pose(T_a: np.ndarray, T_b: np.ndarray) -> np.ndarray:
    """Return the transform taking frame ``a`` to frame ``b``: ``inv(a) @ b``."""
    return se3_inverse(T_a) @ T_b


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Normalize quaternions (``(..., 4)``, w-x-y-z order) to unit length."""
    q = np.asarray(q, dtype=float)
    norm = np.linalg.norm(q, axis=-1, keepdims=True)
    return q / np.maximum(norm, _EPS)


def quat_to_rotmat(q: np.ndarray) -> np.ndarray:
    """Convert unit quaternions ``(..., 4)`` (w, x, y, z) to rotation matrices."""
    q = quat_normalize(q)
    w, x, y, z = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    R = np.empty(q.shape[:-1] + (3, 3))
    R[..., 0, 0] = 1 - 2 * (y * y + z * z)
    R[..., 0, 1] = 2 * (x * y - w * z)
    R[..., 0, 2] = 2 * (x * z + w * y)
    R[..., 1, 0] = 2 * (x * y + w * z)
    R[..., 1, 1] = 1 - 2 * (x * x + z * z)
    R[..., 1, 2] = 2 * (y * z - w * x)
    R[..., 2, 0] = 2 * (x * z - w * y)
    R[..., 2, 1] = 2 * (y * z + w * x)
    R[..., 2, 2] = 1 - 2 * (x * x + y * y)
    return R


def rotmat_to_quat(R: np.ndarray) -> np.ndarray:
    """Convert a single 3x3 rotation matrix to a unit quaternion (w,x,y,z)."""
    R = np.asarray(R, dtype=float)
    trace = np.trace(R)
    if trace > 0.0:
        s = np.sqrt(trace + 1.0) * 2.0
        q = np.array([
            0.25 * s,
            (R[2, 1] - R[1, 2]) / s,
            (R[0, 2] - R[2, 0]) / s,
            (R[1, 0] - R[0, 1]) / s,
        ])
    elif R[0, 0] > R[1, 1] and R[0, 0] > R[2, 2]:
        s = np.sqrt(1.0 + R[0, 0] - R[1, 1] - R[2, 2]) * 2.0
        q = np.array([
            (R[2, 1] - R[1, 2]) / s,
            0.25 * s,
            (R[0, 1] + R[1, 0]) / s,
            (R[0, 2] + R[2, 0]) / s,
        ])
    elif R[1, 1] > R[2, 2]:
        s = np.sqrt(1.0 + R[1, 1] - R[0, 0] - R[2, 2]) * 2.0
        q = np.array([
            (R[0, 2] - R[2, 0]) / s,
            (R[0, 1] + R[1, 0]) / s,
            0.25 * s,
            (R[1, 2] + R[2, 1]) / s,
        ])
    else:
        s = np.sqrt(1.0 + R[2, 2] - R[0, 0] - R[1, 1]) * 2.0
        q = np.array([
            (R[1, 0] - R[0, 1]) / s,
            (R[0, 2] + R[2, 0]) / s,
            (R[1, 2] + R[2, 1]) / s,
            0.25 * s,
        ])
    return quat_normalize(q)


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product of quaternions in (w, x, y, z) order."""
    w1, x1, y1, z1 = np.moveaxis(np.asarray(q1, dtype=float), -1, 0)
    w2, x2, y2, z2 = np.moveaxis(np.asarray(q2, dtype=float), -1, 0)
    return np.stack([
        w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
        w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
        w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
        w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
    ], axis=-1)


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Draw a uniformly random rotation matrix (via random quaternion)."""
    q = rng.normal(size=4)
    return quat_to_rotmat(quat_normalize(q))


def point_jacobian_wrt_twist(p_cam: np.ndarray) -> np.ndarray:
    """Jacobian of camera-frame points w.r.t. a right-multiplied twist.

    With pose update ``T_c2w <- T_c2w @ exp(xi)``, a world point ``p_w``
    maps to camera frame as ``p_c = exp(-xi) @ inv(T) @ p_w``, so the
    derivative of ``p_c`` with respect to ``xi`` at ``xi = 0`` is
    ``d p_c / d xi = [-I | hat(p_c)]`` (translation block first).

    Parameters
    ----------
    p_cam:
        ``(N, 3)`` points already expressed in the camera frame.

    Returns
    -------
    ``(N, 3, 6)`` array of Jacobians.
    """
    p_cam = np.asarray(p_cam, dtype=float)
    n = p_cam.shape[0]
    J = np.zeros((n, 3, 6))
    J[:, 0, 0] = -1.0
    J[:, 1, 1] = -1.0
    J[:, 2, 2] = -1.0
    x, y, z = p_cam[:, 0], p_cam[:, 1], p_cam[:, 2]
    # Rotation block: d p_c / d phi = hat(p_c), laid out column by column.
    J[:, 0, 4] = -z
    J[:, 0, 5] = y
    J[:, 1, 3] = z
    J[:, 1, 5] = -x
    J[:, 2, 3] = -y
    J[:, 2, 4] = x
    return J
