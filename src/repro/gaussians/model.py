"""The Gaussian map representation.

:class:`GaussianCloud` is a struct-of-arrays container for the trainable
scene parameters.  Following SplaTAM, Gaussians are *isotropic*: each has a
single log-scale, which makes the analytic gradients of the differentiable
rasterizer tractable while preserving the workload structure (the
performance models only care about pixel-Gaussian intersection counts, not
about covariance anisotropy).

Parameterization (all trainable):

- ``means``       ``(N, 3)`` world-space centres,
- ``log_scales``  ``(N,)``   ``scale = exp(log_scale)`` (metres),
- ``logit_opacities`` ``(N,)`` ``opacity = sigmoid(logit)``,
- ``colors``      ``(N, 3)`` RGB in [0, 1] (clamped at render time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GaussianCloud", "sigmoid", "inverse_sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def inverse_sigmoid(p: np.ndarray) -> np.ndarray:
    """Logit of ``p``; clipped away from {0, 1} for stability."""
    p = np.clip(np.asarray(p, dtype=float), 1e-6, 1.0 - 1e-6)
    return np.log(p / (1.0 - p))


@dataclass
class GaussianCloud:
    """Struct-of-arrays container for an isotropic 3D Gaussian scene."""

    means: np.ndarray
    log_scales: np.ndarray
    logit_opacities: np.ndarray
    colors: np.ndarray

    def __post_init__(self) -> None:
        self.means = np.atleast_2d(np.asarray(self.means, dtype=float))
        self.log_scales = np.atleast_1d(np.asarray(self.log_scales, dtype=float))
        self.logit_opacities = np.atleast_1d(
            np.asarray(self.logit_opacities, dtype=float))
        self.colors = np.atleast_2d(np.asarray(self.colors, dtype=float))
        n = self.means.shape[0]
        if self.means.shape != (n, 3):
            raise ValueError("means must have shape (N, 3)")
        if self.log_scales.shape != (n,):
            raise ValueError("log_scales must have shape (N,)")
        if self.logit_opacities.shape != (n,):
            raise ValueError("logit_opacities must have shape (N,)")
        if self.colors.shape != (n, 3):
            raise ValueError("colors must have shape (N, 3)")

    def __len__(self) -> int:
        return self.means.shape[0]

    @classmethod
    def empty(cls) -> "GaussianCloud":
        return cls(
            means=np.zeros((0, 3)),
            log_scales=np.zeros((0,)),
            logit_opacities=np.zeros((0,)),
            colors=np.zeros((0, 3)),
        )

    @classmethod
    def create(
        cls,
        means: np.ndarray,
        scales: np.ndarray,
        opacities: np.ndarray,
        colors: np.ndarray,
    ) -> "GaussianCloud":
        """Construct from *natural* parameters (scales, opacities in [0,1])."""
        scales = np.atleast_1d(np.asarray(scales, dtype=float))
        return cls(
            means=means,
            log_scales=np.log(np.maximum(scales, 1e-8)),
            logit_opacities=inverse_sigmoid(opacities),
            colors=colors,
        )

    @property
    def scales(self) -> np.ndarray:
        """Scales in metres: ``exp(log_scales)``."""
        return np.exp(self.log_scales)

    @property
    def opacities(self) -> np.ndarray:
        """Opacities in (0, 1): ``sigmoid(logit_opacities)``."""
        return sigmoid(self.logit_opacities)

    def copy(self) -> "GaussianCloud":
        return GaussianCloud(
            means=self.means.copy(),
            log_scales=self.log_scales.copy(),
            logit_opacities=self.logit_opacities.copy(),
            colors=self.colors.copy(),
        )

    def subset(self, index: np.ndarray) -> "GaussianCloud":
        """Return a new cloud containing only the indexed Gaussians."""
        return GaussianCloud(
            means=self.means[index],
            log_scales=self.log_scales[index],
            logit_opacities=self.logit_opacities[index],
            colors=self.colors[index],
        )

    def extend(self, other: "GaussianCloud") -> "GaussianCloud":
        """Return a new cloud with ``other``'s Gaussians appended."""
        return GaussianCloud(
            means=np.concatenate([self.means, other.means], axis=0),
            log_scales=np.concatenate([self.log_scales, other.log_scales]),
            logit_opacities=np.concatenate(
                [self.logit_opacities, other.logit_opacities]),
            colors=np.concatenate([self.colors, other.colors], axis=0),
        )

    def prune(self, keep: np.ndarray) -> "GaussianCloud":
        """Alias of :meth:`subset` with a boolean mask, reading as intent."""
        keep = np.asarray(keep, dtype=bool)
        return self.subset(np.nonzero(keep)[0])

    # ---- flat parameter vector interface (used by the optimizers) ----

    PARAM_KEYS = ("means", "log_scales", "logit_opacities", "colors")

    def pack(self) -> np.ndarray:
        """Flatten all trainable parameters into a single vector."""
        return np.concatenate([
            self.means.ravel(),
            self.log_scales,
            self.logit_opacities,
            self.colors.ravel(),
        ])

    def unpack(self, vector: np.ndarray) -> "GaussianCloud":
        """Inverse of :meth:`pack` with this cloud's shapes."""
        n = len(self)
        vector = np.asarray(vector, dtype=float)
        expected = 3 * n + n + n + 3 * n
        if vector.shape != (expected,):
            raise ValueError(
                f"parameter vector has {vector.shape}, expected ({expected},)")
        means = vector[:3 * n].reshape(n, 3)
        log_scales = vector[3 * n:4 * n]
        logit_opacities = vector[4 * n:5 * n]
        colors = vector[5 * n:].reshape(n, 3)
        return GaussianCloud(means, log_scales, logit_opacities, colors)
