"""Pinhole camera model.

The camera pose is camera-to-world (``T_c2w``); :meth:`Camera.world_to_camera`
applies the inverse.  Image coordinates follow the usual computer-vision
convention: ``u`` grows rightwards (columns), ``v`` grows downwards (rows),
and the pixel centre of column ``u`` / row ``v`` is at ``(u + 0.5, v + 0.5)``
in continuous coordinates.  The camera looks down its +z axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .se3 import se3_inverse

__all__ = ["Intrinsics", "Camera"]


@dataclass(frozen=True)
class Intrinsics:
    """Pinhole intrinsics for an image of ``width`` x ``height`` pixels."""

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")

    @classmethod
    def from_fov(cls, width: int, height: int, fov_x_deg: float = 70.0) -> "Intrinsics":
        """Build intrinsics from a horizontal field of view in degrees."""
        fov = np.deg2rad(fov_x_deg)
        fx = width / (2.0 * np.tan(fov / 2.0))
        return cls(width=width, height=height, fx=fx, fy=fx,
                   cx=width / 2.0, cy=height / 2.0)

    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 calibration matrix K."""
        return np.array([
            [self.fx, 0.0, self.cx],
            [0.0, self.fy, self.cy],
            [0.0, 0.0, 1.0],
        ])

    def scaled(self, factor: float) -> "Intrinsics":
        """Return intrinsics for an image resized by ``factor``.

        Used by the low-resolution sampling baseline (Fig. 10).
        """
        return Intrinsics(
            width=max(1, int(round(self.width * factor))),
            height=max(1, int(round(self.height * factor))),
            fx=self.fx * factor,
            fy=self.fy * factor,
            cx=self.cx * factor,
            cy=self.cy * factor,
        )

    def project(self, p_cam: np.ndarray) -> np.ndarray:
        """Project camera-frame points ``(N, 3)`` to pixel coordinates ``(N, 2)``.

        No clipping is performed; callers must cull points behind the camera.
        """
        p_cam = np.asarray(p_cam, dtype=float)
        z = p_cam[:, 2]
        u = self.fx * p_cam[:, 0] / z + self.cx
        v = self.fy * p_cam[:, 1] / z + self.cy
        return np.stack([u, v], axis=-1)

    def backproject(self, pixels: np.ndarray, depth: np.ndarray) -> np.ndarray:
        """Lift pixel coordinates ``(N, 2)`` with depths ``(N,)`` to camera frame."""
        pixels = np.asarray(pixels, dtype=float)
        depth = np.asarray(depth, dtype=float)
        x = (pixels[:, 0] - self.cx) / self.fx * depth
        y = (pixels[:, 1] - self.cy) / self.fy * depth
        return np.stack([x, y, depth], axis=-1)

    def pixel_grid(self) -> np.ndarray:
        """Return ``(H, W, 2)`` continuous coordinates of all pixel centres."""
        us = np.arange(self.width) + 0.5
        vs = np.arange(self.height) + 0.5
        uu, vv = np.meshgrid(us, vs)
        return np.stack([uu, vv], axis=-1)


@dataclass
class Camera:
    """A posed pinhole camera: intrinsics plus a camera-to-world transform."""

    intrinsics: Intrinsics
    pose_c2w: np.ndarray = field(default_factory=lambda: np.eye(4))

    def __post_init__(self) -> None:
        self.pose_c2w = np.asarray(self.pose_c2w, dtype=float)
        if self.pose_c2w.shape != (4, 4):
            raise ValueError("pose must be a 4x4 matrix")

    @property
    def pose_w2c(self) -> np.ndarray:
        return se3_inverse(self.pose_c2w)

    @property
    def position(self) -> np.ndarray:
        """Camera centre in world coordinates."""
        return self.pose_c2w[:3, 3].copy()

    def world_to_camera(self, p_world: np.ndarray) -> np.ndarray:
        """Map world points ``(N, 3)`` into the camera frame."""
        p_world = np.asarray(p_world, dtype=float)
        w2c = self.pose_w2c
        return p_world @ w2c[:3, :3].T + w2c[:3, 3]

    def with_pose(self, pose_c2w: np.ndarray) -> "Camera":
        """Return a copy of this camera at a different pose."""
        return replace(self, pose_c2w=np.asarray(pose_c2w, dtype=float).copy())

    def copy(self) -> "Camera":
        return self.with_pose(self.pose_c2w)
