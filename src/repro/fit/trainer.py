"""Multi-view 3DGS scene fitting (the training substrate under SLAM).

SLAM's mapper is a streaming special case of plain 3DGS training: fit a
Gaussian cloud to a set of posed RGB(-D) views by gradient descent.  This
module provides that general trainer for **both** cloud representations —
the isotropic :class:`~repro.gaussians.GaussianCloud` and the
full-covariance :class:`~repro.render.AnisotropicCloud` — rendering through
the sparse pixel pipeline (a fresh one-per-tile lattice each epoch, so
coverage is stochastic but complete in expectation) and stepping all
parameters with Adam.

Typical use::

    views = [(camera, color, depth), ...]
    result = SceneFitter(cloud, views, FitConfig(iterations=200)).fit()
    result.cloud  # the fitted scene
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.pixel_pipeline import backward_sparse, render_sparse
from ..core.sampling import sample_tracking_pixels
from ..gaussians.camera import Camera
from ..gaussians.model import GaussianCloud
from ..render.anisotropic import (
    AnisotropicCloud,
    backward_sparse_anisotropic,
    render_sparse_anisotropic,
)
from ..slam.losses import LossConfig, rgbd_loss
from ..slam.optim import Adam

__all__ = ["FitConfig", "FitResult", "SceneFitter"]

View = Tuple[Camera, np.ndarray, Optional[np.ndarray]]


@dataclass(frozen=True)
class FitConfig:
    """Trainer hyper-parameters."""

    iterations: int = 200
    sample_tile: int = 2          # one training pixel per tile x tile
    loss: LossConfig = LossConfig(color_weight=1.0, depth_weight=0.3)
    lr_means: float = 2e-3
    lr_log_scales: float = 4e-3
    lr_quaternions: float = 4e-3   # anisotropic only
    lr_logit_opacities: float = 2e-2
    lr_colors: float = 1e-2
    # Prune Gaussians whose opacity collapses below this every
    # ``prune_every`` iterations (0 disables pruning).
    prune_opacity: float = 0.02
    prune_every: int = 0
    log_every: int = 0            # 0 silences progress printing
    seed: int = 0

    def with_overrides(self, **kwargs) -> "FitConfig":
        return replace(self, **kwargs)


@dataclass
class FitResult:
    """Fitted cloud plus the per-iteration loss history."""

    cloud: object
    losses: List[float] = field(default_factory=list)
    num_pruned: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _learning_rates(cloud, cfg: FitConfig) -> np.ndarray:
    n = len(cloud)
    if isinstance(cloud, AnisotropicCloud):
        return np.concatenate([
            np.full(3 * n, cfg.lr_means),
            np.full(3 * n, cfg.lr_log_scales),
            np.full(4 * n, cfg.lr_quaternions),
            np.full(n, cfg.lr_logit_opacities),
            np.full(3 * n, cfg.lr_colors),
        ])
    return np.concatenate([
        np.full(3 * n, cfg.lr_means),
        np.full(n, cfg.lr_log_scales),
        np.full(n, cfg.lr_logit_opacities),
        np.full(3 * n, cfg.lr_colors),
    ])


class SceneFitter:
    """Fits a Gaussian cloud to posed RGB(-D) views.

    Parameters
    ----------
    cloud:
        Initial :class:`GaussianCloud` or :class:`AnisotropicCloud`; the
        representation is detected and the matching renderer used.
    views:
        Sequence of ``(camera, color, depth)`` tuples.  ``depth`` may be
        ``None`` for photometric-only fitting (the depth-loss weight is
        then ignored for that view).
    config:
        A :class:`FitConfig`.
    """

    def __init__(self, cloud, views: Sequence[View],
                 config: FitConfig = FitConfig(),
                 background: Optional[np.ndarray] = None):
        if not views:
            raise ValueError("need at least one view")
        if not isinstance(cloud, (GaussianCloud, AnisotropicCloud)):
            raise TypeError(
                "cloud must be a GaussianCloud or AnisotropicCloud")
        self.cloud = cloud
        self.views = list(views)
        self.config = config
        self.background = (np.full(3, 0.05) if background is None
                           else np.asarray(background, float))
        self.rng = np.random.default_rng(config.seed)
        self._aniso = isinstance(cloud, AnisotropicCloud)

    # ---- rendering dispatch ----

    def _render(self, cloud, camera, pixels):
        if self._aniso:
            return render_sparse_anisotropic(cloud, camera, pixels,
                                             self.background)
        return render_sparse(cloud, camera, pixels, self.background)

    def _backward(self, result, cloud, camera, out):
        if self._aniso:
            return backward_sparse_anisotropic(
                result, cloud, camera, out.d_color, out.d_depth,
                out.d_silhouette)
        return backward_sparse(result, cloud, camera, out.d_color,
                               out.d_depth, out.d_silhouette)

    # ---- training ----

    def fit(self) -> FitResult:
        """Run the optimization; returns the fitted cloud and history."""
        cfg = self.config
        cloud = self.cloud
        adam = Adam(cloud.pack().shape[0], _learning_rates(cloud, cfg))
        losses: List[float] = []
        pruned_total = 0

        for it in range(1, cfg.iterations + 1):
            camera, color, depth = self.views[(it - 1) % len(self.views)]
            intr = camera.intrinsics
            pixels = sample_tracking_pixels(
                intr.width, intr.height, cfg.sample_tile, "random", self.rng)
            result = self._render(cloud, camera, pixels)
            ref_c = color[pixels[:, 1], pixels[:, 0]]
            if depth is not None:
                ref_d = depth[pixels[:, 1], pixels[:, 0]]
                loss_cfg = cfg.loss
            else:
                ref_d = np.ones(len(pixels))  # all valid, weight zeroed
                loss_cfg = cfg.loss.__class__(
                    color_weight=cfg.loss.color_weight, depth_weight=0.0,
                    silhouette_weight=cfg.loss.silhouette_weight,
                    huber_delta=cfg.loss.huber_delta)
            out = rgbd_loss(result.color, result.depth, result.silhouette,
                            ref_c, ref_d, loss_cfg, tracking=False)
            grads = self._backward(result, cloud, camera, out)
            cloud = cloud.unpack(cloud.pack() + adam.step(
                grads.as_cloud_vector()))
            losses.append(out.loss)

            if (cfg.prune_every and it % cfg.prune_every == 0
                    and not self._aniso):
                keep = cloud.opacities >= cfg.prune_opacity
                dropped = int((~keep).sum())
                if dropped:
                    cloud = cloud.prune(keep)
                    pruned_total += dropped
                    adam = Adam(cloud.pack().shape[0],
                                _learning_rates(cloud, cfg))
            if cfg.log_every and it % cfg.log_every == 0:
                print(f"fit iter {it:4d}  loss {out.loss:.5f}  "
                      f"gaussians {len(cloud)}")

        return FitResult(cloud=cloud, losses=losses, num_pruned=pruned_total)
