"""General multi-view 3DGS scene fitting (isotropic and anisotropic)."""

from .trainer import FitConfig, FitResult, SceneFitter

__all__ = ["FitConfig", "FitResult", "SceneFitter"]
