"""Fit anisotropic 3D Gaussians to target views by gradient descent.

Demonstrates the full-covariance rendering path: a ground-truth anisotropic
cloud renders target views; a perturbed copy is optimized — means, per-axis
log-scales, quaternions, opacities, colors all receive analytic gradients
through the EWA projection — using the sparse pixel pipeline from several
viewpoints, until the renderings converge.

Run:  python examples/fit_anisotropic.py [--iterations 150]
"""

import argparse

import numpy as np

from repro.core import sample_tracking_pixels
from repro.datasets.trajectory import look_at
from repro.gaussians import Camera, Intrinsics
from repro.metrics import psnr
from repro.render import (
    AnisotropicCloud,
    backward_sparse_anisotropic,
    render_sparse_anisotropic,
)
from repro.slam import Adam
from repro.slam.losses import LossConfig, rgbd_loss

BG = np.full(3, 0.05)


def make_target_cloud(n=40, seed=3):
    rng = np.random.default_rng(seed)
    return AnisotropicCloud.create(
        means=np.stack([rng.uniform(-1, 1, n), rng.uniform(-0.7, 0.7, n),
                        rng.uniform(1.5, 3.5, n)], axis=-1),
        scales=rng.uniform(0.05, 0.35, (n, 3)),       # elongated splats
        quaternions=rng.normal(size=(n, 4)),
        opacities=rng.uniform(0.4, 0.9, n),
        colors=rng.uniform(0.1, 0.9, (n, 3)),
    )


def perturb(cloud: AnisotropicCloud, rng) -> AnisotropicCloud:
    vec = cloud.pack()
    return cloud.unpack(vec + rng.normal(0.0, 0.05, vec.shape))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=150)
    parser.add_argument("--views", type=int, default=4)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    target = make_target_cloud()
    intr = Intrinsics.from_fov(64, 48, 70.0)
    cameras = [
        Camera(intr, look_at(
            np.array([0.6 * np.cos(a), -0.1, 0.6 * np.sin(a) - 0.2]),
            np.array([0.0, 0.0, 2.5])))
        for a in np.linspace(0, 1.2, args.views)
    ]
    # Per-view target observations at a half-resolution pixel lattice.
    views = []
    for cam in cameras:
        px = sample_tracking_pixels(intr.width, intr.height, 2, "random", rng)
        ref = render_sparse_anisotropic(target, cam, px, BG)
        views.append((cam, px, ref))

    cloud = perturb(target, rng)
    lr = np.concatenate([
        np.full(3 * len(cloud), 2e-3),    # means
        np.full(3 * len(cloud), 4e-3),    # log-scales
        np.full(4 * len(cloud), 4e-3),    # quaternions
        np.full(len(cloud), 2e-2),        # opacity logits
        np.full(3 * len(cloud), 1e-2),    # colors
    ])
    adam = Adam(14 * len(cloud), lr)
    cfg = LossConfig(color_weight=1.0, depth_weight=0.3)

    def view_psnr():
        scores = []
        for cam, px, ref in views:
            out = render_sparse_anisotropic(cloud, cam, px, BG)
            scores.append(psnr(out.color, ref.color))
        return float(np.mean(scores))

    print(f"{len(cloud)} anisotropic Gaussians, {args.views} views, "
          f"{len(views[0][1])} pixels each")
    print(f"initial view PSNR: {view_psnr():.2f} dB")
    for it in range(1, args.iterations + 1):
        cam, px, ref = views[it % len(views)]
        out = render_sparse_anisotropic(cloud, cam, px, BG)
        loss = rgbd_loss(out.color, out.depth, out.silhouette,
                         ref.color, ref.depth, cfg, tracking=False)
        grads = backward_sparse_anisotropic(
            out, cloud, cam, loss.d_color, loss.d_depth, loss.d_silhouette)
        cloud = cloud.unpack(cloud.pack() + adam.step(grads.as_cloud_vector()))
        if it % 30 == 0 or it == 1:
            print(f"iter {it:4d}  loss {loss.loss:.5f}  "
                  f"view PSNR {view_psnr():.2f} dB")
    print(f"final view PSNR: {view_psnr():.2f} dB")


if __name__ == "__main__":
    main()
