"""Foveated rendering through the pixel-based pipeline (Sec. IX).

The paper's discussion argues the pixel-based pipeline accelerates any
sparse-pixel workload, foveated VR rendering in particular.  This example
samples a gaze-contingent pattern (dense fovea, sparse periphery), renders
it with the sparse pipeline, and prints an ASCII density map plus the
workload reduction and modeled speedups.

Run:  python examples/foveated_rendering.py [--gaze-x 0.7] [--gaze-y 0.4]
"""

import argparse

import numpy as np

from repro.core import foveation_tile_map, sample_foveated_pixels
from repro.core.pixel_pipeline import render_sparse
from repro.datasets import SceneSpec, make_room_scene
from repro.datasets.trajectory import look_at
from repro.gaussians import Camera, Intrinsics
from repro.render import render_full


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gaze-x", type=float, default=0.5,
                        help="gaze position as a fraction of image width")
    parser.add_argument("--gaze-y", type=float, default=0.5)
    parser.add_argument("--width", type=int, default=96)
    parser.add_argument("--height", type=int, default=64)
    args = parser.parse_args()

    cloud = make_room_scene(SceneSpec(extent=3.0, seed=11))
    intr = Intrinsics.from_fov(args.width, args.height, 80.0)
    camera = Camera(intr, look_at(np.array([0.2, -0.2, -0.2]),
                                  np.array([2.5, 0.0, 1.0])))
    bg = np.full(3, 0.05)
    gaze = (args.gaze_x * intr.width, args.gaze_y * intr.height)

    tile_map = foveation_tile_map(intr.width, intr.height, gaze)
    pixels = sample_foveated_pixels(intr.width, intr.height, gaze,
                                    np.random.default_rng(0))
    print(f"gaze at {gaze}; local tile sizes per 16x16 cell:")
    for row in tile_map:
        print("  " + " ".join(f"{t:2d}" for t in row))

    dense = render_full(cloud, camera, bg, keep_cache=False)
    sparse = render_sparse(cloud, camera, pixels, bg)
    u, v = pixels[:, 0], pixels[:, 1]
    err = np.abs(sparse.color - dense.color[v, u]).max()
    total = intr.width * intr.height
    print(f"\nfoveated set: {len(pixels)} of {total} pixels "
          f"({total / len(pixels):.1f}x reduction), "
          f"max color error vs dense = {err:.2e}")
    print(f"alpha-checks: dense {dense.stats.num_candidate_pairs:,} vs "
          f"foveated {sparse.stats.num_candidate_pairs:,} "
          f"({dense.stats.num_candidate_pairs / max(sparse.stats.num_candidate_pairs, 1):.1f}x fewer)")

    # Density map: one character per 4x4 block; darker = more samples.
    shades = " .:*#"
    counts = np.zeros((intr.height // 4, intr.width // 4), dtype=int)
    for uu, vv in pixels:
        counts[min(vv // 4, counts.shape[0] - 1),
               min(uu // 4, counts.shape[1] - 1)] += 1
    print("\nsample density ('#' = dense fovea):")
    top = max(counts.max(), 1)
    for row in counts:
        print("  " + "".join(
            shades[min(int(c / top * (len(shades) - 1) + 0.999),
                       len(shades) - 1)] for c in row))


if __name__ == "__main__":
    main()
