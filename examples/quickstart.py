"""Quickstart: render a scene densely and sparsely, then track a pose.

Walks the three layers of the library in ~60 lines:

1. build a synthetic room and render it with the conventional tile-based
   pipeline;
2. sample one pixel per 16x16 tile and re-render only those with the
   pixel-based pipeline (identical values, ~256x less work);
3. perturb the camera pose and recover it with the sparse tracker.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Splatonic, SplatonicConfig
from repro.datasets import SceneSpec, make_room_scene
from repro.datasets.trajectory import look_at
from repro.gaussians import Camera, Intrinsics, se3_exp, se3_inverse, se3_log
from repro.render import render_full
from repro.slam import SPLATAM, Tracker


def main():
    # --- a scene and a camera ---------------------------------------
    cloud = make_room_scene(SceneSpec(extent=3.0, seed=42))
    intr = Intrinsics.from_fov(96, 64, 75.0)
    pose = look_at(eye=np.array([0.5, -0.2, 0.0]),
                   target=np.array([3.0, 0.0, 0.5]))
    camera = Camera(intr, pose)
    background = np.full(3, 0.05)
    print(f"scene: {len(cloud)} Gaussians, image {intr.width}x{intr.height}")

    # --- dense render (tile-based pipeline) -------------------------
    dense = render_full(cloud, camera, background, keep_cache=False)
    print(f"dense render: {dense.stats.num_candidate_pairs:,} alpha-checks, "
          f"{dense.stats.num_contrib_pairs:,} integrated pairs")

    # --- sparse render (SPLATONIC pixel-based pipeline) -------------
    splatonic = Splatonic(SplatonicConfig(tracking_tile=16),
                          rng=np.random.default_rng(0))
    pixels = splatonic.sample_tracking(camera)
    sparse = splatonic.render_sparse(cloud, camera, pixels, background)
    u, v = pixels[:, 0], pixels[:, 1]
    max_diff = np.abs(sparse.color - dense.color[v, u]).max()
    print(f"sparse render: {len(pixels)} pixels "
          f"({intr.width * intr.height // len(pixels)}x fewer), "
          f"{sparse.stats.num_candidate_pairs:,} alpha-checks, "
          f"max difference vs dense = {max_diff:.2e}")

    # --- track a perturbed pose back --------------------------------
    rng = np.random.default_rng(1)
    true_pose = camera.pose_c2w
    init = true_pose @ se3_exp(rng.normal(0.0, 0.02, 6))
    # Ground-truth observation of the scene from the true pose:
    color, depth = dense.color, dense.depth

    tracker = Tracker(SPLATAM, intr, splatonic, "sparse", background)
    before = np.linalg.norm(se3_log(se3_inverse(true_pose) @ init))
    result = tracker.track_frame(cloud, init, color, depth)
    after = np.linalg.norm(se3_log(se3_inverse(true_pose) @ result.pose_c2w))
    print(f"tracking: pose error {before:.4f} -> {after:.4f} "
          f"in {result.iterations} iterations "
          f"(converged={result.converged})")


if __name__ == "__main__":
    main()
