"""Full SLAM on a synthetic Replica-like sequence, sparse vs dense.

Runs the complete tracking+mapping loop twice — once with SPLATONIC's
sparse pixel sampling (the paper's configuration: random one-per-16x16
tracking pixels, 4x4 texture/unseen mapping pixels) and once densely (the
baseline) — and compares trajectory error, reconstruction quality, and
wall-clock.

Run:  python examples/slam_replica.py [--sequence room0] [--frames 12]
"""

import argparse
import time

from repro import SplatonicConfig
from repro.datasets import REPLICA_SEQUENCES, make_replica_sequence
from repro.slam import SLAMSystem


def run(mode: str, sequence, config=None, flight=None, health=None):
    start = time.perf_counter()
    result = SLAMSystem("splatam", mode=mode,
                        splatonic_config=config).run(
                            sequence, flight=flight, health=health)
    elapsed = time.perf_counter() - start
    ate = result.ate()
    quality = result.eval_quality(sequence)
    return result, ate, quality, elapsed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sequence", default="room0",
                        choices=REPLICA_SEQUENCES)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--width", type=int, default=64)
    parser.add_argument("--height", type=int, default=48)
    parser.add_argument("--tracking-tile", type=int, default=8,
                        help="w_t; the paper uses 16 at 1200x680 — scale "
                             "it with your image size")
    parser.add_argument("--flight-record", metavar="PATH", default=None,
                        help="record per-frame telemetry of the sparse run "
                             "to PATH (JSONL) and write a markdown report "
                             "next to it")
    args = parser.parse_args()

    print(f"building sequence {args.sequence} "
          f"({args.frames} frames, {args.width}x{args.height}) ...")
    sequence = make_replica_sequence(
        args.sequence, n_frames=args.frames,
        width=args.width, height=args.height, surface_density=10)

    flight = health = None
    if args.flight_record:
        from repro.obs.flight import FlightRecorder
        from repro.obs.health import HealthMonitor
        flight = FlightRecorder()
        flight.enable(args.flight_record)
        health = HealthMonitor()

    config = SplatonicConfig(tracking_tile=args.tracking_tile)
    print("\nrunning SPLATONIC (sparse) ...")
    sparse, ate_s, q_s, t_s = run("sparse", sequence, config,
                                  flight=flight, health=health)
    if flight is not None:
        flight.disable()
        from repro.obs.flight import read_flight_record
        from repro.obs.report import render_report
        report_path = args.flight_record + ".md"
        with open(report_path, "w") as f:
            f.write(render_report(read_flight_record(args.flight_record)))
        print(f"flight record : {args.flight_record} "
              f"({len(flight.records)} records, "
              f"{len(health.alerts)} health alerts)")
        print(f"flight report : {report_path}")
    print("running baseline (dense) ...")
    dense, ate_d, q_d, t_d = run("dense", sequence)

    print(f"\n{'':12s} {'ATE (cm)':>10s} {'PSNR (dB)':>10s} "
          f"{'depth L1':>10s} {'map size':>9s} {'time (s)':>9s}")
    for label, ate, q, res, t in [
        ("baseline", ate_d, q_d, dense, t_d),
        ("SPLATONIC", ate_s, q_s, sparse, t_s),
    ]:
        print(f"{label:12s} {ate.rmse * 100:10.2f} {q['psnr']:10.2f} "
              f"{q['depth_l1']:10.3f} {len(res.cloud):9d} {t:9.1f}")
    print(f"\nwall-clock speedup of sparse processing: {t_d / t_s:.1f}x "
          f"(pure-python proxy; see benchmarks/ for the modeled GPU and "
          f"accelerator numbers)")


if __name__ == "__main__":
    main()
