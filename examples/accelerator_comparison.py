"""Architecture comparison: GPU vs GauSPU vs GSArch vs SPLATONIC.

Measures one tracking iteration's workload counters on a realistic
mid-sequence map, projects them to the paper's deployment point
(1200x680 frames, 1e5 in-frustum Gaussians), and evaluates every hardware
model — reproducing the Fig. 22 comparison plus the per-stage view of the
SPLATONIC pipeline.

Run:  python examples/accelerator_comparison.py
"""

from repro.bench import build_bundle, print_table, tracking_workloads
from repro.hw import (
    GauSpuAccelerator,
    GpuModel,
    GsArchAccelerator,
    SplatonicAccelerator,
    splatonic_area,
)


def main():
    print("building proxy scenario (short SLAM run) ...")
    bundle = build_bundle()
    ws = tracking_workloads(bundle)

    gpu = GpuModel()
    base_t = gpu.iteration_times(ws["dense"]).total
    base_e = gpu.iteration_energy(ws["dense"])

    rows = [{"design": "GPU (dense)", "latency_ms": base_t * 1e3,
             "speedup": 1.0, "energy_saving": 1.0}]
    sw_t = gpu.iteration_times(ws["pixel"]).total
    rows.append({"design": "SPLATONIC-SW", "latency_ms": sw_t * 1e3,
                 "speedup": base_t / sw_t,
                 "energy_saving": base_e / gpu.iteration_energy(ws["pixel"])})
    for name, accel, key in [
        ("GauSPU", GauSpuAccelerator(), "dense"),
        ("GauSPU+S", GauSpuAccelerator(), "tile_sparse"),
        ("GSArch", GsArchAccelerator(), "dense"),
        ("GSArch+S", GsArchAccelerator(), "tile_sparse"),
        ("SPLATONIC-HW", SplatonicAccelerator(), "pixel"),
    ]:
        rep = accel.iteration_report(ws[key])
        rows.append({"design": name, "latency_ms": rep.total_s * 1e3,
                     "speedup": base_t / rep.total_s,
                     "energy_saving": base_e / rep.energy_j})
    print_table("Tracking-iteration comparison (normalized to dense GPU)",
                rows)

    hw = SplatonicAccelerator().iteration_report(ws["pixel"])
    print_table("SPLATONIC-HW stage occupancy (one iteration)", [
        {"stage": k, "busy_us": v * 1e6}
        for k, v in hw.stage_seconds.items()
    ])

    area = splatonic_area()
    print_table("SPLATONIC area at 16 nm", [
        {"component": k, "mm2": v, "share": area.share(k)}
        for k, v in area.components.items()
    ] + [{"component": "TOTAL", "mm2": area.total, "share": 1.0}])


if __name__ == "__main__":
    main()
