"""Mapping sampler anatomy: unseen pixels + texture-weighted pixels.

Renders a partially reconstructed scene, derives the final-transmittance
map (Eqn. 2), draws the two mapping pixel sets of Fig. 12, and prints an
ASCII visualization: `#` unseen-set pixels, `*` texture-weighted pixels,
`.` everything else.  Also quantifies the texture bias of the weighted set.

Run:  python examples/mapping_sampling_demo.py
"""

import numpy as np

from repro.core import Splatonic, SplatonicConfig, sobel_magnitude
from repro.datasets import SceneSpec, make_room_scene
from repro.datasets.trajectory import look_at
from repro.gaussians import Camera, Intrinsics
from repro.render import render_full


def main():
    rng = np.random.default_rng(0)
    full_scene = make_room_scene(SceneSpec(extent=3.0, seed=7))
    # A partial map: drop one corner of the room so part of the view is
    # unreconstructed while the rest is already mapped.
    means = full_scene.means
    keep = ~((means[:, 0] > 1.2) & (means[:, 2] > 0.0))
    partial = full_scene.prune(keep)
    print(f"full scene {len(full_scene)} Gaussians; "
          f"partial map keeps {len(partial)}")

    intr = Intrinsics.from_fov(72, 48, 80.0)
    camera = Camera(intr, look_at(np.array([-0.5, -0.2, -0.5]),
                                  np.array([3.0, 0.0, 1.5])))
    bg = np.full(3, 0.05)
    reference = render_full(full_scene, camera, bg, keep_cache=False)
    current = render_full(partial, camera, bg, keep_cache=False)

    splatonic = Splatonic(SplatonicConfig(mapping_tile=4), rng=rng)
    samples = splatonic.sample_mapping(current.final_transmittance,
                                       reference.color)
    print(f"unseen pixels: {len(samples.unseen)}, "
          f"weighted pixels: {len(samples.weighted)}, "
          f"union: {len(samples.all_pixels)} "
          f"of {intr.width * intr.height} total")

    canvas = np.full((intr.height, intr.width), ".", dtype="<U1")
    for u, v in samples.weighted:
        canvas[v, u] = "*"
    for u, v in samples.unseen:
        canvas[v, u] = "#"
    print("\n'#' unseen (Gamma_final > 0.5)   '*' texture-weighted draw\n")
    for row in canvas:
        print("".join(row))

    texture = sobel_magnitude(reference.color)
    w = samples.weighted
    picked = texture[w[:, 1], w[:, 0]].mean()
    print(f"\nmean Sobel magnitude at weighted picks: {picked:.3f} "
          f"vs image mean {texture.mean():.3f} "
          f"({picked / max(texture.mean(), 1e-9):.2f}x bias toward texture)")


if __name__ == "__main__":
    main()
