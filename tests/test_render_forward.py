"""Tile-pipeline forward pass: projection, tiles, sorting, compositing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.render import (
    ALPHA_THRESHOLD,
    RADIUS_SIGMA,
    TileGrid,
    build_intersection_table,
    composite_forward,
    project_gaussians,
    render_full,
    sort_by_depth,
    sort_intersection_table,
)


def make_scene(n=50, seed=0, z_range=(1.0, 5.0)):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.create(
        means=np.stack([rng.uniform(-2, 2, n), rng.uniform(-1.5, 1.5, n),
                        rng.uniform(*z_range, n)], axis=-1),
        scales=rng.uniform(0.03, 0.3, n),
        opacities=rng.uniform(0.1, 0.95, n),
        colors=rng.uniform(0, 1, (n, 3)),
    )
    cam = Camera(Intrinsics.from_fov(48, 36, 75.0))
    return cloud, cam


class TestProjection:
    def test_culls_behind_camera(self):
        cloud, cam = make_scene()
        behind = GaussianCloud.create(
            means=np.array([[0.0, 0.0, -1.0]]), scales=np.array([0.1]),
            opacities=np.array([0.5]), colors=np.zeros((1, 3)))
        proj = project_gaussians(cloud.extend(behind), cam)
        assert len(cloud) not in proj.source_index  # the appended index

    def test_culls_far_offscreen(self):
        cam = Camera(Intrinsics.from_fov(48, 36, 75.0))
        offscreen = GaussianCloud.create(
            means=np.array([[100.0, 0.0, 2.0]]), scales=np.array([0.05]),
            opacities=np.array([0.5]), colors=np.zeros((1, 3)))
        assert len(project_gaussians(offscreen, cam)) == 0

    def test_keeps_visible(self):
        cam = Camera(Intrinsics.from_fov(48, 36, 75.0))
        visible = GaussianCloud.create(
            means=np.array([[0.0, 0.0, 2.0]]), scales=np.array([0.05]),
            opacities=np.array([0.5]), colors=np.zeros((1, 3)))
        proj = project_gaussians(visible, cam)
        assert len(proj) == 1
        assert np.allclose(proj.mean2d[0], [24.0, 18.0])

    def test_sigma_scales_inverse_depth(self):
        cam = Camera(Intrinsics.from_fov(48, 36, 75.0))
        cloud = GaussianCloud.create(
            means=np.array([[0.0, 0.0, 1.0], [0.0, 0.0, 2.0]]),
            scales=np.array([0.1, 0.1]),
            opacities=np.array([0.5, 0.5]), colors=np.zeros((2, 3)))
        proj = project_gaussians(cloud, cam)
        assert np.isclose(proj.sigma2d[0], 2 * proj.sigma2d[1])

    def test_radius_is_truncation_sigma(self):
        cloud, cam = make_scene()
        proj = project_gaussians(cloud, cam)
        assert np.allclose(proj.radius, RADIUS_SIGMA * proj.sigma2d)

    def test_bbox_conservative_for_alpha_threshold(self):
        """A pair outside the bbox can never pass the default alpha check:
        this is the invariant that makes the two pipelines pixel-exact."""
        worst_alpha = np.exp(-RADIUS_SIGMA ** 2 / 2.0)  # opacity = 1
        assert worst_alpha < ALPHA_THRESHOLD

    def test_source_index_maps_back(self):
        cloud, cam = make_scene()
        proj = project_gaussians(cloud, cam)
        assert np.allclose(proj.depth,
                           cam.world_to_camera(cloud.means)[proj.source_index, 2])


class TestTiles:
    def test_grid_counts(self):
        grid = TileGrid(width=48, height=36, tile_size=16)
        assert grid.tiles_x == 3 and grid.tiles_y == 3
        assert grid.num_tiles == 9

    def test_partial_tiles(self):
        grid = TileGrid(width=20, height=10, tile_size=16)
        assert grid.tiles_x == 2 and grid.tiles_y == 1
        u0, v0, u1, v1 = grid.tile_bounds(1)
        assert (u0, v0, u1, v1) == (16, 0, 20, 10)

    def test_tile_pixels_cover_image(self):
        grid = TileGrid(width=20, height=10, tile_size=16)
        seen = set()
        for t in range(grid.num_tiles):
            for u, v in grid.tile_pixels(t):
                seen.add((u, v))
        assert len(seen) == 200

    def test_tile_of_pixel(self):
        grid = TileGrid(width=48, height=36, tile_size=16)
        assert grid.tile_of_pixel(0, 0) == 0
        assert grid.tile_of_pixel(47, 35) == 8
        assert grid.tile_of_pixel(17, 3) == 1

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ValueError):
            TileGrid(width=10, height=10, tile_size=0)

    def test_intersection_covers_bbox_tiles(self):
        cloud, cam = make_scene(seed=3)
        proj = project_gaussians(cloud, cam)
        grid = TileGrid.for_intrinsics(cam.intrinsics, 16)
        table = build_intersection_table(proj, grid)
        bbox = proj.bbox()
        for g in range(len(proj)):
            u = np.clip((bbox[g, 0] + bbox[g, 2]) / 2, 0, 47)
            v = np.clip((bbox[g, 1] + bbox[g, 3]) / 2, 0, 35)
            tile = int(grid.tile_of_pixel(int(u), int(v)))
            assert g in table.per_tile[tile]

    def test_pair_count_matches(self):
        cloud, cam = make_scene(seed=4)
        proj = project_gaussians(cloud, cam)
        grid = TileGrid.for_intrinsics(cam.intrinsics, 8)
        table = build_intersection_table(proj, grid)
        assert table.num_pairs == sum(len(t) for t in table.per_tile)


class TestSorting:
    def test_sorted_front_to_back(self):
        rng = np.random.default_rng(0)
        depth = rng.uniform(1, 5, 30)
        idx = np.arange(30)
        rng.shuffle(idx)
        out = sort_by_depth(idx, depth)
        assert np.all(np.diff(depth[out]) >= 0)

    def test_stable_for_ties(self):
        depth = np.array([2.0, 1.0, 2.0, 1.0])
        out = sort_by_depth(np.array([0, 1, 2, 3]), depth)
        assert list(out) == [1, 3, 0, 2]

    def test_tie_break_independent_of_input_order(self):
        """Documented guarantee: equal depths order by projected index,
        regardless of how the candidate list arrives."""
        depth = np.array([3.0, 1.5, 3.0, 1.5, 3.0, 0.5])
        expected = [5, 1, 3, 0, 2, 4]
        rng = np.random.default_rng(7)
        for _ in range(10):
            idx = np.arange(6)
            rng.shuffle(idx)
            assert list(sort_by_depth(idx, depth)) == expected

    def test_tie_break_on_subset(self):
        depth = np.array([2.0, 2.0, 2.0, 1.0])
        out = sort_by_depth(np.array([2, 0, 3]), depth)
        assert list(out) == [3, 0, 2]

    def test_empty(self):
        assert sort_by_depth(np.zeros(0, dtype=int), np.zeros(0)).size == 0

    def test_table_sorting(self):
        cloud, cam = make_scene(seed=5)
        proj = project_gaussians(cloud, cam)
        grid = TileGrid.for_intrinsics(cam.intrinsics, 16)
        table = build_intersection_table(proj, grid)
        for lst in sort_intersection_table(table, proj):
            assert np.all(np.diff(proj.depth[lst]) >= 0)


class TestCompositing:
    def _composite(self, seed=0, n=20, bg=None):
        rng = np.random.default_rng(seed)
        pixels = rng.uniform(0, 10, (4, 2))
        order = np.sort(rng.uniform(1, 5, n))
        return composite_forward(
            pixels,
            mean2d=rng.uniform(0, 10, (n, 2)),
            sigma2d=rng.uniform(0.5, 3.0, n),
            depth=order,
            opacity=rng.uniform(0.1, 0.9, n),
            color=rng.uniform(0, 1, (n, 3)),
            background=np.zeros(3) if bg is None else bg,
        )

    def test_color_is_convex_combination(self):
        color, _, sil, _ = self._composite()
        assert np.all(color >= -1e-12) and np.all(color <= 1.0 + 1e-12)
        assert np.all((sil >= 0) & (sil <= 1 + 1e-12))

    def test_silhouette_plus_transmittance_is_one(self):
        _, _, sil, cache = self._composite(seed=2)
        assert np.allclose(sil + cache.gamma_final, 1.0)

    def test_gamma_non_increasing(self):
        _, _, _, cache = self._composite(seed=3)
        assert np.all(np.diff(cache.gamma, axis=1) <= 1e-12)

    def test_background_composited_under(self):
        bg = np.array([0.2, 0.4, 0.6])
        color, _, sil, cache = self._composite(seed=4, bg=bg)
        expected = cache.color + cache.gamma_final[:, None] * bg
        assert np.allclose(color, expected)

    def test_empty_list_returns_background(self):
        bg = np.array([0.1, 0.2, 0.3])
        color, depth, sil, cache = composite_forward(
            np.array([[1.0, 1.0]]), np.zeros((0, 2)), np.zeros(0),
            np.zeros(0), np.zeros(0), np.zeros((0, 3)), bg)
        assert np.allclose(color, bg[None])
        assert depth[0] == 0 and sil[0] == 0
        assert cache.gamma_final[0] == 1.0

    def test_single_opaque_gaussian_at_centre(self):
        color, depth, sil, _ = composite_forward(
            np.array([[5.0, 5.0]]),
            mean2d=np.array([[5.0, 5.0]]),
            sigma2d=np.array([1.0]),
            depth=np.array([2.0]),
            opacity=np.array([0.8]),
            color=np.array([[1.0, 0.0, 0.0]]),
            background=np.zeros(3))
        assert np.isclose(sil[0], 0.8)
        assert np.isclose(color[0, 0], 0.8)
        assert np.isclose(depth[0], 0.8 * 2.0)

    def test_early_termination_caps_contributors(self):
        """Many opaque gaussians: transmittance collapses and later ones
        must be skipped."""
        n = 100
        color, _, sil, cache = composite_forward(
            np.array([[0.0, 0.0]]),
            mean2d=np.zeros((n, 2)),
            sigma2d=np.ones(n),
            depth=np.arange(1, n + 1, dtype=float),
            opacity=np.full(n, 0.9),
            color=np.ones((n, 3)),
            background=np.zeros(3))
        contribs = int(cache.contrib.sum())
        assert contribs < n / 2
        assert sil[0] <= 1.0

    def test_alpha_threshold_filters(self):
        _, _, sil, cache = composite_forward(
            np.array([[0.0, 0.0]]),
            mean2d=np.array([[30.0, 0.0]]),   # 30 sigma away
            sigma2d=np.array([1.0]),
            depth=np.array([1.0]),
            opacity=np.array([0.99]),
            color=np.ones((1, 3)),
            background=np.zeros(3))
        assert sil[0] == 0.0
        assert not cache.contrib.any()


class TestRenderFull:
    def test_shapes_and_ranges(self):
        cloud, cam = make_scene(seed=6, n=80)
        res = render_full(cloud, cam, np.full(3, 0.1))
        h, w = 36, 48
        assert res.color.shape == (h, w, 3)
        assert res.depth.shape == (h, w)
        assert res.silhouette.shape == (h, w)
        assert np.all(res.silhouette <= 1.0 + 1e-9)
        assert np.all(res.depth >= 0)

    def test_final_transmittance(self):
        cloud, cam = make_scene(seed=7)
        res = render_full(cloud, cam)
        assert np.allclose(res.final_transmittance, 1 - res.silhouette)

    def test_stats_counters(self):
        cloud, cam = make_scene(seed=8)
        res = render_full(cloud, cam, tile_size=16)
        s = res.stats
        assert s.pipeline == "tile"
        assert s.num_pixels == 48 * 36
        assert s.num_candidate_pairs == s.num_alpha_checks
        assert s.num_contrib_pairs <= s.num_candidate_pairs
        assert len(s.per_pixel_contribs) == s.num_pixels
        assert s.num_tile_pairs >= max(len(t) for t in res.sorted_lists)

    def test_tile_size_does_not_change_image(self):
        cloud, cam = make_scene(seed=9)
        a = render_full(cloud, cam, tile_size=8, keep_cache=False)
        b = render_full(cloud, cam, tile_size=16, keep_cache=False)
        assert np.allclose(a.color, b.color, atol=1e-12)
        assert np.allclose(a.depth, b.depth, atol=1e-12)

    def test_sparse_subset_matches_full(self):
        """Org.+S mode must produce identical values at sampled pixels."""
        cloud, cam = make_scene(seed=10, n=120)
        rng = np.random.default_rng(0)
        pixels = np.stack([rng.integers(0, 48, 30),
                           rng.integers(0, 36, 30)], axis=-1)
        full = render_full(cloud, cam, keep_cache=False)
        part = render_full(cloud, cam, pixels=pixels, keep_cache=False)
        u, v = pixels[:, 0], pixels[:, 1]
        assert np.allclose(part.color[v, u], full.color[v, u])
        assert np.allclose(part.depth[v, u], full.depth[v, u])
        assert part.stats.num_pixels == 30
        assert part.stats.num_candidate_pairs < full.stats.num_candidate_pairs

    def test_empty_cloud(self):
        cam = Camera(Intrinsics.from_fov(16, 12, 70.0))
        res = render_full(GaussianCloud.empty(), cam, np.full(3, 0.5))
        assert np.allclose(res.color, 0.5)
        assert res.stats.num_projected == 0

    def test_tile_work_recorded(self):
        cloud, cam = make_scene(seed=11)
        res = render_full(cloud, cam, tile_size=16)
        for list_len, n_px, serial_len in res.stats.tile_work:
            assert 0 < serial_len <= list_len
            assert 0 < n_px <= 16 * 16
