"""Regression gate: tolerance semantics and comparator edge cases."""

import json

import pytest

from repro.obs.bench import SCHEMA_VERSION
from repro.obs.regress import (
    DEFAULT_SECTIONS,
    Finding,
    RegressionReport,
    TolerancePolicy,
    compare_files,
    compare_runs,
)


def make_payload(scenarios=None):
    """A minimal valid trajectory payload (deep-copied per call)."""
    base = {
        "tracking": {
            "counters": {"pixel.fwd.num_contrib_pairs": 1000,
                         "pixel.fwd.num_sort_keys": 250},
            "model": {"accel.total_s": 0.004, "gpu.dense.total_s": 0.1},
            "wall": {"median_s": 0.10, "mad_s": 0.002,
                     "samples_s": [0.1, 0.1, 0.1], "repetitions": 3},
        },
    }
    doc = {
        "schema_version": SCHEMA_VERSION,
        "suite": "tiny",
        "repetitions": 3,
        "environment": {},
        "scenarios": scenarios if scenarios is not None else base,
    }
    return json.loads(json.dumps(doc))


class TestCleanComparison:
    def test_identical_runs_pass(self):
        report = compare_runs(make_payload(), make_payload())
        assert report.passed
        assert report.exit_code == 0
        assert not report.regressions
        assert all(f.status == "ok" for f in report.findings)

    def test_counts_tally_all_findings(self):
        report = compare_runs(make_payload(), make_payload())
        # 2 counters + 2 model + 1 wall
        assert report.counts() == {"ok": 5}


class TestCounterExactness:
    def test_injected_counter_regression_fails(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["counters"][
            "pixel.fwd.num_contrib_pairs"] += 1
        report = compare_runs(cur, make_payload())
        assert not report.passed
        assert report.exit_code == 1
        (bad,) = report.regressions
        assert bad.metric == "counters.pixel.fwd.num_contrib_pairs"
        assert bad.kind == "counter"

    def test_counter_decrease_also_fails(self):
        # Counters are exact, not smaller-is-better: any drift means the
        # workload changed.
        cur = make_payload()
        cur["scenarios"]["tracking"]["counters"][
            "pixel.fwd.num_sort_keys"] -= 10
        report = compare_runs(cur, make_payload())
        assert not report.passed


class TestModelTolerance:
    def test_within_relative_tolerance_is_ok(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] *= 1 + 1e-9
        report = compare_runs(cur, make_payload())
        assert report.passed

    def test_beyond_tolerance_regresses(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] *= 1.01
        report = compare_runs(cur, make_payload())
        (bad,) = report.regressions
        assert bad.metric == "model.accel.total_s"

    def test_improvement_is_not_a_failure(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] *= 0.5
        report = compare_runs(cur, make_payload())
        assert report.passed
        assert any(f.status == "improved" for f in report.findings)

    def test_zero_valued_baseline_uses_absolute_floor(self):
        base = make_payload()
        base["scenarios"]["tracking"]["model"]["accel.total_s"] = 0.0
        cur = make_payload()
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] = 0.0
        assert compare_runs(cur, base).passed
        # Any appreciable value on a zero baseline regresses.
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] = 1e-6
        assert not compare_runs(cur, base).passed

    def test_boundary_exactly_at_tolerance_is_ok(self):
        policy = TolerancePolicy(model_rel=0.1, model_abs=0.0)
        base = make_payload()
        cur = make_payload()
        v = base["scenarios"]["tracking"]["model"]["accel.total_s"]
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] = v * 1.1
        assert compare_runs(cur, base, policy=policy).passed
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] = v * 1.11
        assert not compare_runs(cur, base, policy=policy).passed


class TestWallTolerance:
    def test_noise_within_slack_is_ok(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["wall"]["median_s"] = 0.11  # +10 %
        report = compare_runs(cur, make_payload())
        assert report.passed

    def test_large_slowdown_regresses(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["wall"]["median_s"] = 0.50
        report = compare_runs(cur, make_payload())
        (bad,) = report.regressions
        assert bad.kind == "wall"

    def test_mad_widens_the_slack(self):
        # 2x slowdown, but the baseline is extremely noisy: 4 MADs of
        # 0.05 s = 0.2 s slack > the 0.1 s delta.
        base = make_payload()
        base["scenarios"]["tracking"]["wall"]["mad_s"] = 0.05
        cur = make_payload()
        cur["scenarios"]["tracking"]["wall"]["median_s"] = 0.20
        assert compare_runs(cur, base).passed

    def test_absolute_floor_forgives_micro_scenarios(self):
        # 3x relative slowdown on a 5 ms scenario stays under the 20 ms
        # absolute floor.
        base = make_payload()
        base["scenarios"]["tracking"]["wall"].update(median_s=0.005, mad_s=0.0)
        cur = make_payload()
        cur["scenarios"]["tracking"]["wall"].update(median_s=0.015, mad_s=0.0)
        assert compare_runs(cur, base).passed

    def test_speedup_reports_improved(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["wall"]["median_s"] = 0.01
        report = compare_runs(cur, make_payload())
        assert report.passed
        assert any(f.status == "improved" and f.kind == "wall"
                   for f in report.findings)

    def test_wall_section_can_be_skipped(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["wall"]["median_s"] = 99.0
        report = compare_runs(cur, make_payload(),
                              sections=["counters", "model"])
        assert report.passed


class TestStructuralChanges:
    def test_new_metric_passes_with_note(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["counters"]["brand_new"] = 7
        report = compare_runs(cur, make_payload())
        assert report.passed
        (new,) = [f for f in report.findings if f.status == "new"]
        assert new.metric == "counters.brand_new"

    def test_removed_metric_fails(self):
        cur = make_payload()
        del cur["scenarios"]["tracking"]["counters"]["pixel.fwd.num_sort_keys"]
        report = compare_runs(cur, make_payload())
        assert not report.passed
        (gone,) = report.regressions
        assert gone.status == "removed"

    def test_removed_scenario_fails(self):
        cur = make_payload(scenarios={})
        report = compare_runs(cur, make_payload())
        assert not report.passed
        (gone,) = report.regressions
        assert gone.metric == "(scenario)"

    def test_new_scenario_passes(self):
        cur = make_payload()
        cur["scenarios"]["extra"] = {"counters": {"x": 1}, "model": {},
                                     "wall": {}}
        report = compare_runs(cur, make_payload())
        assert report.passed

    def test_schema_version_mismatch_is_an_error(self):
        cur = make_payload()
        cur["schema_version"] = SCHEMA_VERSION + 1
        report = compare_runs(cur, make_payload())
        assert report.exit_code == 2
        assert any("schema_version" in e for e in report.errors)

    def test_non_object_payload_is_an_error(self):
        report = compare_runs([], make_payload())
        assert report.exit_code == 2


class TestEnvironmentMismatch:
    def test_identical_environments_raise_no_warning(self):
        base = make_payload()
        base["environment"] = {"python": "3.12.0", "numpy": "1.26.0",
                               "cpu_count": 8}
        cur = json.loads(json.dumps(base))
        report = compare_runs(cur, base)
        assert report.env_mismatches == []
        assert "environment mismatch" not in report.format_markdown()

    def test_mismatch_is_warned_before_the_verdict(self):
        base = make_payload()
        base["environment"] = {"python": "3.12.0", "numpy": "1.26.0",
                               "cpu_count": 8}
        cur = make_payload()
        cur["environment"] = {"python": "3.12.0", "numpy": "2.0.0",
                              "cpu_count": 16}
        report = compare_runs(cur, base)
        assert len(report.env_mismatches) == 2
        assert any("numpy" in m for m in report.env_mismatches)
        assert any("cpu_count" in m for m in report.env_mismatches)
        text = report.format_markdown()
        # Warned explicitly, immediately under the verdict header.
        assert "WARNING: environment mismatch" in text.splitlines()[1]
        assert "untrustworthy" in text

    def test_mismatch_alone_does_not_fail_the_gate(self):
        base = make_payload()
        base["environment"] = {"cpu_count": 8}
        cur = make_payload()
        cur["environment"] = {"cpu_count": 64}
        report = compare_runs(cur, base)
        assert report.passed
        assert report.exit_code == 0

    def test_mismatches_land_in_the_json_report(self, tmp_path):
        base = make_payload()
        base["environment"] = {"numpy": "1.26.0"}
        cur = make_payload()
        cur["environment"] = {"numpy": "2.0.0"}
        report = compare_runs(cur, base)
        out = tmp_path / "report.json"
        report.write_json(str(out))
        doc = json.loads(out.read_text())
        assert doc["env_mismatches"] == report.env_mismatches


class TestHistoryFormat:
    def test_load_trajectory_resolves_newest_history_entry(self, tmp_path):
        from repro.obs.regress import load_trajectory

        old = make_payload()
        new = make_payload()
        new["scenarios"]["tracking"]["counters"][
            "pixel.fwd.num_sort_keys"] = 999
        doc = {"format": "bench-history", "schema_version": SCHEMA_VERSION,
               "max_entries": 20, "entries": [old, new]}
        path = tmp_path / "history.json"
        path.write_text(json.dumps(doc))
        loaded = load_trajectory(str(path))
        assert loaded["scenarios"]["tracking"]["counters"][
            "pixel.fwd.num_sort_keys"] == 999

    def test_empty_history_is_an_error(self, tmp_path):
        from repro.obs.regress import load_trajectory

        path = tmp_path / "history.json"
        path.write_text(json.dumps({"format": "bench-history",
                                    "entries": []}))
        with pytest.raises(ValueError, match="no entries"):
            load_trajectory(str(path))

    def test_compare_files_accepts_history_current(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(make_payload()))
        hist = tmp_path / "hist.json"
        hist.write_text(json.dumps({"format": "bench-history",
                                    "entries": [make_payload()]}))
        assert compare_files(str(hist), str(base)).passed


class TestCompareFiles:
    def test_round_trip_via_files(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(make_payload()))
        report = compare_files(str(a), str(a))
        assert report.passed

    def test_missing_baseline_is_an_error_with_hint(self, tmp_path):
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(make_payload()))
        report = compare_files(str(cur), str(tmp_path / "nope.json"))
        assert report.exit_code == 2
        (err,) = report.errors
        assert "baseline file not found" in err
        assert "repro bench run" in err  # actionable hint

    def test_missing_current_is_an_error(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(make_payload()))
        report = compare_files(str(tmp_path / "nope.json"), str(base))
        assert report.exit_code == 2
        assert any("current" in e for e in report.errors)

    def test_corrupt_baseline_is_an_error(self, tmp_path):
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(make_payload()))
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        report = compare_files(str(cur), str(bad))
        assert report.exit_code == 2


class TestReporting:
    def test_markdown_mentions_verdict_and_regression(self):
        cur = make_payload()
        cur["scenarios"]["tracking"]["counters"][
            "pixel.fwd.num_contrib_pairs"] += 5
        report = compare_runs(cur, make_payload())
        text = report.format_markdown()
        assert "FAIL" in text
        assert "pixel.fwd.num_contrib_pairs" in text
        clean = compare_runs(make_payload(), make_payload())
        assert "PASS" in clean.format_markdown()

    def test_json_report_is_sorted_and_excludes_ok(self, tmp_path):
        cur = make_payload()
        cur["scenarios"]["tracking"]["model"]["accel.total_s"] *= 2
        report = compare_runs(cur, make_payload())
        out = tmp_path / "report.json"
        report.write_json(str(out))
        doc = json.loads(out.read_text())
        assert doc["passed"] is False
        assert all(f["status"] != "ok" for f in doc["findings"])
        # Canonical output: re-dumping with sort_keys is a no-op.
        assert out.read_text() == json.dumps(doc, indent=1,
                                             sort_keys=True) + "\n"

    def test_default_sections_order(self):
        assert DEFAULT_SECTIONS == ("counters", "model", "wall", "overhead")
