"""Pixel-based pipeline: pixel-exact equivalence with the tile pipeline,
preemptive alpha-checking, direct bbox indexing, and backward equality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bbox_candidate_ranges, sample_tracking_pixels
from repro.core.pixel_pipeline import backward_sparse, render_sparse
from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.render import backward_full, project_gaussians, render_full

BG = np.array([0.15, 0.25, 0.05])
W, H = 48, 36


def make_scene(n=120, seed=0):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.create(
        means=np.stack([rng.uniform(-2, 2, n), rng.uniform(-1.5, 1.5, n),
                        rng.uniform(1.0, 5.0, n)], axis=-1),
        scales=rng.uniform(0.03, 0.3, n),
        opacities=rng.uniform(0.1, 0.95, n),
        colors=rng.uniform(0, 1, (n, 3)),
    )
    return cloud, Camera(Intrinsics.from_fov(W, H, 75.0))


class TestForwardEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_tile_pipeline_exactly(self, seed):
        cloud, cam = make_scene(seed=seed)
        rng = np.random.default_rng(seed)
        pixels = np.stack([rng.integers(0, W, 25),
                           rng.integers(0, H, 25)], axis=-1)
        full = render_full(cloud, cam, BG, keep_cache=False)
        sparse = render_sparse(cloud, cam, pixels, BG)
        u, v = pixels[:, 0], pixels[:, 1]
        assert np.allclose(sparse.color, full.color[v, u], atol=1e-12)
        assert np.allclose(sparse.depth, full.depth[v, u], atol=1e-12)
        assert np.allclose(sparse.silhouette, full.silhouette[v, u],
                           atol=1e-12)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_random_scene_equivalence(self, seed):
        """Property: for any random scene and pixel set, the two pipelines
        agree bitwise at the sampled locations."""
        cloud, cam = make_scene(n=40, seed=seed)
        rng = np.random.default_rng(seed)
        pixels = np.stack([rng.integers(0, W, 8),
                           rng.integers(0, H, 8)], axis=-1)
        full = render_full(cloud, cam, BG, keep_cache=False)
        sparse = render_sparse(cloud, cam, pixels, BG)
        u, v = pixels[:, 0], pixels[:, 1]
        assert np.allclose(sparse.color, full.color[v, u], atol=1e-12)

    def test_preemptive_off_same_image(self):
        """Disabling preemptive alpha-checking changes workload, not pixels."""
        cloud, cam = make_scene(seed=5)
        pixels = sample_tracking_pixels(W, H, 8, "random",
                                        np.random.default_rng(0))
        on = render_sparse(cloud, cam, pixels, BG, preemptive_alpha=True)
        off = render_sparse(cloud, cam, pixels, BG, preemptive_alpha=False)
        assert np.allclose(on.color, off.color, atol=1e-12)
        assert np.allclose(on.depth, off.depth, atol=1e-12)
        # Without preemption the sorter sees rejected candidates too.
        assert off.stats.num_sort_keys >= on.stats.num_sort_keys

    def test_empty_pixel_set(self):
        cloud, cam = make_scene()
        res = render_sparse(cloud, cam, np.zeros((0, 2), dtype=int), BG)
        assert res.color.shape == (0, 3)
        assert res.stats.num_pixels == 0

    def test_empty_cloud(self):
        _, cam = make_scene()
        pixels = np.array([[5, 5], [10, 10]])
        res = render_sparse(GaussianCloud.empty(), cam, pixels, BG)
        assert np.allclose(res.color, BG[None])
        assert np.allclose(res.silhouette, 0.0)

    def test_scatter(self):
        cloud, cam = make_scene(seed=6)
        pixels = np.array([[3, 4], [20, 30]])
        res = render_sparse(cloud, cam, pixels, BG)
        color, depth, sil = res.scatter(H, W, BG)
        assert color.shape == (H, W, 3)
        assert np.allclose(color[4, 3], res.color[0])
        assert np.allclose(depth[30, 20], res.depth[1])

    def test_stats_pixel_pipeline(self):
        cloud, cam = make_scene(seed=7)
        pixels = sample_tracking_pixels(W, H, 16, "random",
                                        np.random.default_rng(0))
        res = render_sparse(cloud, cam, pixels, BG)
        s = res.stats
        assert s.pipeline == "pixel"
        assert s.num_pixels == len(pixels)
        assert s.num_alpha_checks == s.num_candidate_pairs
        assert s.num_sort_keys == sum(s.pixel_list_lengths)
        assert s.num_contrib_pairs <= s.num_sort_keys


class TestBackwardEquivalence:
    def test_gradients_match_tile_backward(self):
        """With loss only on the sampled pixels, the two pipelines'
        backward passes must produce identical world-space gradients."""
        cloud, cam = make_scene(seed=8)
        rng = np.random.default_rng(8)
        pixels = np.stack([rng.integers(0, W, 20),
                           rng.integers(0, H, 20)], axis=-1)
        pixels = np.unique(pixels, axis=0)
        u, v = pixels[:, 0], pixels[:, 1]

        d_color_sparse = rng.normal(size=(len(pixels), 3))
        d_depth_sparse = rng.normal(size=len(pixels))
        d_sil_sparse = rng.normal(size=len(pixels))

        sparse = render_sparse(cloud, cam, pixels, BG)
        g_sparse = backward_sparse(sparse, cloud, cam, d_color_sparse,
                                   d_depth_sparse, d_sil_sparse)

        full = render_full(cloud, cam, BG)
        d_color = np.zeros((H, W, 3))
        d_depth = np.zeros((H, W))
        d_sil = np.zeros((H, W))
        d_color[v, u] = d_color_sparse
        d_depth[v, u] = d_depth_sparse
        d_sil[v, u] = d_sil_sparse
        g_full = backward_full(full, cloud, cam, d_color, d_depth, d_sil)

        assert np.allclose(g_sparse.d_means, g_full.d_means, atol=1e-9)
        assert np.allclose(g_sparse.d_log_scales, g_full.d_log_scales,
                           atol=1e-9)
        assert np.allclose(g_sparse.d_logit_opacities,
                           g_full.d_logit_opacities, atol=1e-9)
        assert np.allclose(g_sparse.d_colors, g_full.d_colors, atol=1e-9)
        assert np.allclose(g_sparse.d_pose_twist, g_full.d_pose_twist,
                           atol=1e-9)

    def test_backward_reuses_forward_lists(self):
        """No alpha checks are recorded in the sparse backward (cached)."""
        cloud, cam = make_scene(seed=9)
        pixels = sample_tracking_pixels(W, H, 16, "random",
                                        np.random.default_rng(1))
        res = render_sparse(cloud, cam, pixels, BG)
        g = backward_sparse(res, cloud, cam,
                            np.ones((len(pixels), 3)),
                            np.zeros(len(pixels)), np.zeros(len(pixels)))
        assert g.stats.num_alpha_checks == 0
        assert g.stats.num_atomic_adds == g.stats.num_contrib_pairs


class TestDirectIndexing:
    def test_matches_exhaustive_bbox_scan(self):
        cloud, cam = make_scene(seed=10)
        tile = 8
        pixels = sample_tracking_pixels(W, H, tile, "random",
                                        np.random.default_rng(2))
        proj = project_gaussians(cloud, cam)
        ranges = bbox_candidate_ranges(pixels, proj.bbox(), tile, W)
        centres = pixels + 0.5
        bbox = proj.bbox()
        for g, cand in enumerate(ranges):
            u_min, v_min, u_max, v_max = bbox[g]
            inside = np.nonzero(
                (centres[:, 0] >= u_min) & (centres[:, 0] <= u_max)
                & (centres[:, 1] >= v_min) & (centres[:, 1] <= v_max))[0]
            assert set(cand.tolist()) == set(inside.tolist())

    def test_lattice_is_tile_row_major(self):
        """The sampler's output satisfies the direct-indexing invariant:
        index k holds the pixel of tile (k % tiles_x, k // tiles_x)."""
        tile = 8
        pixels = sample_tracking_pixels(W, H, tile, "random",
                                        np.random.default_rng(3))
        tiles_x = -(-W // tile)
        for k, (u, v) in enumerate(pixels):
            assert u // tile == k % tiles_x
            assert v // tile == k // tiles_x
