"""Tests for the sparsity atlas (repro.obs.atlas).

Covers collector lifecycle and gating, byte-level determinism of the
artifact, round-trip through ``read_atlas``, aggregation API edge cases
(empty logs, empty frames, zero grids), collector routing via
``use_collector``, heatmap rendering, and the SLAM integration where the
observed spatial totals must exactly match the per-stage pipeline
counters (delta zero).
"""

import gzip
import json

import numpy as np
import pytest

from repro.datasets import make_replica_sequence
from repro.obs import atlas as atlas_mod
from repro.obs.atlas import (ATLAS_SCHEMA_VERSION, CHANNELS, AtlasCollector,
                             AtlasLog, format_heatmap, heatmap_html,
                             read_atlas)
from repro.slam import SLAMSystem


def _observe_simple(collector, frame=0, width=32, height=24):
    """Open a frame and feed one deterministic forward+backward pass."""
    collector.begin_frame(frame, width, height)
    with collector.stage("tracking"):
        pixels = np.array([[1, 1], [9, 1], [17, 9], [30, 22]])
        pair_pix = np.array([0, 0, 1, 2, 2, 2])
        pair_gss = np.array([0, 1, 0, 0, 1, 2])
        contribs = np.array([2, 1, 2, 0])
        collector.observe_sparse_forward(pixels, pair_pix, pair_gss,
                                         contribs)
        collector.observe_sparse_backward(pixels, contribs)
    collector.end_frame()


class TestCollectorLifecycle:
    def test_disabled_collector_is_inert(self):
        c = AtlasCollector()
        assert not c.enabled
        assert not c.active
        c.begin_run(note="ignored")
        c.begin_frame(0, 32, 24)
        assert not c.active
        c.observe_sparse_forward(np.array([[0, 0]]), np.array([0]),
                                 np.array([0]), np.array([1]))
        c.end_frame()
        assert c.records == []

    def test_observations_outside_frame_are_ignored(self):
        c = AtlasCollector()
        c.enable()
        c.begin_run()
        # No begin_frame: active stays False, observation is dropped.
        c.observe_sparse_forward(np.array([[0, 0]]), np.array([0]),
                                 np.array([0]), np.array([1]))
        assert not c.active
        assert len(c.records) == 1  # header only
        c.disable()

    def test_frame_record_contents(self):
        c = AtlasCollector(tile=8)
        c.enable()
        c.begin_run(sequence="synthetic")
        _observe_simple(c)
        c.disable()

        header, frame = c.records
        assert header["type"] == "header"
        assert header["schema_version"] == ATLAS_SCHEMA_VERSION
        assert header["tile"] == 8
        assert header["channels"] == list(CHANNELS)
        assert header["meta"]["sequence"] == "synthetic"

        assert frame["type"] == "frame"
        assert frame["grid"] == [3, 4]  # ceil(24/8) x ceil(32/8)
        grids = {name: np.asarray(frame["channels"][name])
                 for name in CHANNELS}
        assert grids["sampled"].sum() == 4
        assert grids["candidates"].sum() == 6
        assert grids["contribs"].sum() == 5
        assert grids["atomics"].sum() == 5
        obs = frame["observed"]["tracking"]
        assert obs["candidates"] == 6
        assert obs["contribs"] == 5
        assert obs["atomics"] == 5
        # Pixel (1,1) and (9,1) live in different 8px atlas tiles.
        assert grids["sampled"][0][0] == 1
        assert grids["sampled"][0][1] == 1

    def test_empty_frame_records_zero_grids(self):
        c = AtlasCollector(tile=8)
        c.enable()
        c.begin_frame(0, 16, 16)
        c.end_frame()
        c.disable()
        (frame,) = c.records
        for name in CHANNELS:
            assert np.asarray(frame["channels"][name]).sum() == 0
        assert frame["observed"] == {}

    def test_record_to_context_manager(self):
        c = AtlasCollector()
        with c.record_to(tile=4) as cc:
            assert cc.enabled
            assert cc.tile == 4
            _observe_simple(cc)
        assert not c.enabled
        assert len(c.records) == 1


class TestDeterminism:
    def test_identical_observations_identical_bytes(self):
        blobs = []
        for _ in range(2):
            c = AtlasCollector(tile=8)
            c.enable()
            c.begin_run(sequence="synthetic", frames=1)
            _observe_simple(c)
            c.disable()
            blobs.append(c.to_bytes())
        assert blobs[0] == blobs[1]
        # gzip(mtime=0): serializing the same collector twice is stable.
        c = AtlasCollector(tile=8)
        c.enable()
        _observe_simple(c)
        c.disable()
        assert c.to_bytes() == c.to_bytes()

    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "atlas.jsonl.gz"
        c = AtlasCollector(tile=8)
        c.enable(path=str(path))
        c.begin_run(sequence="synthetic")
        _observe_simple(c)
        c.disable()
        assert path.exists()

        log = read_atlas(str(path))
        assert log.num_frames == 1
        assert log.tile == 8
        assert log.grid_shape == (3, 4)
        assert log.stages() == ["tracking"]
        direct = AtlasLog.from_collector(c)
        for name in CHANNELS:
            assert np.array_equal(log.frame_grid(0, name),
                                  direct.frame_grid(0, name))

    def test_read_plain_jsonl(self, tmp_path):
        c = AtlasCollector()
        c.enable()
        c.begin_run()
        _observe_simple(c)
        c.disable()
        path = tmp_path / "atlas.jsonl"
        body = "".join(json.dumps(r, sort_keys=True) + "\n"
                       for r in c.records)
        path.write_text(body)
        log = read_atlas(str(path))
        assert log.num_frames == 1

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "header",
                                    "schema_version": 999}) + "\n")
        with pytest.raises(ValueError, match="schema mismatch"):
            read_atlas(str(path))


class TestAggregation:
    def test_empty_log_edges(self):
        log = AtlasLog([])
        assert log.num_frames == 0
        assert log.grid_shape == (0, 0)
        assert log.stages() == []
        assert log.sum_atlas("candidates").shape == (0, 0)
        assert log.mean_atlas("candidates").shape == (0, 0)
        assert log.max_atlas("candidates").shape == (0, 0)
        counts, edges = log.occupancy_histogram("candidates")
        assert sum(counts) >= 0 and len(edges) == len(counts) + 1
        assert log.imbalance("candidates") == []
        assert log.observed_totals() == {}
        assert log.measured_vs_modeled() == {}

    def test_zero_work_frame_aggregates(self):
        c = AtlasCollector(tile=8)
        c.enable()
        c.begin_frame(0, 16, 16)
        c.end_frame()
        c.disable()
        log = AtlasLog.from_collector(c)
        assert log.num_frames == 1
        assert log.sum_atlas("candidates").sum() == 0
        assert np.all(log.alpha_pass_atlas() == 0.0)
        assert log.imbalance("candidates") == [0.0]

    def test_mean_max_and_alpha_pass(self):
        c = AtlasCollector(tile=8)
        c.enable()
        _observe_simple(c, frame=0)
        _observe_simple(c, frame=1)
        c.disable()
        log = AtlasLog.from_collector(c)
        assert log.num_frames == 2
        s = log.sum_atlas("candidates")
        assert s.sum() == 12
        assert np.array_equal(log.max_atlas("candidates") * 2, s)
        assert np.allclose(log.mean_atlas("candidates") * 2, s)
        rate = log.alpha_pass_atlas()
        assert rate.min() >= 0.0 and rate.max() <= 1.0
        # Global rate matches the totals: 5 contribs over 6 candidates.
        nz = log.sum_atlas("candidates") > 0
        total = (rate * log.sum_atlas("candidates"))[nz].sum()
        assert np.isclose(total / 6 / 2, 5.0 / 6.0)

    def test_observed_totals_accumulate_across_frames(self):
        c = AtlasCollector(tile=8)
        c.enable()
        _observe_simple(c, frame=0)
        _observe_simple(c, frame=1)
        c.disable()
        totals = AtlasLog.from_collector(c).observed_totals()
        assert totals["tracking"]["candidates"] == 12
        assert totals["tracking"]["contribs"] == 10
        assert totals["tracking"]["atomics"] == 10


class TestRouting:
    def test_use_collector_rebinds_and_restores(self):
        original = atlas_mod.current
        c = AtlasCollector()
        c.enable()
        c.begin_frame(0, 16, 16)
        with atlas_mod.use_collector(c) as active:
            assert active is c
            assert atlas_mod.current is c
            atlas_mod.set_stage("tracking")
            c.observe_sparse_forward(np.array([[0, 0]]), np.array([0]),
                                     np.array([0]), np.array([1]))
        assert atlas_mod.current is original
        c.end_frame()
        c.disable()
        (frame,) = c.records
        assert frame["observed"]["tracking"]["candidates"] == 1

    def test_use_collector_none_keeps_routing(self):
        before = atlas_mod.current
        with atlas_mod.use_collector(None) as active:
            assert active is before
            assert atlas_mod.current is before
        assert atlas_mod.current is before


class TestHeatmaps:
    def test_format_heatmap_blank_for_zero(self):
        out = format_heatmap(np.zeros((2, 3)))
        assert out == "   \n   "

    def test_format_heatmap_empty(self):
        assert format_heatmap(np.zeros((0, 0))) == "(empty grid)"

    def test_format_heatmap_peak_char(self):
        out = format_heatmap(np.array([[0, 1], [2, 4]]))
        rows = out.split("\n")
        assert rows[0][0] == " "     # exact zero stays blank
        assert rows[1][1] == "█"     # the peak gets the top ramp char

    def test_heatmap_html_structure(self):
        html = heatmap_html(np.array([[0.0, 1.0]]), label="demo")
        assert html.startswith('<table class="heatmap"')
        assert "<caption>demo</caption>" in html
        assert html.count("<td") == 2


class TestSLAMIntegration:
    @classmethod
    def setup_class(cls):
        cls.sequence = make_replica_sequence("room0", n_frames=4,
                                             width=32, height=24)
        cls.collector = AtlasCollector(tile=8)
        cls.collector.enable()
        system = SLAMSystem("splatam", mode="sparse", seed=0)
        cls.result = system.run(cls.sequence, atlas=cls.collector)
        cls.collector.disable()
        cls.log = AtlasLog.from_collector(cls.collector)

    def test_every_frame_recorded(self):
        assert self.log.num_frames == len(self.sequence)
        assert self.log.header["meta"]["sequence"] == "room0"

    def test_observed_matches_pipeline_counters_exactly(self):
        """Spatial bins and scalar counters count the same pair sets."""
        mvm = self.log.measured_vs_modeled()
        assert set(mvm) >= {"mapping"}
        for stage, row in mvm.items():
            assert row["delta_candidates"] == 0, stage
            assert row["delta_contribs"] == 0, stage
            assert row["observed_atomics"] == row["counter_atomics"], stage
            assert 0.0 < row["alpha_pass_rate"] <= 1.0

    def test_run_totals_match_stage_stats(self):
        totals = self.log.observed_totals()
        ss = self.result.stage_stats
        for stage, fwd_key, bwd_key in (
                ("tracking", "tracking_fwd", "tracking_bwd"),
                ("mapping", "mapping_fwd", "mapping_bwd")):
            assert (totals[stage]["candidates"]
                    == ss[fwd_key].num_candidate_pairs)
            assert (totals[stage]["contribs"]
                    == ss[fwd_key].num_contrib_pairs)
            assert totals[stage]["atomics"] == ss[bwd_key].num_atomic_adds

    def test_model_section_present(self):
        model = self.log.model_totals()
        assert "mapping" in model
        assert model["mapping"]["fwd_cycles"] > 0
        assert model["mapping"]["fwd_dram_bytes"] > 0

    def test_artifact_is_gzip_jsonl(self, tmp_path):
        path = tmp_path / "slam_atlas.jsonl.gz"
        self.collector.write(str(path))
        blob = path.read_bytes()
        assert blob[:2] == b"\x1f\x8b"
        lines = gzip.decompress(blob).decode("utf-8").splitlines()
        assert len(lines) == 1 + self.log.num_frames
