"""Foveated sampling extension: density structure and pipeline fit."""

import numpy as np
import pytest

from repro.core import foveation_tile_map, sample_foveated_pixels
from repro.core.pixel_pipeline import render_sparse
from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.render import render_full

W, H = 96, 64


class TestTileMap:
    def test_fovea_is_finest(self):
        tm = foveation_tile_map(W, H, (W / 2, H / 2), fovea_tile=2,
                                periphery_tile=16)
        cy, cx = np.unravel_index(np.argmin(tm), tm.shape)
        centre = np.array(tm.shape) / 2
        assert np.linalg.norm(np.array([cy, cx]) - centre + 0.5) < 2

    def test_monotone_with_eccentricity(self):
        tm = foveation_tile_map(W, H, (0, 0), fovea_tile=2,
                                periphery_tile=16)
        assert tm[0, 0] <= tm[-1, -1]

    def test_bounded_by_extremes(self):
        tm = foveation_tile_map(W, H, (W / 2, H / 2), fovea_tile=4,
                                periphery_tile=16)
        assert tm.min() >= 4
        assert tm.max() <= 16

    def test_validation(self):
        with pytest.raises(ValueError):
            foveation_tile_map(W, H, (0, 0), fovea_tile=0)
        with pytest.raises(ValueError):
            foveation_tile_map(W, H, (0, 0), fovea_tile=3, periphery_tile=16)
        with pytest.raises(ValueError):
            foveation_tile_map(W, H, (0, 0), fovea_tile=16, periphery_tile=4)


class TestSampling:
    def test_pixels_in_bounds_and_unique(self):
        px = sample_foveated_pixels(W, H, (W / 2, H / 2),
                                    np.random.default_rng(0))
        assert np.all((px[:, 0] >= 0) & (px[:, 0] < W))
        assert np.all((px[:, 1] >= 0) & (px[:, 1] < H))
        assert len(np.unique(px, axis=0)) == len(px)

    def test_density_between_uniform_extremes(self):
        px = sample_foveated_pixels(W, H, (W / 2, H / 2),
                                    np.random.default_rng(0),
                                    fovea_tile=2, periphery_tile=16)
        n_fine = (W // 2) * (H // 2)
        n_coarse = (W // 16) * (H // 16)
        assert n_coarse < len(px) < n_fine

    def test_fovea_denser_than_periphery(self):
        px = sample_foveated_pixels(W, H, (0, 0), np.random.default_rng(1))
        d = np.linalg.norm(px.astype(float), axis=1)
        near = (d < 24).sum() / (np.pi * 24 ** 2 / 4)     # quarter disc
        far_area = W * H - np.pi * 48 ** 2 / 4
        far = (d > 48).sum() / max(far_area, 1)
        assert near > 2 * far

    def test_moving_gaze_moves_density(self):
        rng = np.random.default_rng(2)
        left = sample_foveated_pixels(W, H, (0, H / 2), rng)
        right = sample_foveated_pixels(W, H, (W, H / 2), rng)
        assert left[:, 0].mean() < right[:, 0].mean()

    def test_seeded(self):
        a = sample_foveated_pixels(W, H, (10, 10), np.random.default_rng(3))
        b = sample_foveated_pixels(W, H, (10, 10), np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestPipelineIntegration:
    def test_renders_through_pixel_pipeline(self):
        rng = np.random.default_rng(0)
        n = 80
        cloud = GaussianCloud.create(
            means=np.stack([rng.uniform(-2, 2, n), rng.uniform(-1.5, 1.5, n),
                            rng.uniform(1, 5, n)], axis=-1),
            scales=rng.uniform(0.05, 0.3, n),
            opacities=rng.uniform(0.2, 0.9, n),
            colors=rng.uniform(0, 1, (n, 3)),
        )
        cam = Camera(Intrinsics.from_fov(W, H, 75.0))
        bg = np.full(3, 0.05)
        px = sample_foveated_pixels(W, H, (W / 2, H / 2),
                                    np.random.default_rng(1))
        sparse = render_sparse(cloud, cam, px, bg)
        full = render_full(cloud, cam, bg, keep_cache=False)
        u, v = px[:, 0], px[:, 1]
        assert np.allclose(sparse.color, full.color[v, u], atol=1e-12)
