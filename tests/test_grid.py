"""Voxel grid: conservativeness of frustum and radius queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.gaussians.grid import VoxelGrid, frustum_planes
from repro.render import project_gaussians


def random_means(n=300, seed=0, box=5.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-box, box, (n, 3))


class TestFrustumPlanes:
    def test_point_on_axis_inside(self):
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        planes = frustum_planes(cam, near=0.1, far=50.0)
        p = np.array([0.0, 0.0, 2.0])
        assert np.all(planes[:, :3] @ p + planes[:, 3] >= 0)

    def test_point_behind_outside(self):
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        planes = frustum_planes(cam)
        p = np.array([0.0, 0.0, -1.0])
        assert np.any(planes[:, :3] @ p + planes[:, 3] < 0)

    def test_point_past_far_outside(self):
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        planes = frustum_planes(cam, far=10.0)
        p = np.array([0.0, 0.0, 20.0])
        assert np.any(planes[:, :3] @ p + planes[:, 3] < 0)

    def test_wide_lateral_point_outside(self):
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        planes = frustum_planes(cam)
        p = np.array([10.0, 0.0, 1.0])  # far outside the 70-degree cone
        assert np.any(planes[:, :3] @ p + planes[:, 3] < 0)

    def test_respects_pose(self):
        from repro.datasets.trajectory import look_at
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0),
                     look_at(np.array([0.0, 0, 0]), np.array([5.0, 0, 0])))
        planes = frustum_planes(cam)
        ahead = np.array([2.0, 0.0, 0.0])
        behind = np.array([-2.0, 0.0, 0.0])
        assert np.all(planes[:, :3] @ ahead + planes[:, 3] >= 0)
        assert np.any(planes[:, :3] @ behind + planes[:, 3] < 0)


class TestBuild:
    def test_indexes_everything(self):
        means = random_means()
        grid = VoxelGrid.build(means, cell_size=0.5)
        assert grid.num_indexed == len(means)

    def test_rejects_bad_cell(self):
        with pytest.raises(ValueError):
            VoxelGrid.build(np.zeros((3, 3)), cell_size=0.0)

    def test_points_land_in_their_cell(self):
        means = np.array([[0.1, 0.1, 0.1], [1.6, 0.1, 0.1]])
        grid = VoxelGrid.build(means, cell_size=1.0)
        assert set(map(tuple, grid.cells)) == {(0, 0, 0), (1, 0, 0)}


class TestFrustumQuery:
    @given(st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_conservative_superset_of_projection(self, seed):
        """Every Gaussian the renderer would keep must be returned."""
        rng = np.random.default_rng(seed)
        n = 120
        means = rng.uniform(-4, 4, (n, 3))
        scales = rng.uniform(0.02, 0.2, n)
        cloud = GaussianCloud.create(means, scales,
                                     np.full(n, 0.5), np.zeros((n, 3)))
        cam = Camera(Intrinsics.from_fov(48, 36, 75.0))
        grid = VoxelGrid.build(means, cell_size=0.8,
                               max_extent=3.5 * scales.max())
        candidates = set(grid.query_frustum(cam, near=0.01, far=100.0).tolist())
        visible = set(project_gaussians(cloud, cam).source_index.tolist())
        assert visible.issubset(candidates)

    def test_prunes_behind_camera(self):
        means = np.concatenate([
            np.tile([0.0, 0.0, 2.0], (10, 1)),
            np.tile([0.0, 0.0, -20.0], (10, 1)),
        ])
        grid = VoxelGrid.build(means, cell_size=0.5)
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        idx = grid.query_frustum(cam)
        assert set(idx.tolist()) == set(range(10))

    def test_empty_grid(self):
        grid = VoxelGrid.build(np.zeros((0, 3)), cell_size=1.0)
        cam = Camera(Intrinsics.from_fov(32, 24, 70.0))
        assert grid.query_frustum(cam).size == 0


class TestRadiusQuery:
    def test_finds_neighbours(self):
        means = random_means(seed=3)
        grid = VoxelGrid.build(means, cell_size=0.5)
        centre = means[0]
        idx = grid.query_radius(centre, 1.0)
        truth = np.nonzero(np.linalg.norm(means - centre, axis=1) <= 1.0)[0]
        assert set(truth.tolist()).issubset(set(idx.tolist()))

    def test_far_point_returns_nothing(self):
        means = random_means(seed=4, box=1.0)
        grid = VoxelGrid.build(means, cell_size=0.5)
        assert grid.query_radius(np.array([100.0, 100, 100]), 0.5).size == 0
