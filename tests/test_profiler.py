"""Tests for the continuous profiler and the observability-overhead gate.

Covers the tracer's CPU-time and tracemalloc extensions
(repro.obs.tracing), the profiler front end (repro.obs.prof), the
``overhead`` section of the regress comparator (repro.obs.regress), and
the record-gated ``PipelineStats.summary()`` / metrics-ingest fixes that
rode along.
"""

import json
import time

import numpy as np
import pytest

from repro.obs import prof
from repro.obs.metrics import MetricsRegistry, ingest_pipeline_stats
from repro.obs.regress import (DEFAULT_SECTIONS, TolerancePolicy,
                               _compare_overhead, compare_runs)
from repro.obs.tracing import Tracer
from repro.render.stats import PipelineStats


def _busy(ms: float = 2.0) -> float:
    """Burn CPU (not sleep) so process_time advances measurably."""
    deadline = time.process_time() + ms / 1e3
    acc = 0.0
    while time.process_time() < deadline:
        acc += sum(i * i for i in range(100))
    return acc


class TestCpuTime:
    def test_span_records_cpu_fields(self):
        t = Tracer()
        with t.capture():
            with t.span("outer"):
                _busy(2.0)
                with t.span("inner"):
                    _busy(2.0)
        inner, outer = t.records
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.cpu_time > 0.0
        assert outer.cpu_time >= inner.cpu_time
        # Self CPU excludes the child's share.
        assert outer.self_cpu == pytest.approx(
            outer.cpu_time - inner.cpu_time, abs=1e-9)
        assert inner.self_cpu == pytest.approx(inner.cpu_time, abs=1e-9)
        # Memory profiling was off: alloc fields stay None.
        assert inner.alloc_bytes is None and inner.peak_bytes is None

    def test_stage_table_always_has_cpu_columns(self):
        t = Tracer()
        with t.capture():
            with t.span("work"):
                _busy(1.0)
        (row,) = t.stage_table()
        assert row["cpu_total_s"] >= row["cpu_self_s"] >= 0.0
        assert "alloc_bytes" not in row


class TestMemoryProfiling:
    def test_alloc_and_peak_deltas(self):
        t = Tracer()
        with t.capture(memory=True):
            with t.span("alloc"):
                block = np.ones(512 * 1024, dtype=np.uint8)
                del block
        assert not t.profile_memory  # restored after capture
        (rec,) = t.records
        assert rec.peak_bytes is not None
        assert rec.peak_bytes >= 512 * 1024
        assert rec.alloc_bytes is not None  # net delta (freed: near zero)

    def test_retained_allocation_is_positive_delta(self):
        t = Tracer()
        keep = []
        with t.capture(memory=True):
            with t.span("retain"):
                keep.append(np.ones(256 * 1024, dtype=np.uint8))
        (rec,) = t.records
        assert rec.alloc_bytes >= 256 * 1024
        keep.clear()

    def test_child_peak_propagates_to_parent(self):
        t = Tracer()
        with t.capture(memory=True):
            with t.span("parent"):
                with t.span("child"):
                    block = np.ones(512 * 1024, dtype=np.uint8)
                    del block
        child, parent = t.records
        assert parent.peak_bytes >= child.peak_bytes

    def test_stage_table_mem_columns_when_on(self):
        t = Tracer()
        with t.capture(memory=True):
            with t.span("work"):
                _busy(0.5)
        (row,) = t.stage_table()
        assert "alloc_bytes" in row and "peak_bytes" in row


class TestProfFrontend:
    def _traced(self, memory=False):
        t = Tracer()
        with prof.profile(memory=memory, tracer=t):
            with t.span("heavy"):
                _busy(3.0)
            with t.span("light"):
                _busy(0.5)
        return t

    def test_top_spans_ranked_by_self_time(self):
        t = self._traced()
        rows = prof.top_spans(t, n=10)
        assert rows[0]["span"] == "heavy"
        assert [r["span"] for r in rows] == ["heavy", "light"]
        assert prof.top_spans(t, n=1) == rows[:1]

    def test_top_spans_rejects_unknown_column(self):
        t = self._traced()
        with pytest.raises(ValueError, match="unknown sort column"):
            prof.top_spans(t, by="nonsense")

    def test_format_top_table_plain_and_memory(self):
        plain = prof.format_top_table(self._traced(), n=5)
        assert "| span | count | self ms | cpu self ms |" in plain
        assert "alloc" not in plain
        mem = prof.format_top_table(self._traced(memory=True), n=5,
                                    title="profile")
        assert mem.startswith("### profile")
        assert "alloc | peak |" in mem

    def test_format_top_table_empty(self):
        out = prof.format_top_table(Tracer(), n=5)
        assert "(no spans recorded)" in out

    def test_write_profile_round_trip(self, tmp_path):
        t = self._traced(memory=True)
        path = tmp_path / "profile.json"
        count = prof.write_profile(str(path), tracer=t)
        assert count == 2
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == prof.PROFILE_SCHEMA_VERSION
        assert payload["sorted_by"] == "self_s"
        assert payload["memory_profiled"] is True
        assert {row["span"] for row in payload["spans"]} \
            == {"heavy", "light"}


def _payload(ratio, mad=0.01, name="obs_overhead"):
    return {
        "schema_version": 1,
        "config": {"size": "tiny"},
        "scenarios": {
            name: {
                "counters": {"frames": 6},
                "model": {},
                "overhead": {"ratio": ratio, "mad": mad, "samples": [ratio],
                             "repetitions": 1},
            },
        },
    }


class TestOverheadBudget:
    def test_overhead_in_default_sections(self):
        assert "overhead" in DEFAULT_SECTIONS

    def test_within_budget_is_ok(self):
        [f] = _compare_overhead("s", {"ratio": 1.2, "mad": 0.02},
                                {"ratio": 1.5, "mad": 0.02},
                                TolerancePolicy())
        assert f.status == "ok"

    def test_exceeding_budget_regresses(self):
        # slack = max(0.5, 1.2*0.35, 4*0.02) = 0.5 -> budget 1.7x
        [f] = _compare_overhead("s", {"ratio": 1.2, "mad": 0.02},
                                {"ratio": 1.8, "mad": 0.02},
                                TolerancePolicy())
        assert f.status == "regressed"
        assert "budget" in f.detail

    def test_large_improvement_reported(self):
        [f] = _compare_overhead("s", {"ratio": 2.5, "mad": 0.0},
                                {"ratio": 1.1, "mad": 0.0},
                                TolerancePolicy())
        assert f.status == "improved"

    def test_extra_ratios_share_the_budget(self):
        findings = _compare_overhead(
            "s",
            {"ratio": 1.2, "mad": 0.0,
             "extra": {"bus_ratio": {"ratio": 1.1, "mad": 0.0}}},
            {"ratio": 1.2, "mad": 0.0,
             "extra": {"bus_ratio": {"ratio": 1.9, "mad": 0.0}}},
            TolerancePolicy())
        by_metric = {f.metric: f for f in findings}
        assert by_metric["overhead.ratio"].status == "ok"
        assert by_metric["overhead.bus_ratio"].status == "regressed"

    def test_extra_new_in_current_passes_removed_fails(self):
        base = {"ratio": 1.2, "mad": 0.0,
                "extra": {"old_leg": {"ratio": 1.1, "mad": 0.0}}}
        cur = {"ratio": 1.2, "mad": 0.0,
               "extra": {"new_leg": {"ratio": 1.1, "mad": 0.0}}}
        by_metric = {f.metric: f for f in
                     _compare_overhead("s", base, cur, TolerancePolicy())}
        assert by_metric["overhead.new_leg"].status == "new"
        assert by_metric["overhead.old_leg"].status == "removed"

    def test_compare_runs_gates_on_section_presence(self):
        base, cur = _payload(1.2), _payload(1.3)
        report = compare_runs(cur, base)
        kinds = {f.kind for f in report.findings}
        assert "overhead" in kinds
        assert report.passed

        # Baseline without the section: comparison silently skipped.
        del base["scenarios"]["obs_overhead"]["overhead"]
        report = compare_runs(cur, base)
        assert "overhead" not in {f.kind for f in report.findings}

    def test_compare_runs_fails_over_budget(self):
        report = compare_runs(_payload(2.0), _payload(1.1))
        assert not report.passed
        assert report.exit_code != 0
        assert any(f.kind == "overhead" and f.status == "regressed"
                   for f in report.findings)


class TestRecordGatedSummary:
    def _stats(self, record):
        s = PipelineStats(record_per_pixel=record)
        s.num_pixels = 4
        s.num_candidate_pairs = 10
        s.num_contrib_pairs = 5
        if record:
            s.per_pixel_contribs.extend([1, 2, 1, 1])
        return s

    def test_summary_none_when_records_off(self):
        summary = self._stats(record=False).summary()
        assert summary["mean_contribs_per_pixel"] is None
        assert summary["warp_utilization"] is None
        assert summary["alpha_pass_rate"] == 0.5

    def test_summary_real_values_when_records_on(self):
        summary = self._stats(record=True).summary()
        assert summary["mean_contribs_per_pixel"] == 1.25
        assert summary["warp_utilization"] is not None

    def test_merge_propagates_record_flag(self):
        merged = PipelineStats(record_per_pixel=True)
        merged.merge(self._stats(record=False))
        assert merged.record_per_pixel is False
        assert merged.summary()["warp_utilization"] is None

    def test_metrics_ingest_skips_none_gauges(self):
        reg = MetricsRegistry()
        ingest_pipeline_stats("stage", self._stats(record=False),
                              registry=reg)
        assert "stage.num_candidate_pairs" in reg.counters
        assert "stage.alpha_pass_rate" in reg.gauges
        assert "stage.warp_utilization" not in reg.gauges
        assert "stage.mean_contribs_per_pixel" not in reg.gauges
