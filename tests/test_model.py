"""GaussianCloud container: validation, views, and the packed interface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import GaussianCloud, inverse_sigmoid, sigmoid


def make_cloud(n=5, seed=0):
    rng = np.random.default_rng(seed)
    return GaussianCloud.create(
        means=rng.normal(size=(n, 3)),
        scales=rng.uniform(0.01, 0.5, n),
        opacities=rng.uniform(0.1, 0.9, n),
        colors=rng.uniform(0, 1, (n, 3)),
    )


class TestSigmoid:
    @given(st.floats(-30, 30, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_range(self, x):
        y = sigmoid(np.array([x]))[0]
        assert 0.0 <= y <= 1.0

    @given(st.floats(1e-5, 1 - 1e-5))
    @settings(max_examples=50, deadline=None)
    def test_inverse_roundtrip(self, p):
        assert np.isclose(sigmoid(inverse_sigmoid(np.array([p])))[0], p,
                          atol=1e-9)

    def test_extreme_stability(self):
        assert sigmoid(np.array([-1000.0]))[0] == 0.0
        assert sigmoid(np.array([1000.0]))[0] == 1.0

    def test_inverse_sigmoid_clips(self):
        assert np.isfinite(inverse_sigmoid(np.array([0.0]))[0])
        assert np.isfinite(inverse_sigmoid(np.array([1.0]))[0])


class TestConstruction:
    def test_create_natural_params(self):
        cloud = make_cloud()
        assert np.all(cloud.scales > 0)
        assert np.all((cloud.opacities > 0) & (cloud.opacities < 1))

    def test_create_roundtrips_values(self):
        scales = np.array([0.1, 0.2])
        opac = np.array([0.3, 0.7])
        cloud = GaussianCloud.create(np.zeros((2, 3)), scales, opac,
                                     np.zeros((2, 3)))
        assert np.allclose(cloud.scales, scales)
        assert np.allclose(cloud.opacities, opac, atol=1e-9)

    def test_len(self):
        assert len(make_cloud(7)) == 7

    def test_empty(self):
        cloud = GaussianCloud.empty()
        assert len(cloud) == 0
        assert cloud.pack().shape == (0,)

    @pytest.mark.parametrize("field,shape", [
        ("means", (4, 2)),
        ("log_scales", (3,)),
        ("logit_opacities", (5,)),
        ("colors", (4, 4)),
    ])
    def test_shape_validation(self, field, shape):
        kwargs = dict(
            means=np.zeros((4, 3)),
            log_scales=np.zeros(4),
            logit_opacities=np.zeros(4),
            colors=np.zeros((4, 3)),
        )
        kwargs[field] = np.zeros(shape)
        with pytest.raises(ValueError):
            GaussianCloud(**kwargs)


class TestViews:
    def test_copy_is_deep(self):
        cloud = make_cloud()
        dup = cloud.copy()
        dup.means[0, 0] = 99.0
        assert cloud.means[0, 0] != 99.0

    def test_subset(self):
        cloud = make_cloud(6)
        sub = cloud.subset(np.array([1, 3]))
        assert len(sub) == 2
        assert np.allclose(sub.means[0], cloud.means[1])

    def test_prune(self):
        cloud = make_cloud(6)
        keep = np.array([True, False, True, False, True, False])
        pruned = cloud.prune(keep)
        assert len(pruned) == 3
        assert np.allclose(pruned.means, cloud.means[keep])

    def test_extend(self):
        a, b = make_cloud(3, seed=0), make_cloud(4, seed=1)
        joined = a.extend(b)
        assert len(joined) == 7
        assert np.allclose(joined.means[:3], a.means)
        assert np.allclose(joined.colors[3:], b.colors)

    def test_extend_empty(self):
        a = make_cloud(3)
        joined = a.extend(GaussianCloud.empty())
        assert len(joined) == 3


class TestPackUnpack:
    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, n):
        cloud = make_cloud(n, seed=n)
        recovered = cloud.unpack(cloud.pack())
        assert np.allclose(recovered.means, cloud.means)
        assert np.allclose(recovered.log_scales, cloud.log_scales)
        assert np.allclose(recovered.logit_opacities, cloud.logit_opacities)
        assert np.allclose(recovered.colors, cloud.colors)

    def test_pack_length(self):
        cloud = make_cloud(5)
        assert cloud.pack().shape == (5 * 8,)

    def test_unpack_rejects_wrong_size(self):
        cloud = make_cloud(5)
        with pytest.raises(ValueError):
            cloud.unpack(np.zeros(13))

    def test_unpack_is_new_object(self):
        cloud = make_cloud(2)
        vec = cloud.pack()
        vec[0] += 1.0
        other = cloud.unpack(vec)
        assert other.means[0, 0] == cloud.means[0, 0] + 1.0
        assert cloud.means[0, 0] != other.means[0, 0]
