"""SE(3)/SO(3) math: exp/log consistency, group laws, and Jacobians."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import (
    apply_se3,
    hat,
    point_jacobian_wrt_twist,
    quat_multiply,
    quat_normalize,
    quat_to_rotmat,
    random_rotation,
    relative_pose,
    rotmat_to_quat,
    se3_exp,
    se3_inverse,
    se3_log,
    so3_exp,
    so3_log,
    vee,
)

unit_floats = st.floats(-1.0, 1.0, allow_nan=False, allow_infinity=False)


def twists(max_angle=np.pi - 0.2):
    return st.lists(unit_floats, min_size=6, max_size=6).map(
        lambda v: np.asarray(v) * np.array([1, 1, 1,
                                            max_angle / np.sqrt(3),
                                            max_angle / np.sqrt(3),
                                            max_angle / np.sqrt(3)]))


class TestHatVee:
    def test_hat_produces_cross_product(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.normal(size=3), rng.normal(size=3)
            assert np.allclose(hat(a) @ b, np.cross(a, b))

    def test_hat_is_skew(self):
        m = hat([1.0, 2.0, 3.0])
        assert np.allclose(m, -m.T)

    @given(st.lists(unit_floats, min_size=3, max_size=3))
    def test_vee_inverts_hat(self, v):
        v = np.asarray(v)
        assert np.allclose(vee(hat(v)), v)


class TestSO3:
    @given(twists())
    @settings(max_examples=50, deadline=None)
    def test_exp_is_rotation(self, xi):
        R = so3_exp(xi[3:])
        assert np.allclose(R @ R.T, np.eye(3), atol=1e-9)
        assert np.isclose(np.linalg.det(R), 1.0)

    @given(twists())
    @settings(max_examples=50, deadline=None)
    def test_log_inverts_exp(self, xi):
        phi = xi[3:]
        assert np.allclose(so3_log(so3_exp(phi)), phi, atol=1e-6)

    def test_exp_zero_is_identity(self):
        assert np.allclose(so3_exp(np.zeros(3)), np.eye(3))

    def test_log_identity_is_zero(self):
        assert np.allclose(so3_log(np.eye(3)), np.zeros(3))

    def test_log_near_pi(self):
        phi = np.array([np.pi - 1e-8, 0.0, 0.0])
        recovered = so3_log(so3_exp(phi))
        assert np.isclose(np.linalg.norm(recovered), np.pi, atol=1e-5)

    def test_small_angle_taylor(self):
        phi = np.array([1e-10, -2e-10, 1e-10])
        assert np.allclose(so3_exp(phi), np.eye(3) + hat(phi), atol=1e-15)


class TestSE3:
    @given(twists())
    @settings(max_examples=50, deadline=None)
    def test_log_inverts_exp(self, xi):
        assert np.allclose(se3_log(se3_exp(xi)), xi, atol=1e-6)

    @given(twists())
    @settings(max_examples=50, deadline=None)
    def test_inverse(self, xi):
        T = se3_exp(xi)
        assert np.allclose(T @ se3_inverse(T), np.eye(4), atol=1e-9)

    def test_inverse_matches_numpy(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            T = se3_exp(rng.normal(0, 0.5, 6))
            assert np.allclose(se3_inverse(T), np.linalg.inv(T))

    def test_exp_is_homogeneous(self):
        T = se3_exp(np.array([0.1, 0.2, 0.3, 0.01, 0.02, 0.03]))
        assert np.allclose(T[3], [0, 0, 0, 1])

    def test_relative_pose(self):
        rng = np.random.default_rng(2)
        a = se3_exp(rng.normal(0, 0.3, 6))
        b = se3_exp(rng.normal(0, 0.3, 6))
        assert np.allclose(a @ relative_pose(a, b), b)

    def test_apply_se3_matches_matmul(self):
        rng = np.random.default_rng(3)
        T = se3_exp(rng.normal(0, 0.4, 6))
        pts = rng.normal(size=(17, 3))
        expected = (T[:3, :3] @ pts.T).T + T[:3, 3]
        assert np.allclose(apply_se3(T, pts), expected)


class TestQuaternions:
    @given(st.lists(unit_floats, min_size=4, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_normalize_unit(self, q):
        q = np.asarray(q)
        if np.linalg.norm(q) < 1e-3:
            return
        assert np.isclose(np.linalg.norm(quat_normalize(q)), 1.0)

    def test_roundtrip_rotmat(self):
        rng = np.random.default_rng(4)
        for _ in range(30):
            R = random_rotation(rng)
            q = rotmat_to_quat(R)
            assert np.allclose(quat_to_rotmat(q), R, atol=1e-9)

    def test_multiply_matches_rotation_composition(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            q1 = quat_normalize(rng.normal(size=4))
            q2 = quat_normalize(rng.normal(size=4))
            R = quat_to_rotmat(quat_multiply(q1, q2))
            assert np.allclose(R, quat_to_rotmat(q1) @ quat_to_rotmat(q2),
                               atol=1e-9)

    def test_identity_quaternion(self):
        assert np.allclose(quat_to_rotmat(np.array([1.0, 0, 0, 0])), np.eye(3))


class TestTwistJacobian:
    def test_matches_numerical(self):
        rng = np.random.default_rng(6)
        T = se3_exp(rng.normal(0, 0.3, 6))
        p_world = rng.normal(size=(5, 3)) + np.array([0, 0, 3.0])
        w2c = se3_inverse(T)
        p_cam = apply_se3(w2c, p_world)
        J = point_jacobian_wrt_twist(p_cam)
        eps = 1e-7
        for j in range(6):
            xi = np.zeros(6)
            xi[j] = eps
            p_plus = apply_se3(se3_inverse(T @ se3_exp(xi)), p_world)
            p_minus = apply_se3(se3_inverse(T @ se3_exp(-xi)), p_world)
            num = (p_plus - p_minus) / (2 * eps)
            assert np.allclose(J[:, :, j], num, atol=1e-5)

    def test_shape(self):
        J = point_jacobian_wrt_twist(np.zeros((7, 3)))
        assert J.shape == (7, 3, 6)

    def test_translation_block_is_minus_identity(self):
        J = point_jacobian_wrt_twist(np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(J[0, :, :3], -np.eye(3))
