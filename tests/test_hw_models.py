"""GPU and accelerator performance models: workloads, stage times, shapes."""

import numpy as np
import pytest

from repro.core import sample_tracking_pixels
from repro.datasets import make_replica_sequence
from repro.gaussians import Camera
from repro.hw import (
    GauSpuAccelerator,
    GpuModel,
    GpuSpec,
    GsArchAccelerator,
    SplatonicAccelerator,
    SplatonicHwConfig,
    Workload,
    measure_iteration,
    pipelined_cycles,
    sequential_cycles,
    splatonic_area,
    StageLoad,
)

BG = np.full(3, 0.05)


@pytest.fixture(scope="module")
def workloads():
    seq = make_replica_sequence("room0", n_frames=3, width=64, height=48,
                                surface_density=10)
    frame = seq[1]
    cam = Camera(seq.intrinsics, frame.gt_pose_c2w)
    cloud = seq.gt_cloud
    pixels = sample_tracking_pixels(64, 48, 16, "random",
                                    np.random.default_rng(0))
    f_p = (1200 * 680) / (64 * 48)
    f_g = 1e5 / len(cloud)
    return {
        "dense": measure_iteration(cloud, cam, frame.color, frame.depth,
                                   "tile", background=BG).upscale(f_p, f_g),
        "orgs": measure_iteration(cloud, cam, frame.color, frame.depth,
                                  "tile_sparse", pixels,
                                  background=BG).upscale(f_p, f_g),
        "pixel": measure_iteration(cloud, cam, frame.color, frame.depth,
                                   "pixel", pixels,
                                   background=BG).upscale(f_p, f_g),
    }


class TestMeasureIteration:
    def test_modes_produce_expected_pipelines(self, workloads):
        assert workloads["dense"].pipeline == "tile"
        assert workloads["orgs"].pipeline == "tile"
        assert workloads["pixel"].pipeline == "pixel"

    def test_requires_pixels_for_sparse(self):
        seq = make_replica_sequence("room0", n_frames=2, width=24, height=18,
                                    surface_density=8)
        cam = Camera(seq.intrinsics, seq[0].gt_pose_c2w)
        with pytest.raises(ValueError):
            measure_iteration(seq.gt_cloud, cam, seq[0].color, seq[0].depth,
                              "pixel")
        with pytest.raises(ValueError):
            measure_iteration(seq.gt_cloud, cam, seq[0].color, seq[0].depth,
                              "warp9")

    def test_upscale_scales_pixel_counters(self, workloads):
        base = workloads["dense"]
        doubled = base.upscale(2.0, 1.0)
        assert doubled.fwd.num_candidate_pairs == 2 * base.fwd.num_candidate_pairs
        assert doubled.fwd.num_projected == base.fwd.num_projected
        assert len(doubled.fwd.tile_work) == 2 * len(base.fwd.tile_work)

    def test_upscale_scales_gaussian_counters(self, workloads):
        base = workloads["dense"]
        grown = base.upscale(1.0, 3.0)
        assert grown.fwd.num_projected == 3 * base.fwd.num_projected
        assert grown.fwd.num_candidate_pairs == base.fwd.num_candidate_pairs

    def test_scaled_iterations(self, workloads):
        w = workloads["dense"].scaled(10)
        assert w.iterations == 10


class TestGpuModel:
    def test_stage_times_positive(self, workloads):
        gpu = GpuModel()
        for w in workloads.values():
            t = gpu.iteration_times(w)
            for name, v in t.as_dict().items():
                assert v >= 0, name
            assert t.total > 0

    def test_dense_much_slower_than_sparse(self, workloads):
        gpu = GpuModel()
        dense = gpu.iteration_times(workloads["dense"]).total
        pixel = gpu.iteration_times(workloads["pixel"]).total
        assert dense > 5 * pixel

    def test_orgs_between_dense_and_pixel(self, workloads):
        gpu = GpuModel()
        dense = gpu.iteration_times(workloads["dense"]).total
        orgs = gpu.iteration_times(workloads["orgs"]).total
        pixel = gpu.iteration_times(workloads["pixel"]).total
        assert pixel <= orgs <= dense

    def test_raster_dominates_dense(self, workloads):
        t = GpuModel().iteration_times(workloads["dense"])
        raster_stages = (t.rasterization + t.reverse_rasterization
                         + t.aggregation)
        assert raster_stages / t.total > 0.8

    def test_pixel_pipeline_moves_alpha_to_projection(self, workloads):
        gpu = GpuModel()
        t_pix = gpu.iteration_times(workloads["pixel"])
        t_dense = gpu.iteration_times(workloads["dense"])
        assert t_pix.alpha_check_fwd == 0.0, "no alpha-check inside raster"
        # Projection's share of the forward pass must grow (Fig. 14 shape).
        assert (t_pix.projection / t_pix.forward
                > t_dense.projection / t_dense.forward)

    def test_energy_positive_and_ordered(self, workloads):
        gpu = GpuModel()
        e_dense = gpu.iteration_energy(workloads["dense"])
        e_pixel = gpu.iteration_energy(workloads["pixel"])
        assert 0 < e_pixel < e_dense

    def test_aggregation_share_rises_with_contention(self, workloads):
        lowc = GpuModel(GpuSpec(atomic_contention_scale=100.0))
        highc = GpuModel(GpuSpec(atomic_contention_scale=0.5))
        w = workloads["dense"]
        assert (highc.iteration_times(w).aggregation
                >= lowc.iteration_times(w).aggregation)

    def test_occupancy_monotone(self):
        gpu = GpuModel()
        assert gpu._occupancy(1) < gpu._occupancy(64) <= 1.0
        assert gpu._occupancy(1e9) == 1.0


class TestSplatonicAccelerator:
    def test_report_fields(self, workloads):
        rep = SplatonicAccelerator().iteration_report(workloads["pixel"])
        assert rep.total_s > 0
        assert rep.energy_j > 0
        assert "projection" in rep.stage_seconds
        assert "aggregation" in rep.stage_seconds

    def test_rejects_tile_workload(self, workloads):
        with pytest.raises(ValueError):
            SplatonicAccelerator().iteration_report(workloads["dense"])

    def test_beats_gpu_sparse(self, workloads):
        gpu_t = GpuModel().iteration_times(workloads["pixel"]).total
        rep = SplatonicAccelerator().iteration_report(workloads["pixel"])
        assert rep.total_s < gpu_t

    def test_more_projection_units_not_slower(self, workloads):
        w = workloads["pixel"]
        few = SplatonicAccelerator(SplatonicHwConfig(projection_units=2))
        many = SplatonicAccelerator(SplatonicHwConfig(projection_units=16))
        assert many.iteration_report(w).total_s <= few.iteration_report(w).total_s

    def test_ablations_cost_cycles(self, workloads):
        w = workloads["pixel"]
        base = SplatonicAccelerator().iteration_report(w).total_s
        for flag in ("preemptive_alpha", "gamma_cache",
                     "scoreboard_aggregation", "direct_bbox_indexing"):
            cfg = SplatonicHwConfig(**{flag: False})
            degraded = SplatonicAccelerator(cfg).iteration_report(w).total_s
            assert degraded >= base * 0.999, f"disabling {flag} cannot speed up"

    def test_energy_scales_with_node(self, workloads):
        w = workloads["pixel"]
        at8 = SplatonicAccelerator(
            SplatonicHwConfig(node_nm=8)).iteration_report(w).energy_j
        at16 = SplatonicAccelerator(
            SplatonicHwConfig(node_nm=16)).iteration_report(w).energy_j
        assert at8 < at16


class TestBaselineAccelerators:
    def test_gsarch_runs_tile_workloads(self, workloads):
        rep = GsArchAccelerator().iteration_report(workloads["dense"])
        assert rep.total_s > 0

    def test_gsarch_rejects_pixel(self, workloads):
        with pytest.raises(ValueError):
            GsArchAccelerator().iteration_report(workloads["pixel"])

    def test_gauspu_rejects_pixel(self, workloads):
        with pytest.raises(ValueError):
            GauSpuAccelerator().iteration_report(workloads["pixel"])

    def test_sparse_sampling_helps_baselines(self, workloads):
        for accel in (GsArchAccelerator(), GauSpuAccelerator()):
            dense = accel.iteration_report(workloads["dense"]).total_s
            sparse = accel.iteration_report(workloads["orgs"]).total_s
            assert sparse < dense

    def test_splatonic_beats_baselines_when_sparse(self, workloads):
        sp = SplatonicAccelerator().iteration_report(workloads["pixel"])
        gs = GsArchAccelerator().iteration_report(workloads["orgs"])
        gp = GauSpuAccelerator().iteration_report(workloads["orgs"])
        assert sp.total_s < gs.total_s
        assert sp.total_s < gp.total_s
        assert sp.energy_j < gs.energy_j
        assert sp.energy_j < gp.energy_j

    def test_gauspu_charges_gpu_frontend(self, workloads):
        rep = GauSpuAccelerator().iteration_report(workloads["dense"])
        assert rep.stage_seconds["gpu_projection"] > 0
        assert rep.stage_seconds["gpu_sorting"] > 0


class TestPipelineComposition:
    def test_pipelined_is_max(self):
        stages = [StageLoad("a", 100), StageLoad("b", 250), StageLoad("c", 50)]
        b = pipelined_cycles(stages)
        assert b.total == 250
        assert b.bottleneck == "b"

    def test_sequential_is_sum(self):
        stages = [StageLoad("a", 100), StageLoad("b", 250)]
        assert sequential_cycles(stages).total == 350

    def test_fill_latency(self):
        assert pipelined_cycles([StageLoad("a", 10)], fill_latency=5).total == 15

    def test_share(self):
        b = pipelined_cycles([StageLoad("a", 75), StageLoad("b", 25)])
        assert np.isclose(b.share("a"), 0.75)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            StageLoad("a", -1)


class TestArea:
    def test_total_near_paper(self):
        a = splatonic_area()
        assert 0.8 < a.total < 1.4

    def test_component_shares(self):
        a = splatonic_area()
        assert 0.15 < a.share("raster_engines") < 0.45
        assert 0.05 < a.share("sram") < 0.30

    def test_scaling(self):
        a = splatonic_area()
        smaller = a.scaled_to(16, 8)
        assert smaller.total < a.total

    def test_area_grows_with_units(self):
        big = splatonic_area(SplatonicHwConfig(raster_engines=8))
        assert big.total > splatonic_area().total
