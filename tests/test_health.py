"""Health monitors: each detector, escalation policy, and the NaN guards."""

import numpy as np
import pytest

from repro.obs.health import (HealthConfig, HealthError, HealthMonitor,
                              get_monitor, set_monitor, use_monitor)
from repro.obs.metrics import MetricsRegistry


def _frame(i, *, position=(0.0, 0.0, 0.0), loss=0.01, coverage=None,
           gaussians=None, invoked=False):
    pose = np.eye(4)
    pose[:3, 3] = position
    record = {
        "type": "frame", "frame": i,
        "pose_est": pose.tolist(),
        "tracking": {"final_loss": loss},
    }
    if coverage is not None or invoked:
        record["mapping"] = {"invoked": invoked, "final_loss": loss,
                             "sampling": ({} if coverage is None
                                          else {"unseen_coverage": coverage})}
    if gaussians is not None:
        record["gaussians"] = gaussians
    return record


def fresh_monitor(**overrides):
    return HealthMonitor(HealthConfig(**overrides),
                         registry=MetricsRegistry())


class TestConfig:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="on_alert"):
            HealthConfig(on_alert="panic")


class TestFiniteness:
    def test_check_finite_accepts_clean_values(self):
        mon = fresh_monitor()
        assert mon.check_finite("x", 1.0)
        assert mon.check_finite("x", [[1.0, 2.0], [3.0, 4.0]])
        assert mon.check_finite("x", np.eye(4))
        assert mon.alerts == []

    def test_check_finite_flags_nan_and_inf(self):
        mon = fresh_monitor()
        assert not mon.check_finite("loss", float("nan"))
        assert not mon.check_finite("pose", [[1.0, float("inf")]])
        assert len(mon.alerts) == 2
        assert all(a.monitor == "non_finite" for a in mon.alerts)

    def test_alerts_hit_the_metrics_registry(self):
        registry = MetricsRegistry()
        mon = HealthMonitor(HealthConfig(), registry=registry)
        mon.non_finite("tracking loss", frame=3)
        assert registry.counters["health.alerts.non_finite"] == 1
        assert any("tracking loss" in w for w in registry.warnings)

    def test_observe_frame_checks_pose_and_losses(self):
        mon = fresh_monitor()
        record = _frame(0, loss=float("nan"))
        new = mon.observe_frame(record)
        assert [a.monitor for a in new] == ["non_finite"]


class TestEscalation:
    def test_raise_policy_aborts(self):
        mon = fresh_monitor(on_alert="raise")
        with pytest.raises(HealthError) as exc:
            mon.non_finite("mapping loss", frame=2)
        assert exc.value.alert.monitor == "non_finite"
        assert exc.value.alert.frame == 2

    def test_warn_policy_continues(self):
        mon = fresh_monitor()
        mon.non_finite("x")
        mon.non_finite("y")
        assert len(mon.alerts) == 2


class TestPoseJump:
    def test_smooth_trajectory_is_quiet(self):
        mon = fresh_monitor()
        for i in range(8):
            mon.observe_frame(_frame(i, position=(0.1 * i, 0.0, 0.0)))
        assert mon.alerts == []

    def test_teleport_fires_after_history_builds(self):
        mon = fresh_monitor()
        for i in range(6):
            mon.observe_frame(_frame(i, position=(0.1 * i, 0.0, 0.0)))
        new = mon.observe_frame(_frame(6, position=(50.0, 0.0, 0.0)))
        assert [a.monitor for a in new] == ["pose_jump"]
        assert new[0].frame == 6
        assert new[0].value > new[0].threshold

    def test_early_jump_is_tolerated(self):
        # With fewer than 3 observed steps there is no reliable median.
        mon = fresh_monitor()
        mon.observe_frame(_frame(0, position=(0.0, 0.0, 0.0)))
        mon.observe_frame(_frame(1, position=(50.0, 0.0, 0.0)))
        assert mon.alerts == []


class TestLossDivergence:
    def test_improving_run_is_quiet(self):
        mon = fresh_monitor()
        for i, loss in enumerate([0.5, 0.2, 0.1, 0.05, 0.04, 0.03, 0.02]):
            mon.observe_frame(_frame(i, loss=loss))
        assert mon.alerts == []

    def test_sustained_regression_fires_once(self):
        mon = fresh_monitor(loss_window=3)
        losses = [0.10, 0.05, 0.02, 0.5, 0.6, 0.7, 0.8, 0.9]
        fired = []
        for i, loss in enumerate(losses):
            fired += mon.observe_frame(_frame(i, loss=loss))
        monitors = [a.monitor for a in fired]
        assert monitors.count("loss_divergence") == 1

    def test_single_spike_does_not_fire(self):
        mon = fresh_monitor(loss_window=3)
        for i, loss in enumerate([0.1, 0.05, 0.02, 0.9, 0.02, 0.02, 0.02]):
            mon.observe_frame(_frame(i, loss=loss))
        assert mon.alerts == []


class TestCoverage:
    def test_warmup_frames_may_be_uncovered(self):
        mon = fresh_monitor(coverage_warmup=2)
        mon.observe_frame(_frame(0, coverage=0.9, invoked=True))
        mon.observe_frame(_frame(1, coverage=0.9, invoked=True))
        assert mon.alerts == []

    def test_collapse_after_warmup_fires(self):
        mon = fresh_monitor(coverage_warmup=2)
        for i in range(2):
            mon.observe_frame(_frame(i, coverage=0.1, invoked=True))
        new = mon.observe_frame(_frame(2, coverage=0.8, invoked=True))
        assert [a.monitor for a in new] == ["coverage_collapse"]

    def test_frames_without_mapping_do_not_advance_warmup(self):
        mon = fresh_monitor(coverage_warmup=2)
        for i in range(10):
            mon.observe_frame(_frame(i))  # tracking-only frames
        mon.observe_frame(_frame(10, coverage=0.8, invoked=True))
        assert mon.alerts == []  # first mapping pass is still warm-up


class TestDensification:
    def test_steady_growth_is_quiet(self):
        mon = fresh_monitor(densify_warmup=1)
        for i, n in enumerate([100, 110, 120, 130]):
            mon.observe_frame(_frame(i, gaussians=n, invoked=True))
        assert mon.alerts == []

    def test_explosive_growth_fires(self):
        mon = fresh_monitor(densify_warmup=1)
        mon.observe_frame(_frame(0, gaussians=100, invoked=True))
        mon.observe_frame(_frame(1, gaussians=110, invoked=True))
        new = mon.observe_frame(_frame(2, gaussians=500, invoked=True))
        assert [a.monitor for a in new] == ["densify_runaway"]
        assert new[0].value == pytest.approx(500 / 110)

    def test_bootstrap_growth_is_warmup(self):
        mon = fresh_monitor(densify_warmup=2)
        mon.observe_frame(_frame(0, gaussians=10, invoked=True))
        mon.observe_frame(_frame(1, gaussians=400, invoked=True))
        assert mon.alerts == []


class TestDefaultMonitorPlumbing:
    def test_set_monitor_swaps_and_returns_previous(self):
        original = get_monitor()
        try:
            replacement = fresh_monitor()
            assert set_monitor(replacement) is original
            assert get_monitor() is replacement
        finally:
            set_monitor(original)

    def test_use_monitor_restores_on_exit(self):
        original = get_monitor()
        scoped = fresh_monitor()
        with use_monitor(scoped) as active:
            assert active is scoped
            assert get_monitor() is scoped
        assert get_monitor() is original

    def test_use_monitor_none_is_a_noop(self):
        original = get_monitor()
        with use_monitor(None) as active:
            assert active is original
        assert get_monitor() is original


class TestIterationGuards:
    """The tracker/mapper NaN guards fire even with no recorder attached."""

    @pytest.fixture()
    def scene(self):
        from repro.datasets import make_replica_sequence
        from repro.gaussians.camera import Camera
        from repro.gaussians.init import seed_from_rgbd
        seq = make_replica_sequence("room0", n_frames=2, width=24, height=18,
                                    surface_density=10)
        frame = seq[0]
        h, w = frame.depth.shape
        vs, us = np.mgrid[0:h, 0:w]
        pixels = np.stack([us.ravel(), vs.ravel()], axis=-1)
        # Dense, near-opaque seeding so the rendered silhouette clears the
        # tracking-loss validity threshold (otherwise num_valid == 0 and
        # the loop exits before the finite guard is reached).
        cloud = seed_from_rgbd(Camera(seq.intrinsics, frame.gt_pose_c2w),
                               frame.color, frame.depth, pixels,
                               initial_opacity=0.999, scale_factor=2.0)
        return seq, cloud

    def _poison(self, monkeypatch, module):
        real = module.rgbd_loss

        def poisoned(*args, **kwargs):
            out = real(*args, **kwargs)
            out.loss = float("nan")
            return out

        monkeypatch.setattr(module, "rgbd_loss", poisoned)

    def test_tracker_guard_alerts_and_stops(self, monkeypatch, scene):
        import repro.slam.tracker as tracker_mod
        from repro.slam.config import ALGORITHMS
        seq, cloud = scene
        self._poison(monkeypatch, tracker_mod)
        mon = fresh_monitor()
        with use_monitor(mon):
            tracker = tracker_mod.Tracker(
                ALGORITHMS["splatam"], seq.intrinsics, mode="dense")
            result = tracker.track_frame(
                cloud, seq[0].gt_pose_c2w, seq[1].color, seq[1].depth)
        assert result.iterations == 1  # stopped at the first poisoned step
        assert [a.monitor for a in mon.alerts] == ["non_finite"]
        assert "tracking" in mon.alerts[0].message
        # The poisoned loss never reached the pose update.
        assert np.allclose(result.pose_c2w, seq[0].gt_pose_c2w)

    def test_mapper_guard_alerts_and_stops(self, monkeypatch, scene):
        import repro.slam.mapper as mapper_mod
        from repro.slam.config import ALGORITHMS
        from repro.slam.keyframes import Keyframe
        seq, cloud = scene
        self._poison(monkeypatch, mapper_mod)
        mon = fresh_monitor()
        with use_monitor(mon):
            mapper = mapper_mod.Mapper(
                ALGORITHMS["splatam"], seq.intrinsics, mode="dense")
            kf = Keyframe(index=0, color=seq[0].color, depth=seq[0].depth,
                          pose_c2w=seq[0].gt_pose_c2w)
            mapper.map_frame(cloud, kf, [kf], max_iters=5)
        assert [a.monitor for a in mon.alerts] == ["non_finite"]
        assert "mapping" in mon.alerts[0].message

    def test_guard_raise_policy_propagates(self, monkeypatch, scene):
        import repro.slam.tracker as tracker_mod
        from repro.slam.config import ALGORITHMS
        seq, cloud = scene
        self._poison(monkeypatch, tracker_mod)
        with use_monitor(fresh_monitor(on_alert="raise")):
            tracker = tracker_mod.Tracker(
                ALGORITHMS["splatam"], seq.intrinsics, mode="dense")
            with pytest.raises(HealthError):
                tracker.track_frame(cloud, seq[0].gt_pose_c2w,
                                    seq[1].color, seq[1].depth)


class TestFrameTimeSpike:
    def _timed(self, i, wall, invoked=False):
        record = _frame(i, invoked=invoked)
        record["wall_time_s"] = wall
        return record

    def test_fires_on_tracking_outlier(self):
        mon = fresh_monitor(frame_time_factor=10.0, frame_time_min_s=0.0)
        for i in range(4):
            mon.observe_frame(self._timed(i, 0.01))
        alerts = mon.observe_frame(self._timed(4, 0.5))
        assert [a.monitor for a in alerts] == ["frame_time_spike"]
        alert = alerts[0]
        assert alert.frame == 4
        assert alert.value == pytest.approx(0.5)
        assert "tracking" in alert.message
        assert "10x rolling tracking median" in alert.message

    def test_quiet_on_steady_frames(self):
        mon = fresh_monitor(frame_time_factor=10.0)
        for i in range(20):
            assert mon.observe_frame(self._timed(i, 0.01 + 0.001 * i)) == []

    def test_slow_mapping_frames_do_not_trip_the_tracking_median(self):
        """Mapping frames are legitimately ~10x slower than tracking-only
        frames; the rolling median is kept per frame kind so they never
        read as spikes against the tracking baseline."""
        mon = fresh_monitor(frame_time_factor=5.0, frame_time_min_s=0.0)
        for i in range(12):
            mapping = (i % 4 == 3)
            alerts = mon.observe_frame(
                self._timed(i, 0.2 if mapping else 0.01, invoked=mapping))
            assert alerts == [], f"frame {i}"

    def test_mapping_outlier_fires_against_mapping_median(self):
        mon = fresh_monitor(frame_time_factor=5.0, frame_time_min_s=0.0)
        for i in range(6):
            mon.observe_frame(self._timed(i, 0.2, invoked=True))
        alerts = mon.observe_frame(self._timed(6, 2.5, invoked=True))
        assert [a.monitor for a in alerts] == ["frame_time_spike"]
        assert "mapping" in alerts[0].message

    def test_rising_edge_alerts_once_per_episode(self):
        mon = fresh_monitor(frame_time_factor=10.0, frame_time_min_s=0.0)
        for i in range(4):
            mon.observe_frame(self._timed(i, 0.01))
        # Sustained spike: only the first spiking frame alerts...
        assert len(mon.observe_frame(self._timed(4, 1.0))) == 1
        assert mon.observe_frame(self._timed(5, 1.0)) == []
        # ...drop back to normal re-arms (the slow frames do enter the
        # rolling history, so recovery needs the median to re-settle).
        for i in range(6, 14):
            mon.observe_frame(self._timed(i, 0.01))
        assert len(mon.observe_frame(self._timed(14, 1.0))) == 1

    def test_min_floor_suppresses_fast_frame_noise(self):
        # 1 ms -> 20 ms is a 20x jump, but still under the 50 ms floor.
        mon = fresh_monitor(frame_time_factor=10.0)
        for i in range(4):
            mon.observe_frame(self._timed(i, 0.001))
        assert mon.observe_frame(self._timed(4, 0.02)) == []

    def test_factor_zero_disables(self):
        mon = fresh_monitor(frame_time_factor=0.0)
        for i in range(4):
            mon.observe_frame(self._timed(i, 0.01))
        assert mon.observe_frame(self._timed(4, 50.0)) == []

    def test_frames_without_wall_time_are_ignored(self):
        mon = fresh_monitor(frame_time_factor=10.0)
        for i in range(6):
            assert mon.observe_frame(_frame(i)) == []
        assert mon.observe_frame(self._timed(6, 9.0)) == []  # no history yet

    def test_needs_three_observations_before_judging(self):
        mon = fresh_monitor(frame_time_factor=10.0, frame_time_min_s=0.0)
        mon.observe_frame(self._timed(0, 0.01))
        mon.observe_frame(self._timed(1, 0.01))
        assert mon.observe_frame(self._timed(2, 5.0)) == []

    def test_alert_hits_registry_counter(self):
        registry = MetricsRegistry()
        mon = HealthMonitor(
            HealthConfig(frame_time_factor=10.0, frame_time_min_s=0.0),
            registry=registry)
        for i in range(4):
            mon.observe_frame(self._timed(i, 0.01))
        mon.observe_frame(self._timed(4, 1.0))
        assert registry.counters["health.alerts.frame_time_spike"] == 1
