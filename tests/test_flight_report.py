"""Flight reports and run-to-run diffing (sparklines, markdown/HTML, diff)."""

import pytest

from repro.obs.flight import FLIGHT_SCHEMA_VERSION, FlightLog
from repro.obs.report import diff_runs, render_report, sparkline


def make_log(n_frames=4, seed_shift=0.0, path=None, **header_overrides):
    """A hand-built but schema-shaped FlightLog for fast unit tests."""
    header = {
        "type": "header", "schema_version": FLIGHT_SCHEMA_VERSION,
        "algorithm": "splatam", "mode": "sparse", "sequence": "room0",
        "frames": n_frames, "width": 32, "height": 24,
        "environment": {"python": "3.11", "numpy": "2.0",
                        "platform": "linux"},
    }
    header.update(header_overrides)
    frames = []
    for i in range(n_frames):
        pose = [[1.0, 0.0, 0.0, 0.1 * i + seed_shift],
                [0.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0]]
        frames.append({
            "type": "frame", "frame": i,
            "pose_est": pose,
            "pose_error_m": 0.01 * i + seed_shift,
            "tracking": None if i == 0 else {
                "iterations": 10 + i, "converged": True,
                "final_loss": 0.1 / (i + 1) + seed_shift,
                "sampled_pixels": 48,
                "loss_curve": [0.2, 0.1 / (i + 1) + seed_shift],
            },
            "mapping": {"invoked": i == 0, "num_seeded": 50 if i == 0 else None,
                        "num_pruned": 0 if i == 0 else None,
                        "sampling": ({"unseen": 5, "weighted": 10, "total": 768,
                                      "unseen_coverage": 0.2}
                                     if i == 0 else None)},
            "gaussians": 100 + 5 * i,
            "keyframe": {"added": i == 0, "buffer_size": 1},
            "alpha": {"candidate_pairs": 100, "contrib_pairs": 60,
                      "rejection_rate": 0.4},
            "counters": {"tracking_fwd": {"num_pixels": 48 * (10 + i)}},
        })
    summary = {
        "type": "summary", "frames": n_frames,
        "ate": {"rmse": 0.05, "mean": 0.04, "median": 0.04, "max": 0.08,
                "per_frame": [0.01 * i for i in range(n_frames)]},
        "final_gaussians": 100 + 5 * (n_frames - 1),
        "mapping_invocations": 1, "tracking_iterations": 40,
        "alerts": [],
    }
    return FlightLog(header=header, frames=frames, summary=summary, path=path)


class TestSparkline:
    def test_monotone_series(self):
        assert sparkline([0, 1, 2, 3, 4, 5, 6, 7]) == "▁▂▃▄▅▆▇█"

    def test_constant_series_renders_mid(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(line) == 3 and len(set(line)) == 1
        assert line[0] not in (" ",)

    def test_none_and_nan_become_spaces(self):
        assert sparkline([None, 1.0, float("nan"), 2.0]) == " ▁ █"

    def test_empty_and_all_missing(self):
        assert sparkline([]) == ""
        assert sparkline([None, None]) == "  "

    def test_width_caps_by_striding(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] == "▁" and line[-1] == "█"


class TestRenderReport:
    def test_markdown_has_headline_sections(self):
        text = render_report(make_log())
        assert text.startswith("# flight report — splatam/sparse, 4 frames")
        assert "## per-frame series" in text
        assert "## per-frame detail" in text
        assert "ATE rmse" in text and "5.00 cm" in text
        assert "schema" in text and f"v{FLIGHT_SCHEMA_VERSION}" in text

    def test_markdown_per_frame_rows(self):
        text = render_report(make_log(n_frames=3))
        detail = text.split("## per-frame detail")[1]
        rows = [line for line in detail.splitlines()
                if line.startswith("| ") and not line.startswith("| frame")]
        assert len(rows) == 3

    def test_html_is_a_standalone_page(self):
        text = render_report(make_log(), fmt="html")
        assert text.startswith("<!DOCTYPE html>")
        assert "<table>" in text and "</html>" in text
        assert "flight report" in text

    def test_alerts_section_appears_when_present(self):
        log = make_log()
        log.frames[2]["alerts"] = [{"monitor": "pose_jump", "frame": 2,
                                    "message": "teleported"}]
        text = render_report(log)
        assert "## health alerts" in text and "teleported" in text
        assert "health alerts**: 1" in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="fmt"):
            render_report(make_log(), fmt="pdf")


class TestDiff:
    def test_identical_logs_do_not_diverge(self):
        diff = diff_runs(make_log(), make_log())
        assert not diff.diverged
        assert diff.first_divergence_frame is None
        assert diff.frames_compared == 4
        assert "no divergence" in diff.format_markdown()

    def test_different_seeds_pinpoint_first_frame(self):
        diff = diff_runs(make_log(), make_log(seed_shift=0.001))
        assert diff.diverged
        # seed_shift perturbs pose/pose_error/loss on every frame, so the
        # earliest divergence is frame 0.
        assert diff.first_divergence_frame == 0
        diverged = {c.channel for c in diff.channels if c.diverged}
        assert "pose" in diverged and "tracking.loss" in diverged
        assert "gaussians" not in diverged

    def test_single_frame_perturbation_located(self):
        a, b = make_log(n_frames=6), make_log(n_frames=6)
        b.frames[4]["gaussians"] = 999
        diff = diff_runs(a, b)
        assert diff.first_divergence_frame == 4
        gauss = next(c for c in diff.channels if c.channel == "gaussians")
        assert gauss.first_frame == 4
        assert gauss.a_value == 120 and gauss.b_value == 999

    def test_tolerance_absorbs_float_noise(self):
        a, b = make_log(), make_log()
        b.frames[1]["tracking"]["final_loss"] *= 1.0 + 1e-13
        assert not diff_runs(a, b).diverged
        b.frames[1]["tracking"]["final_loss"] *= 1.0 + 1e-3
        assert diff_runs(a, b).diverged

    def test_header_mismatch_flags_divergence(self):
        diff = diff_runs(make_log(), make_log(mode="dense"))
        assert diff.diverged
        assert any("mode" in m for m in diff.header_mismatches)
        assert "header mismatches" in diff.format_markdown()

    def test_frame_count_mismatch_flags_divergence(self):
        diff = diff_runs(make_log(n_frames=4), make_log(n_frames=6))
        assert diff.diverged
        assert diff.frame_counts == (4, 6)
        assert diff.frames_compared == 4
        assert "frame counts differ" in diff.format_markdown()

    def test_nested_counter_dicts_are_compared(self):
        a, b = make_log(), make_log()
        b.frames[3]["counters"]["tracking_fwd"]["num_pixels"] += 1
        diff = diff_runs(a, b)
        counters = next(c for c in diff.channels if c.channel == "counters")
        assert counters.first_frame == 3

    def test_to_dict_is_json_shaped(self):
        import json
        payload = diff_runs(make_log(), make_log(seed_shift=0.01)).to_dict()
        json.dumps(payload)
        assert payload["diverged"] is True
        assert payload["first_divergence_frame"] == 0


class TestRealRunSelfDiff:
    """Integration: a recorded run diffs clean against itself on disk."""

    def test_roundtrip_self_diff(self, tmp_path):
        from repro.core import SplatonicConfig
        from repro.datasets import make_replica_sequence
        from repro.obs.flight import FlightRecorder, read_flight_record
        from repro.slam import SLAMSystem

        seq = make_replica_sequence("room0", n_frames=3, width=24, height=18,
                                    surface_density=10)
        path_a = str(tmp_path / "a.jsonl")
        path_b = str(tmp_path / "b.jsonl")
        for path in (path_a, path_b):
            rec = FlightRecorder()
            rec.enable(path)
            SLAMSystem("splatam", mode="sparse",
                       splatonic_config=SplatonicConfig(tracking_tile=8),
                       seed=0).run(seq, flight=rec)
            rec.disable()
        diff = diff_runs(read_flight_record(path_a),
                         read_flight_record(path_b))
        assert not diff.diverged, diff.format_markdown()
