"""The Splatonic facade: configuration, sampling dispatch, cadence."""

import numpy as np
import pytest

from repro.core import Splatonic, SplatonicConfig
from repro.gaussians import Camera, GaussianCloud, Intrinsics


def make_scene(n=40, seed=0):
    rng = np.random.default_rng(seed)
    cloud = GaussianCloud.create(
        means=np.stack([rng.uniform(-1, 1, n), rng.uniform(-1, 1, n),
                        rng.uniform(1, 4, n)], axis=-1),
        scales=rng.uniform(0.05, 0.2, n),
        opacities=rng.uniform(0.3, 0.9, n),
        colors=rng.uniform(0, 1, (n, 3)),
    )
    return cloud, Camera(Intrinsics.from_fov(32, 24, 70.0))


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SplatonicConfig()
        assert cfg.tracking_tile == 16
        assert cfg.mapping_tile == 4
        assert cfg.tracking_strategy == "random"
        assert cfg.preemptive_alpha
        # With mapping invoked every 4 frames, a dense current keyframe on
        # every invocation realizes "one full-frame mapping per 4 frames".
        assert cfg.full_mapping_every == 1

    def test_with_overrides(self):
        cfg = SplatonicConfig().with_overrides(tracking_tile=8)
        assert cfg.tracking_tile == 8
        assert cfg.mapping_tile == 4

    def test_frozen(self):
        with pytest.raises(Exception):
            SplatonicConfig().tracking_tile = 4


class TestFacade:
    def test_sample_tracking_uses_config_tile(self):
        cloud, cam = make_scene()
        sp = Splatonic(SplatonicConfig(tracking_tile=8),
                       rng=np.random.default_rng(0))
        px = sp.sample_tracking(cam)
        assert len(px) == (32 // 8) * (24 // 8)

    def test_render_roundtrip(self):
        cloud, cam = make_scene()
        sp = Splatonic(rng=np.random.default_rng(0))
        px = sp.sample_tracking(cam)
        res = sp.render_sparse(cloud, cam, px)
        grads = sp.backward_sparse(res, cloud, cam,
                                   np.ones((len(px), 3)),
                                   np.zeros(len(px)), np.zeros(len(px)))
        assert grads.d_pose_twist.shape == (6,)

    def test_render_full_passthrough(self):
        cloud, cam = make_scene()
        sp = Splatonic()
        res = sp.render_full(cloud, cam)
        assert res.color.shape == (24, 32, 3)

    def test_sample_mapping(self):
        cloud, cam = make_scene()
        sp = Splatonic(rng=np.random.default_rng(0))
        gamma = np.ones((24, 32)) * 0.1
        gamma[:, 16:] = 0.9
        image = np.random.default_rng(0).uniform(0, 1, (24, 32, 3))
        s = sp.sample_mapping(gamma, image)
        assert len(s.unseen) == 24 * 16
        assert len(s.weighted) == (32 // 4) * (24 // 4)

    def test_full_mapping_cadence(self):
        sp = Splatonic(SplatonicConfig(full_mapping_every=4))
        flags = [sp.next_mapping_is_full_frame() for _ in range(8)]
        assert flags == [True, False, False, False,
                         True, False, False, False]

    def test_rng_determinism(self):
        cloud, cam = make_scene()
        a = Splatonic(rng=np.random.default_rng(5)).sample_tracking(cam)
        b = Splatonic(rng=np.random.default_rng(5)).sample_tracking(cam)
        assert np.array_equal(a, b)
