"""Telemetry bus: pub/sub semantics, ring backpressure, aggregation,
streaming, the producer publish hooks, and the disabled-==-free
guarantee."""

import json
import socket
import threading
import tracemalloc

import pytest

from repro.obs import telemetry
from repro.obs.telemetry import (
    RunAggregator,
    Subscription,
    TelemetryBus,
    TelemetryConfig,
    TelemetryStreamer,
)


@pytest.fixture
def global_bus():
    """The process-wide bus, enabled for one test and always restored."""
    telemetry.bus.enable()
    try:
        yield telemetry.bus
    finally:
        telemetry.bus.disable()
        telemetry.bus.reset()


class TestBus:
    def test_disabled_publish_is_a_noop(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        bus.publish("frame", {"frame": 0})
        assert len(sub) == 0
        assert bus.published() == 0
        assert bus.latest("frame") is None

    def test_publish_fans_out_to_matching_subscribers(self):
        bus = TelemetryBus(enabled=True)
        everything = bus.subscribe()
        frames_only = bus.subscribe(kinds=("frame",))
        bus.publish("frame", {"frame": 0})
        bus.publish("alert", {"monitor": "x"})
        assert len(everything) == 2
        assert len(frames_only) == 1
        seq, ts, kind, payload = frames_only.drain()[0]
        assert (seq, kind, payload) == (1, "frame", {"frame": 0})
        assert ts > 0

    def test_sequence_numbers_are_monotonic_across_kinds(self):
        bus = TelemetryBus(enabled=True)
        sub = bus.subscribe()
        for i in range(5):
            bus.publish("frame" if i % 2 else "metrics", {"i": i})
        assert [e[0] for e in sub.drain()] == [1, 2, 3, 4, 5]

    def test_full_ring_drops_oldest_and_counts(self):
        bus = TelemetryBus(enabled=True)
        sub = bus.subscribe(maxlen=3)
        for i in range(10):
            bus.publish("frame", {"i": i})
        assert sub.dropped == 7
        assert sub.delivered == 10
        assert [e[3]["i"] for e in sub.drain()] == [7, 8, 9]
        assert bus.dropped() == 7

    def test_slow_subscriber_never_blocks_others(self):
        bus = TelemetryBus(enabled=True)
        slow = bus.subscribe(maxlen=1)
        fast = bus.subscribe(maxlen=100)
        for i in range(20):
            bus.publish("frame", {"i": i})
        assert len(fast) == 20 and fast.dropped == 0
        assert len(slow) == 1 and slow.dropped == 19

    def test_latest_retained_per_kind_for_late_subscribers(self):
        bus = TelemetryBus(enabled=True)
        bus.publish("header", {"frames": 9})
        bus.publish("frame", {"frame": 0})
        bus.publish("frame", {"frame": 1})
        assert bus.latest("header") == {"frames": 9}
        assert bus.latest("frame") == {"frame": 1}
        assert bus.published("frame") == 2
        assert bus.published() == 3

    def test_unsubscribe_stops_delivery(self):
        bus = TelemetryBus(enabled=True)
        sub = bus.subscribe()
        bus.unsubscribe(sub)
        bus.publish("frame", {})
        assert len(sub) == 0
        assert bus.subscriber_count == 0
        bus.unsubscribe(sub)  # idempotent

    def test_enable_resets_counters_but_keeps_subscriptions(self):
        bus = TelemetryBus(enabled=True)
        sub = bus.subscribe()
        bus.publish("frame", {})
        bus.disable()
        bus.enable()
        assert bus.published() == 0
        assert bus.latest("frame") is None
        bus.publish("frame", {"i": 1})
        sub.drain()  # the pre-reset event was still queued
        assert bus.subscriber_count == 1

    def test_stats_payload_is_json_ready(self):
        bus = TelemetryBus(enabled=True)
        bus.subscribe(name="watcher", maxlen=4)
        for i in range(6):
            bus.publish("frame", {"i": i})
        stats = bus.stats()
        json.dumps(stats)
        assert stats["published"] == 6
        assert stats["published_by_kind"] == {"frame": 6}
        assert stats["dropped"] == 2
        assert stats["subscribers"][0]["name"] == "watcher"

    def test_concurrent_publishers_lose_nothing(self):
        bus = TelemetryBus(enabled=True)
        sub = bus.subscribe(maxlen=10_000)

        def blast(kind):
            for i in range(500):
                bus.publish(kind, {"i": i})

        threads = [threading.Thread(target=blast, args=(f"k{t}",))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert bus.published() == 2000
        events = sub.drain()
        assert len(events) == 2000
        assert [e[0] for e in events] == sorted(e[0] for e in events)


class TestTelemetryConfig:
    def test_defaults(self):
        cfg = TelemetryConfig()
        assert cfg.port == telemetry.DEFAULT_PORT
        assert cfg.ring == telemetry.DEFAULT_RING
        assert cfg.stream_target is None

    def test_rejects_nonpositive_ring_and_series(self):
        with pytest.raises(ValueError):
            TelemetryConfig(ring=0)
        with pytest.raises(ValueError):
            TelemetryConfig(series_len=-1)


class TestRunAggregator:
    def _frame(self, i, **overrides):
        record = {
            "type": "frame", "frame": i, "pose_error_m": 0.01 * (i + 1),
            "gaussians": 100 + i, "wall_time_s": 0.1,
            "tracking": {"final_loss": 0.5 / (i + 1), "iterations": 10},
            "alpha": {"rejection_rate": 0.4},
        }
        record.update(overrides)
        return record

    def test_folds_run_stream_into_snapshot(self):
        agg = RunAggregator()
        agg.consume("header", {"frames": 3, "algorithm": "splatam"})
        for i in range(3):
            agg.consume("frame", self._frame(i))
        snap = agg.snapshot()
        assert snap["frame"] == 2 and snap["frames_seen"] == 3
        assert snap["frames_total"] == 3
        assert not snap["done"]
        assert snap["series"]["pose_error_m"] == [0.01, 0.02, 0.03]
        assert snap["series"]["gaussians"] == [100, 101, 102]
        agg.consume("summary", {"frames": 3, "ate": {"rmse": 0.01}})
        assert agg.snapshot()["done"]

    def test_pose_rmse_matches_direct_computation(self):
        agg = RunAggregator()
        errors = [0.01, 0.03, 0.02]
        for i, err in enumerate(errors):
            agg.consume("frame", self._frame(i, pose_error_m=err))
        expected = (sum(e * e for e in errors) / len(errors)) ** 0.5
        assert agg.pose_rmse_so_far() == pytest.approx(expected)

    def test_series_are_bounded(self):
        agg = RunAggregator(series_len=4)
        for i in range(50):
            agg.consume("frame", self._frame(i))
        snap = agg.snapshot()
        assert len(snap["series"]["pose_error_m"]) == 4
        assert snap["frames_seen"] == 50

    def test_fps_prefers_recorded_wall_times(self):
        agg = RunAggregator()
        for i in range(4):
            agg.consume("frame", self._frame(i, wall_time_s=0.25))
        assert agg.fps() == pytest.approx(4.0)

    def test_fps_falls_back_to_event_timestamps(self):
        agg = RunAggregator()
        for i in range(3):
            agg.consume("frame", self._frame(i, wall_time_s=None),
                        ts=100.0 + i)
        assert agg.fps() == pytest.approx(1.0)

    def test_alert_ticker_is_bounded_and_counted(self):
        agg = RunAggregator(alerts_len=2)
        for i in range(5):
            agg.consume("alert", {"monitor": "m", "frame": i})
        snap = agg.snapshot()
        assert snap["alert_count"] == 5
        assert [a["frame"] for a in snap["alerts"]] == [3, 4]

    def test_frame_embedded_alerts_count_in_replay(self):
        agg = RunAggregator()
        agg.consume("frame", self._frame(
            0, alerts=[{"monitor": "pose_jump", "frame": 0}]))
        assert agg.alert_count == 1

    def test_unknown_kinds_are_ignored(self):
        agg = RunAggregator()
        agg.consume("span", {"name": "slam.track"})
        assert agg.frames_seen == 0

    def test_registry_event_lands_in_snapshot(self):
        agg = RunAggregator()
        assert agg.snapshot()["registry"] is None
        agg.consume("registry", {"run_id": "rdeadbeef0123", "seq": 4,
                                 "root": ".repro/runs", "runs_total": 4})
        snap = agg.snapshot()
        assert snap["registry"]["run_id"] == "rdeadbeef0123"
        assert snap["registry"]["runs_total"] == 4
        json.dumps(snap)

    def test_snapshot_is_json_ready(self):
        agg = RunAggregator()
        agg.consume("header", {"frames": 1})
        agg.consume("frame", self._frame(0))
        json.dumps(agg.snapshot())


class TestStreamer:
    def test_streams_newline_json_to_file(self, tmp_path):
        bus = TelemetryBus(enabled=True)
        target = str(tmp_path / "stream.jsonl")
        streamer = TelemetryStreamer(target, bus_=bus)
        streamer.start(background=False)
        bus.publish("frame", {"frame": 0})
        bus.publish("summary", {"frames": 1})
        assert streamer.pump() == 2
        stats = streamer.stop()
        assert stats["lines"] == 2 and stats["dropped"] == 0
        lines = [json.loads(l) for l in
                 open(target).read().splitlines()]
        assert [l["kind"] for l in lines] == ["frame", "summary"]
        assert lines[0]["data"] == {"frame": 0}
        assert lines[0]["seq"] == 1 and lines[0]["ts"] > 0

    def test_file_target_appends_across_streamers(self, tmp_path):
        bus = TelemetryBus(enabled=True)
        target = str(tmp_path / "stream.jsonl")
        for i in range(2):
            streamer = TelemetryStreamer(target, bus_=bus)
            streamer.start(background=False)
            bus.publish("frame", {"run": i})
            streamer.pump()
            streamer.stop()
        assert len(open(target).read().splitlines()) == 2

    def test_streams_over_tcp(self, tmp_path):
        received = []
        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()

        def accept():
            conn, _ = server.accept()
            with conn, conn.makefile("r") as f:
                for line in f:
                    received.append(json.loads(line))

        thread = threading.Thread(target=accept, daemon=True)
        thread.start()
        bus = TelemetryBus(enabled=True)
        streamer = TelemetryStreamer(f"tcp://{host}:{port}", bus_=bus)
        streamer.start(background=False)
        bus.publish("frame", {"frame": 7})
        streamer.pump()
        streamer.stop()
        thread.join(timeout=5.0)
        server.close()
        assert received == [
            {"seq": 1, "ts": received[0]["ts"], "kind": "frame",
             "data": {"frame": 7}}]

    def test_bad_tcp_target_rejected(self):
        with pytest.raises(ValueError, match="tcp"):
            TelemetryStreamer("tcp://nohost").start(background=False)

    @staticmethod
    def _refused_port():
        """A port nothing is listening on (bound, then released)."""
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_tcp_connection_refused_at_start_is_nonfatal(self):
        """A dead collector must not take the run down: the streamer
        starts failed, the run proceeds, and every event is accounted
        for in the drop counter."""
        bus = TelemetryBus(enabled=True)
        port = self._refused_port()
        streamer = TelemetryStreamer(f"tcp://127.0.0.1:{port}", bus_=bus)
        streamer.start(background=False)
        assert streamer.failed
        assert streamer.error is not None
        for i in range(3):
            bus.publish("frame", {"frame": i})
        assert streamer.pump() == 0
        stats = streamer.stop()
        assert stats["lines"] == 0
        assert stats["dropped"] == 3
        assert stats["error"] is not None
        assert streamer.lines_written + streamer.dropped == bus.published()

    def test_strict_start_raises_on_refused_connection(self):
        port = self._refused_port()
        with pytest.raises(OSError):
            TelemetryStreamer(f"tcp://127.0.0.1:{port}").start(
                background=False, strict=True)

    def test_tcp_peer_disconnect_mid_stream_counts_drops(self):
        """A collector dying mid-run marks the streamer failed and the
        lines_written + dropped accounting stays exact."""
        import time

        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()
        first_line = []

        def accept_then_reset():
            conn, _ = server.accept()
            first_line.append(conn.makefile("r").readline())
            # SO_LINGER zero: close sends RST so the client's next
            # write fails promptly instead of buffering forever.
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            __import__("struct").pack("ii", 1, 0))
            conn.close()

        thread = threading.Thread(target=accept_then_reset, daemon=True)
        thread.start()
        bus = TelemetryBus(enabled=True)
        streamer = TelemetryStreamer(f"tcp://{host}:{port}", bus_=bus)
        streamer.start(background=False)
        assert not streamer.failed
        bus.publish("frame", {"frame": 0})
        assert streamer.pump() == 1
        thread.join(timeout=5.0)
        server.close()
        # Keep publishing until a write trips over the dead peer (the
        # kernel may buffer a few sends before surfacing the RST).
        deadline = time.time() + 10.0
        i = 1
        while not streamer.failed and time.time() < deadline:
            bus.publish("frame", {"frame": i})
            streamer.pump()
            i += 1
            time.sleep(0.01)
        assert streamer.failed, "peer disconnect never surfaced"
        stats = streamer.stop()
        assert stats["error"] is not None
        assert stats["dropped"] > 0
        # Every published event is either written or counted dropped.
        assert stats["lines"] + stats["dropped"] == bus.published()
        assert json.loads(first_line[0])["data"] == {"frame": 0}

    def test_background_pump_drains_on_interval(self, tmp_path):
        bus = TelemetryBus(enabled=True)
        target = str(tmp_path / "bg.jsonl")
        streamer = TelemetryStreamer(target, bus_=bus, interval=0.01)
        streamer.start()
        bus.publish("frame", {"frame": 0})
        for _ in range(200):
            if streamer.lines_written:
                break
            import time
            time.sleep(0.01)
        stats = streamer.stop()
        assert stats["lines"] == 1


class TestPublishHooks:
    """Every producer publishes onto the enabled global bus."""

    def test_flight_recorder_publishes_records_by_type(self, global_bus):
        from repro.obs.flight import FlightRecorder

        sub = global_bus.subscribe()
        rec = FlightRecorder()
        rec.enable()
        rec.emit({"type": "frame", "frame": 0, "gaussians": 5})
        rec.emit({"type": "summary", "frames": 1})
        rec.disable()
        kinds = [e[2] for e in sub.drain()]
        assert kinds == ["frame", "summary"]
        assert global_bus.latest("frame")["gaussians"] == 5

    def test_disabled_recorder_publishes_nothing(self, global_bus):
        from repro.obs.flight import FlightRecorder

        FlightRecorder().emit({"type": "frame", "frame": 0})
        assert global_bus.published() == 0

    def test_health_monitor_publishes_alerts(self, global_bus):
        from repro.obs.health import HealthConfig, HealthMonitor
        from repro.obs.metrics import MetricsRegistry

        monitor = HealthMonitor(HealthConfig(on_alert="warn"),
                                registry=MetricsRegistry())
        monitor.non_finite("tracking.loss", frame=3)
        events = [e for e in [global_bus.latest("alert")] if e]
        assert events and events[0]["monitor"] == "non_finite"
        assert events[0]["frame"] == 3

    def test_health_alert_published_even_when_raising(self, global_bus):
        from repro.obs.health import HealthConfig, HealthError, HealthMonitor
        from repro.obs.metrics import MetricsRegistry

        monitor = HealthMonitor(HealthConfig(on_alert="raise"),
                                registry=MetricsRegistry())
        with pytest.raises(HealthError):
            monitor.non_finite("tracking.loss", frame=1)
        assert global_bus.latest("alert")["monitor"] == "non_finite"

    def test_metrics_registry_publishes_snapshot(self, global_bus):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.inc("x.count", 3)
        assert reg.publish_snapshot() is True
        payload = global_bus.latest("metrics")
        assert payload["counters"]["x.count"] == 3

    def test_metrics_publish_noop_when_bus_disabled(self):
        from repro.obs.metrics import MetricsRegistry

        assert telemetry.bus.enabled is False
        assert MetricsRegistry().publish_snapshot() is False

    def test_tracer_publishes_span_events(self, global_bus):
        from repro.obs.tracing import Tracer

        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("slam.track", frame=2):
                pass
        finally:
            tracer.disable()
        span = global_bus.latest("span")
        assert span["name"] == "slam.track"
        assert span["dur_s"] >= 0
        assert span["attrs"] == {"frame": 2}


class TestDisabledBusIsFree:
    def test_disabled_publish_allocates_nothing(self):
        """The per-frame hot-path discipline: with the bus disabled, a
        publish call must not allocate (the payload guard lives at the
        call site; the bus itself is one attribute load + branch)."""
        bus = TelemetryBus()
        payload = {"frame": 0}
        bus.publish("frame", payload)  # warm up any lazy state
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(1000):
                bus.publish("frame", payload)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.compare_to(before, "lineno")
        here = [s for s in stats
                if s.traceback[0].filename == telemetry.__file__
                and s.size_diff > 0]
        assert not here, [str(s) for s in here]

    def test_hot_path_hooks_check_enabled_before_building_payloads(self):
        """Source-level guard: every producer publish hook sits behind a
        `bus.enabled` check so payload dicts are never built while the
        bus is off."""
        import importlib
        import inspect

        for name in ("flight", "health", "metrics", "tracing"):
            # importlib, because ``from repro.obs import metrics`` binds
            # the registry instance that shadows the submodule name.
            module = importlib.import_module(f"repro.obs.{name}")
            source = inspect.getsource(module)
            assert "_bus.enabled" in source, name
