"""Serialization: cloud npz round trips, PPM/PGM writers, TUM trajectories."""

import numpy as np
import pytest

from repro.gaussians import GaussianCloud, se3_exp
from repro.io import (
    load_cloud,
    load_trajectory_tum,
    save_cloud,
    save_pgm,
    save_ppm,
    save_trajectory_tum,
)
from repro.render import AnisotropicCloud


def iso_cloud(n=6, seed=0):
    rng = np.random.default_rng(seed)
    return GaussianCloud.create(
        means=rng.normal(size=(n, 3)), scales=rng.uniform(0.05, 0.3, n),
        opacities=rng.uniform(0.2, 0.8, n), colors=rng.uniform(0, 1, (n, 3)))


class TestCloudIO:
    def test_isotropic_roundtrip(self, tmp_path):
        cloud = iso_cloud()
        path = str(tmp_path / "c.npz")
        save_cloud(path, cloud)
        again = load_cloud(path)
        assert isinstance(again, GaussianCloud)
        assert np.allclose(again.means, cloud.means)
        assert np.allclose(again.colors, cloud.colors)

    def test_anisotropic_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        cloud = AnisotropicCloud.create(
            means=rng.normal(size=(4, 3)), scales=rng.uniform(0.1, 0.3, (4, 3)),
            quaternions=rng.normal(size=(4, 4)),
            opacities=rng.uniform(0.2, 0.8, 4), colors=rng.uniform(0, 1, (4, 3)))
        path = str(tmp_path / "a.npz")
        save_cloud(path, cloud)
        again = load_cloud(path)
        assert isinstance(again, AnisotropicCloud)
        assert np.allclose(again.quaternions, cloud.quaternions)

    def test_rejects_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_cloud(str(tmp_path / "x.npz"), object())

    def test_load_appends_extension(self, tmp_path):
        cloud = iso_cloud()
        path = str(tmp_path / "bare")
        save_cloud(path, cloud)  # numpy appends .npz
        again = load_cloud(path)
        assert len(again) == len(cloud)


class TestImageIO:
    def test_ppm_header_and_size(self, tmp_path):
        img = np.random.default_rng(0).uniform(0, 1, (5, 7, 3))
        path = str(tmp_path / "img.ppm")
        save_ppm(path, img)
        raw = open(path, "rb").read()
        assert raw.startswith(b"P6\n7 5\n255\n")
        assert len(raw) == len(b"P6\n7 5\n255\n") + 5 * 7 * 3

    def test_ppm_values(self, tmp_path):
        img = np.zeros((1, 2, 3))
        img[0, 1] = 1.0
        path = str(tmp_path / "bw.ppm")
        save_ppm(path, img)
        body = open(path, "rb").read().split(b"255\n", 1)[1]
        assert body == bytes([0, 0, 0, 255, 255, 255])

    def test_ppm_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(str(tmp_path / "x.ppm"), np.zeros((4, 4)))

    def test_pgm_normalization(self, tmp_path):
        depth = np.array([[0.0, 2.0], [4.0, 1.0]])
        path = str(tmp_path / "d.pgm")
        save_pgm(path, depth)
        body = open(path, "rb").read().split(b"255\n", 1)[1]
        assert body[2] == 255  # max depth maps to white

    def test_pgm_explicit_max(self, tmp_path):
        depth = np.array([[1.0]])
        path = str(tmp_path / "d.pgm")
        save_pgm(path, depth, max_value=2.0)
        body = open(path, "rb").read().split(b"255\n", 1)[1]
        assert body[0] == 128

    def test_pgm_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(str(tmp_path / "x.pgm"), np.zeros((2, 2, 3)))


class TestTrajectoryIO:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(2)
        poses = np.stack([se3_exp(rng.normal(0, 0.3, 6)) for _ in range(7)])
        path = str(tmp_path / "traj.txt")
        save_trajectory_tum(path, poses, timestamps=np.arange(7) * 0.1)
        ts, again = load_trajectory_tum(path)
        assert np.allclose(ts, np.arange(7) * 0.1)
        assert np.allclose(again, poses, atol=1e-7)

    def test_default_timestamps(self, tmp_path):
        poses = np.stack([np.eye(4)] * 3)
        path = str(tmp_path / "t.txt")
        save_trajectory_tum(path, poses)
        ts, _ = load_trajectory_tum(path)
        assert np.allclose(ts, [0, 1, 2])

    def test_header_skipped(self, tmp_path):
        path = str(tmp_path / "t.txt")
        save_trajectory_tum(path, np.stack([np.eye(4)]))
        first = open(path).readline()
        assert first.startswith("#")

    def test_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            save_trajectory_tum(str(tmp_path / "x.txt"), np.eye(4))
        with pytest.raises(ValueError):
            save_trajectory_tum(str(tmp_path / "x.txt"),
                                np.stack([np.eye(4)]), timestamps=[1, 2])

    def test_malformed_line(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        open(path, "w").write("1 2 3\n")
        with pytest.raises(ValueError):
            load_trajectory_tum(path)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.txt")
        open(path, "w").write("# only a header\n")
        ts, poses = load_trajectory_tum(path)
        assert len(ts) == 0 and poses.shape == (0, 4, 4)


class TestRpe:
    def test_zero_for_identical(self):
        from repro.metrics import rpe
        rng = np.random.default_rng(3)
        poses = np.stack([se3_exp(rng.normal(0, 0.2, 6)) for _ in range(6)])
        r = rpe(poses, poses)
        assert r.trans_rmse < 1e-12
        assert r.rot_rmse < 1e-9
        assert r.num_pairs == 5

    def test_detects_drift(self):
        from repro.metrics import rpe
        gt = np.stack([se3_exp(np.array([0.1 * i, 0, 0, 0, 0, 0]))
                       for i in range(6)])
        est = np.stack([se3_exp(np.array([0.11 * i, 0, 0, 0, 0, 0]))
                        for i in range(6)])
        r = rpe(est, gt, delta=1)
        assert np.isclose(r.trans_rmse, 0.01, atol=1e-9)

    def test_delta_validation(self):
        from repro.metrics import rpe
        poses = np.stack([np.eye(4)] * 3)
        with pytest.raises(ValueError):
            rpe(poses, poses, delta=0)
        with pytest.raises(ValueError):
            rpe(poses, poses, delta=3)


class TestSequenceIO:
    def test_roundtrip(self, tmp_path):
        from repro.datasets import make_replica_sequence
        from repro.io import load_sequence, save_sequence
        seq = make_replica_sequence("room0", n_frames=3, width=24,
                                    height=18, surface_density=8)
        path = str(tmp_path / "seq.npz")
        save_sequence(path, seq)
        again = load_sequence(path)
        assert again.name == seq.name
        assert len(again) == 3
        assert np.allclose(again[1].color, seq[1].color, atol=1e-6)
        assert np.allclose(again[2].depth, seq[2].depth, atol=1e-5)
        assert np.allclose(again.gt_trajectory, seq.gt_trajectory)
        assert len(again.gt_cloud) == len(seq.gt_cloud)
        assert again.intrinsics.width == seq.intrinsics.width

    def test_without_gt_cloud(self, tmp_path):
        from repro.datasets.rgbd import RGBDFrame, RGBDSequence
        from repro.gaussians import Intrinsics
        from repro.io import load_sequence, save_sequence
        intr = Intrinsics.from_fov(8, 6, 70.0)
        frames = [RGBDFrame(color=np.zeros((6, 8, 3)),
                            depth=np.ones((6, 8)),
                            gt_pose_c2w=np.eye(4))]
        seq = RGBDSequence(name="bare", intrinsics=intr, frames=frames)
        path = str(tmp_path / "bare.npz")
        save_sequence(path, seq)
        again = load_sequence(path)
        assert again.gt_cloud is None
        assert len(again) == 1

    def test_loaded_sequence_runs_slam(self, tmp_path):
        from repro.datasets import make_replica_sequence
        from repro.io import load_sequence, save_sequence
        from repro.slam import SLAMSystem
        seq = make_replica_sequence("room0", n_frames=4, width=32,
                                    height=24, surface_density=8)
        path = str(tmp_path / "seq.npz")
        save_sequence(path, seq)
        again = load_sequence(path)
        result = SLAMSystem("flashslam", mode="sparse").run(again)
        assert np.isfinite(result.ate().rmse)
