"""Renderer edge cases: thresholds, tiny images, degenerate scenes."""

import numpy as np
import pytest

from repro.core.pixel_pipeline import render_sparse
from repro.gaussians import Camera, GaussianCloud, Intrinsics
from repro.render import render_full

BG = np.full(3, 0.05)


def one_gaussian(z=2.0, opacity=0.8, scale=0.1):
    return GaussianCloud.create(
        means=np.array([[0.0, 0.0, z]]), scales=np.array([scale]),
        opacities=np.array([opacity]), colors=np.array([[1.0, 0.5, 0.2]]))


class TestThresholds:
    def test_high_alpha_threshold_drops_faint_splats(self):
        cloud = one_gaussian(opacity=0.05)
        cam = Camera(Intrinsics.from_fov(16, 12, 70.0))
        strict = render_full(cloud, cam, BG, alpha_threshold=0.1,
                             keep_cache=False)
        assert np.allclose(strict.silhouette, 0.0)
        lax = render_full(cloud, cam, BG, alpha_threshold=0.001,
                          keep_cache=False)
        assert lax.silhouette.max() > 0.0

    def test_t_min_controls_early_termination(self):
        """A stack of opaque splats: higher t_min terminates earlier."""
        n = 30
        cloud = GaussianCloud.create(
            means=np.tile([0.0, 0.0, 0.0], (n, 1))
            + np.stack([np.zeros(n), np.zeros(n),
                        np.linspace(1, 3, n)], axis=-1),
            scales=np.full(n, 0.3),
            opacities=np.full(n, 0.9),
            colors=np.ones((n, 3)))
        cam = Camera(Intrinsics.from_fov(16, 12, 70.0))
        eager = render_full(cloud, cam, BG, t_min=1e-1, keep_cache=False)
        lazy = render_full(cloud, cam, BG, t_min=1e-8, keep_cache=False)
        assert (eager.stats.num_contrib_pairs
                < lazy.stats.num_contrib_pairs)

    def test_thresholds_consistent_across_pipelines(self):
        rng = np.random.default_rng(0)
        n = 40
        cloud = GaussianCloud.create(
            means=np.stack([rng.uniform(-1, 1, n), rng.uniform(-1, 1, n),
                            rng.uniform(1, 4, n)], axis=-1),
            scales=rng.uniform(0.05, 0.3, n),
            opacities=rng.uniform(0.1, 0.9, n),
            colors=rng.uniform(0, 1, (n, 3)))
        cam = Camera(Intrinsics.from_fov(24, 18, 70.0))
        px = np.array([[12, 9], [5, 5], [20, 14]])
        for thr, tmin in [(0.02, 1e-3), (0.004, 1e-5)]:
            full = render_full(cloud, cam, BG, alpha_threshold=thr,
                               t_min=tmin, keep_cache=False)
            sparse = render_sparse(cloud, cam, px, BG, alpha_threshold=thr,
                                   t_min=tmin)
            u, v = px[:, 0], px[:, 1]
            assert np.allclose(sparse.color, full.color[v, u], atol=1e-12)


class TestTinyImages:
    def test_one_pixel_image(self):
        cloud = one_gaussian()
        cam = Camera(Intrinsics(width=1, height=1, fx=10, fy=10,
                                cx=0.5, cy=0.5))
        res = render_full(cloud, cam, BG, keep_cache=False)
        assert res.color.shape == (1, 1, 3)
        assert res.silhouette[0, 0] > 0.0

    def test_image_smaller_than_tile(self):
        cloud = one_gaussian()
        cam = Camera(Intrinsics.from_fov(5, 3, 70.0))
        res = render_full(cloud, cam, BG, tile_size=16, keep_cache=False)
        assert res.color.shape == (3, 5, 3)
        assert res.grid.num_tiles == 1


class TestDegenerateScenes:
    def test_gaussian_exactly_at_near_plane(self):
        cloud = one_gaussian(z=0.01)
        cam = Camera(Intrinsics.from_fov(16, 12, 70.0))
        res = render_full(cloud, cam, BG, keep_cache=False)  # must not raise
        assert np.all(np.isfinite(res.color))

    def test_huge_gaussian_covers_frame(self):
        cloud = one_gaussian(scale=5.0, opacity=0.9)
        cam = Camera(Intrinsics.from_fov(16, 12, 70.0))
        res = render_full(cloud, cam, BG, keep_cache=False)
        assert np.all(res.silhouette > 0.5)

    def test_all_gaussians_behind(self):
        cloud = one_gaussian(z=-3.0)
        cam = Camera(Intrinsics.from_fov(16, 12, 70.0))
        res = render_full(cloud, cam, BG, keep_cache=False)
        assert np.allclose(res.color, BG)

    def test_duplicate_gaussians_composite_in_order(self):
        """Two identical splats at the same depth: stable order, finite."""
        base = one_gaussian()
        cloud = base.extend(base)
        cam = Camera(Intrinsics.from_fov(16, 12, 70.0))
        res = render_full(cloud, cam, BG, keep_cache=False)
        assert np.all(np.isfinite(res.color))
        single = render_full(base, cam, BG, keep_cache=False)
        assert res.silhouette.max() > single.silhouette.max()

    def test_nonsquare_pixels(self):
        intr = Intrinsics(width=20, height=16, fx=30.0, fy=15.0,
                          cx=10.0, cy=8.0)
        cloud = one_gaussian()
        res = render_full(cloud, Camera(intr), BG, keep_cache=False)
        assert np.all(np.isfinite(res.color))
